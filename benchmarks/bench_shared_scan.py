"""Shared-scan batch executor A/B — page-major vs per-query kernel path.

The headline workload of the shared-scan PR: the seeded 1,000-query
Hybrid-NN TNN workload at the paper's 64-byte page geometry (leaf capacity
6, fanout M = 3 — the geometry PR 3's ``bench_small_geometry`` optimised
one query at a time).  The per-query kernel path replays the broadcast
cycle once per query; :class:`~repro.engine.batch.SharedScanRunner`
advances it page-major, serving every active query per arrival tick and
batching the bound geometry across the workload in multi-query kernel
calls.

Protocol: interleaved best-of-``REPRO_BENCH_ROUNDS`` on the same host —
one per-query pass and one shared-scan pass per round, alternating, best
times compared — with a mandatory assertion that the two paths produce
**bit-identical** ``TNNResult`` streams.  ``REPRO_BENCH_MIN_SPEEDUP``
gates the speedup on full-size local runs (CI smoke runs are too small
and too noisy to gate).

Writes ``BENCH_shared_scan.json`` at the repository root, including the
PR 3 per-query reference time from ``BENCH_small_geometry.json`` when
present.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import time

from repro.broadcast import SystemParameters
from repro.core.environment import TNNEnvironment
from repro.core.hybrid import HybridNN
from repro.datasets import sized_uniform
from repro.engine import QueryWorkload, SharedScanRunner
from repro.geometry import kernels
from repro.sim import format_table

N_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", 1_000))
N_POINTS = int(os.environ.get("REPRO_BENCH_POINTS", 30_000))
PAGE_CAPACITY = int(os.environ.get("REPRO_BENCH_CAPACITY", 64))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", 4))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", 0.0))

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_shared_scan.json"
SMALL_GEOMETRY_JSON = ROOT / "BENCH_small_geometry.json"


def _build():
    params = SystemParameters(page_capacity=PAGE_CAPACITY)
    env = TNNEnvironment.build(
        sized_uniform(N_POINTS, seed=1),
        sized_uniform(N_POINTS, seed=2),
        params=params,
    )
    workload = QueryWorkload(N_QUERIES, seed=0)
    return env, workload


def test_shared_scan_speedup(benchmark, record_experiment):
    env, workload = _build()
    algo = HybridNN()
    runner = SharedScanRunner(env, workload, workers=0)
    queries = workload.queries(env)

    def per_query():
        return [algo.run(env, q, ps, pr) for q, ps, pr in queries]

    def measure():
        with kernels.use_kernels(True):
            # Warm both paths, then interleave best-of-N so neither side
            # owns a quieter stretch of the host.
            pq_res = per_query()
            shared_res = runner.run_algorithm(algo)
            pq_best = shared_best = None
            for _ in range(ROUNDS):
                t0 = time.perf_counter()
                pq_res = per_query()
                dt = time.perf_counter() - t0
                pq_best = dt if pq_best is None else min(pq_best, dt)
                t0 = time.perf_counter()
                shared_res = runner.run_algorithm(algo)
                dt = time.perf_counter() - t0
                shared_best = dt if shared_best is None else min(shared_best, dt)
        return pq_res, shared_res, pq_best, shared_best

    pq_res, shared_res, pq_s, shared_s = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    # The acceptance bar: the full TNNResult streams are bit-identical.
    assert shared_res == pq_res
    speedup = pq_s / shared_s

    pr3_reference = None
    if SMALL_GEOMETRY_JSON.exists():
        try:
            pr3_reference = json.loads(SMALL_GEOMETRY_JSON.read_text()).get(
                "kernel_seconds"
            )
        except (ValueError, OSError):  # pragma: no cover - defensive
            pr3_reference = None
    # The previous recording (the last PR's shared-scan time) is carried
    # forward so the arena PR's before/after lives in the artifact itself.
    previous_shared = None
    if JSON_PATH.exists():
        try:
            prev = json.loads(JSON_PATH.read_text())
            previous_shared = prev.get("shared_scan_seconds")
        except (ValueError, OSError):  # pragma: no cover - defensive
            previous_shared = None

    params = SystemParameters(page_capacity=PAGE_CAPACITY)
    payload = {
        "benchmark": "shared_scan",
        "workload": "Hybrid-NN TNN queries, shared-scan vs per-query",
        "n_queries": N_QUERIES,
        "n_points_per_dataset": N_POINTS,
        "page_capacity": PAGE_CAPACITY,
        "leaf_capacity": params.leaf_capacity,
        "fanout": params.internal_fanout,
        "frontier": "columnar-arena",
        "protocol": f"interleaved best-of-{ROUNDS}, same host",
        "per_query_seconds": round(pq_s, 6),
        "shared_scan_seconds": round(shared_s, 6),
        "speedup": round(speedup, 3),
        "bit_identical": shared_res == pq_res,
        "pr3_per_query_reference_seconds": pr3_reference,
        "previous_shared_scan_seconds": previous_shared,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    record_experiment(
        "shared_scan",
        format_table(
            [
                "queries",
                "points",
                "leaf/fanout",
                "per-query (s)",
                "shared scan (s)",
                "speedup",
            ],
            [[
                N_QUERIES,
                N_POINTS,
                f"{params.leaf_capacity}/{params.internal_fanout}",
                f"{pq_s:.3f}",
                f"{shared_s:.3f}",
                f"{speedup:.2f}x",
            ]],
            title=(
                "[shared_scan] per-query vs page-major shared scan, "
                "1,000-query Hybrid-TNN at 64-byte pages"
            ),
        ),
    )
    assert speedup >= MIN_SPEEDUP
