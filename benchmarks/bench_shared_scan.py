"""Shared-scan batch executor A/B — page-major vs per-query kernel path.

The headline workload of the shared-scan PR: the seeded 1,000-query
Hybrid-NN TNN workload at the paper's 64-byte page geometry (leaf capacity
6, fanout M = 3 — the geometry PR 3's ``bench_small_geometry`` optimised
one query at a time).  The per-query kernel path replays the broadcast
cycle once per query; :class:`~repro.engine.batch.SharedScanRunner`
advances it page-major, serving every active query per arrival tick and
batching the bound geometry across the workload in multi-query kernel
calls.

Protocol: interleaved best-of-``REPRO_BENCH_ROUNDS`` on the same host —
one per-query pass and one shared-scan pass per round, alternating, best
times compared — with a mandatory assertion that the two paths produce
**bit-identical** ``TNNResult`` streams.  ``REPRO_BENCH_MIN_SPEEDUP``
gates the speedup on full-size local runs (CI smoke runs are too small
and too noisy to gate).

Writes ``BENCH_shared_scan.json`` at the repository root, including the
PR 3 per-query reference time from ``BENCH_small_geometry.json`` when
present.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import time

from repro.broadcast import SystemParameters
from repro.core.environment import TNNEnvironment
from repro.core.hybrid import HybridNN
from repro.datasets import sized_uniform
from repro.engine import QueryWorkload, SharedScanRunner
from repro.geometry import kernels
from repro.sim import format_table

N_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", 1_000))
N_POINTS = int(os.environ.get("REPRO_BENCH_POINTS", 30_000))
PAGE_CAPACITY = int(os.environ.get("REPRO_BENCH_CAPACITY", 64))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", 4))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", 0.0))
# The per-backend ledger gate sweeps every registered layout with a
# per-query oracle pass, so it runs at its own (smaller) scale.
SWEEP_QUERIES = int(os.environ.get("REPRO_BENCH_SWEEP_QUERIES", 40))
SWEEP_POINTS = int(os.environ.get("REPRO_BENCH_SWEEP_POINTS", 2_000))

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_shared_scan.json"
SMALL_GEOMETRY_JSON = ROOT / "BENCH_small_geometry.json"


def _build():
    params = SystemParameters(page_capacity=PAGE_CAPACITY)
    env = TNNEnvironment.build(
        sized_uniform(N_POINTS, seed=1),
        sized_uniform(N_POINTS, seed=2),
        params=params,
    )
    workload = QueryWorkload(N_QUERIES, seed=0)
    return env, workload


def test_shared_scan_speedup(benchmark, record_experiment):
    env, workload = _build()
    algo = HybridNN()
    runner = SharedScanRunner(env, workload, workers=0)
    queries = workload.queries(env)

    def per_query():
        return [algo.run(env, q, ps, pr) for q, ps, pr in queries]

    def measure():
        with kernels.use_kernels(True):
            # Warm both paths, then interleave best-of-N so neither side
            # owns a quieter stretch of the host.
            pq_res = per_query()
            shared_res = runner.run_algorithm(algo)
            pq_best = shared_best = None
            for _ in range(ROUNDS):
                t0 = time.perf_counter()
                pq_res = per_query()
                dt = time.perf_counter() - t0
                pq_best = dt if pq_best is None else min(pq_best, dt)
                t0 = time.perf_counter()
                shared_res = runner.run_algorithm(algo)
                dt = time.perf_counter() - t0
                shared_best = dt if shared_best is None else min(shared_best, dt)
        return pq_res, shared_res, pq_best, shared_best

    pq_res, shared_res, pq_s, shared_s = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    # The acceptance bar: the full TNNResult streams are bit-identical.
    assert shared_res == pq_res
    speedup = pq_s / shared_s

    pr3_reference = None
    if SMALL_GEOMETRY_JSON.exists():
        try:
            pr3_reference = json.loads(SMALL_GEOMETRY_JSON.read_text()).get(
                "kernel_seconds"
            )
        except (ValueError, OSError):  # pragma: no cover - defensive
            pr3_reference = None
    # The previous recording (the last PR's shared-scan time) is carried
    # forward so the arena PR's before/after lives in the artifact itself.
    previous_shared = None
    previous_backends = None
    if JSON_PATH.exists():
        try:
            prev = json.loads(JSON_PATH.read_text())
            previous_shared = prev.get("shared_scan_seconds")
            # The per-backend ledger gate (test below) merges its section
            # into this file; a headline-only re-run keeps it.
            previous_backends = prev.get("backends")
        except (ValueError, OSError):  # pragma: no cover - defensive
            previous_shared = None

    params = SystemParameters(page_capacity=PAGE_CAPACITY)
    payload = {
        "benchmark": "shared_scan",
        "workload": "Hybrid-NN TNN queries, shared-scan vs per-query",
        "n_queries": N_QUERIES,
        "n_points_per_dataset": N_POINTS,
        "page_capacity": PAGE_CAPACITY,
        "leaf_capacity": params.leaf_capacity,
        "fanout": params.internal_fanout,
        "frontier": "columnar-arena",
        "protocol": f"interleaved best-of-{ROUNDS}, same host",
        "per_query_seconds": round(pq_s, 6),
        "shared_scan_seconds": round(shared_s, 6),
        "speedup": round(speedup, 3),
        "bit_identical": shared_res == pq_res,
        "pr3_per_query_reference_seconds": pr3_reference,
        "previous_shared_scan_seconds": previous_shared,
    }
    if previous_backends is not None:
        payload["backends"] = previous_backends
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    record_experiment(
        "shared_scan",
        format_table(
            [
                "queries",
                "points",
                "leaf/fanout",
                "per-query (s)",
                "shared scan (s)",
                "speedup",
            ],
            [[
                N_QUERIES,
                N_POINTS,
                f"{params.leaf_capacity}/{params.internal_fanout}",
                f"{pq_s:.3f}",
                f"{shared_s:.3f}",
                f"{speedup:.2f}x",
            ]],
            title=(
                "[shared_scan] per-query vs page-major shared scan, "
                "1,000-query Hybrid-TNN at 64-byte pages"
            ),
        ),
    )
    assert speedup >= MIN_SPEEDUP


def test_ledger_backend_sweep(record_experiment):
    """Tuner-ledger bit-identity gate on every registered backend.

    For each layout backend, the shared-scan path (columnar tuner ledger
    engaged where the backend supports the arena, burst fallback where it
    does not) must match the per-query scalar-tuner oracle twice over:

    * the full Hybrid-TNN ``TNNResult`` stream, and
    * raw tuner state at the search level — ``now``, the page counters,
      ``lost_pages`` and the **materialised log tuples** — against a
      :func:`run_all`-driven oracle on identically constructed searches.

    Merges a per-backend ``bit_identical`` section into
    ``BENCH_shared_scan.json``; CI fails the build if any entry is false.
    """
    from repro.broadcast import (
        BroadcastChannel,
        ChannelTuner,
        available_layouts,
        make_layout,
    )
    from repro.client import BroadcastNNSearch, SearchGroup, run_all
    from repro.engine import execute_tnn_batch
    from repro.engine.shared_scan import SharedScanExecutor

    algo = HybridNN()
    backends = {}
    for name in available_layouts():
        env = TNNEnvironment.build(
            sized_uniform(SWEEP_POINTS, seed=1),
            sized_uniform(SWEEP_POINTS, seed=2),
            params=SystemParameters(page_capacity=PAGE_CAPACITY),
            layout=make_layout(name),
        )
        queries = QueryWorkload(SWEEP_QUERIES, seed=7).queries(env)
        with kernels.use_kernels(True):
            want = [algo.run(env, q, ps, pr) for q, ps, pr in queries]
            got = execute_tnn_batch(env, algo, queries)
        results_ok = got == want

        rng = random.Random(13)
        cycle = env.s_program.cycle_length
        specs = [
            (env.random_query_point(rng), rng.uniform(0, cycle))
            for _ in range(10)
        ]

        def nn_search(spec):
            q, phase = spec
            tuner = ChannelTuner(
                BroadcastChannel(env.s_program, phase=phase)
            )
            return BroadcastNNSearch(env.s_tree, tuner, q)

        oracle = [nn_search(spec) for spec in specs]
        shared = [nn_search(spec) for spec in specs]
        with kernels.use_kernels(True):
            for s in oracle:
                run_all([s])
            executor = SharedScanExecutor()
            for s in shared:
                executor.add(SearchGroup([s]))
            executor.run()
        tuners_ok = all(
            a.result() == b.result()
            and a.tuner.now == b.tuner.now
            and a.tuner.index_pages == b.tuner.index_pages
            and a.tuner.data_pages == b.tuner.data_pages
            and a.tuner.lost_pages == b.tuner.lost_pages
            and a.tuner.log == b.tuner.log
            for a, b in zip(shared, oracle)
        )
        backends[name] = {"bit_identical": bool(results_ok and tuners_ok)}
        assert results_ok, f"{name}: TNNResult stream diverged"
        assert tuners_ok, f"{name}: tuner state or log diverged"

    data = {}
    if JSON_PATH.exists():
        try:
            data = json.loads(JSON_PATH.read_text())
        except (ValueError, OSError):  # pragma: no cover - defensive
            data = {}
    data["backends"] = backends
    JSON_PATH.write_text(json.dumps(data, indent=2) + "\n")

    record_experiment(
        "shared_scan_backends",
        format_table(
            ["backend", "bit_identical"],
            [[name, str(entry["bit_identical"])]
             for name, entry in sorted(backends.items())],
            title=(
                "[shared_scan] ledger bit-identity vs scalar-tuner "
                f"oracle, {SWEEP_QUERIES} queries / backend"
            ),
        ),
    )
