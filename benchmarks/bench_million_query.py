"""Million-query distributed campaign — throughput, scaling, chaos.

The distributed-runner PR's recording harness.  Three experiments write
``BENCH_million_query.json`` at the repository root:

* **Headline campaign** — a million Hybrid-TNN queries fan out over
  localhost worker subprocesses through the coordinator/worker protocol
  (``QueryEngine.run_campaign``) and the merged stream is gated
  **bit-identical** against the serial shared-scan oracle.  Queries/sec
  are recorded for both, normalised per host core — on a single-core
  host the distributed figure measures protocol overhead, not speedup,
  and the JSON says so.
* **Worker scaling curve** — the same campaign at calibration size
  across worker counts, every cell bit-identical.
* **Chaos cell** — a campaign where one worker is hard-killed
  (``os._exit``) mid-shard by its seeded fault injector while a healthy
  sibling absorbs the resharded remainder; the gate is the same
  bit-identity plus proof the kill actually fired.

Scaled by ``REPRO_BENCH_QUERIES`` / ``REPRO_BENCH_POINTS`` /
``REPRO_BENCH_CURVE_QUERIES`` / ``REPRO_BENCH_DIST_WORKERS`` for CI
smoke; the committed JSON is recorded at the full defaults.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.broadcast import SystemParameters
from repro.core.environment import TNNEnvironment
from repro.core.hybrid import HybridNN
from repro.datasets import sized_uniform
from repro.engine import (
    QueryEngine,
    QueryWorkload,
    SharedScanRunner,
    execute_tnn_batch,
)
from repro.engine.distributed import CampaignConfig
from repro.geometry import kernels
from repro.sim import format_table

N_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", 1_000_000))
N_POINTS = int(os.environ.get("REPRO_BENCH_POINTS", 2_000))
PAGE_CAPACITY = int(os.environ.get("REPRO_BENCH_CAPACITY", 64))
#: The scaling curve and chaos cell run at this (smaller) size.
CURVE_QUERIES = min(
    N_QUERIES, int(os.environ.get("REPRO_BENCH_CURVE_QUERIES", 20_000))
)
WORKERS = int(os.environ.get("REPRO_BENCH_DIST_WORKERS", 2))

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_million_query.json"


def _build(n_queries: int):
    env = TNNEnvironment.build(
        sized_uniform(N_POINTS, seed=1),
        sized_uniform(N_POINTS, seed=2),
        params=SystemParameters(page_capacity=PAGE_CAPACITY),
    )
    return env, QueryWorkload(n_queries, seed=5)


def _config(**kw):
    base = dict(worker_wait=60.0)
    base.update(kw)
    return CampaignConfig(**base)


#: Serial-oracle sub-batch size.  One shared scan over a million queries
#: would overflow the frontier arena's packed-index capacity (~4.2M
#: queued entries); executing the workload in sub-batches is
#: bit-identical by partition invariance (tests/test_merge_determinism)
#: and is exactly how the distributed shards run.
ORACLE_CHUNK = int(os.environ.get("REPRO_BENCH_ORACLE_CHUNK", 50_000))


def _serial_oracle(env, workload, algo):
    queries = workload.queries(env)
    out = []
    for at in range(0, len(queries), ORACLE_CHUNK):
        out.extend(
            execute_tnn_batch(
                env, algo, queries[at : at + ORACLE_CHUNK], record_log=False
            )
        )
    return out


def _merge_json(update: dict) -> None:
    data = {}
    if JSON_PATH.exists():
        try:
            data = json.loads(JSON_PATH.read_text())
        except (ValueError, OSError):  # pragma: no cover - defensive
            data = {}
    data.update(update)
    # The CI gate reads the top-level flag: every cell must hold.
    data["bit_identical"] = bool(
        data.get("headline_bit_identical", True)
        and data.get("scaling_bit_identical", True)
        and data.get("chaos_bit_identical", True)
    )
    JSON_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_million_query_campaign(benchmark, record_experiment):
    env, workload = _build(N_QUERIES)
    algo = HybridNN()

    with kernels.use_kernels(True):
        t0 = time.perf_counter()
        want = _serial_oracle(env, workload, algo)
        serial_seconds = time.perf_counter() - t0

    def measure():
        with kernels.use_kernels(True):
            return QueryEngine(env).run_campaign(
                workload,
                algo,
                spawn_workers=WORKERS,
                config=_config(),
            )

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    identical = out.results == want
    s = out.stats
    cores = os.cpu_count() or 1
    headline = {
        "n_queries": N_QUERIES,
        "workers": WORKERS,
        "host_cores": cores,
        "mode": s["mode"],
        "campaign_wall_seconds": s["wall_seconds"],
        "campaign_queries_per_second": s["queries_per_second"],
        "campaign_queries_per_second_per_core": round(
            (s["queries_per_second"] or 0.0) / cores, 3
        ),
        "serial_wall_seconds": round(serial_seconds, 6),
        "serial_queries_per_second": round(N_QUERIES / serial_seconds, 3),
        "serial_oracle_chunk": ORACLE_CHUNK,
        "chunks": s["chunks"],
        "leases": s["leases"],
        "revocations": s["revocations"],
        "duplicate_results_dropped": s["duplicate_results_dropped"],
        "bit_identical": identical,
        "note": (
            "localhost workers share the host's cores with the "
            "coordinator, so on few-core hosts the campaign rate "
            "measures protocol+merge overhead against the serial "
            "oracle, not multi-machine speedup"
        ),
    }
    _merge_json(
        {
            "benchmark": "million_query",
            "workload": "Hybrid-NN TNN distributed campaign",
            "n_points_per_dataset": N_POINTS,
            "page_capacity": PAGE_CAPACITY,
            "headline": headline,
            "headline_bit_identical": identical,
        }
    )
    record_experiment(
        "million_query",
        format_table(
            ["cell", "queries", "workers", "qps", "bit-identical"],
            [
                [
                    "campaign",
                    str(N_QUERIES),
                    str(WORKERS),
                    f"{s['queries_per_second']:.0f}",
                    str(identical),
                ],
                [
                    "serial oracle",
                    str(N_QUERIES),
                    "0",
                    f"{N_QUERIES / serial_seconds:.0f}",
                    "-",
                ],
            ],
            title=(
                f"[million_query] {N_QUERIES}-query Hybrid-TNN campaign "
                f"over {WORKERS} localhost workers ({cores}-core host)"
            ),
        ),
    )
    assert identical, "the distributed campaign diverged from the oracle"
    assert s["mode"] == "distributed"


def test_worker_scaling_curve(record_experiment):
    env, workload = _build(CURVE_QUERIES)
    algo = HybridNN()
    with kernels.use_kernels(True):
        t0 = time.perf_counter()
        want = SharedScanRunner(env, workload, workers=0).run_algorithm(
            algo, record_log=False
        )
        serial_seconds = time.perf_counter() - t0

    curve = [
        {
            "workers": 0,
            "mode": "serial",
            "wall_seconds": round(serial_seconds, 6),
            "queries_per_second": round(CURVE_QUERIES / serial_seconds, 3),
            "bit_identical": True,
        }
    ]
    all_identical = True
    for n in (1, 2, 4):
        with kernels.use_kernels(True):
            out = QueryEngine(env).run_campaign(
                workload, algo, spawn_workers=n, config=_config()
            )
        identical = out.results == want
        all_identical = all_identical and identical
        curve.append(
            {
                "workers": n,
                "mode": out.stats["mode"],
                "wall_seconds": out.stats["wall_seconds"],
                "queries_per_second": out.stats["queries_per_second"],
                "bit_identical": identical,
            }
        )

    _merge_json(
        {
            "scaling": {
                "n_queries": CURVE_QUERIES,
                "host_cores": os.cpu_count() or 1,
                "curve": curve,
            },
            "scaling_bit_identical": all_identical,
        }
    )
    record_experiment(
        "million_query_scaling",
        format_table(
            ["workers", "mode", "wall (s)", "qps", "bit-identical"],
            [
                [
                    str(c["workers"]),
                    c["mode"],
                    f"{c['wall_seconds']:.2f}",
                    f"{c['queries_per_second']:.0f}",
                    str(c["bit_identical"]),
                ]
                for c in curve
            ],
            title=(
                f"[million_query] worker scaling at {CURVE_QUERIES} "
                "queries (localhost workers share the host's cores)"
            ),
        ),
    )
    assert all_identical, "a scaling-curve campaign diverged from the oracle"


def test_chaos_kill_cell(record_experiment):
    """One worker hard-exits after its first streamed chunk; a healthy
    sibling absorbs the resharded remainder.  Same bit-identity gate."""
    env, workload = _build(CURVE_QUERIES)
    algo = HybridNN()
    with kernels.use_kernels(True):
        want = SharedScanRunner(env, workload, workers=0).run_algorithm(
            algo, record_log=False
        )
        t0 = time.perf_counter()
        out = QueryEngine(env).run_campaign(
            workload,
            algo,
            spawn_workers=2,
            config=_config(reshard_backoff=0.05),
            chaos_specs=["seed=17,kill_after_chunks=1", None],
        )
        dt = time.perf_counter() - t0

    s = out.stats
    identical = out.results == want
    kill_fired = s["workers_lost"] >= 1
    _merge_json(
        {
            "chaos": {
                "n_queries": CURVE_QUERIES,
                "workers": 2,
                "injector": "seed=17,kill_after_chunks=1",
                "kill_fired": kill_fired,
                "workers_lost": s["workers_lost"],
                "revocations": s["revocations"],
                "reshards": s["reshards"],
                "stale_chunks_rejected": s["stale_chunks_rejected"],
                "duplicate_results_dropped": s["duplicate_results_dropped"],
                "recovered_seconds": round(dt, 6),
                "mode": s["mode"],
            },
            "chaos_bit_identical": bool(identical and kill_fired),
        }
    )
    record_experiment(
        "million_query_chaos",
        format_table(
            ["kill fired", "revocations", "mode", "bit-identical", "s"],
            [
                [
                    str(kill_fired),
                    str(s["revocations"]),
                    s["mode"],
                    str(identical),
                    f"{dt:.2f}",
                ]
            ],
            title=(
                "[million_query] worker hard-killed mid-shard, "
                "lease revocation + resharding recovery"
            ),
        ),
    )
    assert kill_fired, "the fault injector never killed the worker"
    assert identical, "the recovered campaign diverged from the oracle"
