"""Ablation — wireless page loss.

The paper assumes a lossless channel.  This ablation injects i.i.d. page
loss and measures how Double-NN's two metrics degrade: every lost page
costs its listening energy *and* a wait for the next replica, so access
time degrades superlinearly while tune-in grows roughly like 1/(1 - rate).
"""

import random

from repro.broadcast import (
    BroadcastChannel,
    BroadcastProgram,
    ChannelTuner,
    PageLossModel,
    SystemParameters,
)
from repro.client import BroadcastNNSearch
from repro.datasets import sized_uniform
from repro.geometry import Point
from repro.rtree import str_pack
from repro.sim import format_table
from repro.sim.experiments import _scaled, experiment_scale, queries_per_config

LOSS_RATES = (0.0, 0.1, 0.2, 0.4)


def _measure():
    params = SystemParameters()
    n = _scaled(10_000, experiment_scale())
    pts = sized_uniform(n, seed=1)
    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    program = BroadcastProgram(tree, params)
    rng = random.Random(2)
    queries = [
        Point(rng.uniform(0, 39_000), rng.uniform(0, 39_000))
        for _ in range(queries_per_config())
    ]
    out = {}
    for rate in LOSS_RATES:
        access = tunein = 0.0
        for i, q in enumerate(queries):
            loss = PageLossModel(rate=rate, seed=i) if rate else None
            tuner = ChannelTuner(BroadcastChannel(program, phase=i * 7.0), loss=loss)
            search = BroadcastNNSearch(tree, tuner, q)
            search.run_to_completion()
            access += tuner.now
            tunein += tuner.pages_downloaded
        out[rate] = (access / len(queries), tunein / len(queries))
    return out


def test_loss_ablation(benchmark, record_experiment):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = [
        [f"{rate:.0%}", f"{acc:.0f}", f"{ti:.1f}"]
        for rate, (acc, ti) in results.items()
    ]
    record_experiment(
        "ablation_loss",
        format_table(
            ["loss rate", "NN access (pages)", "NN tune-in (pages)"],
            rows,
            title="[ablation] page loss on one broadcast NN search",
        ),
    )
    # Both metrics must degrade monotonically with loss.
    accs = [results[r][0] for r in LOSS_RATES]
    tis = [results[r][1] for r in LOSS_RATES]
    assert accs == sorted(accs)
    assert tis == sorted(tis)
    # Tune-in inflation tracks the retry factor 1/(1 - rate) loosely.
    assert tis[-1] / tis[0] > 1.2
