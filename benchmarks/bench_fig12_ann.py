"""Figure 12 — the ANN optimisation versus exact NN in the estimate phase.

Paper claims reproduced here:

* equal-size datasets, factor = 1: ANN cuts total tune-in by ~11-20%
  for both Window-Based-TNN and Double-NN (Fig 12(a));
* with unequal densities, the density-aware alpha (exact on the sparse
  dataset) still reduces tune-in in both sweep directions (Fig 12(b)/(c));
* the reduction carries over to the skewed CITY/POST-like datasets across
  all four page capacities (Fig 12(d)).
"""

from repro.sim import experiments as exp


def _run(benchmark, record_experiment, fn, experiment_id):
    series = benchmark.pedantic(fn, rounds=1, iterations=1)
    record_experiment(experiment_id, series.render())
    return series


def _mean(xs):
    return sum(xs) / len(xs)


def test_fig12a(benchmark, record_experiment):
    """Equal sizes, ANN(factor=1) vs eNN."""
    series = _run(benchmark, record_experiment, exp.fig12a, "fig12a")
    # ANN must reduce mean tune-in for both algorithms.
    assert _mean(series.series["window-ANN"]) < _mean(series.series["window-eNN"])
    assert _mean(series.series["double-ANN"]) < _mean(series.series["double-eNN"])


def test_fig12b(benchmark, record_experiment):
    """density(S) > density(R): alpha = 0 on the sparse R."""
    series = _run(benchmark, record_experiment, exp.fig12b, "fig12b")
    assert _mean(series.series["window-ANN"]) <= _mean(series.series["window-eNN"]) * 1.02
    assert _mean(series.series["double-ANN"]) <= _mean(series.series["double-eNN"]) * 1.02


def test_fig12c(benchmark, record_experiment):
    """density(R) > density(S): alpha = 0 on the sparse S."""
    series = _run(benchmark, record_experiment, exp.fig12c, "fig12c")
    assert _mean(series.series["window-ANN"]) <= _mean(series.series["window-eNN"]) * 1.02
    assert _mean(series.series["double-ANN"]) <= _mean(series.series["double-eNN"]) * 1.02


def test_fig12d(benchmark, record_experiment):
    """CITY-like / POST-like datasets, page capacities 64..512."""
    series = _run(benchmark, record_experiment, exp.fig12d, "fig12d")
    assert series.x_values == [64, 128, 256, 512]
    # Larger pages mean fewer pages overall: monotone decreasing columns.
    for values in series.series.values():
        assert values[0] > values[-1]
    assert _mean(series.series["window-ANN"]) <= _mean(series.series["window-eNN"]) * 1.02
