"""Shared helpers for the benchmark suite.

Every figure/table benchmark runs the corresponding canned experiment once
under pytest-benchmark timing, prints the regenerated rows/series (visible
with ``-s`` or in captured output) and persists them under
``benchmarks/results/`` so EXPERIMENTS.md can reference a concrete run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_experiment(results_dir):
    """Return a callback that prints and saves a rendered experiment."""

    def _record(experiment_id: str, rendered: str) -> None:
        print()
        print(rendered)
        (results_dir / f"{experiment_id}.txt").write_text(rendered + "\n")

    return _record
