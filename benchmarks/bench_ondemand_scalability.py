"""Baseline — broadcast vs on-demand access as the audience grows.

Section 2.1 / the introduction's motivation: on-demand access wins for a
handful of clients, but its server saturates; broadcast serves an
arbitrary number of clients at a constant (higher) latency.  This bench
finds the crossover population.
"""

from repro.core import TNNEnvironment
from repro.datasets import sized_uniform
from repro.engine import QueryEngine
from repro.geometry import Point
from repro.ondemand import OnDemandParameters, OnDemandTNN
from repro.sim import format_table
from repro.sim.experiments import _scaled, experiment_scale

CLIENTS = (1, 100, 1_000, 5_000, 9_000, 9_900)


def _measure():
    n = _scaled(10_000, experiment_scale())
    env = TNNEnvironment.build(sized_uniform(n, seed=1), sized_uniform(n, seed=2))
    p = Point(19_500.0, 19_500.0)
    # Broadcast side goes through the engine facade (default: Double-NN).
    broadcast = QueryEngine(env).tnn(p, phase_s=13.0, phase_r=29.0)
    server = OnDemandTNN(
        env, OnDemandParameters(query_rate=0.000025, service_pages=4.0)
    )
    rows = {}
    for c in CLIENTS:
        rows[c] = server.run(p, n_clients=c).access_time
    return broadcast.access_time, rows


def test_ondemand_scalability(benchmark, record_experiment):
    broadcast_access, ondemand = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = [
        [c, f"{acc:.0f}", f"{broadcast_access:.0f}"]
        for c, acc in ondemand.items()
    ]
    record_experiment(
        "ondemand_scalability",
        format_table(
            ["clients", "on-demand access", "broadcast access"],
            rows,
            title="[baseline] access time vs concurrent clients",
        ),
    )
    values = list(ondemand.values())
    # On-demand latency grows monotonically and diverges near saturation.
    assert values == sorted(values)
    assert values[-1] > 10 * values[0]
    # Broadcast is flat: the same number regardless of audience size, and
    # it eventually beats the saturating server.
    assert values[-1] > broadcast_access or values[0] < broadcast_access
