"""Air-index backend matrix: access time / tune-in / energy per layout.

One sweep over the :class:`~repro.broadcast.layout.BroadcastLayout` seam:
every registered backend family (R-tree interleaved, distributed indexing,
fixed grid, quadtree, skew-aware broadcast disk) serves the same mixed
NN/kNN/range/window client batches under two query populations — uniform
over the region, and skewed (~80% of queries inside the broadcast disk's
hot region).  Per cell the harness records mean access time and tune-in
(pages), the two-state radio energy estimate, the execution path the
clients actually took (columnar arena vs heap fallback), and a
``bit_identical`` verdict of the shared-scan batch against the per-query
oracle — the matrix is worthless if any backend's batch path diverges.

Expected shape, not asserted: the broadcast-disk schedule wins access time
on the skewed population and loses on the uniform one (cold pages wait out
its longer effective cycle); distributed indexing trades access time for
the shortest cycle; tune-in depends only on index pruning quality, so it
barely moves across schedules of the same index.

Writes ``BENCH_air_index_matrix.json`` at the repository root.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import statistics

from repro.broadcast import EnergyModel, SystemParameters
from repro.broadcast.layout import (
    BroadcastDiskSchedule,
    GridAirIndexLayout,
    QuadtreeAirIndexLayout,
    RTreeInterleavedLayout,
)
from repro.core.environment import TNNEnvironment
from repro.datasets import sized_uniform
from repro.datasets.synthetic import PAPER_REGION_SIDE
from repro.engine import (
    KNNRequest,
    NNRequest,
    QueryEngine,
    RangeRequest,
    WindowRequest,
)
from repro.geometry import Point, Rect, kernels
from repro.sim import format_table
from repro.sim.experiments import SweepCache

N_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", 120))
N_POINTS = int(os.environ.get("REPRO_BENCH_POINTS", 6_000))
PAGE_CAPACITY = int(os.environ.get("REPRO_BENCH_CAPACITY", 64))

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_air_index_matrix.json"

#: The skewed population's hot region: the bottom-left ~4% of the paper's
#: region, also the broadcast-disk schedule's fast-disk membership test.
HOT_REGION = Rect(0.0, 0.0, 0.2 * PAPER_REGION_SIDE, 0.2 * PAPER_REGION_SIDE)
#: Fraction of skewed-population queries drawn inside the hot region.
HOT_FRACTION = 0.8

BACKENDS = {
    "rtree": RTreeInterleavedLayout(),
    "rtree-distributed": RTreeInterleavedLayout(distributed_levels=2),
    "grid": GridAirIndexLayout(),
    "quadtree": QuadtreeAirIndexLayout(),
    "disk[rtree]": BroadcastDiskSchedule(hot_region=HOT_REGION),
}


def _population(env, name: str, n: int, seed: int):
    """Mixed-request batch for one population over one environment."""
    rng = random.Random(seed)

    def draw_point():
        if name == "skewed" and rng.random() < HOT_FRACTION:
            return Point(
                rng.uniform(HOT_REGION.xmin, HOT_REGION.xmax),
                rng.uniform(HOT_REGION.ymin, HOT_REGION.ymax),
            )
        return env.random_query_point(rng)

    out = []
    for i in range(n):
        p = draw_point()
        channel = "s" if rng.random() < 0.5 else "r"
        program = env.s_program if channel == "s" else env.r_program
        phase = rng.uniform(0, program.cycle_length)
        kind = i % 4
        if kind == 0:
            out.append(NNRequest(p, phase, channel))
        elif kind == 1:
            out.append(KNNRequest(p, 1 + i % 4, phase, channel))
        elif kind == 2:
            out.append(RangeRequest(p, rng.uniform(100, 2500), phase, channel))
        else:
            q = draw_point()
            out.append(
                WindowRequest(
                    Rect(min(p.x, q.x), min(p.y, q.y), max(p.x, q.x), max(p.y, q.y)),
                    phase,
                    channel,
                )
            )
    return out


def _oracle(engine, req):
    if isinstance(req, NNRequest):
        return engine.nn(req.point, req.phase, req.channel)
    if isinstance(req, KNNRequest):
        return engine.knn(req.point, req.k, req.phase, req.channel)
    if isinstance(req, RangeRequest):
        return engine.range(req.center, req.radius, req.phase, req.channel)
    return engine.window(req.window, req.phase, req.channel)


def _execution_mode(engine) -> str:
    """Which client queue backend this environment's searches get."""
    probe = engine._build(NNRequest(Point(1.0, 1.0)))
    return "arena" if probe._frontier is not None else "heap"


def run_matrix() -> dict:
    params = SystemParameters(page_capacity=PAGE_CAPACITY)
    energy = EnergyModel()
    cache = SweepCache()
    s_points = sized_uniform(N_POINTS, seed=1)
    r_points = sized_uniform(N_POINTS, seed=2)

    rows = []
    with kernels.use_kernels(True):
        for backend, layout in BACKENDS.items():
            env = cache.build(s_points, r_points, params=params, layout=layout)
            engine = QueryEngine(env)
            mode = _execution_mode(engine)
            for population in ("uniform", "skewed"):
                requests = _population(env, population, N_QUERIES, seed=7)
                got = engine.run_many(requests)
                want = [_oracle(engine, req) for req in requests]
                rows.append(
                    {
                        "backend": backend,
                        "population": population,
                        "execution": mode,
                        "has_cyclic_order": layout.has_cyclic_order,
                        "cycle_length": env.s_program.cycle_length,
                        "access_time_pages": round(
                            statistics.fmean(a.access_time for a in got), 2
                        ),
                        "tune_in_pages": round(
                            statistics.fmean(a.tune_in for a in got), 2
                        ),
                        "energy_joules": round(
                            statistics.fmean(
                                energy.joules(a.tune_in, a.access_time)
                                for a in got
                            ),
                            6,
                        ),
                        "bit_identical": got == want,
                    }
                )

    return {
        "benchmark": "air_index_matrix",
        "workload": (
            "mixed NN/kNN/range/window batches per backend x query population"
        ),
        "n_queries": N_QUERIES,
        "n_points_per_dataset": N_POINTS,
        "page_capacity": PAGE_CAPACITY,
        "hot_region": list(HOT_REGION),
        "hot_fraction": HOT_FRACTION,
        "rows": rows,
        "bit_identical": all(r["bit_identical"] for r in rows),
    }


def test_air_index_matrix(record_experiment):
    payload = run_matrix()
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    table = format_table(
        ["backend", "population", "exec", "cycle", "access", "tune-in", "mJ"],
        [
            [
                r["backend"],
                r["population"],
                r["execution"],
                r["cycle_length"],
                f"{r['access_time_pages']:.0f}",
                f"{r['tune_in_pages']:.1f}",
                f"{1000 * r['energy_joules']:.2f}",
            ]
            for r in payload["rows"]
        ],
        title="[matrix] air-index backends x query populations",
    )
    record_experiment("air_index_matrix", table)

    assert payload["bit_identical"], [
        (r["backend"], r["population"])
        for r in payload["rows"]
        if not r["bit_identical"]
    ]
    by_backend = {r["backend"] for r in payload["rows"]}
    assert len(by_backend) >= 3
    assert {r["population"] for r in payload["rows"]} == {"uniform", "skewed"}
    # Both client execution paths must be represented in the matrix.
    assert {r["execution"] for r in payload["rows"]} == {"arena", "heap"}


if __name__ == "__main__":
    print(json.dumps(run_matrix(), indent=2))
