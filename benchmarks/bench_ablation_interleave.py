"""Ablation — the (1, m) replication factor.

The broadcast program defaults to Imielinski et al.'s optimum
``m* = sqrt(data_pages / index_pages)``.  This ablation sweeps m with
**data retrieval enabled** (the trade-off only exists when queries also
wait for data pages) and confirms the access-time U-shape: too few index
replicas make clients wait for the next index copy; too many inflate the
cycle and push the data pages apart.
"""

from repro.broadcast import BroadcastProgram, optimal_m
from repro.core import DoubleNN, TNNEnvironment
from repro.datasets import sized_uniform
from repro.sim import ExperimentRunner, QueryWorkload, format_table
from repro.sim.experiments import _scaled, experiment_scale, queries_per_config

M_SWEEP = (1, 2, 4, 8, 16, 32, 64, 128)


def _measure():
    n = _scaled(10_000, experiment_scale())
    s_pts = sized_uniform(n, seed=1)
    r_pts = sized_uniform(n, seed=2)
    out = {}
    for m in M_SWEEP:
        env = TNNEnvironment.build(s_pts, r_pts, m=m)
        runner = ExperimentRunner(env, QueryWorkload(queries_per_config(), seed=3))
        algo = DoubleNN(include_data_retrieval=True)
        stats = runner.run({"double-nn": algo})["double-nn"]
        out[m] = stats.access_time.mean
    # What would the auto-selected m have been?
    env = TNNEnvironment.build(s_pts, r_pts)
    auto_m = env.s_program.m
    return out, auto_m


def test_interleave_ablation(benchmark, record_experiment):
    results, auto_m = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = [[m, f"{v:.0f}"] for m, v in results.items()]
    record_experiment(
        "ablation_interleave",
        format_table(
            ["m", "access time (pages)"],
            rows,
            title=f"[ablation] (1, m) replication factor (auto m* = {auto_m})",
        ),
    )
    # The extremes must both lose to the best interior choice (U-shape).
    best = min(results.values())
    assert results[1] > best
    assert results[M_SWEEP[-1]] > best


def test_optimal_m_near_sweep_minimum(benchmark):
    """The analytic m* should land near the empirical sweep minimum."""
    results, auto_m = benchmark.pedantic(_measure, rounds=1, iterations=1)
    best_m = min(results, key=results.get)
    # Within a factor of 4 on the geometric m grid.
    assert best_m / 4 <= auto_m <= best_m * 4
