"""Benchmarks for the future-work extensions (Section 7 of the paper).

Not figures from the paper — these quantify the generalisations the paper
only sketches: chain TNN over k channels (plain vs Hybrid-style cascade
re-steering), and the cost growth of top-k TNN with k.
"""

import random

from repro.core import TNNEnvironment
from repro.datasets import uniform
from repro.extensions import ChainEnvironment, ChainTNN, HybridChainTNN, TopKTNN
from repro.geometry import Rect
from repro.sim import format_table
from repro.sim.experiments import _scaled, experiment_scale, queries_per_config

REGION = Rect(0.0, 0.0, 39_000.0, 39_000.0)


def _measure_chain():
    scale = experiment_scale()
    sizes = [_scaled(2_000, scale), _scaled(20_000, scale), _scaled(20_000, scale)]
    env = ChainEnvironment.build(
        [uniform(n, seed=i + 1, region=REGION) for i, n in enumerate(sizes)]
    )
    rng = random.Random(5)
    queries = [
        (env.random_query_point(rng), env.random_phases(rng))
        for _ in range(queries_per_config())
    ]
    out = {}
    for name, algo in (("chain (all-from-p)", ChainTNN()), ("hybrid-chain", HybridChainTNN())):
        tunein = radius = 0.0
        for p, phases in queries:
            result = algo.run(env, p, phases)
            tunein += result.tune_in_time
            radius += result.radius
        n = len(queries)
        out[name] = (tunein / n, radius / n)
    return out


def test_chain_vs_hybrid_chain(benchmark, record_experiment):
    results = benchmark.pedantic(_measure_chain, rounds=1, iterations=1)
    rows = [
        [name, f"{ti:.1f}", f"{rad:.0f}"]
        for name, (ti, rad) in results.items()
    ]
    record_experiment(
        "ext_chain",
        format_table(
            ["estimate strategy", "tune-in (pages)", "mean radius"],
            rows,
            title="[extension] 3-hop chain TNN: plain vs cascade re-steering",
        ),
    )
    # Cascade re-steering tightens the radius on unbalanced chains.
    assert results["hybrid-chain"][1] <= results["chain (all-from-p)"][1] * 1.02


def _measure_topk():
    scale = experiment_scale()
    n = _scaled(10_000, scale)
    env = TNNEnvironment.build(
        uniform(n, seed=1, region=REGION), uniform(n, seed=2, region=REGION)
    )
    rng = random.Random(7)
    queries = [
        (env.random_query_point(rng), env.random_phases(rng))
        for _ in range(queries_per_config())
    ]
    out = {}
    for k in (1, 2, 4, 8, 16):
        algo = TopKTNN(k)
        tunein = 0.0
        for p, phases in queries:
            tunein += algo.run(env, p, *phases).tune_in_time
        out[k] = tunein / len(queries)
    return out


def test_topk_cost_growth(benchmark, record_experiment):
    results = benchmark.pedantic(_measure_topk, rounds=1, iterations=1)
    rows = [[k, f"{ti:.1f}"] for k, ti in results.items()]
    record_experiment(
        "ext_topk",
        format_table(
            ["k", "tune-in (pages)"],
            rows,
            title="[extension] top-k TNN tune-in vs k",
        ),
    )
    # More answers require a larger radius: cost is monotone in k...
    values = list(results.values())
    assert values[0] <= values[-1]
    # ...but sublinear — k=16 must cost far less than 16x the k=1 query.
    assert values[-1] < 8 * values[0]
