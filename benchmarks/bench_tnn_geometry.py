"""Geometry kernels — scalar vs vectorised A/B on the TNN hot path.

Times the Hybrid-NN Case-3 hot loop (an exact NN anchor in R, then a
best-first transitive NN over S with the Lemma 1 bound) on a seeded
workload, once with the scalar geometry (``kernels.use_kernels(False)`` —
the seed implementation) and once with the vectorised kernels, interleaved
best-of-``REPRO_BENCH_ROUNDS`` on the same host.  Asserts the two paths
return **bit-identical** answers and writes ``BENCH_tnn_geometry.json`` at
the repository root.

Defaults match the paper's largest sweep size (30,000 points per dataset,
1,000 queries) on the 512-byte Table-2 page geometry (leaf capacity 51,
fanout 28), where the kernel fan-outs are realistic.  CI's smoke run
shrinks ``REPRO_BENCH_QUERIES`` / ``REPRO_BENCH_POINTS`` to stay under a
minute; the committed JSON comes from a full-size run, which must show the
>= 2x speedup (``REPRO_BENCH_MIN_SPEEDUP`` gates it when set).
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import time

from repro.datasets import PAPER_REGION_SIDE, sized_uniform
from repro.geometry import Point, kernels
from repro.rtree import build_rtree
from repro.rtree.traversal import best_first_nn, transitive_nn
from repro.sim import format_table

N_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", 1_000))
N_POINTS = int(os.environ.get("REPRO_BENCH_POINTS", 30_000))
LEAF_CAPACITY = int(os.environ.get("REPRO_BENCH_LEAF", 51))
FANOUT = int(os.environ.get("REPRO_BENCH_FANOUT", 28))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", 4))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", 0.0))

JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_tnn_geometry.json"


def _build():
    s_tree = build_rtree(sized_uniform(N_POINTS, seed=1), LEAF_CAPACITY, FANOUT)
    r_tree = build_rtree(sized_uniform(N_POINTS, seed=2), LEAF_CAPACITY, FANOUT)
    rng = random.Random(0)
    queries = [
        Point(rng.uniform(0, PAPER_REGION_SIDE), rng.uniform(0, PAPER_REGION_SIDE))
        for _ in range(N_QUERIES)
    ]
    return s_tree, r_tree, queries


def _workload(s_tree, r_tree, queries):
    """One pass of the seeded TNN/Hybrid-NN hot path."""
    out = []
    for q in queries:
        r_anchor, d_anchor = best_first_nn(r_tree, q)
        out.append((r_anchor, d_anchor))
        out.append(transitive_nn(s_tree, q, r_anchor))
    return out


def test_tnn_geometry_kernel_speedup(benchmark, record_experiment):
    s_tree, r_tree, queries = _build()

    def measure():
        # Warm both paths, then interleave best-of-N so neither side owns
        # a quieter stretch of the host.
        with kernels.use_kernels(False):
            scalar_res = _workload(s_tree, r_tree, queries)
        with kernels.use_kernels(True):
            kernel_res = _workload(s_tree, r_tree, queries)
        scalar_best = kernel_best = None
        for _ in range(ROUNDS):
            with kernels.use_kernels(False):
                t0 = time.perf_counter()
                scalar_res = _workload(s_tree, r_tree, queries)
                dt = time.perf_counter() - t0
                scalar_best = dt if scalar_best is None else min(scalar_best, dt)
            with kernels.use_kernels(True):
                t0 = time.perf_counter()
                kernel_res = _workload(s_tree, r_tree, queries)
                dt = time.perf_counter() - t0
                kernel_best = dt if kernel_best is None else min(kernel_best, dt)
        return scalar_res, kernel_res, scalar_best, kernel_best

    scalar_res, kernel_res, scalar_s, kernel_s = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    # The acceptance bar: answers are bit-identical across paths.
    assert scalar_res == kernel_res
    speedup = scalar_s / kernel_s

    payload = {
        "benchmark": "tnn_geometry",
        "workload": "NN anchor in R + transitive NN in S (Hybrid-NN Case 3)",
        "n_queries": N_QUERIES,
        "n_points_per_dataset": N_POINTS,
        "leaf_capacity": LEAF_CAPACITY,
        "fanout": FANOUT,
        "protocol": f"interleaved best-of-{ROUNDS}, same host",
        "scalar_seconds": round(scalar_s, 6),
        "kernel_seconds": round(kernel_s, 6),
        "speedup": round(speedup, 3),
        "bit_identical": scalar_res == kernel_res,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    record_experiment(
        "tnn_geometry",
        format_table(
            ["queries", "points", "leaf/fanout", "scalar (s)", "kernel (s)", "speedup"],
            [[
                N_QUERIES,
                N_POINTS,
                f"{LEAF_CAPACITY}/{FANOUT}",
                f"{scalar_s:.3f}",
                f"{kernel_s:.3f}",
                f"{speedup:.2f}x",
            ]],
            title="[tnn_geometry] scalar vs vectorised kernels, TNN hot path",
        ),
    )
    assert speedup >= MIN_SPEEDUP
