"""Loss resilience — degradation curves and chaos recovery.

The fault-tolerance PR's recording harness.  Two experiments write
``BENCH_loss_resilience.json`` at the repository root:

* **Degradation curves** — a Hybrid-TNN workload runs on the shared-scan
  fast path under every registered channel fault family: i.i.d. loss at
  increasing rates, Gilbert–Elliott fades at increasing burstiness
  (mean fade length ``1 / p_bad_good``) and detected page corruption.
  Mean access time and tune-in are recorded per configuration, and every
  lossy run is gated **bit-identical** against the per-query oracle —
  the whole point of the loss-aware arena is that robustness no longer
  costs the fast path.
* **Chaos campaign** — the same workload fans out over a supervised
  worker pool while the chaos hook hard-kills one worker mid-campaign;
  the supervisor's rebuild/reshard/retry path must deliver the same
  ``TNNResult`` stream as the unsupervised serial run.

Scaled by ``REPRO_BENCH_QUERIES`` / ``REPRO_BENCH_POINTS`` for CI smoke.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.broadcast import (
    GilbertElliottLossModel,
    PageCorruptionModel,
    PageLossModel,
    SystemParameters,
)
from repro.core.environment import TNNEnvironment
from repro.core.hybrid import HybridNN
from repro.datasets import sized_uniform
from repro.engine import QueryWorkload, SharedScanRunner, execute_tnn_batch
from repro.geometry import kernels
from repro.sim import format_table

N_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", 200))
N_POINTS = int(os.environ.get("REPRO_BENCH_POINTS", 8_000))
PAGE_CAPACITY = int(os.environ.get("REPRO_BENCH_CAPACITY", 64))

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_loss_resilience.json"

#: The swept channel configurations: (label, fault model or None).
#: Burstiness rises as ``p_bad_good`` falls — the mean fade stretches
#: from 2.5 to 10 slots at a fixed in-fade loss rate.
_CONFIGS = [
    ("lossless", None),
    ("iid rate=0.05", PageLossModel(rate=0.05, seed=17)),
    ("iid rate=0.15", PageLossModel(rate=0.15, seed=17)),
    ("iid rate=0.30", PageLossModel(rate=0.30, seed=17)),
    (
        "ge fade~2.5",
        GilbertElliottLossModel(
            bad_rate=0.6, p_good_bad=0.05, p_bad_good=0.4, seed=17
        ),
    ),
    (
        "ge fade~5",
        GilbertElliottLossModel(
            bad_rate=0.6, p_good_bad=0.05, p_bad_good=0.2, seed=17
        ),
    ),
    (
        "ge fade~10",
        GilbertElliottLossModel(
            bad_rate=0.6, p_good_bad=0.05, p_bad_good=0.1, seed=17
        ),
    ),
    ("corruption rate=0.10", PageCorruptionModel(rate=0.10, seed=17)),
]


def _build():
    env = TNNEnvironment.build(
        sized_uniform(N_POINTS, seed=1),
        sized_uniform(N_POINTS, seed=2),
        params=SystemParameters(page_capacity=PAGE_CAPACITY),
    )
    workload = QueryWorkload(N_QUERIES, seed=5)
    return env, workload.queries(env)


def _merge_json(update: dict) -> None:
    data = {}
    if JSON_PATH.exists():
        try:
            data = json.loads(JSON_PATH.read_text())
        except (ValueError, OSError):  # pragma: no cover - defensive
            data = {}
    data.update(update)
    # The CI gate reads the top-level flag: both experiments must hold.
    data["bit_identical"] = bool(
        data.get("curves_bit_identical", True)
        and data.get("chaos_bit_identical", True)
    )
    JSON_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_loss_degradation_curves(benchmark, record_experiment):
    env, queries = _build()
    algo = HybridNN()

    def measure():
        curves = []
        all_identical = True
        with kernels.use_kernels(True):
            for label, loss in _CONFIGS:
                env.loss = loss  # tuners() reads the field per query
                t0 = time.perf_counter()
                got = execute_tnn_batch(env, algo, queries)
                dt = time.perf_counter() - t0
                want = [algo.run(env, q, ps, pr) for q, ps, pr in queries]
                identical = got == want
                all_identical = all_identical and identical
                n = len(got)
                curves.append(
                    {
                        "config": label,
                        "mean_access_time": sum(r.access_time for r in got)
                        / n,
                        "mean_tune_in": sum(
                            r.tune_in_s + r.tune_in_r for r in got
                        )
                        / n,
                        "shared_scan_seconds": round(dt, 6),
                        "bit_identical": identical,
                    }
                )
        env.loss = None
        return curves, all_identical

    curves, all_identical = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    _merge_json(
        {
            "benchmark": "loss_resilience",
            "workload": "Hybrid-NN TNN queries, faulty channel sweep",
            "n_queries": N_QUERIES,
            "n_points_per_dataset": N_POINTS,
            "page_capacity": PAGE_CAPACITY,
            "curves": curves,
            "curves_bit_identical": all_identical,
        }
    )

    record_experiment(
        "loss_resilience",
        format_table(
            ["channel", "mean access", "mean tune-in", "bit-identical"],
            [
                [
                    c["config"],
                    f"{c['mean_access_time']:.0f}",
                    f"{c['mean_tune_in']:.1f}",
                    str(c["bit_identical"]),
                ]
                for c in curves
            ],
            title=(
                "[loss_resilience] shared-scan fast path under channel "
                f"faults, {N_QUERIES}-query Hybrid-TNN"
            ),
        ),
    )

    assert all_identical, "a lossy fast-path run diverged from the oracle"
    # Degradation is monotone along the i.i.d. rate axis and along the
    # burstiness axis (longer fades retry more replicas).
    by = {c["config"]: c for c in curves}
    iid = [
        by[k]["mean_access_time"]
        for k in ("lossless", "iid rate=0.05", "iid rate=0.15", "iid rate=0.30")
    ]
    assert iid == sorted(iid)
    ge_tunein = [
        by[k]["mean_tune_in"]
        for k in ("ge fade~2.5", "ge fade~5", "ge fade~10")
    ]
    assert ge_tunein[-1] > by["lossless"]["mean_tune_in"]


def test_chaos_worker_kill_campaign(
    record_experiment, tmp_path, monkeypatch
):
    """Kill one pool worker mid-campaign on a bursty channel: the shard
    supervisor retries/reshards and the merged stream stays bit-identical
    to the unsupervised serial run."""
    env, _ = _build()
    env.loss = GilbertElliottLossModel(
        bad_rate=0.6, p_good_bad=0.05, p_bad_good=0.2, seed=17
    )
    workload = QueryWorkload(N_QUERIES, seed=5)
    algo = HybridNN()
    with kernels.use_kernels(True):
        want = SharedScanRunner(env, workload, workers=0).run_algorithm(algo)

    marker = tmp_path / "chaos.marker"
    marker.write_text("armed")
    monkeypatch.setenv("REPRO_CHAOS_KILL_SHARD", "0")
    monkeypatch.setenv("REPRO_CHAOS_MARKER", str(marker))
    monkeypatch.setenv("REPRO_SHARD_BACKOFF", "0.01")
    t0 = time.perf_counter()
    with kernels.use_kernels(True):
        got = SharedScanRunner(env, workload, workers=2).run_algorithm(algo)
    dt = time.perf_counter() - t0

    kill_fired = not marker.exists()
    identical = got == want
    _merge_json(
        {
            "chaos": {
                "workers": 2,
                "killed_shard": 0,
                "kill_fired": kill_fired,
                "recovered_seconds": round(dt, 6),
            },
            "chaos_bit_identical": bool(identical and kill_fired),
        }
    )
    record_experiment(
        "loss_resilience_chaos",
        format_table(
            ["workers", "kill fired", "bit-identical", "recovered (s)"],
            [["2", str(kill_fired), str(identical), f"{dt:.3f}"]],
            title=(
                "[loss_resilience] worker killed mid-campaign, supervised "
                "pool recovery"
            ),
        ),
    )
    assert kill_fired, "the chaos hook never killed a worker"
    assert identical, "the recovered campaign diverged from the serial run"
