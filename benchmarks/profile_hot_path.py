"""Per-phase time breakdown of the Hybrid-TNN hot path.

The shared-scan PR measured (informally) that ~75% of the 1,000-query
Hybrid-TNN workload at 64-byte pages is per-entry python queue work.  This
harness turns that claim into a recorded number, with two independent
timers over the same four phase buckets:

* **queue** — the arrival frontier / columnar arena and the heap mixin
  (`client/frontier.py`, `client/arrival_queue.py`): pushes, pops,
  head selection, prune-run consumption;
* **geometry** — the vectorised kernels and the scalar metrics
  (`geometry/`): bounds, leaf distances, certified estimates;
* **download** — broadcast arrival arithmetic and tuner accounting
  (`broadcast/`): page arithmetic, clock moves, reception logs;
* **phase_a** — the shared-scan executor's survivor handling
  (``_arena_phase_a`` and its row/store finishers): due assembly, keep
  classification, fallback dispatch, absorb-lane binning;
* **absorb** — the executor's absorb glue (``_absorb_*`` lanes and the
  lane marshalling helpers): kernel-input gathers, staging handoffs,
  witness/upper-bound mirror updates;
* **bookkeeping** — everything else on the hot path (`engine/` runner
  remainder, `client/search.py` absorb logic, `core/`, scheduler, numpy
  glue).

The node-store sub-buckets (phase_a / absorb) split what earlier
recordings lumped into bookkeeping, and the shared-scan path is measured
twice — with the global node store (default) and under
``REPRO_NO_NODE_STORE=1`` (the scalar row-loop oracle, i.e. the pre-store
implementation) — so the store's effect on each sub-bucket is recorded in
the same artifact.

The **wall timer** (primary, ``share`` in the JSON) wraps the bucket entry
points — frontier/arena methods, the public kernels, tuner accounting —
with ``perf_counter`` pairs and attributes *self time* to each bucket (a
nested wrapped call is credited to its own bucket and subtracted from its
caller's); whatever the wrappers never see is the bookkeeping remainder.
Tens of thousands of coarse wrapper crossings cost microseconds each, so
the timed run stays within a few percent of the uninstrumented wall-clock
recorded alongside it.

The **cProfile breakdown** (``profiled_share``) buckets every function's
self time by module path.  It is kept for cross-checking only: tracing
inflates python-call-heavy phases several-fold, so its shares overstate
queue/bookkeeping and understate the numpy kernels.

Both the per-query and the shared-scan paths are measured, so the
before/after of queue-floor work is recorded, not asserted.

Writes ``BENCH_profile_hot_path.json`` at the repository root.
"""

from __future__ import annotations

import contextlib
import cProfile
import gc
import json
import os
import pathlib
import pstats
import time

from repro.broadcast import (
    SystemParameters,
    available_fault_models,
    make_fault_model,
    make_layout,
)
from repro.core.environment import TNNEnvironment
from repro.core.hybrid import HybridNN
from repro.datasets import sized_uniform
from repro.engine import QueryWorkload, SharedScanRunner
from repro.geometry import kernels

N_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", 300))
N_POINTS = int(os.environ.get("REPRO_BENCH_POINTS", 30_000))
PAGE_CAPACITY = int(os.environ.get("REPRO_BENCH_CAPACITY", 64))
#: Air-index backend to profile (any repro.broadcast.layout registry name);
#: non-cyclic backends (rtree-distributed, disk) profile the heap-fallback
#: queue instead of the arena.
BACKEND = os.environ.get("REPRO_BENCH_BACKEND", "rtree")
#: Measured passes per configuration; the minimum-wall pass is recorded.
#: Single passes on shared vCPUs randomly absorb neighbour steal into
#: whichever phase was running — min-of-N keeps the least-perturbed run.
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", 3))

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_profile_hot_path.json"

#: Module-path fragments -> phase buckets, first match wins.
PHASES = (
    ("queue", ("client/frontier.py", "client/arrival_queue.py")),
    ("geometry", ("repro/geometry/",)),
    ("download", ("repro/broadcast/",)),
)

#: Executor function-name prefixes -> node-store sub-buckets (only
#: consulted for engine/shared_scan.py frames, before the module rules).
SUBBUCKET_PREFIXES = (
    ("phase_a", ("_arena_phase_a", "_phase_a_")),
    ("absorb", ("_absorb_", "_sync_lane", "_lane_")),
)

ALL_PHASES = ("queue", "geometry", "download", "phase_a", "absorb",
              "bookkeeping")


def _bucket(filename: str, funcname: str = "") -> str:
    path = filename.replace("\\", "/")
    if "engine/shared_scan.py" in path:
        for phase, prefixes in SUBBUCKET_PREFIXES:
            if funcname.startswith(prefixes):
                return phase
    for phase, fragments in PHASES:
        for fragment in fragments:
            if fragment in path:
                return phase
    return "bookkeeping"


def _phase_breakdown(profile: cProfile.Profile) -> dict:
    stats = pstats.Stats(profile)
    totals: dict = {phase: 0.0 for phase in ALL_PHASES}
    for (filename, _, funcname), (_, _, tottime, _, _) in stats.stats.items():
        totals[_bucket(filename, funcname)] += tottime
    profiled_total = sum(totals.values())
    shares = {
        phase: (round(t / profiled_total, 4) if profiled_total else 0.0)
        for phase, t in totals.items()
    }
    return {
        "profiled_seconds": {k: round(v, 6) for k, v in totals.items()},
        "profiled_share": shares,
    }


class _WallPhaseTimer:
    """Self-time bucket accumulator for coarse wrapper instrumentation.

    Each wrapped call pushes a child-time frame; on exit its elapsed time
    minus the time spent in *nested wrapped calls* is credited to its own
    bucket, and its full elapsed time is charged to the enclosing frame.
    Whatever no wrapper ever saw is the caller's (bookkeeping) remainder.
    """

    def __init__(self) -> None:
        self.totals = {
            "queue": 0.0, "geometry": 0.0, "download": 0.0,
            "phase_a": 0.0, "absorb": 0.0,
        }
        self._child = [0.0]  # child-time accumulator per active frame

    def wrap(self, fn, bucket: str):
        totals = self.totals
        child = self._child
        clock = time.perf_counter

        def wrapper(*args, **kwargs):
            t0 = clock()
            child.append(0.0)
            try:
                return fn(*args, **kwargs)
            finally:
                dt = clock() - t0
                totals[bucket] += dt - child.pop()
                child[-1] += dt

        wrapper.__wrapped__ = fn
        return wrapper

    def breakdown(self, wall: float) -> dict:
        seconds = dict(self.totals)
        seconds["bookkeeping"] = max(wall - sum(seconds.values()), 0.0)
        shares = {
            phase: (round(t / wall, 4) if wall else 0.0)
            for phase, t in seconds.items()
        }
        return {
            "timed_wall_seconds": round(wall, 6),
            "wall_seconds_by_phase": {k: round(v, 6) for k, v in seconds.items()},
            "share": shares,
        }


def _wrap_sites() -> list:
    """(holder, attribute, bucket) triples for the wall-clock wrappers.

    Coarse on purpose: bucket *entry points* are wrapped (frontier and
    arena methods, the public kernels, tuner accounting), never per-element
    helpers.  Overhead tracks the number of wrapper crossings — negligible
    for the batched shared-scan path, visible for the per-pop per-query
    path — and the timed wall-clock is recorded next to the uninstrumented
    one so that inflation is measured, not hidden.  Functions a module
    re-imported by name are patched at the importer too, or the wrapper
    would never see those calls.

    The executor's ``_serve_*_one`` drains count as **queue**: they are the
    frontier pop loop inlined into the engine (they consume the arrival
    lanes directly), and their nested geometry / download calls are wrapped
    separately, so self-time attribution still splits them honestly.
    ``transitive_join`` counts as **geometry** — it is the filter phase's
    pairwise distance evaluation.
    """
    from repro.broadcast import tuner as tuner_mod
    from repro.client import arrival_queue as aq_mod
    from repro.client import frontier as frontier_mod
    from repro.client import search as search_mod
    from repro.core import base as base_mod
    from repro.core import join as join_mod
    from repro.engine import shared_scan as shared_scan_mod
    from repro.geometry import rect as rect_mod

    sites = []
    for name in (
        "hypot", "point_dists", "trans_dists", "mindist", "minmaxdist",
        "point_bounds", "segment_intersects_rects", "min_trans_dist",
        "min_max_trans_dist", "trans_bounds", "point_dists_multi",
        "trans_dists_multi", "mindist_multi", "point_bounds_multi",
        "trans_bounds_multi", "trans_lower_multi",
        "point_weak_bounds_multi",
        "trans_weak_bounds_multi", "trans_corner_minmax_multi",
        "point_dists_raw", "trans_dists_raw",
    ):
        sites.append((kernels, name, "geometry"))
    # search.py binds the scalar metrics by name at import time.
    for name in ("distance", "min_trans_dist", "min_max_trans_dist"):
        sites.append((search_mod, name, "geometry"))
    for name in ("mindist", "minmaxdist"):
        sites.append((rect_mod.Rect, name, "geometry"))
    # The filter-phase join, at its definition and its by-name importers.
    for holder in (join_mod, base_mod, shared_scan_mod):
        sites.append((holder, "transitive_join", "geometry"))
    for name in (
        "__init__", "push", "push_many", "peek_arrival", "peek_page", "pop",
        "pop_with_arrival", "pop_until", "active_nodes", "active_mbrs",
        "store_lower",
    ):
        sites.append((frontier_mod.ArrivalFrontier, name, "queue"))
    for name in (
        "register", "sync", "stage", "stage_lane", "stage_lane_ids",
        "flush", "begin_round",
        "serve", "kill", "peek_arrival_attached", "peek_page_attached",
        "pop_attached", "pop_until_attached", "active_nodes_attached",
        "active_mbrs_attached", "store_lower_attached", "len_attached",
        "queries_of", "transitive_of", "_eval_stale_attached",
    ):
        sites.append((frontier_mod.FrontierArena, name, "queue"))
    for name in (
        "_init_queue", "_push", "_normalize_head", "_pop_head",
        "_pop_head_bound",
    ):
        sites.append((aq_mod.ArrivalQueueMixin, name, "queue"))
    for name in (
        "_serve_nn_one", "_serve_knn_one", "_serve_range_one",
        "_serve_window_one",
    ):
        sites.append((shared_scan_mod.SharedScanExecutor, name, "queue"))
    # Node-store sub-buckets: the executor's phase-A survivor handling
    # and the absorb glue.  Nested frontier/arena calls (queue), kernels
    # (geometry) and tuner accounting (download) are wrapped separately,
    # so self-time attribution keeps the split honest on both the store
    # path and the REPRO_NO_NODE_STORE=1 row-loop oracle.
    for name in ("_arena_phase_a", "_phase_a_rows", "_phase_a_store"):
        sites.append((shared_scan_mod.SharedScanExecutor, name, "phase_a"))
    for name in (
        "_absorb_nn_lanes", "_absorb_nn_lanes_ids", "_absorb_point_leaves",
        "_absorb_flat_leaves", "_sync_lane", "_lane_sids", "_lane_queries",
        "_lane_transitive",
    ):
        sites.append((shared_scan_mod.SharedScanExecutor, name, "absorb"))
    for cls in (tuner_mod.ChannelTuner, tuner_mod._LedgerTuner):
        for name in (
            "advance_to", "record_index_run", "download_index_page",
            "download_object",
        ):
            # Patch only where the class defines (or overrides) the method,
            # so a wrapped base call is not double-counted via the subclass.
            if name in cls.__dict__:
                sites.append((cls, name, "download"))
    sites.append((tuner_mod.TunerLedger, "flush_round", "download"))
    return sites


@contextlib.contextmanager
def _patched(timer: _WallPhaseTimer):
    saved = []
    try:
        for holder, name, bucket in _wrap_sites():
            fn = getattr(holder, name, None)
            if fn is None:
                continue
            saved.append((holder, name, fn))
            setattr(holder, name, timer.wrap(fn, bucket))
        yield
    finally:
        for holder, name, fn in saved:
            setattr(holder, name, fn)


def _measure(fn) -> tuple:
    """(wall_seconds, breakdown) of one warmed call of ``fn``.

    Measured passes run with the cyclic garbage collector paused (and
    re-enabled after): the ambient collector periodically re-scans the
    long-lived environment — tens of thousands of points, nodes and
    schedule entries — and those pauses land at arbitrary points of
    whichever phase is running.  Pausing it makes the attribution
    deterministic; both execution paths get the same treatment, so the
    comparison stays fair.  (Reference-counted garbage is still freed —
    only cycle detection is deferred.)
    """
    fn()  # warm caches (trees, programs, arrival tables)
    gc_was_on = gc.isenabled()
    gc.disable()
    try:
        wall = float("inf")
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            fn()
            wall = min(wall, time.perf_counter() - t0)
        # Keep the breakdown of the fastest wrapped pass — the one the
        # scheduler interfered with least — so phase attribution is not
        # polluted by whichever phase happened to absorb a steal spike.
        timer = None
        timed_wall = float("inf")
        for _ in range(REPEATS):
            cand = _WallPhaseTimer()
            with _patched(cand):
                t0 = time.perf_counter()
                fn()
                tw = time.perf_counter() - t0
            if tw < timed_wall:
                timed_wall = tw
                timer = cand
        profile = cProfile.Profile()
        profile.enable()
        fn()
        profile.disable()
    finally:
        if gc_was_on:
            gc.enable()
        gc.collect()
    breakdown = {**timer.breakdown(timed_wall), **_phase_breakdown(profile)}
    return wall, breakdown


def _make_loss(name: str, rate: float):
    """One registered fault model at ``rate``.

    The bundled models disagree on the knob's name (i.i.d. loss and
    corruption take ``rate``, Gilbert-Elliott shapes its fades with
    ``bad_rate``), so try the common spelling first.
    """
    try:
        return make_fault_model(name, rate=rate)
    except TypeError:
        return make_fault_model(name, bad_rate=rate)


def profile_hot_path(
    backend: str = None, loss: str = None, loss_rate: float = 0.05
) -> dict:
    backend = BACKEND if backend is None else backend
    params = SystemParameters(page_capacity=PAGE_CAPACITY)
    fault = _make_loss(loss, loss_rate) if loss else None
    env = TNNEnvironment.build(
        sized_uniform(N_POINTS, seed=1),
        sized_uniform(N_POINTS, seed=2),
        params=params,
        layout=make_layout(backend),
        loss=fault,
    )
    workload = QueryWorkload(N_QUERIES, seed=0)
    algo = HybridNN()
    runner = SharedScanRunner(env, workload, workers=0)
    queries = workload.queries(env)

    with kernels.use_kernels(True):
        pq_wall, pq_phases = _measure(
            lambda: [algo.run(env, q, ps, pr) for q, ps, pr in queries]
        )
        shared_wall, shared_phases = _measure(
            lambda: runner.run_algorithm(algo)
        )
        # The same workload under REPRO_NO_NODE_STORE=1: the scalar
        # row-loop oracle, i.e. the pre-store implementation — recorded
        # so the store's effect on each sub-bucket lives in the artifact.
        saved = os.environ.get("REPRO_NO_NODE_STORE")
        os.environ["REPRO_NO_NODE_STORE"] = "1"
        try:
            nostore_wall, nostore_phases = _measure(
                lambda: runner.run_algorithm(algo)
            )
        finally:
            if saved is None:
                os.environ.pop("REPRO_NO_NODE_STORE", None)
            else:
                os.environ["REPRO_NO_NODE_STORE"] = saved

    return {
        "benchmark": "profile_hot_path",
        "workload": "Hybrid-NN TNN queries, per-phase time breakdown",
        "backend": backend,
        "loss": {"model": loss, "rate": loss_rate} if loss else None,
        "n_queries": N_QUERIES,
        "n_points_per_dataset": N_POINTS,
        "page_capacity": PAGE_CAPACITY,
        "leaf_capacity": params.leaf_capacity,
        "fanout": params.internal_fanout,
        "repeats": REPEATS,
        "note": (
            "share is from the wall-clock phase timer (perf_counter "
            "wrappers on bucket entry points, self-time attribution, "
            "bookkeeping = remainder); profiled_share is the cProfile "
            "cross-check, which inflates python-call-heavy phases; "
            "wall_seconds is the uninstrumented reference; every "
            "measured pass runs REPEATS times and keeps the minimum "
            "wall (least scheduler interference); phase_a and "
            "absorb are executor sub-buckets that earlier recordings "
            "lumped into bookkeeping; shared_scan_no_store replays the "
            "shared path under REPRO_NO_NODE_STORE=1 (the pre-store "
            "scalar row loop)"
        ),
        "per_query": {"wall_seconds": round(pq_wall, 6), **pq_phases},
        "shared_scan": {"wall_seconds": round(shared_wall, 6), **shared_phases},
        "shared_scan_no_store": {
            "wall_seconds": round(nostore_wall, 6), **nostore_phases
        },
        "pr6_reference": {
            "shared_bookkeeping_share": 0.6271,
            "shared_wall_seconds": 0.644262,
            "method": (
                "cProfile with module-based phase classification; it "
                "counted the executor's inlined serve drains as "
                "bookkeeping and inflated python-call-heavy phases, so "
                "the share is not comparable to the wall-clock timer's"
            ),
        },
    }


def test_profile_hot_path(record_experiment):
    payload = profile_hot_path()
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    lines = [f"[profile_hot_path] {payload['workload']}"]
    for path in ("per_query", "shared_scan", "shared_scan_no_store"):
        entry = payload[path]
        share = " ".join(
            f"{phase}={entry['share'][phase]:.0%}" for phase in ALL_PHASES
        )
        lines.append(f"  {path}: {entry['wall_seconds']:.3f}s wall | {share}")
    record_experiment("profile_hot_path", "\n".join(lines))
    # The harness is a measurement, not a gate; the only invariant is that
    # both timers saw the hot path at all.
    for path in ("per_query", "shared_scan", "shared_scan_no_store"):
        assert sum(payload[path]["profiled_seconds"].values()) > 0.0
        timed = payload[path]["wall_seconds_by_phase"]
        assert sum(timed[p] for p in ("queue", "geometry", "download")) > 0.0


if __name__ == "__main__":
    import argparse

    from repro.broadcast import available_layouts

    cli = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    cli.add_argument(
        "--backend",
        default=BACKEND,
        choices=available_layouts(),
        help="air-index backend to profile (default: %(default)s, "
        "or REPRO_BENCH_BACKEND)",
    )
    cli.add_argument(
        "--loss",
        default=None,
        choices=available_fault_models(),
        help="profile under a channel fault model (registered models: "
        "%(choices)s; default: lossless)",
    )
    cli.add_argument(
        "--loss-rate",
        type=float,
        default=0.05,
        help="fault-model page loss/corruption rate (default %(default)s)",
    )
    cli_args = cli.parse_args()
    print(
        json.dumps(
            profile_hot_path(
                cli_args.backend, cli_args.loss, cli_args.loss_rate
            ),
            indent=2,
        )
    )
