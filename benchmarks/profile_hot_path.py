"""Per-phase time breakdown of the Hybrid-TNN hot path.

The shared-scan PR measured (informally) that ~75% of the 1,000-query
Hybrid-TNN workload at 64-byte pages is per-entry python queue work.  This
harness turns that claim into a recorded number: it runs the workload once
uninstrumented for an honest wall-clock, then once under ``cProfile`` and
buckets every function's *total* (self) time into four phases by module:

* **queue** — the arrival frontier / columnar arena and the heap mixin
  (`client/frontier.py`, `client/arrival_queue.py`): pushes, pops,
  head selection, prune-run consumption;
* **geometry** — the vectorised kernels and the scalar metrics
  (`geometry/`): bounds, leaf distances, certified estimates;
* **download** — broadcast arrival arithmetic and tuner accounting
  (`broadcast/`): page arithmetic, clock moves, reception logs;
* **bookkeeping** — everything else on the hot path (`engine/`,
  `client/search.py` absorb logic, `core/`, scheduler, numpy glue).

Shares are of the *profiled* run (cProfile inflates python-call-heavy
phases, so they are an upper bound on the queue share and a lower bound on
the numpy-kernel share); the uninstrumented wall-clock is recorded
alongside.  Both the per-query and the shared-scan paths are profiled, so
the before/after of queue-floor work is measured, not asserted.

Writes ``BENCH_profile_hot_path.json`` at the repository root.
"""

from __future__ import annotations

import cProfile
import json
import os
import pathlib
import pstats
import time

from repro.broadcast import SystemParameters, make_layout
from repro.core.environment import TNNEnvironment
from repro.core.hybrid import HybridNN
from repro.datasets import sized_uniform
from repro.engine import QueryWorkload, SharedScanRunner
from repro.geometry import kernels

N_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", 300))
N_POINTS = int(os.environ.get("REPRO_BENCH_POINTS", 30_000))
PAGE_CAPACITY = int(os.environ.get("REPRO_BENCH_CAPACITY", 64))
#: Air-index backend to profile (any repro.broadcast.layout registry name);
#: non-cyclic backends (rtree-distributed, disk) profile the heap-fallback
#: queue instead of the arena.
BACKEND = os.environ.get("REPRO_BENCH_BACKEND", "rtree")

ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_profile_hot_path.json"

#: Module-path fragments -> phase buckets, first match wins.
PHASES = (
    ("queue", ("client/frontier.py", "client/arrival_queue.py")),
    ("geometry", ("repro/geometry/",)),
    ("download", ("repro/broadcast/",)),
)


def _bucket(filename: str) -> str:
    path = filename.replace("\\", "/")
    for phase, fragments in PHASES:
        for fragment in fragments:
            if fragment in path:
                return phase
    return "bookkeeping"


def _phase_breakdown(profile: cProfile.Profile) -> dict:
    stats = pstats.Stats(profile)
    totals: dict = {"queue": 0.0, "geometry": 0.0, "download": 0.0, "bookkeeping": 0.0}
    for (filename, _, _), (_, _, tottime, _, _) in stats.stats.items():
        totals[_bucket(filename)] += tottime
    profiled_total = sum(totals.values())
    shares = {
        phase: (round(t / profiled_total, 4) if profiled_total else 0.0)
        for phase, t in totals.items()
    }
    return {
        "profiled_seconds": {k: round(v, 6) for k, v in totals.items()},
        "share": shares,
    }


def _measure(fn) -> tuple:
    """(wall_seconds, breakdown) of one warmed call of ``fn``."""
    fn()  # warm caches (trees, programs, arrival tables)
    t0 = time.perf_counter()
    fn()
    wall = time.perf_counter() - t0
    profile = cProfile.Profile()
    profile.enable()
    fn()
    profile.disable()
    return wall, _phase_breakdown(profile)


def profile_hot_path(backend: str = None) -> dict:
    backend = BACKEND if backend is None else backend
    params = SystemParameters(page_capacity=PAGE_CAPACITY)
    env = TNNEnvironment.build(
        sized_uniform(N_POINTS, seed=1),
        sized_uniform(N_POINTS, seed=2),
        params=params,
        layout=make_layout(backend),
    )
    workload = QueryWorkload(N_QUERIES, seed=0)
    algo = HybridNN()
    runner = SharedScanRunner(env, workload, workers=0)
    queries = workload.queries(env)

    with kernels.use_kernels(True):
        pq_wall, pq_phases = _measure(
            lambda: [algo.run(env, q, ps, pr) for q, ps, pr in queries]
        )
        shared_wall, shared_phases = _measure(
            lambda: runner.run_algorithm(algo)
        )

    return {
        "benchmark": "profile_hot_path",
        "workload": "Hybrid-NN TNN queries, per-phase time breakdown",
        "backend": backend,
        "n_queries": N_QUERIES,
        "n_points_per_dataset": N_POINTS,
        "page_capacity": PAGE_CAPACITY,
        "leaf_capacity": params.leaf_capacity,
        "fanout": params.internal_fanout,
        "note": (
            "shares are of the cProfile'd run (python-call-heavy phases "
            "inflated); wall_seconds is the uninstrumented reference"
        ),
        "per_query": {"wall_seconds": round(pq_wall, 6), **pq_phases},
        "shared_scan": {"wall_seconds": round(shared_wall, 6), **shared_phases},
    }


def test_profile_hot_path(record_experiment):
    payload = profile_hot_path()
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    lines = [f"[profile_hot_path] {payload['workload']}"]
    for path in ("per_query", "shared_scan"):
        entry = payload[path]
        share = " ".join(
            f"{phase}={entry['share'][phase]:.0%}"
            for phase in ("queue", "geometry", "download", "bookkeeping")
        )
        lines.append(f"  {path}: {entry['wall_seconds']:.3f}s wall | {share}")
    record_experiment("profile_hot_path", "\n".join(lines))
    # The harness is a measurement, not a gate; the only invariant is that
    # the buckets saw the hot path at all.
    for path in ("per_query", "shared_scan"):
        assert sum(payload[path]["profiled_seconds"].values()) > 0.0


if __name__ == "__main__":
    import argparse

    from repro.broadcast import available_layouts

    cli = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    cli.add_argument(
        "--backend",
        default=BACKEND,
        choices=available_layouts(),
        help="air-index backend to profile (default: %(default)s, "
        "or REPRO_BENCH_BACKEND)",
    )
    print(json.dumps(profile_hot_path(cli.parse_args().backend), indent=2))
