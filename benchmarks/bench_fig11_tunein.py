"""Figure 11 — tune-in time (energy) of the exact algorithms.

Paper claims reproduced here:

* Hybrid-NN has the best tune-in when |S| is notably smaller than |R|
  (0.01|R| <= |S| <= 0.4|R|): the re-steered second search finds a
  tighter radius at similar estimate cost;
* Window-Based-TNN wins when |S| << 0.01|R| (its radius is smallest);
* Approximate-TNN's tune-in dwarfs everyone else's — the Equation 1 radius
  is far too generous, especially with one sparse dataset (Fig 11(d)).
"""

from repro.sim import experiments as exp


def _run(benchmark, record_experiment, fn, experiment_id):
    series = benchmark.pedantic(fn, rounds=1, iterations=1)
    record_experiment(experiment_id, series.render())
    return series


def test_fig11a(benchmark, record_experiment):
    """S = UNIF(-4.2): the dense-S corner."""
    _run(benchmark, record_experiment, exp.fig11a, "fig11a")


def test_fig11b(benchmark, record_experiment):
    """S = UNIF(-5.0): the balanced middle."""
    _run(benchmark, record_experiment, exp.fig11b, "fig11b")


def test_fig11c(benchmark, record_experiment):
    """S = UNIF(-7.0): sparse S against denser and denser R.

    This is the regime where |S| <= 0.4|R| holds across the sweep, so
    Hybrid-NN's tune-in should (on average) be the best of the three.
    """
    series = _run(benchmark, record_experiment, exp.fig11c, "fig11c")
    mean = lambda xs: sum(xs) / len(xs)
    hybrid = mean(series.series["hybrid-nn"])
    window = mean(series.series["window-based"])
    double = mean(series.series["double-nn"])
    assert hybrid <= min(window, double) * 1.10


def test_fig11d(benchmark, record_experiment):
    """S = UNIF(-5.0) including Approximate-TNN's oversized ranges."""
    series = _run(benchmark, record_experiment, exp.fig11d, "fig11d")
    mean = lambda xs: sum(xs) / len(xs)
    # Approximate-TNN's tune-in is dramatically larger than every exact
    # algorithm's (Section 6.1.2).
    approx = mean(series.series["approximate-tnn"])
    assert approx > 2 * mean(series.series["double-nn"])
    assert approx > 2 * mean(series.series["window-based"])
