"""Ablation — R-tree packing algorithm (STR vs Hilbert vs Nearest-X).

The paper states it uses STR "to achieve the best performance" but never
quantifies the choice.  This ablation measures the tune-in time of
Double-NN under each packer on the same workload: STR and Hilbert should
clearly beat Nearest-X (whose x-strip leaves have terrible aspect ratios),
with STR typically the best of the three.
"""

from repro.core import DoubleNN, TNNEnvironment
from repro.datasets import sized_uniform
from repro.sim import ExperimentRunner, QueryWorkload, format_table
from repro.sim.experiments import _scaled, experiment_scale, queries_per_config

PACKINGS = ("str", "hilbert", "nearest_x")


def _measure():
    n = _scaled(10_000, experiment_scale())
    s_pts = sized_uniform(n, seed=1)
    r_pts = sized_uniform(n, seed=2)
    out = {}
    for packing in PACKINGS:
        env = TNNEnvironment.build(s_pts, r_pts, packing=packing)
        runner = ExperimentRunner(env, QueryWorkload(queries_per_config(), seed=3))
        stats = runner.run({"double-nn": DoubleNN()})["double-nn"]
        out[packing] = (stats.tune_in.mean, stats.access_time.mean)
    return out


def test_packing_ablation(benchmark, record_experiment):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = [
        [name, f"{tunein:.1f}", f"{access:.0f}"]
        for name, (tunein, access) in results.items()
    ]
    record_experiment(
        "ablation_packing",
        format_table(
            ["packing", "tune-in (pages)", "access time (pages)"],
            rows,
            title="[ablation] R-tree packing algorithm (Double-NN)",
        ),
    )
    # STR (the paper's choice) must beat the naive Nearest-X packer.
    assert results["str"][0] < results["nearest_x"][0]
