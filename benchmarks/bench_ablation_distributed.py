"""Ablation — full (1, m) replication vs distributed (partial) indexing.

Distributed indexing replicates only the top tree levels with each data
chunk, shrinking the cycle at the cost of longer waits for deep index
pages.  This bench compares NN-search access time and cycle length across
replication depths on the same tree and workload.
"""

import random

from repro.broadcast import (
    BroadcastChannel,
    BroadcastProgram,
    ChannelTuner,
    SystemParameters,
)
from repro.broadcast.distributed import DistributedBroadcastProgram
from repro.client import BroadcastNNSearch
from repro.datasets import sized_uniform
from repro.geometry import Point
from repro.rtree import str_pack
from repro.sim import format_table
from repro.sim.experiments import _scaled, experiment_scale, queries_per_config


def _measure():
    params = SystemParameters()
    n = _scaled(10_000, experiment_scale())
    pts = sized_uniform(n, seed=1)
    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    m = 8

    programs = {"full (1,m)": BroadcastProgram(tree, params, m=m)}
    for levels in (2, 3, 4):
        if levels < tree.height:
            programs[f"top-{levels} levels"] = DistributedBroadcastProgram(
                tree, params, m=m, replicated_levels=levels
            )

    rng = random.Random(3)
    queries = [
        Point(rng.uniform(0, 39_000), rng.uniform(0, 39_000))
        for _ in range(queries_per_config())
    ]
    out = {}
    for name, prog in programs.items():
        access = tunein = 0.0
        for i, q in enumerate(queries):
            tuner = ChannelTuner(
                BroadcastChannel(prog, phase=(i * 131.0) % prog.cycle_length)
            )
            search = BroadcastNNSearch(tree, tuner, q)
            search.run_to_completion()
            access += tuner.now
            tunein += tuner.pages_downloaded
        nq = len(queries)
        out[name] = (prog.cycle_length, access / nq, tunein / nq)
    return out


def test_distributed_index_ablation(benchmark, record_experiment):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = [
        [name, cycle, f"{acc:.0f}", f"{ti:.1f}"]
        for name, (cycle, acc, ti) in results.items()
    ]
    record_experiment(
        "ablation_distributed",
        format_table(
            ["layout", "cycle (pages)", "NN access", "NN tune-in"],
            rows,
            title="[ablation] full vs distributed index replication (m=8)",
        ),
    )
    # Partial replication must shrink the cycle...
    full_cycle = results["full (1,m)"][0]
    partial = [v for k, v in results.items() if k != "full (1,m)"]
    assert all(cycle < full_cycle for cycle, _, _ in partial)
    # ...and tune-in must be unaffected (same tree, same pruning).
    full_ti = results["full (1,m)"][2]
    for _, _, ti in partial:
        assert abs(ti - full_ti) / full_ti < 0.5
