"""Figure 9 — access time of the four algorithms, exact search.

Paper claims reproduced here:

* Approximate-TNN always has the best access time (no estimate traversal);
* Double-NN and Hybrid-NN share the same access time and beat
  Window-Based-TNN by ~7-15% when the dataset sizes are comparable;
* the gap closes as the size ratio grows extreme (Figure 10's analysis).

Each sweep configuration executes through the batched engine
(:class:`repro.engine.BatchRunner`), so ``REPRO_WORKERS=N`` fans the
per-configuration workloads out over ``N`` worker processes without
changing any number in the rendered series.
"""

from repro.sim import experiments as exp


def _run(benchmark, record_experiment, fn, experiment_id):
    series = benchmark.pedantic(fn, rounds=1, iterations=1)
    record_experiment(experiment_id, series.render())
    # Structural sanity: every series is positive and full-length.
    for values in series.series.values():
        assert len(values) == len(series.x_values)
        assert all(v > 0 for v in values)
    return series


def test_fig9a(benchmark, record_experiment):
    """|S| = 10,000 fixed, |R| sweeps 2k..30k."""
    series = _run(benchmark, record_experiment, exp.fig9a, "fig9a")
    approx = series.series["approximate-tnn"]
    window = series.series["window-based"]
    double = series.series["double-nn"]
    hybrid = series.series["hybrid-nn"]
    mean = lambda xs: sum(xs) / len(xs)
    assert mean(approx) < mean(double) < mean(window) * 1.01
    # Double-NN and Hybrid-NN start and finish together (Section 6.1.1).
    assert abs(mean(double) - mean(hybrid)) / mean(double) < 0.05


def test_fig9b(benchmark, record_experiment):
    """|R| = 10,000 fixed, |S| sweeps 2k..30k."""
    series = _run(benchmark, record_experiment, exp.fig9b, "fig9b")
    mean = lambda xs: sum(xs) / len(xs)
    assert mean(series.series["approximate-tnn"]) < mean(series.series["double-nn"])


def test_fig9c(benchmark, record_experiment):
    """S = UNIF(-5.8), R sweeps all eight densities."""
    series = _run(benchmark, record_experiment, exp.fig9c, "fig9c")
    # Access time is dominated by the larger dataset: the densest R must
    # cost more than the sparsest R for every algorithm.
    for values in series.series.values():
        assert values[-1] > values[0]


def test_fig9d(benchmark, record_experiment):
    """S = UNIF(-5.0), R sweeps all eight densities."""
    _run(benchmark, record_experiment, exp.fig9d, "fig9d")
