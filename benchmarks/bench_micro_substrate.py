"""Micro-benchmarks of the substrate hot paths.

These time the building blocks every simulated query exercises; they are
the knobs to watch when scaling the harness toward paper-size runs.
"""

import random

from repro.broadcast import (
    BroadcastChannel,
    BroadcastProgram,
    ChannelTuner,
    SystemParameters,
)
from repro.client import BroadcastNNSearch
from repro.core import DoubleNN, TNNEnvironment
from repro.geometry import (
    Circle,
    Ellipse,
    Point,
    Rect,
    circle_rect_overlap_ratio,
    ellipse_rect_overlap_ratio,
    min_max_trans_dist,
    min_trans_dist,
)
from repro.rtree import best_first_nn, str_pack

PARAMS = SystemParameters()


def _points(n, seed=0):
    rng = random.Random(seed)
    return [Point(rng.random() * 39_000, rng.random() * 39_000) for _ in range(n)]


def test_str_pack_10k(benchmark):
    pts = _points(10_000, seed=1)
    tree = benchmark(str_pack, pts, PARAMS.leaf_capacity, PARAMS.internal_fanout)
    assert tree.size == 10_000


def test_best_first_nn_10k(benchmark):
    tree = str_pack(_points(10_000, seed=2), PARAMS.leaf_capacity, PARAMS.internal_fanout)
    q = Point(20_000, 20_000)
    pt, d = benchmark(best_first_nn, tree, q)
    assert d >= 0


def test_broadcast_nn_search_10k(benchmark):
    tree = str_pack(_points(10_000, seed=3), PARAMS.leaf_capacity, PARAMS.internal_fanout)
    program = BroadcastProgram(tree, PARAMS)

    def run():
        tuner = ChannelTuner(BroadcastChannel(program))
        search = BroadcastNNSearch(tree, tuner, Point(20_000, 20_000))
        search.run_to_completion()
        return search.result()

    pt, d = benchmark(run)
    assert d >= 0


def test_min_trans_dist_metric(benchmark):
    mbr = Rect(100, 100, 500, 400)
    value = benchmark(min_trans_dist, Point(0, 0), mbr, Point(900, 50))
    assert value > 0


def test_min_max_trans_dist_metric(benchmark):
    mbr = Rect(100, 100, 500, 400)
    value = benchmark(min_max_trans_dist, Point(0, 0), mbr, Point(900, 50))
    assert value > 0


def test_circle_overlap_ratio(benchmark):
    circle = Circle(Point(250, 250), 220.0)
    rect = Rect(100, 100, 500, 400)
    ratio = benchmark(circle_rect_overlap_ratio, circle, rect)
    assert 0 < ratio < 1


def test_ellipse_overlap_ratio(benchmark):
    ellipse = Ellipse(Point(0, 0), Point(600, 100), 900.0)
    rect = Rect(100, 100, 500, 400)
    ratio = benchmark(ellipse_rect_overlap_ratio, ellipse, rect)
    assert 0 < ratio <= 1


def test_end_to_end_double_nn_query(benchmark):
    env = TNNEnvironment.build(_points(3_000, seed=4), _points(3_000, seed=5))
    algo = DoubleNN()

    def run():
        return algo.run(env, Point(20_000, 20_000), 17.0, 31.0)

    result = benchmark(run)
    assert not result.failed
