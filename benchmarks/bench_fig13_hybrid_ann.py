"""Figure 13 — Hybrid-NN with the ANN optimisation.

Paper claim reproduced here: Hybrid-NN only tolerates *tiny* approximation
factors (1/150 or 1/200) — its transitive-distance phase is far more
sensitive to a degraded upper bound than the plain NN searches — and with
those factors ANN still trims its tune-in time.
"""

from repro.sim import experiments as exp


def _mean(xs):
    return sum(xs) / len(xs)


def _run(benchmark, record_experiment, fn, experiment_id):
    series = benchmark.pedantic(fn, rounds=1, iterations=1)
    record_experiment(experiment_id, series.render())
    assert set(series.series) == {
        "hybrid-eNN", "hybrid-ANN-1/150", "hybrid-ANN-1/200"
    }
    # The optimised variants never cost more tune-in than exact Hybrid.
    assert _mean(series.series["hybrid-ANN-1/150"]) <= _mean(series.series["hybrid-eNN"]) * 1.01
    assert _mean(series.series["hybrid-ANN-1/200"]) <= _mean(series.series["hybrid-eNN"]) * 1.01
    return series


def test_fig13a(benchmark, record_experiment):
    """S = UNIF(-5.0)."""
    _run(benchmark, record_experiment, exp.fig13a, "fig13a")


def test_fig13b(benchmark, record_experiment):
    """S = UNIF(-5.4)."""
    _run(benchmark, record_experiment, exp.fig13b, "fig13b")
