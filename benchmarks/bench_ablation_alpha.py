"""Ablation — dynamic depth-scaled alpha vs fixed alpha (Section 5.2).

The paper argues a fixed pruning threshold "may not be suitable for all
R-tree nodes" and proposes Equation 4's depth-scaled alpha.  This ablation
compares Double-NN tune-in under: exact search, fixed alpha (the static
thresholds of Lin et al.), and the dynamic alpha with factor 1.
"""

from repro.client.policies import AnnPolicy, dynamic_alpha, fixed_alpha
from repro.core import AnnOptimization, DoubleNN, TNNEnvironment
from repro.datasets import sized_uniform
from repro.sim import ExperimentRunner, QueryWorkload, format_table
from repro.sim.experiments import _scaled, experiment_scale, queries_per_config


class _FixedAlphaOptimization(AnnOptimization):
    """ANN plumbing with a constant alpha (the static baseline)."""

    def __init__(self, alpha: float) -> None:
        super().__init__(factor=0.0, density_aware=False)
        object.__setattr__(self, "_alpha", alpha)

    def policies(self, env):
        policy = AnnPolicy(fixed_alpha(self._alpha))
        return policy, policy


def _measure():
    n = _scaled(10_000, experiment_scale())
    env = TNNEnvironment.build(
        sized_uniform(n, seed=1), sized_uniform(n, seed=2)
    )
    runner = ExperimentRunner(env, QueryWorkload(queries_per_config(), seed=3))
    variants = {
        "exact": DoubleNN(),
        "fixed-0.2": DoubleNN(optimization=_FixedAlphaOptimization(0.2)),
        "fixed-0.5": DoubleNN(optimization=_FixedAlphaOptimization(0.5)),
        "fixed-0.8": DoubleNN(optimization=_FixedAlphaOptimization(0.8)),
        "dynamic-f1": DoubleNN(
            optimization=AnnOptimization(factor=1.0, density_aware=False)
        ),
    }
    stats = runner.run(variants)
    return {name: st.tune_in.mean for name, st in stats.items()}


def test_alpha_ablation(benchmark, record_experiment):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = [[name, f"{v:.1f}"] for name, v in results.items()]
    record_experiment(
        "ablation_alpha",
        format_table(
            ["alpha policy", "tune-in (pages)"],
            rows,
            title="[ablation] fixed vs dynamic pruning threshold (Double-NN)",
        ),
    )
    # The dynamic alpha must beat exact search; an over-aggressive fixed
    # threshold (0.8 at every level, including the root region) must not
    # beat the depth-aware policy.
    assert results["dynamic-f1"] < results["exact"]
    assert results["dynamic-f1"] <= min(
        results["fixed-0.2"], results["fixed-0.5"], results["fixed-0.8"]
    ) * 1.05
