"""Engine — batched multi-query execution on the paper's 1,000-query workload.

Times :class:`repro.engine.BatchRunner` pushing a full workload of exact
Double-NN queries through one environment, and checks the engine invariants:

* the batch path returns **bit-identical** result sequences to the
  historical per-query ``ExperimentRunner`` loop;
* vectorised aggregation (``summarize_batch``) matches the scalar
  ``summarize`` on every metric.

``REPRO_BENCH_QUERIES`` (default 1,000 — the paper's per-configuration
query count) and ``REPRO_BENCH_POINTS`` (default 1,000 per dataset) size
the workload; CI's smoke run shrinks both to stay under a minute.
"""

import math
import os
import time

from repro.core import DoubleNN, TNNEnvironment
from repro.datasets import sized_uniform
from repro.engine import BatchRunner, QueryWorkload
from repro.sim import ExperimentRunner, format_table, summarize, summarize_batch

N_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", 1_000))
N_POINTS = int(os.environ.get("REPRO_BENCH_POINTS", 1_000))


def _measure():
    env = TNNEnvironment.build(
        sized_uniform(N_POINTS, seed=1), sized_uniform(N_POINTS, seed=2)
    )
    workload = QueryWorkload(N_QUERIES, seed=0)
    batch = BatchRunner(env, workload)

    t0 = time.perf_counter()
    results = batch.run_algorithm(DoubleNN())
    elapsed = time.perf_counter() - t0

    reference = ExperimentRunner(env, workload).run_algorithm(DoubleNN())
    return results, reference, elapsed


def test_engine_batch_throughput(benchmark, record_experiment):
    results, reference, elapsed = benchmark.pedantic(_measure, rounds=1, iterations=1)

    # Bit-identical to the sequential per-query loop.
    assert results == reference

    # Vectorised aggregation agrees with the scalar reference.
    fast, slow = summarize_batch(results), summarize(results)
    for metric in ("access_time", "tune_in", "estimate_pages", "filter_pages"):
        a, b = getattr(fast, metric), getattr(slow, metric)
        assert math.isclose(a.mean, b.mean, rel_tol=1e-12)
        assert math.isclose(a.std, b.std, rel_tol=1e-9, abs_tol=1e-12)
        assert a.count == b.count == N_QUERIES

    throughput = N_QUERIES / elapsed
    record_experiment(
        "engine_batch",
        format_table(
            ["queries", "dataset size", "wall-clock (s)", "queries/s"],
            [[N_QUERIES, N_POINTS, f"{elapsed:.3f}", f"{throughput:.0f}"]],
            title="[engine] BatchRunner Double-NN workload throughput",
        ),
    )
    assert throughput > 0
