"""Table 3 — Approximate-TNN fail rate per distribution combination.

Paper claim reproduced here (same ordering, magnitudes differ with the
synthetic CITY/POST substitutes): uniform-uniform never fails; mixing in
one skewed dataset introduces failures; two skewed datasets fail the most
(paper: 0% / 9.08% / 9.08% / 43.2%).

Runs at full paper cardinality by default (see ``REPRO_TABLE3_SCALE``)
because Equation 1's radius only becomes unsafe at realistic sizes.
"""

from repro.sim import experiments as exp


def test_table3(benchmark, record_experiment):
    rates, text = benchmark.pedantic(exp.table3, rounds=1, iterations=1)
    record_experiment("table3", text)
    assert rates["uni-uni"] == 0.0
    assert rates["real-real"] > 0.0
    assert rates["real-real"] >= rates["uni-real"] * 0.99
    assert rates["real-real"] >= rates["real-uni"] * 0.99
