"""Small-page-geometry client hot path — scalar vs arrival-frontier A/B.

PR 2's geometry kernels only pay off above the per-ufunc dispatch floor,
which the paper's smallest page geometry (64-byte pages: leaf capacity 6,
fanout M = 3, the "H = 10 and M = 3" tree of Section 6) never reaches per
fan-out.  This benchmark drives the full **client** stack — broadcast
Hybrid-NN estimate phase, mid-flight re-steering, filter-phase range
queries — where the arrival frontier batches that cost across the *queue*
instead: cyclic-page-order pops, push-time certified bounds, queue-wide
rescan batches.

Workload A (the headline): the seeded 1,000-query Hybrid-NN TNN workload
at 64-byte page geometry, interleaved best-of-``REPRO_BENCH_ROUNDS`` on
the same host, scalar oracle (``kernels.use_kernels(False)`` — the seed
queue and geometry implementation) vs the kernel path.  Asserts the two
paths produce **bit-identical** ``TNNResult`` streams (answers, radii,
access times, tune-in — everything) and a >= 1.4x speedup on full-size
local runs (``REPRO_BENCH_MIN_SPEEDUP`` gates when set; CI smoke runs are
too noisy and too small).

Workload B: an 8-channel scheduler fleet (one client interleaving eight
channels), event-heap ``run_all`` vs the O(channels) ``run_all_scan``
reference — answers must match exactly; both times are recorded.

Writes ``BENCH_small_geometry.json`` at the repository root.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import random
import time

from repro.broadcast import (
    BroadcastChannel,
    BroadcastProgram,
    ChannelTuner,
    SystemParameters,
)
from repro.client import BroadcastNNSearch, run_all, run_all_scan
from repro.core.environment import TNNEnvironment
from repro.core.hybrid import HybridNN
from repro.datasets import sized_uniform
from repro.geometry import Point, kernels
from repro.rtree import str_pack
from repro.sim import format_table

N_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", 1_000))
N_POINTS = int(os.environ.get("REPRO_BENCH_POINTS", 30_000))
PAGE_CAPACITY = int(os.environ.get("REPRO_BENCH_CAPACITY", 64))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", 4))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", 0.0))
N_CHANNELS = int(os.environ.get("REPRO_BENCH_CHANNELS", 8))

JSON_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "BENCH_small_geometry.json"
)


def _build_env():
    params = SystemParameters(page_capacity=PAGE_CAPACITY)
    env = TNNEnvironment.build(
        sized_uniform(N_POINTS, seed=1),
        sized_uniform(N_POINTS, seed=2),
        params=params,
    )
    rng = random.Random(0)
    queries = [
        (env.random_query_point(rng), *env.random_phases(rng))
        for _ in range(N_QUERIES)
    ]
    return env, queries


def _tnn_workload(env, queries):
    """One pass of the seeded Hybrid-NN TNN workload (estimate + filter)."""
    algo = HybridNN()
    return [
        dataclasses.astuple(algo.run(env, q, phase_s, phase_r))
        for q, phase_s, phase_r in queries
    ]


def _build_fleet(seed=7):
    """One NN search per channel: the async-channel-tuner shape."""
    rng = random.Random(seed)
    searches = []
    q = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
    for c in range(N_CHANNELS):
        prng = random.Random(100 + c)
        pts = [
            Point(prng.random() * 1000, prng.random() * 1000)
            for _ in range(max(200, N_POINTS // 20))
        ]
        params = SystemParameters(page_capacity=PAGE_CAPACITY)
        tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
        program = BroadcastProgram(tree, params, m=2)
        tuner = ChannelTuner(
            BroadcastChannel(program, phase=rng.uniform(0, 500))
        )
        searches.append(BroadcastNNSearch(tree, tuner, q))
    return searches


def _fleet_results(searches):
    return [(s.result(), s.tuner.now, s.tuner.index_pages) for s in searches]


def test_small_geometry_frontier_speedup(benchmark, record_experiment):
    env, queries = _build_env()

    def measure():
        # Warm both paths, then interleave best-of-N so neither side owns
        # a quieter stretch of the host.
        with kernels.use_kernels(False):
            scalar_res = _tnn_workload(env, queries)
        with kernels.use_kernels(True):
            kernel_res = _tnn_workload(env, queries)
        scalar_best = kernel_best = None
        for _ in range(ROUNDS):
            with kernels.use_kernels(False):
                t0 = time.perf_counter()
                scalar_res = _tnn_workload(env, queries)
                dt = time.perf_counter() - t0
                scalar_best = dt if scalar_best is None else min(scalar_best, dt)
            with kernels.use_kernels(True):
                t0 = time.perf_counter()
                kernel_res = _tnn_workload(env, queries)
                dt = time.perf_counter() - t0
                kernel_best = dt if kernel_best is None else min(kernel_best, dt)
        return scalar_res, kernel_res, scalar_best, kernel_best

    scalar_res, kernel_res, scalar_s, kernel_s = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    # The acceptance bar: the full TNNResult streams are bit-identical.
    assert scalar_res == kernel_res
    speedup = scalar_s / kernel_s

    # Workload B: the 8-channel fleet, heap vs scan scheduler.
    heap_searches = _build_fleet()
    t0 = time.perf_counter()
    run_all(heap_searches)
    heap_s = time.perf_counter() - t0
    scan_searches = _build_fleet()
    t0 = time.perf_counter()
    run_all_scan(scan_searches)
    scan_s = time.perf_counter() - t0
    assert _fleet_results(heap_searches) == _fleet_results(scan_searches)

    # Carry the previous recording forward: the per-query reference the
    # arena PR must not regress lives in the artifact itself.
    previous_kernel = None
    if JSON_PATH.exists():
        try:
            prev = json.loads(JSON_PATH.read_text())
            previous_kernel = prev.get("kernel_seconds")
        except (ValueError, OSError):  # pragma: no cover - defensive
            previous_kernel = None

    params = SystemParameters(page_capacity=PAGE_CAPACITY)
    payload = {
        "benchmark": "small_geometry",
        "workload": "Hybrid-NN TNN queries over two broadcast channels",
        "n_queries": N_QUERIES,
        "n_points_per_dataset": N_POINTS,
        "page_capacity": PAGE_CAPACITY,
        "leaf_capacity": params.leaf_capacity,
        "fanout": params.internal_fanout,
        "protocol": f"interleaved best-of-{ROUNDS}, same host",
        "scalar_seconds": round(scalar_s, 6),
        "kernel_seconds": round(kernel_s, 6),
        "previous_kernel_seconds": previous_kernel,
        "speedup": round(speedup, 3),
        "bit_identical": scalar_res == kernel_res,
        "scheduler_fleet": {
            "channels": N_CHANNELS,
            "heap_seconds": round(heap_s, 6),
            "scan_seconds": round(scan_s, 6),
            "answers_identical": True,
        },
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    record_experiment(
        "small_geometry",
        format_table(
            [
                "queries",
                "points",
                "leaf/fanout",
                "scalar (s)",
                "frontier (s)",
                "speedup",
                f"{N_CHANNELS}-ch heap/scan (s)",
            ],
            [[
                N_QUERIES,
                N_POINTS,
                f"{params.leaf_capacity}/{params.internal_fanout}",
                f"{scalar_s:.3f}",
                f"{kernel_s:.3f}",
                f"{speedup:.2f}x",
                f"{heap_s:.3f}/{scan_s:.3f}",
            ]],
            title=(
                "[small_geometry] scalar vs arrival frontier, "
                "64-byte-page client hot path"
            ),
        ),
    )
    assert speedup >= MIN_SPEEDUP
