"""Unit and property tests for repro.geometry.rect."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Rect

coords = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    return Rect(x1, y1, x2, y2)


def test_from_points():
    r = Rect.from_points([Point(1, 5), Point(3, 2), Point(2, 4)])
    assert r == Rect(1, 2, 3, 5)


def test_from_points_empty_raises():
    with pytest.raises(ValueError):
        Rect.from_points([])


def test_union_of():
    r = Rect.union_of([Rect(0, 0, 1, 1), Rect(2, -1, 3, 0.5)])
    assert r == Rect(0, -1, 3, 1)


def test_union_of_empty_raises():
    with pytest.raises(ValueError):
        Rect.union_of([])


def test_basic_accessors():
    r = Rect(0, 0, 4, 2)
    assert r.width == 4
    assert r.height == 2
    assert r.area == 8
    assert r.center == Point(2, 1)
    assert r.is_valid()


def test_degenerate_rect_is_valid():
    assert Rect(1, 1, 1, 1).is_valid()
    assert Rect(1, 1, 1, 1).area == 0


def test_contains_point_boundary():
    r = Rect(0, 0, 2, 2)
    assert r.contains_point(Point(0, 0))
    assert r.contains_point(Point(2, 2))
    assert r.contains_point(Point(1, 1))
    assert not r.contains_point(Point(2.001, 1))


def test_contains_rect():
    assert Rect(0, 0, 4, 4).contains_rect(Rect(1, 1, 2, 2))
    assert Rect(0, 0, 4, 4).contains_rect(Rect(0, 0, 4, 4))
    assert not Rect(0, 0, 4, 4).contains_rect(Rect(1, 1, 5, 2))


def test_intersects_rect():
    a = Rect(0, 0, 2, 2)
    assert a.intersects_rect(Rect(1, 1, 3, 3))
    assert a.intersects_rect(Rect(2, 2, 3, 3))  # corner touch counts
    assert not a.intersects_rect(Rect(2.1, 2.1, 3, 3))


def test_expanded():
    assert Rect(0, 0, 1, 1).expanded(1) == Rect(-1, -1, 2, 2)


def test_corners_and_sides():
    r = Rect(0, 0, 1, 2)
    assert len(r.corners()) == 4
    sides = list(r.sides())
    assert len(sides) == 4
    perimeter = sum(u.distance_to(v) for u, v in sides)
    assert math.isclose(perimeter, 2 * (1 + 2))


def test_mindist_inside_is_zero():
    assert Rect(0, 0, 2, 2).mindist(Point(1, 1)) == 0.0


def test_mindist_outside():
    assert Rect(0, 0, 2, 2).mindist(Point(5, 1)) == 3.0
    assert math.isclose(Rect(0, 0, 2, 2).mindist(Point(5, 6)), 5.0)


def test_maxdist():
    assert math.isclose(Rect(0, 0, 3, 4).maxdist(Point(0, 0)), 5.0)


def test_minmaxdist_unit_square():
    # From the origin corner of the unit square the minmaxdist is the
    # distance to the far end of a nearest face = sqrt(1^2 + 0^2)..sqrt(2)?
    # Nearer x-edge (x=0) combined with farther y corner (y=1) -> dist 1.
    assert math.isclose(Rect(0, 0, 1, 1).minmaxdist(Point(0, 0)), 1.0)


@given(rects(), points)
def test_mindist_le_minmaxdist_le_maxdist(r, p):
    assert r.mindist(p) <= r.minmaxdist(p) + 1e-9
    assert r.minmaxdist(p) <= r.maxdist(p) + 1e-9


@given(rects(), points, st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1))
def test_mindist_is_lower_bound(r, p, tx, ty):
    inside = Point(r.xmin + tx * r.width, r.ymin + ty * r.height)
    assert r.mindist(p) <= p.distance_to(inside) + 1e-6


@given(rects(), points, st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1))
def test_maxdist_is_upper_bound(r, p, tx, ty):
    inside = Point(r.xmin + tx * r.width, r.ymin + ty * r.height)
    assert p.distance_to(inside) <= r.maxdist(p) + 1e-6


@given(rects())
def test_corners_inside_rect(r):
    for c in r.corners():
        assert r.contains_point(c)


@given(rects(), rects())
def test_union_contains_both(a, b):
    u = Rect.union_of([a, b])
    assert u.contains_rect(a)
    assert u.contains_rect(b)


@given(rects(), rects())
def test_intersects_symmetry(a, b):
    assert a.intersects_rect(b) == b.intersects_rect(a)
