"""Exactness and equivalence tests for the vectorised geometry kernels.

The kernels in :mod:`repro.geometry.kernels` must be **bit-identical** to
the scalar implementations they accelerate — the scalar code is the
correctness oracle.  These tests drive that contract with seeded randomized
cases (including grazing, collinear and degenerate MBRs, where the masked
case analysis of Lemma 1 is most fragile) and check that whole-engine query
answers do not depend on which path ran.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.broadcast import SystemParameters
from repro.core import DoubleNN, HybridNN, TNNEnvironment, WindowBasedTNN
from repro.datasets import sized_uniform
from repro.engine import BatchRunner, QueryWorkload
from repro.geometry import (
    Circle,
    Point,
    Rect,
    distance,
    kernels,
    min_max_trans_dist,
    min_trans_dist,
)
from repro.rtree import build_rtree
from repro.rtree.traversal import (
    best_first_knn,
    best_first_nn,
    range_search,
    transitive_nn,
    window_search,
)

#: Randomized (p, mbr, r) configurations checked against the scalar oracle.
N_PROPERTY_CASES = 1_200


def _random_rect(rng: random.Random) -> Rect:
    """A rect that is degenerate ~1/3 of the time, grid-aligned ~1/2."""
    mode = rng.random()
    if mode < 0.5:
        # Integer grid: forces exact collinearity/grazing configurations.
        x = float(rng.randint(-12, 12))
        y = float(rng.randint(-12, 12))
        w = float(rng.randint(0, 10)) if rng.random() < 0.8 else 0.0
        h = float(rng.randint(0, 10)) if rng.random() < 0.8 else 0.0
        return Rect(x, y, x + w, y + h)
    if mode < 0.65:
        # Degenerate: zero width and/or height at float coordinates.
        x = rng.uniform(-100, 100)
        y = rng.uniform(-100, 100)
        if rng.random() < 0.3:
            return Rect(x, y, x, y)  # point rect
        if rng.random() < 0.5:
            return Rect(x, y, x, y + rng.uniform(0, 60))
        return Rect(x, y, x + rng.uniform(0, 60), y)
    x1, x2 = sorted(rng.uniform(-100, 100) for _ in range(2))
    y1, y2 = sorted(rng.uniform(-100, 100) for _ in range(2))
    return Rect(x1, y1, x2, y2)


def _random_query(rng: random.Random, rect: Rect) -> Point:
    """Query points biased onto the rect's boundary/corners/edge lines."""
    mode = rng.random()
    if mode < 0.25:
        # Exactly on a corner or side carrier line: grazing cases.
        c = rect.corners()[rng.randrange(4)]
        if rng.random() < 0.5:
            return c
        if rng.random() < 0.5:
            return Point(c.x, c.y + rng.uniform(-50, 50))
        return Point(c.x + rng.uniform(-50, 50), c.y)
    if mode < 0.45:
        return Point(float(rng.randint(-15, 15)), float(rng.randint(-15, 15)))
    return Point(rng.uniform(-150, 150), rng.uniform(-150, 150))


def _case_batches():
    """Yield (p, r, rects) batches totalling >= N_PROPERTY_CASES rects."""
    rng = random.Random(0xC0FFEE)
    produced = 0
    while produced < N_PROPERTY_CASES:
        rects = [_random_rect(rng) for _ in range(rng.randint(1, 40))]
        p = _random_query(rng, rects[0])
        r = _random_query(rng, rects[-1])
        produced += len(rects)
        yield p, r, rects


def test_kernel_bounds_match_scalar_oracles_exactly():
    """Lemma 1/3 + MINDIST/MINMAXDIST kernels == scalar, bit for bit."""
    checked = 0
    for p, r, rects in _case_batches():
        arr = kernels.as_mbr_array(rects)
        lower, upper = kernels.trans_bounds(p, arr, r)
        lower_only = kernels.min_trans_dist(p, arr, r)
        upper_only = kernels.min_max_trans_dist(p, arr, r)
        md, mmd = kernels.point_bounds(p, arr)
        md_only = kernels.mindist(p, arr)
        mmd_only = kernels.minmaxdist(p, arr)
        for i, rect in enumerate(rects):
            assert min_trans_dist(p, rect, r) == lower[i] == lower_only[i]
            assert min_max_trans_dist(p, rect, r) == upper[i] == upper_only[i]
            assert rect.mindist(p) == md[i] == md_only[i]
            assert rect.minmaxdist(p) == mmd[i] == mmd_only[i]
            checked += 1
    assert checked >= N_PROPERTY_CASES


def test_kernel_point_distances_match_scalar_exactly():
    rng = random.Random(31337)
    for _ in range(60):
        pts = [
            Point(rng.uniform(-1e4, 1e4), rng.uniform(-1e4, 1e4))
            for _ in range(rng.randint(1, 80))
        ]
        p = Point(rng.uniform(-1e4, 1e4), rng.uniform(-1e4, 1e4))
        r = Point(rng.uniform(-1e4, 1e4), rng.uniform(-1e4, 1e4))
        arr = kernels.as_point_array(pts)
        pd = kernels.point_dists(p, arr)
        td = kernels.trans_dists(p, arr, r)
        for i, s in enumerate(pts):
            assert distance(p, s) == pd[i]
            assert distance(p, s) + distance(s, r) == td[i]


def test_vector_hypot_bit_identical_to_math_hypot():
    rng = random.Random(7)
    xs = [rng.uniform(-1e6, 1e6) for _ in range(20_000)]
    ys = [rng.uniform(-1e6, 1e6) for _ in range(20_000)]
    # Extreme magnitudes exercise the scaling and the scalar fallback rows.
    for _ in range(2_000):
        xs.append(rng.uniform(-1, 1) * 10.0 ** rng.randint(-320, 308))
        ys.append(rng.uniform(-1, 1) * 10.0 ** rng.randint(-320, 308))
    edge = [0.0, -0.0, 1.0, 5e-324, 1e-308, 1.7e308, math.inf, -math.inf, 3.0]
    for a in edge:
        for b in edge:
            xs.append(a)
            ys.append(b)
    out = kernels.hypot(np.array(xs), np.array(ys))
    for i, (a, b) in enumerate(zip(xs, ys)):
        assert math.hypot(a, b) == out[i]


def test_hypot_nan_propagates():
    out = kernels.hypot(np.array([math.nan, 1.0]), np.array([2.0, math.nan]))
    assert math.isnan(out[0]) and math.isnan(out[1])


def test_segment_intersects_rects_matches_scalar():
    from repro.geometry import Segment, segment_intersects_rect

    checked = 0
    for p, r, rects in _case_batches():
        mask = kernels.segment_intersects_rects(p, r, kernels.as_mbr_array(rects))
        for i, rect in enumerate(rects):
            assert segment_intersects_rect(Segment(p, r), rect) == bool(mask[i])
            checked += 1
        if checked >= 400:
            break


def test_node_arrays_match_structure():
    """Pack-time arrays mirror the node's children/points exactly."""
    tree = build_rtree(sized_uniform(700, seed=5), 17, 9)
    for node in tree.iter_nodes():
        if node.is_leaf:
            arr = node.points_array()
            assert arr.shape == (len(node.points), 2)
            for i, pt in enumerate(node.points):
                assert (arr[i, 0], arr[i, 1]) == (pt.x, pt.y)
        else:
            arr = node.child_mbr_array()
            counts = node.child_count_array()
            assert arr.shape == (len(node.children), 4)
            for i, child in enumerate(node.children):
                assert tuple(arr[i]) == tuple(child.mbr)
                assert counts[i] == child.point_count


@pytest.mark.parametrize("leaf_capacity,fanout", [(6, 3), (23, 14), (51, 28)])
def test_traversal_answers_bit_identical_across_paths(leaf_capacity, fanout):
    """Every in-memory query type returns the same answer on both paths."""
    s_tree = build_rtree(sized_uniform(900, seed=1), leaf_capacity, fanout)
    r_tree = build_rtree(sized_uniform(900, seed=2), leaf_capacity, fanout)
    rng = random.Random(0)
    queries = [
        Point(rng.uniform(0, 30_000), rng.uniform(0, 30_000)) for _ in range(25)
    ]

    def run_all():
        out = []
        for q in queries:
            rpt, rd = best_first_nn(r_tree, q)
            out.append((rpt, rd))
            out.append(transitive_nn(s_tree, q, rpt))
            out.append(tuple(best_first_knn(s_tree, q, 5)))
            out.append(tuple(range_search(s_tree, Circle(q, 4_000.0))))
            out.append(
                tuple(
                    window_search(
                        r_tree,
                        Rect(q.x - 3_000, q.y - 3_000, q.x + 3_000, q.y + 3_000),
                    )
                )
            )
        return out

    with kernels.use_kernels(False):
        scalar = run_all()
    with kernels.use_kernels(True):
        vector = run_all()
    assert scalar == vector


@pytest.mark.parametrize("capacity", [64, 512])
def test_engine_answers_bit_identical_across_paths(capacity):
    """Broadcast-engine query results are independent of the kernel path.

    The scalar path is the seed implementation, so equality here is the
    "bit-identical to seed" guarantee for whole-engine answers.
    """
    env = TNNEnvironment.build(
        sized_uniform(400, seed=1),
        sized_uniform(400, seed=2),
        SystemParameters(page_capacity=capacity),
    )
    workload = QueryWorkload(12, seed=3)
    for algo in (HybridNN(), DoubleNN(), WindowBasedTNN()):
        with kernels.use_kernels(False):
            scalar = BatchRunner(env, workload).run_algorithm(algo)
        with kernels.use_kernels(True):
            vector = BatchRunner(env, workload).run_algorithm(algo)
        assert scalar == vector


def test_use_kernels_context_restores_state():
    before = kernels.enabled()
    with kernels.use_kernels(not before):
        assert kernels.enabled() is (not before)
    assert kernels.enabled() is before


def test_trans_lower_multi_matches_scalar_exactly():
    """Per-row Lemma 1 lanes == ``min_trans_dist`` bit for bit.

    ``trans_lower_multi`` resolves the shared-scan margin band, so it
    must replay the scalar transitive lower bound exactly — including
    degenerate sliver MBRs, endpoints inside the rectangle, and grazing
    segments that touch a corner.
    """
    rng = random.Random(31)
    rows = []
    for _ in range(300):
        rect = _random_rect(rng)
        rows.append((_random_query(rng, rect), rect, _random_query(rng, rect)))
    # Degenerate slivers and containment cases.
    sliver_w = Rect(3.0, -2.0, 3.0, 9.0)
    sliver_h = Rect(-5.0, 1.5, 8.0, 1.5)
    box = Rect(0.0, 0.0, 10.0, 10.0)
    rows += [
        (Point(-4.0, 2.0), sliver_w, Point(11.0, 4.0)),
        (Point(3.0, -7.0), sliver_h, Point(3.0, 12.0)),
        (Point(4.0, 5.0), box, Point(22.0, 30.0)),   # p inside
        (Point(-9.0, -9.0), box, Point(6.0, 6.0)),   # r inside
        (Point(-5.0, 15.0), box, Point(15.0, -5.0)), # grazes the corner
        (Point(-3.0, -3.0), box, Point(-1.0, -4.0)), # both outside, no cross
    ]
    px = np.array([p.x for p, _, _ in rows])
    py = np.array([p.y for p, _, _ in rows])
    rx = np.array([r.x for _, _, r in rows])
    ry = np.array([r.y for _, _, r in rows])
    mbrs = kernels.as_mbr_array([rect for _, rect, _ in rows])
    lower = kernels.trans_lower_multi(px, py, mbrs, rx, ry)
    assert lower.shape == (len(rows),)
    for i, (p, rect, r) in enumerate(rows):
        assert min_trans_dist(p, rect, r) == lower[i]
    # Row-diagonal agreement with the fan-out kernel.
    starts = np.column_stack((px, py))
    ends = np.column_stack((rx, ry))
    fan_lower, _ = kernels.trans_bounds_multi(
        starts, np.ascontiguousarray(mbrs[:, None, :]), ends
    )
    assert np.array_equal(fan_lower[:, 0], lower)
