"""Tests cross-validating the analytical models against the simulator."""

import math
import random

import pytest

from repro.analysis import (
    expected_object_wait,
    expected_root_wait,
    expected_search_radius_tnn,
    index_overhead_ratio,
    optimal_m_analytic,
    probe_wait_curve,
)
from repro.broadcast import (
    BroadcastChannel,
    BroadcastProgram,
    SystemParameters,
    optimal_m,
)
from repro.geometry import Point
from repro.rtree import str_pack


def make_program(n=300, m=4, seed=0):
    rng = random.Random(seed)
    pts = [Point(rng.random() * 1000, rng.random() * 1000) for _ in range(n)]
    params = SystemParameters(page_capacity=64)
    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    return BroadcastProgram(tree, params, m=m)


def test_root_wait_matches_simulation():
    prog = make_program()
    model = expected_root_wait(prog.index_length, prog.data_length, prog.m)
    rng = random.Random(1)
    ch = BroadcastChannel(prog, phase=0.0)
    waits = []
    for _ in range(3000):
        t = rng.uniform(0, prog.cycle_length)
        waits.append(ch.next_root_arrival(t) - t)
    empirical = sum(waits) / len(waits)
    assert abs(empirical - model) / model < 0.05


def test_object_wait_matches_simulation():
    prog = make_program(m=2)
    model = expected_object_wait(prog.index_length, prog.data_length, prog.m)
    rng = random.Random(2)
    ch = BroadcastChannel(prog, phase=0.0)
    waits = []
    off = prog.data_length // 3
    for _ in range(3000):
        t = rng.uniform(0, prog.cycle_length)
        waits.append(ch.next_data_arrival(off, t) - t)
    empirical = sum(waits) / len(waits)
    assert abs(empirical - model) / model < 0.05


def test_index_overhead_monotone_in_m():
    overheads = [index_overhead_ratio(100, 10_000, m) for m in (1, 2, 4, 8, 16)]
    assert overheads == sorted(overheads)
    assert 0 < overheads[0] < overheads[-1] < 1


def test_optimal_m_consistent_with_program_default():
    prog = make_program(m=None and 1)  # just for sizes
    analytic = optimal_m_analytic(prog.index_length, prog.data_length)
    rounded = optimal_m(prog.index_length, prog.data_length)
    assert abs(rounded - analytic) <= 1.0


def test_optimal_m_edge_cases():
    assert optimal_m_analytic(100, 0) == 1.0
    with pytest.raises(ValueError):
        optimal_m_analytic(0, 10)


def test_probe_wait_curve_is_u_shaped():
    curve = probe_wait_curve(500, 50_000, [1, 2, 4, 8, 16, 32, 64, 128])
    values = list(curve.values())
    best = min(values)
    assert values[0] > best  # m=1 too few replicas
    assert values[-1] > best  # m=128 cycle too long
    best_m = min(curve, key=curve.get)
    analytic = optimal_m_analytic(500, 50_000)
    assert best_m / 4 <= analytic <= best_m * 4


def test_expected_radius_matches_equation1():
    from repro.core import uniform_knn_radius

    area = 1000.0 * 1000.0
    want = uniform_knn_radius(500, area) + uniform_knn_radius(800, area)
    assert math.isclose(expected_search_radius_tnn(500, 800, area), want)


def test_model_validation():
    with pytest.raises(ValueError):
        expected_root_wait(0, 10, 1)
    with pytest.raises(ValueError):
        expected_object_wait(10, 10, 0)
    with pytest.raises(ValueError):
        index_overhead_ratio(-1, 10, 1)
