"""Tests for BroadcastChannel phase shifts and ChannelTuner accounting."""

import random

from repro.broadcast import (
    BroadcastChannel,
    BroadcastProgram,
    ChannelTuner,
    SystemParameters,
)
from repro.geometry import Point
from repro.rtree import str_pack


def make_program(n=80, seed=0, m=2, capacity=64):
    rng = random.Random(seed)
    pts = [Point(rng.random() * 1000, rng.random() * 1000) for _ in range(n)]
    params = SystemParameters(page_capacity=capacity)
    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    return BroadcastProgram(tree, params, m=m)


def test_zero_phase_matches_program():
    prog = make_program()
    ch = BroadcastChannel(prog, phase=0.0)
    assert ch.next_index_arrival(0, 0.0) == prog.next_index_arrival(0, 0.0)
    assert ch.next_index_arrival(7, 3.0) == prog.next_index_arrival(7, 3.0)


def test_phase_shifts_arrivals():
    prog = make_program()
    ch = BroadcastChannel(prog, phase=10.0)
    # Root (offset 0) first airs at t=10.
    assert ch.next_root_arrival(0.0) == 10.0
    assert ch.next_root_arrival(10.0) == 10.0


def test_phase_wraps_modulo_cycle():
    prog = make_program()
    ch = BroadcastChannel(prog, phase=prog.cycle_length + 5.0)
    assert ch.phase == 5.0


def test_data_arrival_with_phase():
    prog = make_program()
    ch = BroadcastChannel(prog, phase=3.0)
    expected = prog.data_page_position(0) + 3.0
    assert ch.next_data_arrival(0, 0.0) == expected


def test_download_object_contiguous():
    prog = make_program(capacity=256)  # 4 pages per object
    ch = BroadcastChannel(prog, phase=0.0)
    start = float(prog.data_page_position(0))
    finish, pages = ch.download_object(0, 0.0)
    assert pages == prog.params.pages_per_object
    # Object 0 sits at the start of chunk 0: contiguous slots.
    assert finish == start + pages


def test_download_object_straddling_chunk_waits():
    """An object crossing a chunk boundary must wait out the index copy."""
    prog = make_program(n=33, m=4, capacity=256)
    ppo = prog.params.pages_per_object
    # Find an object whose pages straddle two chunks.
    straddler = None
    for obj in range(prog.object_count):
        offs = prog.object_data_offsets(obj)
        if {off // prog.chunk_length for off in offs} != {offs[0] // prog.chunk_length}:
            straddler = obj
            break
    if straddler is None:  # layout happened to align; nothing to check
        return
    ch = BroadcastChannel(prog, phase=0.0)
    first = ch.next_data_arrival(prog.object_data_offsets(straddler)[0], 0.0)
    finish, pages = ch.download_object(straddler, 0.0)
    assert pages == ppo
    # Total elapsed exceeds the contiguous ppo slots because of the gap.
    assert finish - first > ppo


def test_tuner_accounting():
    prog = make_program()
    tuner = ChannelTuner(BroadcastChannel(prog, phase=0.0))
    assert tuner.pages_downloaded == 0
    t1 = tuner.download_index_page(0)
    assert t1 == 1.0
    assert tuner.index_pages == 1
    t2 = tuner.download_index_page(1)
    assert t2 == 2.0
    tuner.download_object(0)
    assert tuner.data_pages == prog.params.pages_per_object
    assert tuner.pages_downloaded == 2 + prog.params.pages_per_object


def test_tuner_dozing_is_free():
    prog = make_program()
    tuner = ChannelTuner(BroadcastChannel(prog, phase=0.0))
    tuner.advance_to(500.0)
    assert tuner.now == 500.0
    assert tuner.pages_downloaded == 0
    tuner.advance_to(100.0)  # cannot move backwards
    assert tuner.now == 500.0


def test_tuner_missed_page_costs_waiting_not_energy():
    prog = make_program(m=2)
    tuner = ChannelTuner(BroadcastChannel(prog, phase=0.0))
    tuner.advance_to(5.0)  # page 2 of the first index copy already aired
    tuner.download_index_page(2)
    assert tuner.index_pages == 1
    assert tuner.now == prog.super_page_length + 2 + 1


def test_receive_returns_int_attempt_count():
    """_receive counts attempts (int), while download_* returns finish time."""
    prog = make_program()
    tuner = ChannelTuner(BroadcastChannel(prog, phase=0.0))
    attempts = tuner._receive(
        lambda t: tuner.channel.next_index_arrival(0, t), "index", 0
    )
    assert attempts == 1 and isinstance(attempts, int)
    finish = tuner.download_index_page(1)
    assert isinstance(finish, float) and finish == tuner.now
    # Every log entry is a (kind, ref, arrival, ok) tuple.
    assert all(
        isinstance(e, tuple) and len(e) == 4 and isinstance(e[3], bool)
        for e in tuner.log
    )
