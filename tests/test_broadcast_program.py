"""Tests for the (1, m) broadcast program layout and arrival arithmetic."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast import BroadcastProgram, SystemParameters, optimal_m
from repro.geometry import Point
from repro.rtree import str_pack


def make_tree(n=100, seed=0, leaf_cap=6, fanout=3):
    rng = random.Random(seed)
    pts = [Point(rng.random() * 1000, rng.random() * 1000) for _ in range(n)]
    return str_pack(pts, leaf_capacity=leaf_cap, fanout=fanout)


def test_optimal_m_formula():
    assert optimal_m(100, 10_000) == 10
    assert optimal_m(100, 100) == 1
    assert optimal_m(100, 0) == 1
    assert optimal_m(10, 250) == 5


def test_optimal_m_invalid():
    with pytest.raises(ValueError):
        optimal_m(0, 100)


def test_program_lengths():
    tree = make_tree(100)
    params = SystemParameters(page_capacity=64)
    prog = BroadcastProgram(tree, params, m=2)
    assert prog.index_length == tree.node_count()
    assert prog.data_length == 100 * params.pages_per_object
    assert prog.chunk_length == math.ceil(prog.data_length / 2)
    assert prog.cycle_length == 2 * (prog.index_length + prog.chunk_length)


def test_page_ids_assigned_in_preorder():
    tree = make_tree(60)
    BroadcastProgram(tree, m=1)
    ids = [node.page_id for node in tree.iter_nodes()]
    assert ids == list(range(tree.node_count()))
    assert tree.root.page_id == 0


def test_index_positions_replicated_m_times():
    tree = make_tree(80)
    prog = BroadcastProgram(tree, m=3)
    positions = prog.index_page_positions(5)
    assert len(positions) == 3
    sp = prog.super_page_length
    assert positions == [5, sp + 5, 2 * sp + 5]


def test_index_position_out_of_range():
    prog = BroadcastProgram(make_tree(30), m=1)
    with pytest.raises(ValueError):
        prog.index_page_positions(prog.index_length)
    with pytest.raises(ValueError):
        prog.index_page_positions(-1)


def test_data_page_positions_follow_index():
    tree = make_tree(50)
    prog = BroadcastProgram(tree, m=2)
    # First data page of chunk 0 sits right after the first index copy.
    assert prog.data_page_position(0) == prog.index_length
    # First data page of chunk 1 sits after the second index copy.
    assert (
        prog.data_page_position(prog.chunk_length)
        == prog.super_page_length + prog.index_length
    )


def test_object_data_offsets():
    tree = make_tree(20)
    params = SystemParameters(page_capacity=64)  # 16 pages per object
    prog = BroadcastProgram(tree, params, m=1)
    offs = prog.object_data_offsets(3)
    assert offs == list(range(48, 64))


def test_object_index_out_of_range():
    prog = BroadcastProgram(make_tree(20), m=1)
    with pytest.raises(ValueError):
        prog.object_data_offsets(20)


def test_next_arrival_basic():
    tree = make_tree(40)
    prog = BroadcastProgram(tree, m=2)
    # Page 0 (the root) is on air at cycle offsets 0 and super_page_length.
    assert prog.next_index_arrival(0, 0.0) == 0.0
    assert prog.next_index_arrival(0, 0.5) == prog.super_page_length
    assert prog.next_index_arrival(0, 1.0) == prog.super_page_length


def test_next_arrival_wraps_cycle():
    tree = make_tree(40)
    prog = BroadcastProgram(tree, m=1)
    last_slot = prog.cycle_length - 1
    # Just after the final replica, the next arrival is in the next cycle.
    t = float(prog.index_length)  # past all index pages of the only copy
    arrival = prog.next_index_arrival(3, t)
    assert arrival == prog.cycle_length + 3
    assert arrival > last_slot


def test_missed_page_waits_for_next_replica():
    tree = make_tree(60)
    prog = BroadcastProgram(tree, m=4)
    sp = prog.super_page_length
    # Miss page 10 by one slot -> wait for the replica in the next super page.
    assert prog.next_index_arrival(10, 11.0) == sp + 10


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.floats(min_value=0, max_value=1e6, allow_nan=False),
    st.integers(min_value=0, max_value=100),
)
def test_arrival_properties(m, now, page_id):
    tree = make_tree(120, seed=9)
    prog = BroadcastProgram(tree, m=m)
    page_id = page_id % prog.index_length
    arrival = prog.next_index_arrival(page_id, now)
    # Arrival is never in the past and within one cycle of the request.
    assert arrival >= now - 1e-9
    assert arrival <= math.ceil(now) + prog.cycle_length
    # The arrival slot actually carries the page.
    offset = int(arrival) % prog.cycle_length
    assert offset in prog.index_page_positions(page_id)
    # Idempotence: asking again at the arrival returns the same slot.
    assert prog.next_index_arrival(page_id, arrival) == arrival


def test_no_data_pages_program():
    """A program can be index-only (data retrieval disabled scenario)."""
    tree = make_tree(10)
    params = SystemParameters(page_capacity=64, data_object_size=1024)
    prog = BroadcastProgram(tree, params, m=1)
    assert prog.data_length == 160


def test_optimal_m_argmin_beats_rounding():
    """Regression: round(sqrt(data/index)) can pick the worse integer.

    index=4, data=25 has m* = 2.5; round() gives 2, but the expected
    access time (m+1)/2 * (index + data/m) is lower at m = 3.
    """
    from repro.broadcast.program import expected_access_pages

    assert optimal_m(4, 25) == 3
    assert expected_access_pages(4, 25, 3) < expected_access_pages(4, 25, 2)
    # And the symmetric family: m* = k + 0.5 always favours the ceil here.
    assert optimal_m(4, 81) == 5
    assert expected_access_pages(4, 81, 5) < expected_access_pages(4, 81, 4)


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=1, max_value=60),
    st.integers(min_value=0, max_value=5_000),
)
def test_optimal_m_is_global_integer_argmin(index_pages, data_pages):
    from repro.broadcast.program import expected_access_pages

    m = optimal_m(index_pages, data_pages)
    if data_pages == 0:
        assert m == 1
        return
    best = min(
        range(1, data_pages + 2),
        key=lambda k: (expected_access_pages(index_pages, data_pages, k), k),
    )
    assert m == best


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.floats(min_value=0, max_value=1e6, allow_nan=False),
    st.integers(min_value=0, max_value=1_000),
)
def test_closed_form_arrival_matches_position_scan(m, now, page_id):
    """next_index_arrival's O(1) modular form == scanning every position."""
    tree = make_tree(120, seed=9)
    prog = BroadcastProgram(tree, m=m)
    page_id = page_id % prog.index_length
    closed = prog.next_index_arrival(page_id, now)
    scanned = prog.next_arrival_at_positions(prog.index_page_positions(page_id), now)
    assert closed == scanned
    # The cached numpy table gives the same answer through the generic path.
    array = prog.index_position_array(page_id)
    assert prog.next_arrival_at_positions(array, now) == scanned


def test_index_position_array_cached_table():
    import numpy as np

    tree = make_tree(60, seed=4)
    prog = BroadcastProgram(tree, m=3)
    arr = prog.index_position_array(5)
    assert isinstance(arr, np.ndarray)
    assert arr.tolist() == [5 + j * prog.super_page_length for j in range(3)]
    assert prog.index_page_positions(5) == arr.tolist()
    with pytest.raises(ValueError):
        prog.index_position_array(prog.index_length)


def test_next_arrival_at_positions_rejects_empty_array():
    import numpy as np

    tree = make_tree(30, seed=2)
    prog = BroadcastProgram(tree, m=2)
    with pytest.raises(ValueError):
        prog.next_arrival_at_positions(np.asarray([], dtype=np.int64), 0.0)
