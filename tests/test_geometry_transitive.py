"""Tests for the paper's transitive distance metrics (Definitions 1-3)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    Point,
    Rect,
    distance,
    max_dist,
    min_max_trans_dist,
    min_trans_dist,
    transitive_distance,
)

coords = st.floats(min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)
unit = st.floats(min_value=0.0, max_value=1.0)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    return Rect(x1, y1, x2, y2)


# ----------------------------------------------------------------------
# Case 1: the segment pr crosses the MBR.
# ----------------------------------------------------------------------
def test_case1_segment_through_mbr():
    mbr = Rect(1, -1, 2, 1)
    p, r = Point(0, 0), Point(4, 0)
    assert min_trans_dist(p, mbr, r) == distance(p, r) == 4.0


def test_case1_endpoint_inside_mbr():
    mbr = Rect(0, 0, 2, 2)
    p, r = Point(1, 1), Point(5, 1)
    assert min_trans_dist(p, mbr, r) == 4.0


# ----------------------------------------------------------------------
# Case 2: reflection across a side.
# ----------------------------------------------------------------------
def test_case2_reflection():
    # MBR below both points; shortest path bounces off the top side y=1.
    mbr = Rect(0, 0, 10, 1)
    p, r = Point(2, 3), Point(6, 3)
    # Reflect r across y=1 -> (6, -1); straight distance from (2,3) is
    # sqrt(16 + 16) = 4*sqrt(2).
    expected = math.hypot(4, 4)
    assert math.isclose(min_trans_dist(p, mbr, r), expected, rel_tol=1e-12)


def test_case2_matches_brute_force_on_boundary():
    mbr = Rect(0, 0, 10, 1)
    p, r = Point(2, 3), Point(6, 3)
    brute = min(
        transitive_distance(p, Point(x / 100.0, 1.0), r) for x in range(0, 1001)
    )
    assert min_trans_dist(p, mbr, r) <= brute + 1e-9


# ----------------------------------------------------------------------
# Case 3: the optimum bends at a vertex.
# ----------------------------------------------------------------------
def test_case3_vertex():
    # p and r on perpendicular sides of the MBR's corner region such that
    # neither the direct segment nor any same-side reflection helps.
    mbr = Rect(0, 0, 1, 1)
    p, r = Point(2, -1), Point(-1, 2)
    # The direct segment from (2,-1) to (-1,2) passes through... check: the
    # line x + y = 1 touches corners (1,0) and (0,1) -> it grazes the MBR
    # diagonal, so move the points outward to avoid case 1.
    p, r = Point(3, -2), Point(-2, 3)
    got = min_trans_dist(p, mbr, r)
    vertex_best = min(
        distance(p, v) + distance(v, r) for v in mbr.corners()
    )
    assert math.isclose(got, vertex_best, rel_tol=1e-12)


def test_degenerate_point_mbr():
    mbr = Rect(1, 1, 1, 1)
    p, r = Point(0, 0), Point(2, 0)
    expected = distance(p, Point(1, 1)) + distance(Point(1, 1), r)
    assert math.isclose(min_trans_dist(p, mbr, r), expected, rel_tol=1e-12)


def test_p_equals_r():
    mbr = Rect(0, 0, 1, 1)
    p = Point(3, 0.5)
    # Shortest out-and-back path touches the nearest rectangle point (1, .5).
    assert math.isclose(min_trans_dist(p, mbr, p), 4.0, rel_tol=1e-12)


# ----------------------------------------------------------------------
# MaxDist / MinMaxTransDist
# ----------------------------------------------------------------------
def test_max_dist_endpoints():
    p, r = Point(0, 0), Point(4, 0)
    side = (Point(1, 1), Point(3, 1))
    expected = max(
        distance(p, side[0]) + distance(side[0], r),
        distance(p, side[1]) + distance(side[1], r),
    )
    assert max_dist(p, side, r) == expected


def test_min_max_trans_dist_square():
    mbr = Rect(0, 0, 2, 2)
    p, r = Point(-1, 1), Point(5, 1)
    value = min_max_trans_dist(p, mbr, r)
    # Must be at least the unavoidable straight distance and at most the
    # worst corner detour.
    assert value >= distance(p, r)
    assert value <= max(transitive_distance(p, c, r) for c in mbr.corners()) + 1e-9


# ----------------------------------------------------------------------
# Property tests: the fundamental sandwich
#   min_trans_dist <= trans-dist(through any x in MBR)
#   min_trans_dist <= min_max_trans_dist <= max corner detour
# ----------------------------------------------------------------------
@settings(max_examples=200)
@given(points, rects(), points, unit, unit)
def test_min_trans_dist_is_lower_bound(p, mbr, r, tx, ty):
    x = Point(mbr.xmin + tx * mbr.width, mbr.ymin + ty * mbr.height)
    assert min_trans_dist(p, mbr, r) <= transitive_distance(p, x, r) + 1e-6


@settings(max_examples=200)
@given(points, rects(), points)
def test_min_le_minmax(p, mbr, r):
    assert min_trans_dist(p, mbr, r) <= min_max_trans_dist(p, mbr, r) + 1e-6


@settings(max_examples=200)
@given(points, rects(), points)
def test_min_trans_dist_at_least_direct_minus_eps(p, mbr, r):
    # Any detour through the MBR is at least the direct distance.
    assert min_trans_dist(p, mbr, r) >= distance(p, r) - 1e-6


@settings(max_examples=200)
@given(points, rects(), points, unit)
def test_max_dist_upper_bounds_side_points(p, mbr, r, t):
    for u, v in mbr.sides():
        x = Point(u.x + t * (v.x - u.x), u.y + t * (v.y - u.y))
        assert transitive_distance(p, x, r) <= max_dist(p, (u, v), r) + 1e-6


@settings(max_examples=200)
@given(points, rects(), points)
def test_min_trans_dist_tightness_via_boundary_scan(p, mbr, r):
    """min_trans_dist must be attainable: some boundary/interior point gets
    within a coarse discretisation error of the bound."""
    lower = min_trans_dist(p, mbr, r)
    # Sample the boundary densely plus the direct-segment case.
    best = distance(p, r) if lower == distance(p, r) else math.inf
    for u, v in mbr.sides():
        for i in range(33):
            t = i / 32.0
            x = Point(u.x + t * (v.x - u.x), u.y + t * (v.y - u.y))
            best = min(best, transitive_distance(p, x, r))
    diag = math.hypot(mbr.width, mbr.height)
    assert best >= lower - 1e-6
    assert best <= lower + diag / 8.0 + 1e-6
