"""Tests for the Hilbert curve used by the Hilbert packer."""

import pytest

from repro.rtree.hilbert import hilbert_index, hilbert_key_for


def test_order1_visits_four_cells():
    # The order-1 curve visits (0,0), (0,1), (1,1), (1,0).
    assert hilbert_index(1, 0, 0) == 0
    assert hilbert_index(1, 0, 1) == 1
    assert hilbert_index(1, 1, 1) == 2
    assert hilbert_index(1, 1, 0) == 3


def test_bijection_order3():
    order = 3
    side = 1 << order
    seen = {hilbert_index(order, x, y) for x in range(side) for y in range(side)}
    assert seen == set(range(side * side))


def test_curve_is_continuous_order4():
    """Consecutive Hilbert indices map to 4-adjacent grid cells."""
    order = 4
    side = 1 << order
    by_d = {}
    for x in range(side):
        for y in range(side):
            by_d[hilbert_index(order, x, y)] = (x, y)
    for d in range(side * side - 1):
        (x1, y1), (x2, y2) = by_d[d], by_d[d + 1]
        assert abs(x1 - x2) + abs(y1 - y2) == 1


def test_out_of_range_raises():
    with pytest.raises(ValueError):
        hilbert_index(2, 4, 0)
    with pytest.raises(ValueError):
        hilbert_index(2, 0, -1)


def test_key_for_clamps_boundary():
    # fx == 1.0 must clamp into the last cell instead of overflowing.
    assert hilbert_key_for(4, 1.0, 1.0) == hilbert_index(4, 15, 15)
    assert hilbert_key_for(4, 0.0, 0.0) == hilbert_index(4, 0, 0)


def test_key_for_negative_clamps():
    assert hilbert_key_for(4, -0.5, -0.5) == hilbert_index(4, 0, 0)
