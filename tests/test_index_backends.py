"""Grid and quadtree air-index builders: structure and query equivalence.

Both alternative backends materialise their partitioning as a valid packed
R-tree container (tight MBRs, balanced levels, bounded fanout), so the
entire client stack — traversal, frontier, kernels, shared scan — runs on
them unchanged.  These tests pin that contract: ``validate()`` passes,
packed kernel arrays are present, and NN/kNN/range answers match brute
force on uniform and clustered datasets at the paper's fanouts.
"""

import math
import random

import pytest

from repro.datasets import gaussian_clusters, sized_uniform
from repro.geometry import Circle, Point
from repro.index.grid import default_grid_cells, grid_pack
from repro.index.quadtree import quadtree_pack
from repro.rtree.traversal import best_first_knn, best_first_nn, range_search


BUILDERS = {
    "grid": lambda pts, cap, fan: grid_pack(pts, cap, fan),
    "quadtree": lambda pts, cap, fan: quadtree_pack(pts, cap, fan),
}


def _datasets():
    return {
        "uniform": sized_uniform(400, seed=11),
        "clustered": gaussian_clusters(400, clusters=5, seed=12),
    }


@pytest.mark.parametrize("backend", sorted(BUILDERS))
@pytest.mark.parametrize("fanout", [3, 4, 8])
def test_backend_builds_valid_tree(backend, fanout):
    for name, pts in _datasets().items():
        tree = BUILDERS[backend](pts, 10, fanout)
        tree.validate()
        assert tree.size == len(pts)
        assert sorted(tree.iter_points()) == sorted(pts)


@pytest.mark.parametrize("backend", sorted(BUILDERS))
def test_backend_nn_matches_brute_force(backend):
    rng = random.Random(5)
    for pts in _datasets().values():
        tree = BUILDERS[backend](pts, 10, 4)
        for _ in range(25):
            q = Point(rng.uniform(-1000, 40000), rng.uniform(-1000, 40000))
            got, d = best_first_nn(tree, q)
            want = min(q.distance_to(p) for p in pts)
            assert math.isclose(d, want)
            assert math.isclose(q.distance_to(got), want)


@pytest.mark.parametrize("backend", sorted(BUILDERS))
def test_backend_knn_and_range_match_brute_force(backend):
    rng = random.Random(6)
    pts = sized_uniform(300, seed=13)
    tree = BUILDERS[backend](pts, 8, 4)
    for _ in range(10):
        q = Point(rng.uniform(0, 39000), rng.uniform(0, 39000))
        want = sorted(q.distance_to(p) for p in pts)[:7]
        got = [d for _, d in best_first_knn(tree, q, 7)]
        assert all(math.isclose(a, b) for a, b in zip(got, want))
        radius = rng.uniform(500, 5000)
        in_range = {p for p in pts if q.distance_to(p) <= radius}
        assert set(range_search(tree, Circle(q, radius))) == in_range


@pytest.mark.parametrize("backend", sorted(BUILDERS))
def test_backend_emits_packed_kernel_arrays(backend):
    """The packed-index representation the geometry kernels consume."""
    tree = BUILDERS[backend](sized_uniform(200, seed=14), 10, 4)
    internal = [n for n in tree.iter_nodes() if not n.is_leaf]
    leaves = [n for n in tree.iter_nodes() if n.is_leaf]
    for node in internal:
        mbrs = node.child_mbr_array()
        assert mbrs.shape == (len(node.children), 4)
        assert node.child_count_array().shape == (len(node.children),)
    for leaf in leaves:
        assert leaf.points_array().shape == (len(leaf.points), 2)


def test_default_grid_cells_scales_with_density():
    assert default_grid_cells(0, 10) == 1
    assert default_grid_cells(10, 10) == 1
    # ~100 leaves -> 10 x 10 cells
    assert default_grid_cells(1000, 10) == 10
    assert default_grid_cells(1001, 10) == 11


def test_grid_explicit_cells_override():
    pts = sized_uniform(200, seed=15)
    tree = grid_pack(pts, 10, 4, cells=3)
    tree.validate()
    assert sorted(tree.iter_points()) == sorted(pts)


def test_quadtree_duplicate_points_terminate():
    """Indivisible duplicates stop at max_depth instead of recursing."""
    pts = [Point(5.0, 5.0)] * 37 + [Point(9.0, 9.0)] * 3
    tree = quadtree_pack(pts, 4, 4, max_depth=6)
    tree.validate()
    assert tree.size == 40
    _, d = best_first_nn(tree, Point(5.1, 5.0))
    assert math.isclose(d, 0.1)


def test_single_point_and_tiny_datasets():
    for builder in BUILDERS.values():
        tree = builder([Point(1.0, 2.0)], 4, 4)
        tree.validate()
        assert list(tree.iter_points()) == [Point(1.0, 2.0)]
