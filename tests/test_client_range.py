"""Tests for the broadcast range (circle) search."""

import random

import pytest

from repro.broadcast import (
    BroadcastChannel,
    BroadcastProgram,
    ChannelTuner,
    SystemParameters,
)
from repro.client import BroadcastRangeSearch
from repro.geometry import Circle, Point
from repro.rtree import str_pack
from repro.rtree.traversal import range_search


def make_setup(n=300, seed=0, m=2, phase=0.0):
    rng = random.Random(seed)
    pts = [Point(rng.random() * 1000, rng.random() * 1000) for _ in range(n)]
    params = SystemParameters(page_capacity=64)
    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    program = BroadcastProgram(tree, params, m=m)
    tuner = ChannelTuner(BroadcastChannel(program, phase=phase))
    return pts, tree, tuner


@pytest.mark.parametrize("seed", range(5))
def test_range_matches_in_memory(seed):
    pts, tree, tuner = make_setup(seed=seed)
    circle = Circle(Point(400, 500), 150.0)
    got = BroadcastRangeSearch(tree, tuner, circle).run_to_completion()
    want = range_search(tree, circle)
    assert sorted(got) == sorted(want)


def test_range_empty_result():
    _, tree, tuner = make_setup(seed=5)
    got = BroadcastRangeSearch(tree, tuner, Circle(Point(-9999, -9999), 5)).run_to_completion()
    assert got == []
    # Only the root page was downloaded (the circle misses all children)
    # or even zero pages if it misses the root MBR as well.
    assert tuner.index_pages <= 1


def test_range_full_coverage_downloads_all_pages():
    pts, tree, tuner = make_setup(n=120, seed=6)
    circle = Circle(Point(500, 500), 1e6)
    got = BroadcastRangeSearch(tree, tuner, circle).run_to_completion()
    assert len(got) == len(pts)
    assert tuner.index_pages == tree.node_count()


def test_range_small_circle_downloads_few_pages():
    pts, tree, tuner = make_setup(n=800, seed=7)
    circle = Circle(Point(500, 500), 30.0)
    BroadcastRangeSearch(tree, tuner, circle).run_to_completion()
    assert tuner.index_pages < tree.node_count() / 4


def test_range_respects_start_time():
    _, tree, tuner = make_setup(seed=8)
    search = BroadcastRangeSearch(tree, tuner, Circle(Point(500, 500), 100), start_time=42.0)
    assert tuner.now == 42.0
    search.run_to_completion()
    assert tuner.now > 42.0


def test_range_step_on_finished_raises():
    _, tree, tuner = make_setup(n=10, seed=9)
    s = BroadcastRangeSearch(tree, tuner, Circle(Point(0, 0), 1.0))
    s.run_to_completion()
    with pytest.raises(RuntimeError):
        s.step()


# ----------------------------------------------------------------------
# Kernel path vs scalar oracle: bit-identical answers and tuner state
# ----------------------------------------------------------------------
@pytest.mark.parametrize("capacity", [64, 512])
@pytest.mark.parametrize("seed", range(6))
def test_range_kernel_path_bit_identical(capacity, seed):
    """Seeded sweep: kernel and scalar range queries agree exactly."""
    from repro.geometry import kernels

    rng = random.Random(3000 + seed)
    circle = Circle(
        Point(rng.uniform(0, 1000), rng.uniform(0, 1000)),
        rng.uniform(20, 350),
    )
    phase = rng.uniform(0, 100)
    n = 400 + 60 * seed

    results = {}
    for flag in (False, True):
        rng2 = random.Random(seed)
        pts = [
            Point(rng2.random() * 1000, rng2.random() * 1000)
            for _ in range(n)
        ]
        params = SystemParameters(page_capacity=capacity)
        tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
        program = BroadcastProgram(tree, params, m=2)
        tuner = ChannelTuner(BroadcastChannel(program, phase=phase))
        with kernels.use_kernels(flag):
            got = BroadcastRangeSearch(tree, tuner, circle).run_to_completion()
        results[flag] = (got, tuner.now, tuner.index_pages, tuple(tuner.log))
    assert results[False] == results[True]


def test_range_boundary_points_included():
    pts = [Point(0, 0), Point(3, 0), Point(5, 0)]
    params = SystemParameters(page_capacity=64)
    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    program = BroadcastProgram(tree, params, m=1)
    tuner = ChannelTuner(BroadcastChannel(program))
    got = BroadcastRangeSearch(tree, tuner, Circle(Point(0, 0), 3.0)).run_to_completion()
    assert sorted(got) == [Point(0, 0), Point(3, 0)]
