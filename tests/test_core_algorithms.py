"""Correctness of all TNN algorithms against the in-memory oracle.

The central invariant of the reproduction: every *exact* algorithm
(brute force, Window-Based, Double-NN, Hybrid-NN — with or without the ANN
optimisation) returns a pair whose transitive distance equals the oracle's
optimum, on every instance, regardless of channel phases.
"""

import math
import random

import pytest

from repro.broadcast import SystemParameters
from repro.core import (
    AnnOptimization,
    ApproximateTNN,
    BruteForceTNN,
    DoubleNN,
    HybridNN,
    TNNEnvironment,
    WindowBasedTNN,
)
from repro.core.join import verify_pair
from repro.geometry import Point
from repro.rtree import tnn_oracle


def small_env(ns=80, nr=60, seed=0, side=1000.0, capacity=64, m=2):
    rng = random.Random(seed)
    s_pts = [Point(rng.random() * side, rng.random() * side) for _ in range(ns)]
    r_pts = [Point(rng.random() * side, rng.random() * side) for _ in range(nr)]
    params = SystemParameters(page_capacity=capacity)
    return TNNEnvironment.build(s_pts, r_pts, params, m=m)


EXACT_ALGORITHMS = [BruteForceTNN, WindowBasedTNN, DoubleNN, HybridNN]


@pytest.fixture(scope="module")
def env():
    return small_env(seed=42)


@pytest.fixture(scope="module")
def oracle(env):
    def lookup(p):
        return tnn_oracle(p, env.s_tree, env.r_tree)

    return lookup


@pytest.mark.parametrize("algo_cls", EXACT_ALGORITHMS)
def test_exact_algorithms_match_oracle(algo_cls, env, oracle):
    rng = random.Random(7)
    algo = algo_cls()
    for _ in range(8):
        p = env.random_query_point(rng)
        phases = env.random_phases(rng)
        result = algo.run(env, p, *phases)
        _, _, want = oracle(p)
        assert not result.failed
        assert math.isclose(result.distance, want, rel_tol=1e-9), algo.name
        assert verify_pair(p, result.s, result.r, result.distance)


@pytest.mark.parametrize("algo_cls", [WindowBasedTNN, DoubleNN, HybridNN])
def test_ann_optimized_algorithms_still_exact(algo_cls, env, oracle):
    """Theorem 1: a larger ANN-derived radius never breaks correctness."""
    rng = random.Random(8)
    algo = algo_cls(optimization=AnnOptimization(factor=1.0))
    for _ in range(8):
        p = env.random_query_point(rng)
        phases = env.random_phases(rng)
        result = algo.run(env, p, *phases)
        _, _, want = oracle(p)
        assert math.isclose(result.distance, want, rel_tol=1e-9), algo.name


def test_hybrid_ann_small_factor_exact(env, oracle):
    rng = random.Random(9)
    algo = HybridNN(optimization=AnnOptimization(factor=1.0 / 150))
    for _ in range(6):
        p = env.random_query_point(rng)
        result = algo.run(env, p, *env.random_phases(rng))
        _, _, want = oracle(p)
        assert math.isclose(result.distance, want, rel_tol=1e-9)


@pytest.mark.parametrize("capacity", [64, 128, 256])
def test_exactness_across_page_capacities(capacity):
    env = small_env(seed=3, capacity=capacity)
    rng = random.Random(10)
    p = env.random_query_point(rng)
    want = tnn_oracle(p, env.s_tree, env.r_tree)[2]
    for algo_cls in (WindowBasedTNN, DoubleNN, HybridNN):
        result = algo_cls().run(env, p, *env.random_phases(rng))
        assert math.isclose(result.distance, want, rel_tol=1e-9)


def test_unbalanced_sizes_case2_path():
    """|S| much smaller than |R| forces Hybrid into Case 2."""
    env = small_env(ns=10, nr=500, seed=4)
    rng = random.Random(11)
    for _ in range(5):
        p = env.random_query_point(rng)
        want = tnn_oracle(p, env.s_tree, env.r_tree)[2]
        result = HybridNN().run(env, p, *env.random_phases(rng))
        assert math.isclose(result.distance, want, rel_tol=1e-9)


def test_unbalanced_sizes_case3_path():
    """|R| much smaller than |S| forces Hybrid into Case 3."""
    env = small_env(ns=500, nr=10, seed=5)
    rng = random.Random(12)
    for _ in range(5):
        p = env.random_query_point(rng)
        want = tnn_oracle(p, env.s_tree, env.r_tree)[2]
        result = HybridNN().run(env, p, *env.random_phases(rng))
        assert math.isclose(result.distance, want, rel_tol=1e-9)


def test_singleton_datasets():
    env = TNNEnvironment.build(
        [Point(10, 0)], [Point(20, 0)], SystemParameters(), m=1
    )
    for algo_cls in EXACT_ALGORITHMS:
        result = algo_cls().run(env, Point(0, 0))
        assert result.pair == (Point(10, 0), Point(20, 0))
        assert math.isclose(result.distance, 20.0)


def test_query_point_on_data_point(env):
    p = env.s_points[0]
    want = tnn_oracle(p, env.s_tree, env.r_tree)[2]
    for algo_cls in EXACT_ALGORITHMS:
        result = algo_cls().run(env, p)
        assert math.isclose(result.distance, want, rel_tol=1e-9)


def test_query_far_outside_region(env):
    p = Point(-5000.0, -5000.0)
    want = tnn_oracle(p, env.s_tree, env.r_tree)[2]
    for algo_cls in (WindowBasedTNN, DoubleNN, HybridNN):
        result = algo_cls().run(env, p)
        assert math.isclose(result.distance, want, rel_tol=1e-9)


# ----------------------------------------------------------------------
# Metric accounting invariants
# ----------------------------------------------------------------------
def test_result_accounting_consistency(env):
    rng = random.Random(13)
    p = env.random_query_point(rng)
    result = DoubleNN().run(env, p, *env.random_phases(rng))
    assert result.tune_in_time == result.tune_in_s + result.tune_in_r
    assert result.estimate_pages + result.filter_pages == result.tune_in_time
    assert result.access_time >= result.estimate_finish
    assert result.radius >= result.distance - 1e-9


def test_access_time_positive_and_bounded(env):
    rng = random.Random(14)
    p = env.random_query_point(rng)
    phases = env.random_phases(rng)
    for algo_cls in (WindowBasedTNN, DoubleNN, HybridNN):
        result = algo_cls().run(env, p, *phases)
        assert result.access_time > 0
        # A query should never need more than a few broadcast cycles.
        max_cycle = max(env.s_program.cycle_length, env.r_program.cycle_length)
        assert result.access_time < 5 * max_cycle


def test_double_and_hybrid_access_times_close(env):
    """Section 6.1.1: Double-NN and Hybrid-NN start and finish together.

    Re-steering can slightly change which pages the estimate phase visits,
    so allow a small tolerance rather than exact equality."""
    rng = random.Random(15)
    ratios = []
    for _ in range(10):
        p = env.random_query_point(rng)
        phases = env.random_phases(rng)
        d = DoubleNN().run(env, p, *phases)
        h = HybridNN().run(env, p, *phases)
        ratios.append(h.access_time / d.access_time)
    mean_ratio = sum(ratios) / len(ratios)
    assert 0.8 <= mean_ratio <= 1.2


def test_brute_force_downloads_whole_index(env):
    result = BruteForceTNN().run(env, Point(500, 500))
    assert result.tune_in_time == env.s_tree.node_count() + env.r_tree.node_count()


def test_estimate_filter_radius_guarantee(env):
    """Theorem 1: the answer pair always lies inside circle(p, radius)."""
    rng = random.Random(16)
    for algo_cls in (WindowBasedTNN, DoubleNN, HybridNN):
        p = env.random_query_point(rng)
        result = algo_cls().run(env, p, *env.random_phases(rng))
        assert p.distance_to(result.s) <= result.radius + 1e-9
        assert p.distance_to(result.r) <= result.radius + 1e-9


# ----------------------------------------------------------------------
# Approximate-TNN behaviour
# ----------------------------------------------------------------------
def test_approximate_tnn_on_uniform_data_usually_correct():
    env = small_env(ns=300, nr=300, seed=6)
    rng = random.Random(17)
    failures = 0
    for _ in range(10):
        p = env.random_query_point(rng)
        result = ApproximateTNN().run(env, p, *env.random_phases(rng))
        want = tnn_oracle(p, env.s_tree, env.r_tree)[2]
        if result.failed or not math.isclose(result.distance, want, rel_tol=1e-9):
            failures += 1
    assert failures == 0  # Table 3: uni-uni fail rate 0%


def test_approximate_tnn_zero_estimate_pages(env):
    result = ApproximateTNN().run(env, Point(500, 500))
    assert result.estimate_pages == 0
    assert result.estimate_finish == 0.0


def test_data_retrieval_accounting(env):
    rng = random.Random(18)
    p = env.random_query_point(rng)
    algo = DoubleNN(include_data_retrieval=True)
    result = algo.run(env, p)
    assert result.data_pages == 2 * env.params.pages_per_object
    no_data = DoubleNN().run(env, p)
    assert no_data.data_pages == 0
    assert result.access_time > no_data.access_time
