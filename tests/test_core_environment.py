"""Tests for TNNEnvironment and AnnOptimization policy selection."""

import random

import pytest

from repro.broadcast import SystemParameters
from repro.client.policies import AnnPolicy, ExactPolicy
from repro.core import AnnOptimization, TNNEnvironment
from repro.datasets import uniform
from repro.geometry import Point, Rect


@pytest.fixture(scope="module")
def env():
    return TNNEnvironment.build(
        uniform(120, seed=1, region=Rect(0, 0, 1000, 1000)),
        uniform(80, seed=2, region=Rect(0, 0, 1000, 1000)),
        SystemParameters(page_capacity=64),
        m=2,
    )


def test_build_creates_trees_and_programs(env):
    assert env.s_tree.size == 120
    assert env.r_tree.size == 80
    env.s_tree.validate()
    env.r_tree.validate()
    assert env.s_program.index_length == env.s_tree.node_count()
    assert env.region.contains_rect(env.s_tree.mbr)
    assert env.region.contains_rect(env.r_tree.mbr)


def test_tuners_are_fresh_and_phased(env):
    t1, t2 = env.tuners(phase_s=5.0, phase_r=9.0)
    assert t1.pages_downloaded == 0
    assert t2.pages_downloaded == 0
    assert t1.channel.phase == 5.0
    assert t2.channel.phase == 9.0
    # A second call returns independent tuners.
    t3, _ = env.tuners()
    t1.download_index_page(0)
    assert t3.pages_downloaded == 0


def test_random_phases_in_cycle(env):
    rng = random.Random(0)
    for _ in range(20):
        ps, pr = env.random_phases(rng)
        assert 0 <= ps < env.s_program.cycle_length
        assert 0 <= pr < env.r_program.cycle_length


def test_random_query_point_in_region(env):
    rng = random.Random(1)
    for _ in range(20):
        assert env.region.contains_point(env.random_query_point(rng))


def test_object_lookup_roundtrip(env):
    for i, p in enumerate(env.s_tree.iter_points()):
        assert env.s_object_of(p) == i
        if i > 20:
            break
    first_r = next(env.r_tree.iter_points())
    assert env.r_object_of(first_r) == 0


def test_packing_method_forwarded():
    env = TNNEnvironment.build(
        uniform(50, seed=3), uniform(50, seed=4), packing="hilbert"
    )
    env.s_tree.validate()


# ----------------------------------------------------------------------
# AnnOptimization policy selection (Section 6.2.2)
# ----------------------------------------------------------------------
def make_env(ns, nr):
    return TNNEnvironment.build(
        uniform(ns, seed=5, region=Rect(0, 0, 500, 500)),
        uniform(nr, seed=6, region=Rect(0, 0, 500, 500)),
        m=1,
    )


def test_ann_equal_sizes_both_approximate():
    ps, pr = AnnOptimization(factor=1.0).policies(make_env(50, 50))
    assert isinstance(ps, AnnPolicy)
    assert isinstance(pr, AnnPolicy)


def test_ann_density_aware_sparse_s_exact():
    ps, pr = AnnOptimization().policies(make_env(20, 200))
    assert isinstance(ps, ExactPolicy)  # S is sparser -> exact
    assert isinstance(pr, AnnPolicy)


def test_ann_density_aware_sparse_r_exact():
    ps, pr = AnnOptimization().policies(make_env(200, 20))
    assert isinstance(ps, AnnPolicy)
    assert isinstance(pr, ExactPolicy)


def test_ann_density_aware_disabled():
    ps, pr = AnnOptimization(density_aware=False).policies(make_env(20, 200))
    assert isinstance(ps, AnnPolicy)
    assert isinstance(pr, AnnPolicy)
