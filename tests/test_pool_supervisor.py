"""Shard-supervisor coverage: crashed workers, hung waves, serial rescue.

The shared-scan pool shards are pure functions of (algorithm, query
slice), so every supervisor recovery path — pool rebuild after a crash,
deadline-triggered teardown of a hung wave, resharding the failed slice,
and the in-process serial last resort — must merge results bit-identical
to the unsupervised serial run.  The chaos hook
(``REPRO_CHAOS_KILL_SHARD`` + ``REPRO_CHAOS_MARKER``) hard-kills exactly
one worker mid-campaign to prove it.
"""

import pytest

from repro.broadcast import SystemParameters
from repro.core import HybridNN, TNNEnvironment
from repro.datasets import sized_uniform
from repro.engine import SharedScanRunner
from repro.engine.batch import (
    _SupervisedPool,
    shard_backoff,
    shard_retries,
    shard_timeout,
)
from repro.engine.workload import QueryWorkload
from repro.geometry import kernels


@pytest.fixture(scope="module")
def env():
    return TNNEnvironment.build(
        sized_uniform(240, seed=3),
        sized_uniform(240, seed=4),
        params=SystemParameters(page_capacity=64),
    )


@pytest.fixture(scope="module")
def workload():
    return QueryWorkload(n_queries=6, seed=9)


@pytest.fixture(scope="module")
def reference(env, workload):
    """The unsupervised serial oracle for the shared workload."""
    with kernels.use_kernels(True):
        runner = SharedScanRunner(env, workload, workers=0)
        return runner.run_algorithm(HybridNN())


def test_supervisor_knobs_parse_env(monkeypatch):
    monkeypatch.delenv("REPRO_SHARD_TIMEOUT", raising=False)
    assert shard_timeout() is None  # 0 = disabled, old behaviour
    monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "2.5")
    assert shard_timeout() == 2.5
    monkeypatch.setenv("REPRO_SHARD_RETRIES", "7")
    assert shard_retries() == 7
    monkeypatch.setenv("REPRO_SHARD_BACKOFF", "0.25")
    assert shard_backoff() == 0.25


@pytest.mark.parametrize(
    "name,reader",
    [
        ("REPRO_SHARD_TIMEOUT", shard_timeout),
        ("REPRO_SHARD_RETRIES", shard_retries),
        ("REPRO_SHARD_BACKOFF", shard_backoff),
    ],
)
@pytest.mark.parametrize("raw", ["-1", "nan", "inf", "-inf", "soon", ""])
def test_supervisor_knobs_reject_garbage(monkeypatch, name, reader, raw):
    """Negative, non-finite or non-numeric knobs fail loudly at first
    read, naming the variable and the offending value."""
    if name == "REPRO_SHARD_RETRIES" and raw in ("nan", "inf", "-inf"):
        pass  # int() already rejects these as non-numeric — same error
    monkeypatch.setenv(name, raw)
    with pytest.raises(ValueError) as err:
        reader()
    assert name in str(err.value)
    assert repr(raw) in str(err.value)


def test_supervisor_knob_retries_rejects_fractional(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_RETRIES", "1.5")
    with pytest.raises(ValueError, match="REPRO_SHARD_RETRIES"):
        shard_retries()


def test_reshard_splits_failed_slice(env, workload):
    runner = SharedScanRunner(env, workload, workers=3)
    algo = HybridNN()
    items = [(i, *q) for i, q in enumerate(runner.queries)]
    # Two failed shards with interleaved workload indices merge, reorder
    # and split contiguously across the pool.
    pending = {
        0: (algo, [items[5], items[1], items[3]], True, 0),
        4: (algo, [items[0], items[2]], True, 4),
    }
    fresh = runner._reshard(pending, workers=3)
    assert sorted(fresh) == [0, 1, 2]
    merged = [item for k in sorted(fresh) for item in fresh[k][1]]
    assert [item[0] for item in merged] == [0, 1, 2, 3, 5]
    assert all(t[0] is algo and t[2] is True for t in fresh.values())
    # Degenerate inputs: nothing pending stays nothing.
    assert runner._reshard({}, workers=3) == {}


def test_chaos_kill_one_worker_bit_identical(
    tmp_path, monkeypatch, env, workload, reference
):
    """Kill one pool worker mid-campaign: the supervisor rebuilds the
    pool, retries the lost slice and merges bit-identical results."""
    marker = tmp_path / "chaos.marker"
    marker.write_text("armed")
    monkeypatch.setenv("REPRO_CHAOS_KILL_SHARD", "0")
    monkeypatch.setenv("REPRO_CHAOS_MARKER", str(marker))
    monkeypatch.setenv("REPRO_SHARD_BACKOFF", "0.01")
    with kernels.use_kernels(True):
        runner = SharedScanRunner(env, workload, workers=2)
        got = runner.run_algorithm(HybridNN())
    assert not marker.exists()  # the kill actually fired
    assert got == reference


def test_chaos_kill_with_no_retry_budget_falls_back_serial(
    tmp_path, monkeypatch, env, workload, reference
):
    """With a zero retry budget, a crashed wave degrades straight to the
    in-process serial last resort — still bit-identical."""
    marker = tmp_path / "chaos.marker"
    marker.write_text("armed")
    monkeypatch.setenv("REPRO_CHAOS_KILL_SHARD", "0")
    monkeypatch.setenv("REPRO_CHAOS_MARKER", str(marker))
    monkeypatch.setenv("REPRO_SHARD_RETRIES", "0")
    with kernels.use_kernels(True):
        runner = SharedScanRunner(env, workload, workers=2)
        got = runner.run_algorithm(HybridNN())
    assert not marker.exists()
    assert got == reference


def test_hung_wave_deadline_recovers(monkeypatch, env, workload, reference):
    """A deadline too short for any wave to finish plays the hung-worker
    scenario: every wave times out, the pool is torn down and rebuilt,
    and the serial last resort completes the campaign bit-identically."""
    monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "0.0001")
    monkeypatch.setenv("REPRO_SHARD_RETRIES", "1")
    monkeypatch.setenv("REPRO_SHARD_BACKOFF", "0.01")
    with kernels.use_kernels(True):
        runner = SharedScanRunner(env, workload, workers=2)
        got = runner.run_algorithm(HybridNN())
    assert got == reference


def test_supervised_run_mapping_shares_pool(
    tmp_path, monkeypatch, env, workload
):
    """run() over an algorithm mapping survives a chaos kill too — the
    supervised pool is shared and rebuilt across algorithms."""
    marker = tmp_path / "chaos.marker"
    marker.write_text("armed")
    monkeypatch.setenv("REPRO_CHAOS_KILL_SHARD", "0")
    monkeypatch.setenv("REPRO_CHAOS_MARKER", str(marker))
    monkeypatch.setenv("REPRO_SHARD_BACKOFF", "0.01")
    algos = {"hybrid": HybridNN()}
    with kernels.use_kernels(True):
        want = SharedScanRunner(env, workload, workers=0).run(algos)
        got = SharedScanRunner(env, workload, workers=2).run(algos)
    assert not marker.exists()
    assert got == want


def test_supervised_pool_rebuild_replaces_executor(env, workload):
    runner = SharedScanRunner(env, workload, workers=2)
    sp = _SupervisedPool(lambda: runner._make_pool(2))
    first = sp.pool
    sp.rebuild()
    try:
        assert sp.pool is not first
        # The fresh pool accepts work; the old one is shut down.
        assert sp.pool.submit(int, "7").result() == 7
        with pytest.raises(RuntimeError):
            first.submit(int, "7")
    finally:
        sp.shutdown()
