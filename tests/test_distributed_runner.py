"""End-to-end campaigns over the coordinator/worker protocol.

Every path must merge bit-identical to the serial shared-scan oracle:
real subprocess workers, an in-thread worker, the no-workers degradation
ladder, and the non-shared-scan fallback.  Workloads are tiny — the
point is the protocol, not throughput (BENCH_million_query.json covers
that).
"""

import threading

import pytest

from repro.broadcast import SystemParameters
from repro.core import ApproximateTNN, DoubleNN, HybridNN, TNNEnvironment
from repro.datasets import sized_uniform
from repro.engine import (
    QueryEngine,
    QueryWorkload,
    SharedScanRunner,
)
from repro.engine.distributed import CampaignConfig, run_worker
from repro.geometry import kernels
from repro.sim.stats import summarize_batch


@pytest.fixture(scope="module")
def env():
    return TNNEnvironment.build(
        sized_uniform(240, seed=3),
        sized_uniform(240, seed=4),
        params=SystemParameters(page_capacity=64),
    )


@pytest.fixture(scope="module")
def workload():
    return QueryWorkload(n_queries=12, seed=9)


@pytest.fixture(scope="module")
def reference(env, workload):
    with kernels.use_kernels(True):
        runner = SharedScanRunner(env, workload, workers=0)
        return runner.run_algorithm(HybridNN(), record_log=False)


def _config(**kw):
    base = dict(
        worker_wait=20.0,
        chunk_size=3,
        shard_size=4,
        heartbeat_interval=0.2,
        lease_timeout=10.0,
    )
    base.update(kw)
    return CampaignConfig(**base)


def test_campaign_over_subprocess_workers_bit_identical(
    env, workload, reference
):
    with kernels.use_kernels(True):
        out = QueryEngine(env).run_campaign(
            workload,
            HybridNN(),
            spawn_workers=2,
            config=_config(),
        )
    assert out.results == reference
    s = out.stats
    assert s["mode"] == "distributed"
    assert s["workers_seen"] == 2
    assert s["local_rescue_queries"] == 0
    assert s["n_queries"] == len(reference)
    # The stats ledger is coherent: every query was streamed exactly once.
    assert sum(w["queries"] for w in s["per_worker"].values()) == len(
        reference
    )
    assert summarize_batch(out.results) == summarize_batch(reference)


def test_campaign_with_in_thread_worker(env, workload, reference):
    """A worker living in this very process (no subprocess, no CLI)
    joins over TCP and the campaign still merges bit-identically."""
    from repro.engine.distributed import CampaignCoordinator

    with kernels.use_kernels(True):
        queries = workload.queries(env)
        coordinator = CampaignCoordinator(
            env,
            queries,
            HybridNN(),
            config=_config(),
            record_log=False,
            workload_spec=(workload.n_queries, workload.seed),
        )
        with coordinator:
            t = threading.Thread(
                target=run_worker,
                args=(coordinator.address,),
                kwargs={"name": "inproc", "retry_timeout": 10.0},
                daemon=True,
            )
            t.start()
            out = coordinator.run()
        t.join(timeout=10.0)
    assert out.results == reference
    assert out.stats["mode"] == "distributed"
    assert out.stats["workers_lost"] == 0  # clean goodbye, not a death


def test_no_workers_degrades_to_local_serial(env, workload, reference):
    with kernels.use_kernels(True):
        out = QueryEngine(env).run_campaign(
            workload,
            HybridNN(),
            spawn_workers=0,
            config=_config(worker_wait=0.1),
        )
    assert out.results == reference
    assert out.stats["mode"] == "local"
    assert out.stats["workers_seen"] == 0
    assert out.stats["local_rescue_queries"] == len(reference)


def test_no_workers_degrades_to_supervised_pool(env, workload, reference):
    with kernels.use_kernels(True):
        out = QueryEngine(env).run_campaign(
            workload,
            HybridNN(),
            spawn_workers=0,
            config=_config(worker_wait=0.1),
            local_workers=2,
        )
    assert out.results == reference
    assert out.stats["mode"] == "local"


def test_unsupported_algorithm_falls_back_to_local_runner(env, workload):
    """Algorithms outside the shared-scan family skip the distributed
    tier entirely — run_campaign is a drop-in for any campaign."""
    algo = ApproximateTNN()
    with kernels.use_kernels(True):
        want = SharedScanRunner(env, workload, workers=0).run_algorithm(
            algo, record_log=False
        )
        out = QueryEngine(env).run_campaign(workload, algo)
    assert out.results == want
    assert out.stats["mode"] == "local"
    assert out.stats["workers_seen"] == 0


def test_empty_workload_completes_locally(env):
    out = QueryEngine(env).run_campaign(QueryWorkload(0), DoubleNN())
    assert out.results == []
    assert out.stats["mode"] == "local"
