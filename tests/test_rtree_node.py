"""Tests for RTreeNode construction and traversal."""

import pytest

from repro.geometry import Point, Rect
from repro.rtree import RTreeNode


def test_leaf_builds_tight_mbr():
    leaf = RTreeNode.leaf([Point(0, 0), Point(2, 3)])
    assert leaf.mbr == Rect(0, 0, 2, 3)
    assert leaf.is_leaf
    assert leaf.level == 0
    assert leaf.fanout == 2


def test_leaf_empty_raises():
    with pytest.raises(ValueError):
        RTreeNode.leaf([])


def test_internal_builds_union_mbr():
    a = RTreeNode.leaf([Point(0, 0)])
    b = RTreeNode.leaf([Point(5, 5)])
    parent = RTreeNode.internal([a, b])
    assert parent.mbr == Rect(0, 0, 5, 5)
    assert parent.level == 1
    assert not parent.is_leaf
    assert parent.fanout == 2


def test_internal_empty_raises():
    with pytest.raises(ValueError):
        RTreeNode.internal([])


def test_internal_mixed_levels_raises():
    a = RTreeNode.leaf([Point(0, 0)])
    b = RTreeNode.internal([RTreeNode.leaf([Point(1, 1)])])
    with pytest.raises(ValueError):
        RTreeNode.internal([a, b])


def test_preorder_traversal_order():
    l1 = RTreeNode.leaf([Point(0, 0)])
    l2 = RTreeNode.leaf([Point(1, 1)])
    root = RTreeNode.internal([l1, l2])
    order = list(root.iter_preorder())
    assert order == [root, l1, l2]


def test_iter_leaves():
    l1 = RTreeNode.leaf([Point(0, 0)])
    l2 = RTreeNode.leaf([Point(1, 1)])
    l3 = RTreeNode.leaf([Point(2, 2)])
    root = RTreeNode.internal(
        [RTreeNode.internal([l1, l2]), RTreeNode.internal([l3])]
    )
    assert list(root.iter_leaves()) == [l1, l2, l3]


def test_subtree_size():
    l1 = RTreeNode.leaf([Point(0, 0)])
    l2 = RTreeNode.leaf([Point(1, 1)])
    root = RTreeNode.internal([l1, l2])
    assert root.subtree_size() == 3
    assert l1.subtree_size() == 1
