"""Tests for the three bulk-loading algorithms."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point
from repro.rtree import build_rtree, hilbert_pack, nearest_x_pack, str_pack


def random_points(n, seed=0, side=1000.0):
    rng = random.Random(seed)
    return [Point(rng.random() * side, rng.random() * side) for _ in range(n)]


PACKERS = [str_pack, hilbert_pack, nearest_x_pack]


@pytest.mark.parametrize("packer", PACKERS)
def test_packer_valid_structure(packer):
    pts = random_points(500, seed=1)
    tree = packer(pts, leaf_capacity=6, fanout=3)
    tree.validate()
    assert tree.size == 500


@pytest.mark.parametrize("packer", PACKERS)
def test_packer_single_point(packer):
    tree = packer([Point(3, 4)], leaf_capacity=6, fanout=3)
    tree.validate()
    assert tree.height == 1
    assert tree.node_count() == 1


@pytest.mark.parametrize("packer", PACKERS)
def test_packer_exact_capacity(packer):
    # n == leaf_capacity -> single leaf root.
    pts = random_points(6, seed=2)
    tree = packer(pts, leaf_capacity=6, fanout=3)
    assert tree.height == 1


@pytest.mark.parametrize("packer", PACKERS)
def test_packer_preserves_points(packer):
    pts = random_points(237, seed=3)
    tree = packer(pts, leaf_capacity=5, fanout=4)
    assert sorted(tree.iter_points()) == sorted(pts)


@pytest.mark.parametrize("packer", PACKERS)
def test_packer_duplicate_points(packer):
    pts = [Point(1, 1)] * 20 + [Point(2, 2)] * 20
    tree = packer(pts, leaf_capacity=4, fanout=3)
    tree.validate()
    assert tree.size == 40


def test_tree_height_matches_paper_scale():
    """With 64-byte pages (leaf cap 6, fanout 3) a ~100k-point tree should
    be about 10 levels tall, as stated in Section 4.2.4 of the paper."""
    pts = random_points(100_000, seed=4, side=39_000.0)
    tree = str_pack(pts, leaf_capacity=6, fanout=3)
    assert 9 <= tree.height <= 11


def test_str_leaf_utilisation_high():
    pts = random_points(1000, seed=5)
    tree = str_pack(pts, leaf_capacity=8, fanout=4)
    leaves = list(tree.root.iter_leaves())
    mean_fill = sum(len(leaf.points) for leaf in leaves) / len(leaves)
    assert mean_fill >= 0.6 * 8


def test_build_rtree_dispatch():
    pts = random_points(50, seed=6)
    for method in ("str", "hilbert", "nearest_x"):
        tree = build_rtree(pts, 4, 3, method=method)
        tree.validate()


def test_build_rtree_unknown_method():
    with pytest.raises(ValueError, match="unknown packing method"):
        build_rtree([Point(0, 0)], 4, 3, method="bogus")


def test_empty_dataset_raises():
    with pytest.raises(ValueError):
        str_pack([], 4, 3)


def test_bad_capacity_raises():
    with pytest.raises(ValueError):
        str_pack([Point(0, 0)], 0, 3)
    with pytest.raises(ValueError):
        str_pack([Point(0, 0)], 4, 1)


def test_str_balanced_tree_depth_formula():
    pts = random_points(3_000, seed=7)
    tree = str_pack(pts, leaf_capacity=6, fanout=3)
    leaves = tree.leaf_count()
    # Height = 1 (leaf level) + levels needed to reduce leaves to one root.
    expected = 1 + math.ceil(math.log(leaves, 3))
    assert abs(tree.height - expected) <= 1


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=400),
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=2, max_value=8),
    st.randoms(),
)
def test_packers_always_valid(n, leaf_cap, fanout, rng):
    pts = [Point(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(n)]
    for packer in PACKERS:
        tree = packer(pts, leaf_capacity=leaf_cap, fanout=fanout)
        tree.validate()
        assert tree.size == n
