"""Chaos suite: every injected fault recovers bit-identically.

Each test arms worker subprocesses with a seeded, deterministic
:class:`FaultInjector` (via ``chaos_specs`` / ``REPRO_DIST_CHAOS``) and
asserts two things: the campaign's merged results equal the serial
shared-scan oracle bit for bit, and the stats ledger shows the fault
actually fired (a chaos test that injects nothing proves nothing).

Faults that must hit a worker holding a lease run with a *single* chaos
worker — with a healthy sibling racing for leases the fault could be
starved of work and the test would silently stop testing anything.
"""

import pytest

from repro.broadcast import SystemParameters
from repro.core import HybridNN, TNNEnvironment
from repro.datasets import sized_uniform
from repro.engine import QueryEngine, QueryWorkload, SharedScanRunner
from repro.engine.distributed import CampaignConfig
from repro.geometry import kernels


@pytest.fixture(scope="module")
def env():
    return TNNEnvironment.build(
        sized_uniform(240, seed=3),
        sized_uniform(240, seed=4),
        params=SystemParameters(page_capacity=64),
    )


@pytest.fixture(scope="module")
def workload():
    return QueryWorkload(n_queries=12, seed=9)


@pytest.fixture(scope="module")
def reference(env, workload):
    with kernels.use_kernels(True):
        runner = SharedScanRunner(env, workload, workers=0)
        return runner.run_algorithm(HybridNN(), record_log=False)


def _run(env, workload, *, specs, **cfg):
    base = dict(
        worker_wait=2.0,
        chunk_size=3,
        shard_size=4,
        heartbeat_interval=0.2,
        heartbeat_miss_budget=3,
        lease_timeout=10.0,
        reshard_backoff=0.01,
    )
    base.update(cfg)
    with kernels.use_kernels(True):
        return QueryEngine(env).run_campaign(
            workload,
            HybridNN(),
            spawn_workers=len(specs),
            config=CampaignConfig(**base),
            chaos_specs=specs,
        )


def test_worker_killed_mid_shard_recovers(env, workload, reference):
    """The worker hard-exits (os._exit) right after its first chunk:
    the connection drop revokes its lease and, with nobody left, the
    unbooked remainder degrades to local rescue — results identical,
    the streamed first chunk stays booked."""
    out = _run(
        env, workload, specs=["seed=17,kill_after_chunks=1"]
    )
    s = out.stats
    assert out.results == reference
    assert s["workers_lost"] == 1
    assert s["revocations"] >= 1
    assert s["chunks"] >= 1  # the pre-kill chunk was merged, not re-run
    assert s["local_rescue_queries"] > 0
    assert s["mode"] in ("mixed", "local")
    assert s["duplicate_results_dropped"] == 0


def test_killed_worker_with_healthy_survivor(env, workload, reference):
    """Same kill, but a healthy worker is present to absorb the
    resharded remainder — no local rescue needed."""
    out = _run(
        env,
        workload,
        specs=["seed=17,kill_after_chunks=1", None],
        worker_wait=15.0,
    )
    assert out.results == reference
    assert out.stats["workers_lost"] == 1


def test_frozen_heartbeats_zombie_is_fenced(env, workload, reference):
    """A zombie: heartbeats frozen from the start and every chunk send
    stalls past the miss budget.  The monitor declares it dead, revokes
    its lease, and the campaign completes without it — its in-flight
    work can never double-book (lease epochs + closed socket)."""
    out = _run(
        env,
        workload,
        specs=["seed=19,freeze_heartbeats_after=0,delay=2.0,delay_p=1.0"],
        worker_wait=1.0,
    )
    s = out.stats
    assert out.results == reference
    assert s["workers_lost"] == 1
    assert s["revocations"] >= 1
    assert s["duplicate_results_dropped"] == 0


def test_slow_worker_lease_deadline_reshards(env, workload, reference):
    """A worker too slow for its lease (every chunk delayed beyond the
    deadline) gets revoked by the monitor; the healthy sibling absorbs
    the slice.  The slowpoke's late frames are epoch-stale."""
    out = _run(
        env,
        workload,
        specs=["seed=7,delay=1.2,delay_p=1.0,kinds=chunk", None],
        lease_timeout=0.4,
        lease_timeout_per_query=0.0,
        worker_wait=15.0,
    )
    s = out.stats
    assert out.results == reference
    assert s["revocations"] >= 1
    assert s["local_rescue_queries"] == 0  # survivors absorbed it all
    assert s["mode"] == "distributed"


def test_dropped_chunk_frames_requeue_remainder(env, workload, reference):
    """Half the chunk frames vanish on the wire.  ``done`` then arrives
    with gaps, which is treated as a deadline miss: the unbooked
    remainder is revoked and re-leased until everything lands."""
    out = _run(
        env,
        workload,
        specs=["seed=11,drop=0.5,kinds=chunk"],
        worker_wait=10.0,
    )
    s = out.stats
    assert out.results == reference
    assert s["revocations"] >= 1
    assert s["workers_lost"] == 0  # lossy, not dead


def test_duplicated_frames_merge_once(env, workload, reference):
    """Every chunk and done frame is sent twice.  Duplicate pairs are
    dropped first-write-wins; the duplicate ``done`` of a retired shard
    is rejected by the epoch gate."""
    out = _run(
        env,
        workload,
        specs=["seed=13,dup=1.0,kinds=chunk+done"],
        worker_wait=10.0,
    )
    s = out.stats
    assert out.results == reference
    assert s["duplicate_results_dropped"] >= 1
    assert s["stale_chunks_rejected"] >= 1
    assert s["mode"] == "distributed"
