"""End-to-end integration: the whole stack on one realistic scenario.

Builds a mid-size skewed environment, runs all algorithms (exact and
ANN-optimised) over a shared workload and cross-checks every published
qualitative relationship in one place.
"""

import math
import random

import pytest

from repro.broadcast import SystemParameters
from repro.core import (
    AnnOptimization,
    ApproximateTNN,
    DoubleNN,
    HybridNN,
    TNNEnvironment,
    WindowBasedTNN,
)
from repro.datasets import city_like, gaussian_clusters, uniform
from repro.geometry import Rect
from repro.rtree import tnn_oracle
from repro.sim import ExperimentRunner, QueryWorkload

REGION = Rect(0.0, 0.0, 39_000.0, 39_000.0)


@pytest.fixture(scope="module")
def env():
    return TNNEnvironment.build(
        uniform(1_200, seed=31, region=REGION),
        uniform(1_500, seed=32, region=REGION),
        SystemParameters(page_capacity=64),
    )


@pytest.fixture(scope="module")
def runner(env):
    return ExperimentRunner(env, QueryWorkload(12, seed=5))


@pytest.fixture(scope="module")
def all_stats(runner):
    return runner.run(
        {
            "window": WindowBasedTNN(),
            "approx": ApproximateTNN(),
            "double": DoubleNN(),
            "hybrid": HybridNN(),
            "double-ann": DoubleNN(
                optimization=AnnOptimization(factor=1.0, density_aware=False)
            ),
        }
    )


def test_all_algorithms_ran(all_stats):
    assert set(all_stats) == {"window", "approx", "double", "hybrid", "double-ann"}
    for st in all_stats.values():
        assert st.access_time.count == 12


def test_exact_algorithms_never_fail(all_stats):
    for name in ("window", "double", "hybrid", "double-ann"):
        assert all_stats[name].fail_rate == 0.0


def test_access_time_ordering(all_stats):
    """Approx < Double == Hybrid <= Window (Figure 9)."""
    assert all_stats["approx"].access_time.mean < all_stats["double"].access_time.mean
    assert (
        abs(all_stats["double"].access_time.mean - all_stats["hybrid"].access_time.mean)
        / all_stats["double"].access_time.mean
        < 0.05
    )
    assert (
        all_stats["double"].access_time.mean
        <= all_stats["window"].access_time.mean * 1.01
    )


def test_approximate_tunein_dwarfs_exact(all_stats):
    assert all_stats["approx"].tune_in.mean > 1.5 * all_stats["double"].tune_in.mean


def test_ann_reduces_estimate_pages(all_stats):
    assert (
        all_stats["double-ann"].estimate_pages.mean
        < all_stats["double"].estimate_pages.mean
    )


def test_exact_answers_match_oracle_spotcheck(env):
    rng = random.Random(77)
    for _ in range(3):
        p = env.random_query_point(rng)
        want = tnn_oracle(p, env.s_tree, env.r_tree)[2]
        for algo in (WindowBasedTNN(), DoubleNN(), HybridNN()):
            got = algo.run(env, p, *env.random_phases(rng))
            assert math.isclose(got.distance, want, rel_tol=1e-9)


def test_skewed_environment_end_to_end():
    """The CITY-like scenario: exact algorithms stay exact on skew."""
    env = TNNEnvironment.build(
        city_like(600, seed=41),
        gaussian_clusters(900, clusters=10, seed=42, region=REGION, spread=0.03),
    )
    rng = random.Random(9)
    for _ in range(4):
        p = env.random_query_point(rng)
        want = tnn_oracle(p, env.s_tree, env.r_tree)[2]
        for algo in (DoubleNN(), HybridNN()):
            got = algo.run(env, p, *env.random_phases(rng))
            assert math.isclose(got.distance, want, rel_tol=1e-9)


def test_full_cycle_determinism(env):
    """Identical queries + phases give identical results (pure simulation)."""
    p = env.random_query_point(random.Random(1))
    a = HybridNN().run(env, p, 123.0, 456.0)
    b = HybridNN().run(env, p, 123.0, 456.0)
    assert a.distance == b.distance
    assert a.access_time == b.access_time
    assert a.tune_in_time == b.tune_in_time
