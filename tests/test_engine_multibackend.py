"""run_many bit-identity across air-index backends, cyclic and not.

The shared-scan executor's contract — answers, access times, tune-in
counts and queue footprints bit-identical to the per-query oracle — must
hold on every backend the layout seam can produce.  Cyclic backends
(grid, quadtree, plain R-tree) exercise the frontier/arena fast path;
non-cyclic ones (distributed indexing, broadcast-disk schedules) exercise
the hardened heap fallback, which historically had thinner shared-scan
coverage.  Kernels off covers the scalar oracle queue on the same
programs.
"""

import random

import pytest

from repro.broadcast import SystemParameters
from repro.broadcast.layout import (
    BroadcastDiskSchedule,
    GridAirIndexLayout,
    QuadtreeAirIndexLayout,
    RTreeInterleavedLayout,
)
from repro.core import DoubleNN, HybridNN, TNNEnvironment
from repro.datasets import sized_uniform
from repro.engine import (
    KNNRequest,
    NNRequest,
    QueryEngine,
    QueryWorkload,
    RangeRequest,
    SharedScanRunner,
    WindowRequest,
)
from repro.geometry import Point, Rect, kernels


HOT = Rect(0.0, 0.0, 12000.0, 12000.0)

LAYOUTS = {
    "rtree": RTreeInterleavedLayout(),
    "distributed": RTreeInterleavedLayout(distributed_levels=2),
    "grid": GridAirIndexLayout(),
    "quadtree": QuadtreeAirIndexLayout(),
    "disk": BroadcastDiskSchedule(hot_region=HOT),
}


@pytest.fixture(scope="module")
def envs():
    s = sized_uniform(320, seed=31)
    r = sized_uniform(320, seed=32)
    return {
        name: TNNEnvironment.build(s, r, layout=layout)
        for name, layout in LAYOUTS.items()
    }


def _mixed_requests(env, n, seed=41):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        p = env.random_query_point(rng)
        channel = "s" if rng.random() < 0.5 else "r"
        program = env.s_program if channel == "s" else env.r_program
        phase = rng.uniform(0, program.cycle_length)
        kind = i % 4
        if kind == 0:
            out.append(NNRequest(p, phase, channel))
        elif kind == 1:
            out.append(KNNRequest(p, 1 + i % 4, phase, channel))
        elif kind == 2:
            out.append(RangeRequest(p, rng.uniform(100, 3000), phase, channel))
        else:
            q = env.random_query_point(rng)
            out.append(
                WindowRequest(
                    Rect(min(p.x, q.x), min(p.y, q.y), max(p.x, q.x), max(p.y, q.y)),
                    phase,
                    channel,
                )
            )
    return out


def _oracle(engine, req):
    if isinstance(req, NNRequest):
        return engine.nn(req.point, req.phase, req.channel)
    if isinstance(req, KNNRequest):
        return engine.knn(req.point, req.k, req.phase, req.channel)
    if isinstance(req, RangeRequest):
        return engine.range(req.center, req.radius, req.phase, req.channel)
    return engine.window(req.window, req.phase, req.channel)


@pytest.mark.parametrize("use_kernels", [True, False])
@pytest.mark.parametrize("backend", sorted(LAYOUTS))
def test_run_many_bit_identity_per_backend(backend, use_kernels, envs):
    env = envs[backend]
    engine = QueryEngine(env)
    requests = _mixed_requests(env, 20)
    with kernels.use_kernels(use_kernels):
        got = engine.run_many(requests)
        want = [_oracle(engine, req) for req in requests]
    assert got == want


@pytest.mark.parametrize("backend", ["distributed", "disk"])
def test_heap_fallback_engaged_on_non_cyclic_backends(backend, envs):
    """Non-cyclic programs must not sneak onto the frontier fast path."""
    env = envs[backend]
    assert not env.s_program.has_cyclic_order
    engine = QueryEngine(env)
    search = engine._build(NNRequest(Point(100.0, 100.0)))
    assert search._frontier is None


@pytest.mark.parametrize("backend", ["grid", "quadtree"])
def test_arena_path_engaged_on_cyclic_backends(backend, envs):
    env = envs[backend]
    assert env.s_program.has_cyclic_order
    engine = QueryEngine(env)
    search = engine._build(NNRequest(Point(100.0, 100.0)))
    assert search._frontier is not None


@pytest.mark.parametrize("backend", ["grid", "quadtree", "disk"])
def test_shared_scan_runner_tnn_bit_identity(backend, envs):
    """Whole-workload TNN through SharedScanRunner matches per-query runs."""
    env = envs[backend]
    workload = QueryWorkload(n_queries=8, seed=51)
    runner = SharedScanRunner(env, workload)
    for algo in (DoubleNN(), HybridNN()):
        want = [
            algo.run(env, p, ps, pr) for p, ps, pr in runner.queries
        ]
        assert runner.run_algorithm(algo) == want
