"""Property sweep: the columnar frontier arena vs the retained oracles.

The arena must be an invisible backend swap: an :class:`ArrivalFrontier`
attached to a :class:`FrontierArena` has to reproduce the standalone list
frontier — and therefore the boxed-tuple heap oracle behind it — operation
for operation: pop order, served bounds and weak flags, arrival values,
``max_size`` footprints, rescan views and epoch-stamp invalidation.  The
sweep drives a randomized interleaving of every queue operation against a
twin standalone frontier at both paper page geometries, plus end-to-end
randomized workloads through the executor (including mid-run Hybrid-NN
re-steering) and the distributed-layout fallback, where the arena must
stay out of the way entirely.
"""

import math
import random

import pytest

from repro.broadcast import (
    BroadcastChannel,
    BroadcastProgram,
    ChannelTuner,
    SystemParameters,
)
from repro.client import ArrivalFrontier
from repro.client.frontier import FrontierArena
from repro.core.environment import TNNEnvironment
from repro.core.double import DoubleNN
from repro.core.hybrid import HybridNN
from repro.datasets import sized_uniform
from repro.engine import SharedScanRunner
from repro.engine.shared_scan import execute_tnn_batch
from repro.geometry import Point, kernels


def make_tuner(n=300, seed=0, phase=0.0, capacity=64, m=2):
    rng = random.Random(seed)
    pts = [Point(rng.random() * 1000, rng.random() * 1000) for _ in range(n)]
    params = SystemParameters(page_capacity=capacity)
    from repro.rtree import str_pack

    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    program = BroadcastProgram(tree, params, m=m)
    return tree, lambda ph: ChannelTuner(BroadcastChannel(program, phase=ph))


class _Host:
    """Minimal search stand-in for arena registration."""

    def __init__(self, frontier, tuner):
        self._frontier = frontier
        self.tuner = tuner
        self.upper_bound = math.inf
        self._metric_epoch = 0
        self._witness_page = None
        self.query = None
        self.start = None
        self.end = None


@pytest.mark.parametrize("capacity", [64, 512])
@pytest.mark.parametrize("seed", range(6))
def test_attached_frontier_matches_standalone(capacity, seed):
    """Random op interleavings: attached and standalone twins stay equal."""
    rng = random.Random(1000 * capacity + seed)
    phase = rng.uniform(0, 50)
    tree, mk = make_tuner(seed=seed, phase=phase, capacity=capacity)
    tuner_a = mk(phase)
    tuner_b = mk(phase)
    fa = ArrivalFrontier(tuner_a)  # will be attached to the arena
    fb = ArrivalFrontier(tuner_b)  # standalone oracle twin
    arena = FrontierArena()
    arena.register(_Host(fa, tuner_a))

    nodes = [n for n in tree.root.iter_preorder() if not n.is_leaf]
    rng.shuffle(nodes)
    queued = 0
    epoch = 0
    for step in range(300):
        op = rng.random()
        if (op < 0.35 and nodes) or queued == 0:
            if not nodes:
                break
            node = nodes.pop()
            if rng.random() < 0.5 or not node.children:
                lb = rng.uniform(0, 10) if rng.random() < 0.8 else None
                weak = rng.random() < 0.5
                fa.push(node, lb, epoch, weak)
                fb.push(node, lb, epoch, weak)
                queued += 1
            else:
                lbs = [rng.uniform(0, 10) for _ in node.children]
                weak = rng.random() < 0.5
                fa.push_many(node.children, lbs, epoch, weak, src=node)
                fb.push_many(node.children, lbs, epoch, weak, src=node)
                queued += len(node.children)
        elif op < 0.45:
            epoch += 1  # stamp invalidation: records go stale
        elif op < 0.55:
            t = tuner_a.now + rng.uniform(0, 30)
            tuner_a.advance_to(t)
            tuner_b.advance_to(t)
        elif op < 0.7:
            assert fa.peek_arrival() == fb.peek_arrival()
            assert fa.peek_page() == fb.peek_page()
        elif op < 0.85:
            got = fa.pop_with_arrival(epoch)
            want = fb.pop_with_arrival(epoch)
            assert got[0] is want[0]
            assert got[1:] == want[1:]
            queued -= 1
            t = got[3] + 1.0
            tuner_a.advance_to(t)
            tuner_b.advance_to(t)
        else:
            ub = rng.uniform(0, 12)
            limit = (
                math.inf
                if rng.random() < 0.5
                else tuner_a.now + rng.uniform(0, 40)
            )
            strict = rng.random() < 0.5
            got = fa.pop_until(ub, epoch, limit, strict)
            want = fb.pop_until(ub, epoch, limit, strict)
            if want is None:
                assert got is None
            else:
                assert got[0] is want[0]
                assert got[1:] == want[1:]
            queued = len(fb)
        assert len(fa) == len(fb)
        assert fa.finished() == fb.finished()
        assert fa.footprint() == fb.footprint()
        # Whole-queue views agree (rescan order is page order).
        an = fa.active_nodes()
        bn = fb.active_nodes()
        assert [n.page_id for n in an] == [n.page_id for n in bn]
        if an and rng.random() < 0.2:
            import numpy as np

            assert (fa.active_mbrs() == fb.active_mbrs()).all()
            rows = sorted(rng.sample(range(len(an)), k=min(3, len(an))))
            vals = np.array([rng.uniform(0, 5) for _ in rows])
            fa.store_lower(rows, vals, epoch)
            fb.store_lower(rows, vals, epoch)


def test_footprint_accumulates_multiple_runs_per_flush():
    """Two staged fan-outs before one flush count toward one peak."""
    tree, mk = make_tuner()
    tuner_a, tuner_b = mk(0.0), mk(0.0)
    fa, fb = ArrivalFrontier(tuner_a), ArrivalFrontier(tuner_b)
    arena = FrontierArena()
    arena.register(_Host(fa, tuner_a))
    internals = [n for n in tree.root.iter_preorder() if not n.is_leaf][:3]
    for node in internals:  # several runs staged into the SAME flush
        fa.push_many(node.children, [0.0] * len(node.children), 0, src=node)
        fb.push_many(node.children, [0.0] * len(node.children), 0, src=node)
    arena.flush()
    assert fa.footprint() == fb.footprint()


def test_attached_max_size_counts_like_standalone():
    """Pushes after consumption reproduce the footprint peak exactly."""
    tree, mk = make_tuner()
    tuner_a, tuner_b = mk(0.0), mk(0.0)
    fa, fb = ArrivalFrontier(tuner_a), ArrivalFrontier(tuner_b)
    arena = FrontierArena()
    arena.register(_Host(fa, tuner_a))
    internals = [n for n in tree.root.iter_preorder() if not n.is_leaf][:6]
    for node in internals:
        fa.push_many(node.children, [0.0] * len(node.children), 0, src=node)
        fb.push_many(node.children, [0.0] * len(node.children), 0, src=node)
        arena.flush()  # footprint accounting happens at the flush
        assert fa.footprint() == fb.footprint()
        fa.pop(0)
        fb.pop(0)


def test_eval_pending_attached_batches_stale_entries():
    """A pop-time miss on the arena evaluates every stale entry at once."""
    tree, mk = make_tuner()
    tuner = mk(0.0)
    f = ArrivalFrontier(tuner)
    arena = FrontierArena()
    arena.register(_Host(f, tuner))
    root = tree.root
    calls = []

    def evaluator(mbrs):
        calls.append(mbrs.shape[0])
        return kernels.mindist(Point(0.0, 0.0), mbrs)

    f.lower_evaluator = evaluator
    f.push_many(root.children, [0.0] * len(root.children), epoch=0, src=root)
    n = len(root.children)
    node, lb, weak, _ = f.pop_with_arrival(epoch=1)  # stale records
    assert lb is not None and not weak
    assert calls == [n]
    for _ in range(n - 1):
        _, lb, weak, _ = f.pop_with_arrival(1)
        assert lb is not None and not weak
    assert calls == [n]  # the batch stamped everything


@pytest.mark.parametrize("capacity", [64, 512])
@pytest.mark.parametrize("algo_cls", [HybridNN, DoubleNN])
def test_randomized_workload_bit_identity(capacity, algo_cls):
    """Random workloads: arena executor == per-query, both geometries.

    Hybrid-NN covers mid-run re-steering (retarget / transitive switch on
    the attached frontiers); Double-NN covers the always-due solo rows.
    """
    params = SystemParameters(page_capacity=capacity)
    env = TNNEnvironment.build(
        sized_uniform(900, seed=5),
        sized_uniform(900, seed=6),
        params=params,
    )
    rng = random.Random(31 + capacity)
    queries = [
        (env.random_query_point(rng), *env.random_phases(rng))
        for _ in range(40)
    ]
    algo = algo_cls()
    with kernels.use_kernels(True):
        shared = execute_tnn_batch(env, algo, queries)
        per_query = [algo.run(env, q, ps, pr) for q, ps, pr in queries]
    assert shared == per_query


def test_distributed_layout_keeps_arena_empty():
    """Heap-backed searches (no cyclic order) never register in the arena."""
    env = TNNEnvironment.build(
        sized_uniform(600, seed=7),
        sized_uniform(600, seed=8),
        params=SystemParameters(page_capacity=64),
        distributed_levels=2,
    )
    rng = random.Random(9)
    queries = [
        (env.random_query_point(rng), *env.random_phases(rng))
        for _ in range(10)
    ]
    runner = SharedScanRunner(env, _FixedWorkload(queries), workers=0)
    algo = HybridNN()
    got = runner.run_algorithm(algo)
    want = [algo.run(env, q, ps, pr) for q, ps, pr in queries]
    assert got == want


class _FixedWorkload:
    """Adapter: a pre-drawn query list as a BatchRunner workload."""

    def __init__(self, queries):
        self._q = list(queries)

    def queries(self, env):
        return list(self._q)

    def __len__(self):
        return len(self._q)


# ----------------------------------------------------------------------
# Binned phase A over the global node store vs the scalar row loop
# ----------------------------------------------------------------------
def _ab_queries(env, n, seed):
    rng = random.Random(seed)
    return [
        (env.random_query_point(rng), *env.random_phases(rng))
        for _ in range(n)
    ]


@pytest.mark.parametrize("capacity", [64, 512])
@pytest.mark.parametrize("algo_cls", [HybridNN, DoubleNN])
@pytest.mark.parametrize("seed", [0, 1])
def test_store_phase_a_matches_scalar_row_loop(
    capacity, algo_cls, seed, monkeypatch
):
    """Random workloads: binned phase A == REPRO_NO_NODE_STORE row loop.

    The store path's whole-round array passes (automatic keeps, staged
    keep certificates, argsort-binned absorb lanes, leaf-finish probes)
    must reproduce the retained scalar loop result for result — answers,
    access times and tune-in counters all derive from the same per-row
    decisions, so any divergence surfaces here.
    """
    env = TNNEnvironment.build(
        sized_uniform(2000, seed=seed),
        sized_uniform(2000, seed=seed + 50),
        params=SystemParameters(page_capacity=capacity),
    )
    queries = _ab_queries(env, 40, seed + 100)
    algo = algo_cls()
    monkeypatch.delenv("REPRO_NO_NODE_STORE", raising=False)
    with kernels.use_kernels(True):
        store = execute_tnn_batch(env, algo, queries)
    monkeypatch.setenv("REPRO_NO_NODE_STORE", "1")
    with kernels.use_kernels(True):
        oracle = execute_tnn_batch(env, algo, queries)
    assert store == oracle


def test_store_phase_a_coverage_spans_margin_paths(monkeypatch):
    """The A/B sweep's workload really exercises the residual branches.

    Guard against silently-green sweeps: this fixed-seed workload must
    drive rows through the unstamped residual scan, the weak transitive
    margin band with failing staged certificates, and the scalar
    fallback rejections — while still matching the oracle.
    """
    import numpy as np

    from repro.engine.shared_scan import SharedScanExecutor

    counts = {"resid": 0, "cert_fail": 0, "fallback": 0}
    orig_store = SharedScanExecutor._phase_a_store
    orig_one = SharedScanExecutor._serve_nn_one

    def spy_store(self, res, due, limits, stricts, second, ctx):
        act = res["act_np"]
        counts["resid"] += int((act & ~res["stamped_np"]).sum())
        weak = act & res["stamped_np"] & res["weak_np"]
        wj = np.flatnonzero(weak)
        if wj.size:
            counts["cert_fail"] += int(
                (res["ub_np"][wj] > self._arena._ub[due[wj]]).sum()
            )
        return orig_store(self, res, due, limits, stricts, second, ctx)

    def spy_one(self, *args, **kwargs):
        counts["fallback"] += 1
        return orig_one(self, *args, **kwargs)

    env = TNNEnvironment.build(
        sized_uniform(3000, seed=0),
        sized_uniform(3000, seed=50),
        params=SystemParameters(page_capacity=64),
    )
    queries = _ab_queries(env, 60, 0)
    algo = HybridNN()
    monkeypatch.delenv("REPRO_NO_NODE_STORE", raising=False)
    monkeypatch.setattr(SharedScanExecutor, "_phase_a_store", spy_store)
    monkeypatch.setattr(SharedScanExecutor, "_serve_nn_one", spy_one)
    with kernels.use_kernels(True):
        store = execute_tnn_batch(env, algo, queries)
    monkeypatch.setattr(SharedScanExecutor, "_phase_a_store", orig_store)
    monkeypatch.setattr(SharedScanExecutor, "_serve_nn_one", orig_one)
    assert counts["resid"] > 0, "no unstamped residual rows exercised"
    assert counts["cert_fail"] > 0, "no failing staged certificates"
    assert counts["fallback"] > 0, "no scalar fallback rejections"
    monkeypatch.setenv("REPRO_NO_NODE_STORE", "1")
    with kernels.use_kernels(True):
        oracle = execute_tnn_batch(env, algo, queries)
    assert store == oracle


def test_weak_point_margin_tests_agree():
    """The two weak-point survivor tests are the same predicate.

    The scalar row loop proves a certified-weak point survivor with an
    inline ``hypot(max(...), max(...)) > ub`` prune; the store path
    batches the same rows through ``kernels.mindist_multi(...) <= ub``.
    Elementwise the verdicts must be complementary, including rows where
    the exact MINDIST ties the bound (constructed below).
    """
    import math as _math

    import numpy as np

    rng = random.Random(97)
    k = 400
    qx = np.array([rng.uniform(-100, 100) for _ in range(k)])
    qy = np.array([rng.uniform(-100, 100) for _ in range(k)])
    x0 = np.array([rng.uniform(-100, 100) for _ in range(k)])
    y0 = np.array([rng.uniform(-100, 100) for _ in range(k)])
    mbrs = np.column_stack((
        x0, y0,
        x0 + [rng.uniform(0, 40) for _ in range(k)],
        y0 + [rng.uniform(0, 40) for _ in range(k)],
    ))
    # Degenerate slivers: zero width / zero height / single point.
    mbrs[0, 2] = mbrs[0, 0]
    mbrs[1, 3] = mbrs[1, 1]
    mbrs[2, 2:] = mbrs[2, :2]
    d = kernels.mindist_multi(np.column_stack((qx, qy)), mbrs)
    ubs = np.array([rng.uniform(0, 60) for _ in range(k)])
    ubs[3] = d[3]  # exact tie: `<= ub` keeps, `> ub` must not prune
    ubs[4] = _math.nextafter(d[4], 0.0)  # just below: both must prune
    vec_keep = d <= ubs
    for j in range(k):
        scalar_prune = _math.hypot(
            max(mbrs[j, 0] - qx[j], 0.0, qx[j] - mbrs[j, 2]),
            max(mbrs[j, 1] - qy[j], 0.0, qy[j] - mbrs[j, 3]),
        ) > ubs[j]
        assert scalar_prune == (not vec_keep[j])


def test_node_store_columns_and_invalidation():
    """NodeStore columns mirror the trees; relayout drops the page cache.

    Structural columns (lane keys, leaf bits, levels, MBR rows) are
    layout-independent; the BFS page column binds the broadcast
    numbering, so :meth:`RTree.assign_page_ids` must invalidate its
    per-tree cache — the documented node-store invalidation contract.
    """
    import numpy as np

    from repro.client.frontier import _tree_store_pages, _tree_store_struct

    tree, _ = make_tuner(n=400, seed=13)
    struct = _tree_store_struct(tree)
    order, child0, levels, lane_key, mbr = struct
    pages = _tree_store_pages(tree)
    assert len(order) == tree.node_count()
    for i, node in enumerate(order):
        assert levels[i] == node.level
        if node.is_leaf:
            assert child0[i] == -1
            assert lane_key[i] == (len(node.points) << 2) | 2
        else:
            assert lane_key[i] == len(node.children) << 2
            assert order[child0[i]] is node.children[0]
        assert (lane_key[i] & 2 != 0) == node.is_leaf
        assert pages[i] == node.page_id
        assert tuple(mbr[i]) == tuple(node.mbr)
    # Renumbering the broadcast layout resets the page cache (and only
    # it): the next build must observe the fresh numbering.
    tree.assign_page_ids()
    assert getattr(tree, "_store_pages", "missing") is None
    assert tree._store_struct is struct
    fresh = _tree_store_pages(tree)
    assert np.array_equal(
        fresh,
        np.array([nd.page_id for nd in order]),
    )
