"""Property sweep: the columnar frontier arena vs the retained oracles.

The arena must be an invisible backend swap: an :class:`ArrivalFrontier`
attached to a :class:`FrontierArena` has to reproduce the standalone list
frontier — and therefore the boxed-tuple heap oracle behind it — operation
for operation: pop order, served bounds and weak flags, arrival values,
``max_size`` footprints, rescan views and epoch-stamp invalidation.  The
sweep drives a randomized interleaving of every queue operation against a
twin standalone frontier at both paper page geometries, plus end-to-end
randomized workloads through the executor (including mid-run Hybrid-NN
re-steering) and the distributed-layout fallback, where the arena must
stay out of the way entirely.
"""

import math
import random

import pytest

from repro.broadcast import (
    BroadcastChannel,
    BroadcastProgram,
    ChannelTuner,
    SystemParameters,
)
from repro.client import ArrivalFrontier
from repro.client.frontier import FrontierArena
from repro.core.environment import TNNEnvironment
from repro.core.double import DoubleNN
from repro.core.hybrid import HybridNN
from repro.datasets import sized_uniform
from repro.engine import SharedScanRunner
from repro.engine.shared_scan import execute_tnn_batch
from repro.geometry import Point, kernels


def make_tuner(n=300, seed=0, phase=0.0, capacity=64, m=2):
    rng = random.Random(seed)
    pts = [Point(rng.random() * 1000, rng.random() * 1000) for _ in range(n)]
    params = SystemParameters(page_capacity=capacity)
    from repro.rtree import str_pack

    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    program = BroadcastProgram(tree, params, m=m)
    return tree, lambda ph: ChannelTuner(BroadcastChannel(program, phase=ph))


class _Host:
    """Minimal search stand-in for arena registration."""

    def __init__(self, frontier, tuner):
        self._frontier = frontier
        self.tuner = tuner
        self.upper_bound = math.inf
        self._metric_epoch = 0
        self._witness_page = None
        self.query = None
        self.start = None
        self.end = None


@pytest.mark.parametrize("capacity", [64, 512])
@pytest.mark.parametrize("seed", range(6))
def test_attached_frontier_matches_standalone(capacity, seed):
    """Random op interleavings: attached and standalone twins stay equal."""
    rng = random.Random(1000 * capacity + seed)
    phase = rng.uniform(0, 50)
    tree, mk = make_tuner(seed=seed, phase=phase, capacity=capacity)
    tuner_a = mk(phase)
    tuner_b = mk(phase)
    fa = ArrivalFrontier(tuner_a)  # will be attached to the arena
    fb = ArrivalFrontier(tuner_b)  # standalone oracle twin
    arena = FrontierArena()
    arena.register(_Host(fa, tuner_a))

    nodes = [n for n in tree.root.iter_preorder() if not n.is_leaf]
    rng.shuffle(nodes)
    queued = 0
    epoch = 0
    for step in range(300):
        op = rng.random()
        if (op < 0.35 and nodes) or queued == 0:
            if not nodes:
                break
            node = nodes.pop()
            if rng.random() < 0.5 or not node.children:
                lb = rng.uniform(0, 10) if rng.random() < 0.8 else None
                weak = rng.random() < 0.5
                fa.push(node, lb, epoch, weak)
                fb.push(node, lb, epoch, weak)
                queued += 1
            else:
                lbs = [rng.uniform(0, 10) for _ in node.children]
                weak = rng.random() < 0.5
                fa.push_many(node.children, lbs, epoch, weak, src=node)
                fb.push_many(node.children, lbs, epoch, weak, src=node)
                queued += len(node.children)
        elif op < 0.45:
            epoch += 1  # stamp invalidation: records go stale
        elif op < 0.55:
            t = tuner_a.now + rng.uniform(0, 30)
            tuner_a.advance_to(t)
            tuner_b.advance_to(t)
        elif op < 0.7:
            assert fa.peek_arrival() == fb.peek_arrival()
            assert fa.peek_page() == fb.peek_page()
        elif op < 0.85:
            got = fa.pop_with_arrival(epoch)
            want = fb.pop_with_arrival(epoch)
            assert got[0] is want[0]
            assert got[1:] == want[1:]
            queued -= 1
            t = got[3] + 1.0
            tuner_a.advance_to(t)
            tuner_b.advance_to(t)
        else:
            ub = rng.uniform(0, 12)
            limit = (
                math.inf
                if rng.random() < 0.5
                else tuner_a.now + rng.uniform(0, 40)
            )
            strict = rng.random() < 0.5
            got = fa.pop_until(ub, epoch, limit, strict)
            want = fb.pop_until(ub, epoch, limit, strict)
            if want is None:
                assert got is None
            else:
                assert got[0] is want[0]
                assert got[1:] == want[1:]
            queued = len(fb)
        assert len(fa) == len(fb)
        assert fa.finished() == fb.finished()
        assert fa.footprint() == fb.footprint()
        # Whole-queue views agree (rescan order is page order).
        an = fa.active_nodes()
        bn = fb.active_nodes()
        assert [n.page_id for n in an] == [n.page_id for n in bn]
        if an and rng.random() < 0.2:
            import numpy as np

            assert (fa.active_mbrs() == fb.active_mbrs()).all()
            rows = sorted(rng.sample(range(len(an)), k=min(3, len(an))))
            vals = np.array([rng.uniform(0, 5) for _ in rows])
            fa.store_lower(rows, vals, epoch)
            fb.store_lower(rows, vals, epoch)


def test_footprint_accumulates_multiple_runs_per_flush():
    """Two staged fan-outs before one flush count toward one peak."""
    tree, mk = make_tuner()
    tuner_a, tuner_b = mk(0.0), mk(0.0)
    fa, fb = ArrivalFrontier(tuner_a), ArrivalFrontier(tuner_b)
    arena = FrontierArena()
    arena.register(_Host(fa, tuner_a))
    internals = [n for n in tree.root.iter_preorder() if not n.is_leaf][:3]
    for node in internals:  # several runs staged into the SAME flush
        fa.push_many(node.children, [0.0] * len(node.children), 0, src=node)
        fb.push_many(node.children, [0.0] * len(node.children), 0, src=node)
    arena.flush()
    assert fa.footprint() == fb.footprint()


def test_attached_max_size_counts_like_standalone():
    """Pushes after consumption reproduce the footprint peak exactly."""
    tree, mk = make_tuner()
    tuner_a, tuner_b = mk(0.0), mk(0.0)
    fa, fb = ArrivalFrontier(tuner_a), ArrivalFrontier(tuner_b)
    arena = FrontierArena()
    arena.register(_Host(fa, tuner_a))
    internals = [n for n in tree.root.iter_preorder() if not n.is_leaf][:6]
    for node in internals:
        fa.push_many(node.children, [0.0] * len(node.children), 0, src=node)
        fb.push_many(node.children, [0.0] * len(node.children), 0, src=node)
        arena.flush()  # footprint accounting happens at the flush
        assert fa.footprint() == fb.footprint()
        fa.pop(0)
        fb.pop(0)


def test_eval_pending_attached_batches_stale_entries():
    """A pop-time miss on the arena evaluates every stale entry at once."""
    tree, mk = make_tuner()
    tuner = mk(0.0)
    f = ArrivalFrontier(tuner)
    arena = FrontierArena()
    arena.register(_Host(f, tuner))
    root = tree.root
    calls = []

    def evaluator(mbrs):
        calls.append(mbrs.shape[0])
        return kernels.mindist(Point(0.0, 0.0), mbrs)

    f.lower_evaluator = evaluator
    f.push_many(root.children, [0.0] * len(root.children), epoch=0, src=root)
    n = len(root.children)
    node, lb, weak, _ = f.pop_with_arrival(epoch=1)  # stale records
    assert lb is not None and not weak
    assert calls == [n]
    for _ in range(n - 1):
        _, lb, weak, _ = f.pop_with_arrival(1)
        assert lb is not None and not weak
    assert calls == [n]  # the batch stamped everything


@pytest.mark.parametrize("capacity", [64, 512])
@pytest.mark.parametrize("algo_cls", [HybridNN, DoubleNN])
def test_randomized_workload_bit_identity(capacity, algo_cls):
    """Random workloads: arena executor == per-query, both geometries.

    Hybrid-NN covers mid-run re-steering (retarget / transitive switch on
    the attached frontiers); Double-NN covers the always-due solo rows.
    """
    params = SystemParameters(page_capacity=capacity)
    env = TNNEnvironment.build(
        sized_uniform(900, seed=5),
        sized_uniform(900, seed=6),
        params=params,
    )
    rng = random.Random(31 + capacity)
    queries = [
        (env.random_query_point(rng), *env.random_phases(rng))
        for _ in range(40)
    ]
    algo = algo_cls()
    with kernels.use_kernels(True):
        shared = execute_tnn_batch(env, algo, queries)
        per_query = [algo.run(env, q, ps, pr) for q, ps, pr in queries]
    assert shared == per_query


def test_distributed_layout_keeps_arena_empty():
    """Heap-backed searches (no cyclic order) never register in the arena."""
    env = TNNEnvironment.build(
        sized_uniform(600, seed=7),
        sized_uniform(600, seed=8),
        params=SystemParameters(page_capacity=64),
        distributed_levels=2,
    )
    rng = random.Random(9)
    queries = [
        (env.random_query_point(rng), *env.random_phases(rng))
        for _ in range(10)
    ]
    runner = SharedScanRunner(env, _FixedWorkload(queries), workers=0)
    algo = HybridNN()
    got = runner.run_algorithm(algo)
    want = [algo.run(env, q, ps, pr) for q, ps, pr in queries]
    assert got == want


class _FixedWorkload:
    """Adapter: a pre-drawn query list as a BatchRunner workload."""

    def __init__(self, queries):
        self._q = list(queries)

    def queries(self, env):
        return list(self._q)

    def __len__(self):
        return len(self._q)
