"""Tests for the cooperative multi-channel scheduler.

``run_all`` is a lazy-invalidation event heap (O(log channels) per event);
``run_all_scan`` is the original O(channels) argmin scan.  The property
suite drives 3-16 channels through both and requires identical step
traces, answers and tuner states — including under ``after_step``
callbacks that mutate *other* searches mid-run (Hybrid-NN re-steering).
"""

import math
import random

import pytest

from repro.broadcast import (
    BroadcastChannel,
    BroadcastProgram,
    ChannelTuner,
    SystemParameters,
)
from repro.client import (
    BroadcastNNSearch,
    run_all,
    run_all_scan,
    run_sequential,
)
from repro.geometry import Point, distance
from repro.rtree import str_pack


def make_channel(n, seed, phase=0.0):
    rng = random.Random(seed)
    pts = [Point(rng.random() * 1000, rng.random() * 1000) for _ in range(n)]
    params = SystemParameters(page_capacity=64)
    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    program = BroadcastProgram(tree, params, m=2)
    return pts, tree, ChannelTuner(BroadcastChannel(program, phase=phase))


def test_run_all_completes_both():
    pts1, tree1, t1 = make_channel(200, seed=1)
    pts2, tree2, t2 = make_channel(150, seed=2, phase=31.0)
    q = Point(500, 500)
    s1 = BroadcastNNSearch(tree1, t1, q)
    s2 = BroadcastNNSearch(tree2, t2, q)
    run_all([s1, s2])
    assert s1.finished() and s2.finished()
    assert math.isclose(s1.result()[1], min(distance(q, p) for p in pts1), rel_tol=1e-12)
    assert math.isclose(s2.result()[1], min(distance(q, p) for p in pts2), rel_tol=1e-12)


def test_run_all_interleaves_in_time_order():
    """After each step the stepped search is (weakly) the one whose page
    arrived earliest — verify via a monotone global event trace."""
    _, tree1, t1 = make_channel(120, seed=3)
    _, tree2, t2 = make_channel(120, seed=4, phase=7.0)
    q = Point(400, 600)
    s1 = BroadcastNNSearch(tree1, t1, q)
    s2 = BroadcastNNSearch(tree2, t2, q)
    trace = []
    run_all([s1, s2], after_step=lambda s: trace.append(s))
    assert set(trace) == {s1, s2}
    assert len(trace) > 2


def test_run_all_parallel_equals_independent_results():
    """Interleaving cannot change per-channel outcomes for independent
    searches — same pages, same answers, same tune-in."""
    pts1, tree1, ta = make_channel(180, seed=5)
    _, _, tb = make_channel(180, seed=5)
    q = Point(300, 300)
    parallel = BroadcastNNSearch(tree1, ta, q)
    run_all([parallel])
    solo = BroadcastNNSearch(tree1, tb, q)
    run_sequential([solo])
    assert parallel.result() == solo.result()
    assert ta.index_pages == tb.index_pages


def test_after_step_can_mutate_other_search():
    """The Hybrid-NN pattern: when one search finishes, re-steer the other."""
    pts1, tree1, t1 = make_channel(60, seed=6)
    pts2, tree2, t2 = make_channel(600, seed=7)
    q = Point(500, 500)
    s1 = BroadcastNNSearch(tree1, t1, q)
    s2 = BroadcastNNSearch(tree2, t2, q)
    mutated = []

    def coordinator(stepped):
        if s1.finished() and not mutated and not s2.finished():
            s2.retarget(Point(100, 100))
            mutated.append(True)

    run_all([s1, s2], after_step=coordinator)
    if mutated:
        # Retargeting searches the *remaining portion* of the tree (plus the
        # temporary result), per Hybrid-NN Case 2 — so the answer is a real
        # dataset point, self-consistent, and no better than the global NN.
        pt, d = s2.result()
        assert pt in pts2
        assert math.isclose(d, distance(Point(100, 100), pt), rel_tol=1e-12)
        assert d >= min(distance(Point(100, 100), p) for p in pts2) - 1e-12


def test_run_all_empty_list():
    run_all([])  # no-op, must not raise
    run_all_scan([])


# ----------------------------------------------------------------------
# Event heap vs brute-force scan (property suite)
# ----------------------------------------------------------------------
def build_fleet(n_channels, seed):
    """One NN search per channel, shared query, varied sizes and phases."""
    rng = random.Random(seed)
    searches = []
    tuners = []
    q = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
    for c in range(n_channels):
        pts, tree, tuner = make_channel(
            80 + 37 * c, seed=1000 * seed + c, phase=rng.uniform(0, 200)
        )
        searches.append(BroadcastNNSearch(tree, tuner, q))
        tuners.append(tuner)
    return searches, tuners


def tuner_state(tuners):
    return [(t.now, t.index_pages, t.data_pages, tuple(t.log)) for t in tuners]


@pytest.mark.parametrize("n_channels", [3, 5, 8, 11, 16])
def test_heap_matches_scan_trace_and_answers(n_channels):
    """Same steps in the same order, same answers, same tuner states."""
    heap_searches, heap_tuners = build_fleet(n_channels, seed=n_channels)
    scan_searches, scan_tuners = build_fleet(n_channels, seed=n_channels)

    heap_trace = []
    scan_trace = []
    run_all(
        heap_searches,
        after_step=lambda s: heap_trace.append((heap_searches.index(s), s.now)),
    )
    run_all_scan(
        scan_searches,
        after_step=lambda s: scan_trace.append((scan_searches.index(s), s.now)),
    )

    assert heap_trace == scan_trace
    assert tuner_state(heap_tuners) == tuner_state(scan_tuners)
    for h, s in zip(heap_searches, scan_searches):
        assert h.result() == s.result()
        assert h.max_queue_size == s.max_queue_size


@pytest.mark.parametrize("n_channels", [3, 6, 9, 13])
def test_heap_matches_scan_with_mutating_after_step(n_channels):
    """Coordinator callbacks that re-steer *other* searches mid-run.

    Mimics Hybrid-NN: when the first channel finishes, retarget half of
    the survivors onto the winner and switch the rest to the transitive
    metric — both mutations invalidate queued bounds on searches the
    scheduler did not just step.
    """

    def drive(scheduler, seed):
        searches, tuners = build_fleet(n_channels, seed=seed)
        steered = [False]
        trace = []

        def coordinator(stepped):
            trace.append(searches.index(stepped))
            if steered[0]:
                return
            done = [s for s in searches if s.finished()]
            if not done:
                return
            winner, _ = done[0].result()
            steered[0] = True
            for k, other in enumerate(searches):
                if other.finished():
                    continue
                if k % 2 == 0:
                    other.retarget(winner)
                elif other.mode.value == "point":
                    other.switch_to_transitive(other.query, winner)

        scheduler(searches, after_step=coordinator)
        return (
            trace,
            [s.result() for s in searches],
            tuner_state(tuners),
        )

    seed = 7 * n_channels
    assert drive(run_all, seed) == drive(run_all_scan, seed)


@pytest.mark.parametrize("n_channels", [2, 4, 8, 16])
def test_heap_matches_scan_with_on_finish(n_channels):
    """Finish-driven coordination (the Hybrid-NN shape) on both schedulers."""

    def drive(scheduler, seed):
        searches, tuners = build_fleet(n_channels, seed=seed)
        finishes = []

        def on_finish(s):
            finishes.append(searches.index(s))
            # Re-steer the first still-running search onto the winner.
            winner, _ = s.result()
            for other in searches:
                if not other.finished() and other.mode.value == "point":
                    other.retarget(winner)
                    break

        scheduler(searches, on_finish=on_finish)
        return finishes, [s.result() for s in searches], tuner_state(tuners)

    seed = 11 * n_channels
    assert drive(run_all, seed) == drive(run_all_scan, seed)


def test_on_finish_fires_once_per_search():
    searches, _ = build_fleet(3, seed=99)
    finished = []
    run_all(searches, on_finish=finished.append)
    assert sorted(map(id, finished)) == sorted(map(id, searches))


@pytest.mark.parametrize("n_channels", [1, 2, 3])
def test_after_step_and_on_finish_compose(n_channels):
    """Both hooks together fire like the scan reference on every path
    (the 1-, 2- and N-search scheduler specialisations)."""

    def drive(scheduler):
        searches, tuners = build_fleet(n_channels, seed=55 + n_channels)
        steps = []
        finishes = []
        scheduler(
            searches,
            after_step=lambda s: steps.append(searches.index(s)),
            on_finish=lambda s: finishes.append(searches.index(s)),
        )
        return steps, finishes, tuner_state(tuners)

    heap = drive(run_all)
    scan = drive(run_all_scan)
    assert heap == scan
    assert sorted(heap[1]) == list(range(n_channels))


def test_heap_drives_eight_channels_to_correct_answers():
    """The acceptance shape: >= 8 channels, every answer exact."""
    rng = random.Random(42)
    q = Point(500, 500)
    searches = []
    points = []
    for c in range(8):
        pts, tree, tuner = make_channel(
            150 + 13 * c, seed=100 + c, phase=rng.uniform(0, 300)
        )
        searches.append(BroadcastNNSearch(tree, tuner, q))
        points.append(pts)
    run_all(searches)
    for s, pts in zip(searches, points):
        assert math.isclose(
            s.result()[1],
            min(distance(q, p) for p in pts),
            rel_tol=1e-12,
        )
