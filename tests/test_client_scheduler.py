"""Tests for the cooperative multi-channel scheduler."""

import math
import random

from repro.broadcast import (
    BroadcastChannel,
    BroadcastProgram,
    ChannelTuner,
    SystemParameters,
)
from repro.client import BroadcastNNSearch, run_all, run_sequential
from repro.geometry import Point, distance
from repro.rtree import str_pack


def make_channel(n, seed, phase=0.0):
    rng = random.Random(seed)
    pts = [Point(rng.random() * 1000, rng.random() * 1000) for _ in range(n)]
    params = SystemParameters(page_capacity=64)
    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    program = BroadcastProgram(tree, params, m=2)
    return pts, tree, ChannelTuner(BroadcastChannel(program, phase=phase))


def test_run_all_completes_both():
    pts1, tree1, t1 = make_channel(200, seed=1)
    pts2, tree2, t2 = make_channel(150, seed=2, phase=31.0)
    q = Point(500, 500)
    s1 = BroadcastNNSearch(tree1, t1, q)
    s2 = BroadcastNNSearch(tree2, t2, q)
    run_all([s1, s2])
    assert s1.finished() and s2.finished()
    assert math.isclose(s1.result()[1], min(distance(q, p) for p in pts1), rel_tol=1e-12)
    assert math.isclose(s2.result()[1], min(distance(q, p) for p in pts2), rel_tol=1e-12)


def test_run_all_interleaves_in_time_order():
    """After each step the stepped search is (weakly) the one whose page
    arrived earliest — verify via a monotone global event trace."""
    _, tree1, t1 = make_channel(120, seed=3)
    _, tree2, t2 = make_channel(120, seed=4, phase=7.0)
    q = Point(400, 600)
    s1 = BroadcastNNSearch(tree1, t1, q)
    s2 = BroadcastNNSearch(tree2, t2, q)
    trace = []
    run_all([s1, s2], after_step=lambda s: trace.append(s))
    assert set(trace) == {s1, s2}
    assert len(trace) > 2


def test_run_all_parallel_equals_independent_results():
    """Interleaving cannot change per-channel outcomes for independent
    searches — same pages, same answers, same tune-in."""
    pts1, tree1, ta = make_channel(180, seed=5)
    _, _, tb = make_channel(180, seed=5)
    q = Point(300, 300)
    parallel = BroadcastNNSearch(tree1, ta, q)
    run_all([parallel])
    solo = BroadcastNNSearch(tree1, tb, q)
    run_sequential([solo])
    assert parallel.result() == solo.result()
    assert ta.index_pages == tb.index_pages


def test_after_step_can_mutate_other_search():
    """The Hybrid-NN pattern: when one search finishes, re-steer the other."""
    pts1, tree1, t1 = make_channel(60, seed=6)
    pts2, tree2, t2 = make_channel(600, seed=7)
    q = Point(500, 500)
    s1 = BroadcastNNSearch(tree1, t1, q)
    s2 = BroadcastNNSearch(tree2, t2, q)
    mutated = []

    def coordinator(stepped):
        if s1.finished() and not mutated and not s2.finished():
            s2.retarget(Point(100, 100))
            mutated.append(True)

    run_all([s1, s2], after_step=coordinator)
    if mutated:
        # Retargeting searches the *remaining portion* of the tree (plus the
        # temporary result), per Hybrid-NN Case 2 — so the answer is a real
        # dataset point, self-consistent, and no better than the global NN.
        pt, d = s2.result()
        assert pt in pts2
        assert math.isclose(d, distance(Point(100, 100), pt), rel_tol=1e-12)
        assert d >= min(distance(Point(100, 100), p) for p in pts2) - 1e-12


def test_run_all_empty_list():
    run_all([])  # no-op, must not raise
