"""Tests for the future-work extensions: chain, round-trip, unordered."""

import math
import random

import pytest

from repro.broadcast import SystemParameters
from repro.core import TNNEnvironment
from repro.datasets import uniform
from repro.extensions import (
    ChainEnvironment,
    ChainTNN,
    RoundTripTNN,
    UnorderedTNN,
    chain_oracle,
    roundtrip_oracle,
    unordered_oracle,
)
from repro.extensions.roundtrip import roundtrip_length
from repro.geometry import Point, Rect, distance

REGION = Rect(0, 0, 1000, 1000)


def make_datasets(sizes, seed0=0):
    return [uniform(n, seed=seed0 + i, region=REGION) for i, n in enumerate(sizes)]


# ----------------------------------------------------------------------
# Chain TNN
# ----------------------------------------------------------------------
def test_chain_env_validation():
    with pytest.raises(ValueError):
        ChainEnvironment.build([uniform(5, seed=1, region=REGION)])


def test_chain_env_build():
    env = ChainEnvironment.build(make_datasets([40, 30, 20]))
    assert env.k == 3
    assert len(env.tuners()) == 3
    with pytest.raises(ValueError):
        env.tuners([0.0])  # wrong arity


def test_chain_matches_oracle_k3():
    env = ChainEnvironment.build(make_datasets([40, 30, 20], seed0=3))
    rng = random.Random(1)
    algo = ChainTNN()
    for _ in range(6):
        p = env.random_query_point(rng)
        result = algo.run(env, p, env.random_phases(rng))
        _, want = chain_oracle(p, env.datasets)
        assert math.isclose(result.distance, want, rel_tol=1e-9)
        assert len(result.route) == 3


def test_chain_matches_oracle_k4():
    env = ChainEnvironment.build(make_datasets([25, 25, 25, 25], seed0=7))
    rng = random.Random(2)
    result = ChainTNN().run(env, env.random_query_point(rng), env.random_phases(rng))
    _, want = chain_oracle(result.query, env.datasets)
    assert math.isclose(result.distance, want, rel_tol=1e-9)


def test_chain_k2_reduces_to_tnn():
    """With two datasets the chain objective is exactly classic TNN."""
    datasets = make_datasets([30, 30], seed0=11)
    env = ChainEnvironment.build(datasets)
    p = Point(500, 500)
    result = ChainTNN().run(env, p)
    from repro.rtree.traversal import brute_force_tnn

    _, _, want = brute_force_tnn(p, datasets[0], datasets[1])
    assert math.isclose(result.distance, want, rel_tol=1e-9)


def test_chain_route_is_consistent():
    env = ChainEnvironment.build(make_datasets([20, 20, 20], seed0=13))
    p = Point(100, 900)
    result = ChainTNN().run(env, p)
    total = distance(p, result.route[0])
    for a, b in zip(result.route, result.route[1:]):
        total += distance(a, b)
    assert math.isclose(total, result.distance, rel_tol=1e-9)
    assert result.radius >= result.distance - 1e-9
    assert result.tune_in_time == sum(result.per_channel_tune_in)


def test_chain_oracle_empty_raises():
    with pytest.raises(ValueError):
        chain_oracle(Point(0, 0), [[], [Point(1, 1)]])


# ----------------------------------------------------------------------
# Round-trip TNN
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def pair_env():
    return TNNEnvironment.build(
        uniform(60, seed=21, region=REGION),
        uniform(50, seed=22, region=REGION),
        SystemParameters(),
    )


def test_roundtrip_matches_oracle(pair_env):
    rng = random.Random(3)
    algo = RoundTripTNN()
    for _ in range(6):
        p = pair_env.random_query_point(rng)
        result = algo.run(pair_env, p, *pair_env.random_phases(rng))
        _, _, want = roundtrip_oracle(p, pair_env.s_points, pair_env.r_points)
        assert math.isclose(result.distance, want, rel_tol=1e-9)
        assert math.isclose(
            roundtrip_length(p, result.s, result.r), want, rel_tol=1e-9
        )


def test_roundtrip_at_least_one_way(pair_env):
    """A round trip is never shorter than the one-way TNN route."""
    from repro.rtree import tnn_oracle

    rng = random.Random(4)
    p = pair_env.random_query_point(rng)
    rt = RoundTripTNN().run(pair_env, p)
    _, _, one_way = tnn_oracle(p, pair_env.s_tree, pair_env.r_tree)
    assert rt.distance >= one_way - 1e-9


def test_roundtrip_oracle_empty_raises():
    with pytest.raises(ValueError):
        roundtrip_oracle(Point(0, 0), [], [Point(1, 1)])


# ----------------------------------------------------------------------
# Unordered TNN
# ----------------------------------------------------------------------
def test_unordered_matches_oracle(pair_env):
    rng = random.Random(5)
    algo = UnorderedTNN()
    for _ in range(6):
        p = pair_env.random_query_point(rng)
        result = algo.run(pair_env, p, *pair_env.random_phases(rng))
        order, want = unordered_oracle(p, pair_env.s_points, pair_env.r_points)
        assert math.isclose(result.distance, want, rel_tol=1e-9)
        assert result.order == order


def test_unordered_never_worse_than_ordered(pair_env):
    from repro.rtree import tnn_oracle

    rng = random.Random(6)
    for _ in range(4):
        p = pair_env.random_query_point(rng)
        result = UnorderedTNN().run(pair_env, p)
        _, _, ordered = tnn_oracle(p, pair_env.s_tree, pair_env.r_tree)
        assert result.distance <= ordered + 1e-9


def test_unordered_picks_r_first_when_r_closer():
    """Query adjacent to an R point: visiting R first is clearly optimal."""
    s_pts = [Point(900, 900)]
    r_pts = [Point(10, 10)]
    env = TNNEnvironment.build(s_pts, r_pts)
    result = UnorderedTNN().run(env, Point(0, 0))
    assert result.order == "r-first"
    want = distance(Point(0, 0), r_pts[0]) + distance(r_pts[0], s_pts[0])
    assert math.isclose(result.distance, want, rel_tol=1e-9)
