"""End-to-end TNN over distributed (partial-replication) air indexes."""

import math
import random

from repro.broadcast.distributed import DistributedBroadcastProgram
from repro.core import DoubleNN, HybridNN, TNNEnvironment, WindowBasedTNN
from repro.datasets import uniform
from repro.geometry import Rect
from repro.rtree import tnn_oracle

REGION = Rect(0, 0, 2000, 2000)


def make_envs():
    s_pts = uniform(250, seed=61, region=REGION)
    r_pts = uniform(250, seed=62, region=REGION)
    full = TNNEnvironment.build(s_pts, r_pts, m=4)
    dist = TNNEnvironment.build(s_pts, r_pts, m=4, distributed_levels=2)
    return full, dist


def test_distributed_env_uses_distributed_programs():
    _, dist = make_envs()
    assert isinstance(dist.s_program, DistributedBroadcastProgram)
    assert isinstance(dist.r_program, DistributedBroadcastProgram)


def test_distributed_cycle_shorter():
    full, dist = make_envs()
    assert dist.s_program.cycle_length < full.s_program.cycle_length
    assert dist.r_program.cycle_length < full.r_program.cycle_length


def test_all_algorithms_exact_on_distributed_index():
    _, dist = make_envs()
    rng = random.Random(5)
    for _ in range(4):
        p = dist.random_query_point(rng)
        phases = dist.random_phases(rng)
        want = tnn_oracle(p, dist.s_tree, dist.r_tree)[2]
        for algo_cls in (WindowBasedTNN, DoubleNN, HybridNN):
            got = algo_cls().run(dist, p, *phases)
            assert math.isclose(got.distance, want, rel_tol=1e-9), algo_cls.__name__


def test_answers_identical_across_layouts():
    """The layout changes cost, never the answer."""
    full, dist = make_envs()
    rng = random.Random(6)
    p = full.random_query_point(rng)
    a = DoubleNN().run(full, p, 17.0, 29.0)
    b = DoubleNN().run(dist, p, 17.0, 29.0)
    assert math.isclose(a.distance, b.distance, rel_tol=1e-12)
