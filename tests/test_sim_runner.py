"""Tests for the experiment runner, stats and tables."""

import math

import pytest

from repro.core import ApproximateTNN, DoubleNN, TNNEnvironment, WindowBasedTNN
from repro.datasets import uniform
from repro.geometry import Rect
from repro.sim import (
    ExperimentRunner,
    MetricStats,
    QueryWorkload,
    format_series,
    format_table,
    summarize,
)


@pytest.fixture(scope="module")
def env():
    region = Rect(0, 0, 2000, 2000)
    return TNNEnvironment.build(
        uniform(150, seed=1, region=region), uniform(150, seed=2, region=region)
    )


def test_metric_stats():
    st = MetricStats.of([1.0, 2.0, 3.0])
    assert st.mean == 2.0
    assert st.minimum == 1.0
    assert st.maximum == 3.0
    assert st.count == 3
    assert math.isclose(st.std, math.sqrt(2.0 / 3.0))


def test_metric_stats_empty_raises():
    with pytest.raises(ValueError):
        MetricStats.of([])


def test_workload_reproducible(env):
    w = QueryWorkload(5, seed=9)
    assert w.queries(env) == w.queries(env)
    assert w.queries(env) != QueryWorkload(5, seed=10).queries(env)


def test_workload_counts(env):
    assert len(QueryWorkload(7, seed=0).queries(env)) == 7


def test_runner_same_workload_for_all_algorithms(env):
    runner = ExperimentRunner(env, QueryWorkload(5, seed=3))
    res_a = runner.run_algorithm(DoubleNN())
    res_b = runner.run_algorithm(WindowBasedTNN())
    # Same query points in the same order.
    assert [r.query for r in res_a] == [r.query for r in res_b]
    # And identical (exact) answers.
    for a, b in zip(res_a, res_b):
        assert math.isclose(a.distance, b.distance, rel_tol=1e-9)


def test_runner_summary(env):
    runner = ExperimentRunner(env, QueryWorkload(5, seed=4))
    stats = runner.run({"double-nn": DoubleNN()})
    st = stats["double-nn"]
    assert st.algorithm == "double-nn"
    assert st.access_time.count == 5
    assert st.tune_in.mean > 0
    assert st.fail_rate == 0.0


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


def test_compare_failures_exact_never_fails(env):
    runner = ExperimentRunner(env, QueryWorkload(5, seed=5))
    assert runner.compare_failures(WindowBasedTNN(), DoubleNN()) == 0.0


def test_compare_failures_detects_bad_radius(env):
    """An Approximate-TNN whose radius is forced tiny must fail often."""

    class BrokenApproximate(ApproximateTNN):
        def _estimate(self, env, query, tuner_s, tuner_r, policy_s, policy_r):
            return 1e-6, None

    runner = ExperimentRunner(env, QueryWorkload(5, seed=6))
    assert runner.compare_failures(BrokenApproximate(), DoubleNN()) == 1.0


def test_format_table_alignment():
    text = format_table(["a", "bb"], [[1, 2.5], [33, 4]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_format_series_columns():
    text = format_series("x", [1, 2], {"alg": [10.0, 20.0]}, title="S")
    assert "alg" in text
    assert "10" in text and "20" in text


def test_format_table_nan_rendered_as_dash():
    text = format_table(["v"], [[float("nan")]])
    assert "-" in text.splitlines()[-1]
