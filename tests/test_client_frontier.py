"""Tests for the struct-of-arrays arrival frontier.

The frontier must pop in exactly the order of the oracle heap — truly-next
arrival under the current clock, page id as the only tiebreak dimension —
while serving epoch-stamped lower bounds.  The reference here is the same
discipline the heap implements: argmin of ``peek_index_arrival`` over the
queued nodes.
"""

import math
import random

import pytest

from repro.broadcast import (
    BroadcastChannel,
    BroadcastProgram,
    ChannelTuner,
    SystemParameters,
)
from repro.client import ArrivalFrontier
from repro.geometry import Point
from repro.rtree import str_pack


def make_tuner(n=200, seed=0, phase=0.0, capacity=64, m=2):
    rng = random.Random(seed)
    pts = [Point(rng.random() * 1000, rng.random() * 1000) for _ in range(n)]
    params = SystemParameters(page_capacity=capacity)
    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    program = BroadcastProgram(tree, params, m=m)
    return tree, ChannelTuner(BroadcastChannel(program, phase=phase))


def reference_next(tuner, nodes):
    """Brute-force truly-next node: argmin of the scalar arrival peeks."""
    best = None
    best_key = None
    for node in nodes:
        key = tuner.peek_index_arrival(node.page_id)
        if best_key is None or key < best_key:
            best_key = key
            best = node
    return best, best_key


@pytest.mark.parametrize("seed", range(8))
def test_pop_order_matches_scalar_reference(seed):
    """Random push/pop/advance interleaving pops the reference node."""
    rng = random.Random(seed)
    tree, tuner = make_tuner(seed=seed, phase=rng.uniform(0, 50))
    frontier = ArrivalFrontier(tuner)
    pool = list(tree.root.iter_preorder())
    rng.shuffle(pool)
    queued = []
    steps = 0
    while pool or queued:
        can_push = bool(pool)
        if can_push and (not queued or rng.random() < 0.6):
            node = pool.pop()
            frontier.push(node)
            queued.append(node)
        else:
            want, want_key = reference_next(tuner, queued)
            assert frontier.peek_arrival() == want_key
            got, _, _ = frontier.pop()
            assert got is want
            queued.remove(got)
            # Consuming the page moves the clock past its slot.
            if rng.random() < 0.7:
                tuner.advance_to(want_key + 1.0)
        steps += 1
    assert frontier.finished()
    assert frontier.max_size >= 1


def test_pop_on_empty_raises():
    _, tuner = make_tuner()
    frontier = ArrivalFrontier(tuner)
    with pytest.raises(RuntimeError):
        frontier.pop()


def test_peek_empty_is_inf():
    _, tuner = make_tuner()
    frontier = ArrivalFrontier(tuner)
    assert frontier.peek_arrival() == math.inf


def test_peek_matches_scalar_peek_bitwise():
    """The closed-form head arrival equals the scalar tuner peek exactly."""
    tree, tuner = make_tuner(phase=13.37)
    frontier = ArrivalFrontier(tuner)
    nodes = list(tree.root.iter_preorder())
    for node in nodes[:20]:
        frontier.push(node)
    for t in (0.0, 0.5, 7.0, 100.25, 1234.0):
        tuner.advance_to(t)
        head = frontier.peek_arrival()
        want = min(tuner.peek_index_arrival(n.page_id) for n in nodes[:20])
        assert head == want


def test_bound_records_epoch_and_weak_flag():
    tree, tuner = make_tuner()
    frontier = ArrivalFrontier(tuner)
    nodes = list(tree.root.iter_preorder())[:3]
    frontier.push(nodes[0], lb=1.5, epoch=7)
    frontier.push(nodes[1], lb=2.5, epoch=7, weak=True)
    frontier.push(nodes[2])
    got = {}
    for _ in range(3):
        node, lb, weak = frontier.pop(epoch=7)
        got[node.page_id] = (lb, weak)
    assert got[nodes[0].page_id] == (1.5, False)
    assert got[nodes[1].page_id] == (2.5, True)
    assert got[nodes[2].page_id] == (None, False)


def test_bound_records_go_stale_across_epochs():
    tree, tuner = make_tuner()
    frontier = ArrivalFrontier(tuner)
    node = tree.root
    frontier.push(node, lb=3.0, epoch=1)
    popped, lb, _ = frontier.pop(epoch=2)  # wrong epoch: record is stale
    assert popped is node
    assert lb is None


def test_eval_pending_batches_all_stale_entries():
    """A pop-time miss evaluates every pending entry in one call."""
    tree, tuner = make_tuner()
    frontier = ArrivalFrontier(tuner)
    nodes = [n for n in tree.root.iter_preorder()][:6]
    for node in nodes:
        frontier.push(node)
    calls = []

    def evaluator(mbrs):
        calls.append(mbrs.shape[0])
        return mbrs[:, 0] * 0.0 + 42.0

    frontier.lower_evaluator = evaluator
    _, lb, weak = frontier.pop(epoch=0)
    assert lb == 42.0 and not weak
    assert calls == [6]  # the popped entry plus all five pending ones
    # The remaining entries were stamped: no further evaluator calls.
    for _ in range(5):
        _, lb, _ = frontier.pop(epoch=0)
        assert lb == 42.0
    assert calls == [6]


def test_store_lower_caches_exact_bounds():
    tree, tuner = make_tuner()
    frontier = ArrivalFrontier(tuner)
    nodes = [n for n in tree.root.iter_preorder()][:4]
    for node in nodes:
        frontier.push(node)
    active = frontier.active_nodes()
    assert sorted(n.page_id for n in active) == sorted(
        n.page_id for n in nodes
    )
    import numpy as np

    frontier.store_lower(range(4), np.arange(4, dtype=np.float64), epoch=3)
    seen = {}
    for _ in range(4):
        node, lb, weak = frontier.pop(epoch=3)
        seen[node.page_id] = lb
        assert not weak
    assert seen == {
        active[i].page_id: float(i) for i in range(4)
    }


def test_max_size_tracks_footprint():
    tree, tuner = make_tuner()
    frontier = ArrivalFrontier(tuner)
    nodes = [n for n in tree.root.iter_preorder()][:5]
    for node in nodes:
        frontier.push(node)
    for _ in range(5):
        frontier.pop()
    assert frontier.max_size == 5
    assert frontier.finished()


def test_slot_reuse_after_pops():
    """Pops free slots; reuse never mixes up node/bound lanes."""
    tree, tuner = make_tuner()
    frontier = ArrivalFrontier(tuner)
    nodes = list(tree.root.iter_preorder())
    for round_no in range(3):
        batch = nodes[round_no * 4 : round_no * 4 + 4]
        for k, node in enumerate(batch):
            frontier.push(node, lb=float(k), epoch=round_no)
        got = {}
        for _ in range(4):
            node, lb, _ = frontier.pop(epoch=round_no)
            got[node.page_id] = lb
        assert got == {
            node.page_id: float(k) for k, node in enumerate(batch)
        }
