"""Tests for the batched execution engine (BatchRunner + QueryEngine)."""

import math

import pytest

from repro.core import ApproximateTNN, DoubleNN, HybridNN, TNNEnvironment
from repro.datasets import uniform
from repro.engine import BatchRunner, QueryEngine, QueryWorkload
from repro.geometry import Point, Rect, distance
from repro.sim import ExperimentRunner, summarize, summarize_batch


@pytest.fixture(scope="module")
def env():
    region = Rect(0, 0, 2000, 2000)
    return TNNEnvironment.build(
        uniform(150, seed=1, region=region), uniform(150, seed=2, region=region)
    )


# ----------------------------------------------------------------------
# BatchRunner vs the sequential ExperimentRunner — the engine property
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algo_cls", [DoubleNN, HybridNN, ApproximateTNN])
def test_serial_batch_identical_to_sequential_runner(env, algo_cls):
    workload = QueryWorkload(10, seed=7)
    batch = BatchRunner(env, workload, workers=0)
    sequential = [
        algo_cls().run(env, p, ps, pr) for p, ps, pr in workload.queries(env)
    ]
    assert batch.run_algorithm(algo_cls()) == sequential
    assert ExperimentRunner(env, workload).run_algorithm(algo_cls()) == sequential


def test_process_pool_bit_identical(env):
    workload = QueryWorkload(9, seed=11)
    batch = BatchRunner(env, workload)
    serial = batch.run_algorithm(DoubleNN(), workers=0)
    pooled = batch.run_algorithm(DoubleNN(), workers=2)
    # Dataclass equality covers every field: answers, distances and all
    # cost accounting must match bit for bit, in workload order.
    assert pooled == serial
    assert batch.run_algorithm(DoubleNN(), workers=3) == serial


def test_workers_constructor_default(env):
    workload = QueryWorkload(4, seed=2)
    assert BatchRunner(env, workload, workers=2).run_algorithm(
        DoubleNN()
    ) == BatchRunner(env, workload, workers=0).run_algorithm(DoubleNN())


def test_run_summary_matches_scalar_summarize(env):
    workload = QueryWorkload(8, seed=5)
    batch = BatchRunner(env, workload)
    stats = batch.run({"double-nn": DoubleNN()})["double-nn"]
    slow = summarize(batch.run_algorithm(DoubleNN()))
    for metric in ("access_time", "tune_in", "estimate_pages", "filter_pages"):
        assert math.isclose(
            getattr(stats, metric).mean, getattr(slow, metric).mean, rel_tol=1e-12
        )
        assert getattr(stats, metric).count == 8
    assert stats.fail_rate == slow.fail_rate


def test_summarize_batch_empty_raises():
    with pytest.raises(ValueError):
        summarize_batch([])


# ----------------------------------------------------------------------
# Reference caching in compare_failures
# ----------------------------------------------------------------------
def test_compare_failures_caches_reference(env):
    calls = {"n": 0}

    class CountingDoubleNN(DoubleNN):
        def run(self, *args, **kwargs):
            calls["n"] += 1
            return super().run(*args, **kwargs)

    batch = BatchRunner(env, QueryWorkload(5, seed=6))
    reference = CountingDoubleNN()
    assert batch.compare_failures(DoubleNN(), reference) == 0.0
    assert calls["n"] == 5
    # Second candidate against the same oracle: no reference re-runs.
    assert batch.compare_failures(HybridNN(), reference) == 0.0
    assert calls["n"] == 5


def test_compare_failures_detects_bad_candidate(env):
    class BrokenApproximate(ApproximateTNN):
        def _estimate(self, env, query, tuner_s, tuner_r, policy_s, policy_r):
            return 1e-6, None

    batch = BatchRunner(env, QueryWorkload(5, seed=6))
    assert batch.compare_failures(BrokenApproximate(), DoubleNN()) == 1.0


# ----------------------------------------------------------------------
# QueryEngine facade
# ----------------------------------------------------------------------
def test_query_engine_nn_matches_brute_force(env):
    engine = QueryEngine(env)
    q = Point(700.0, 1200.0)
    answer = engine.nn(q, phase=17.0)
    best = min(env.s_points, key=lambda p: distance(q, p))
    assert answer.answers[0][0] == best
    assert math.isclose(answer.answers[0][1], distance(q, best))
    assert answer.tune_in > 0 and answer.access_time > 0
    assert answer.max_queue_size >= 1


def test_query_engine_knn_sorted_and_exact(env):
    engine = QueryEngine(env)
    q = Point(300.0, 300.0)
    answer = engine.knn(q, k=5, channel="r")
    dists = [d for _, d in answer.answers]
    assert dists == sorted(dists) and len(dists) == 5
    expected = sorted(distance(q, p) for p in env.r_points)[:5]
    assert all(math.isclose(a, b) for a, b in zip(dists, expected))


def test_query_engine_range_matches_filter(env):
    engine = QueryEngine(env)
    q, radius = Point(1000.0, 1000.0), 250.0
    answer = engine.range(q, radius)
    got = {p for p, _ in answer.answers}
    want = {p for p in env.s_points if distance(q, p) <= radius}
    assert got == want
    assert all(d <= radius for _, d in answer.answers)


def test_query_engine_tnn_default_is_double_nn(env):
    engine = QueryEngine(env)
    q = Point(900.0, 400.0)
    assert engine.tnn(q, phase_s=3.0, phase_r=5.0) == DoubleNN().run(env, q, 3.0, 5.0)


def test_query_engine_rejects_unknown_channel(env):
    with pytest.raises(ValueError):
        QueryEngine(env).nn(Point(0.0, 0.0), channel="x")


def test_query_engine_batch_roundtrip(env):
    engine = QueryEngine(env)
    workload = QueryWorkload(3, seed=1)
    batch = engine.batch(workload)
    assert isinstance(batch, BatchRunner)
    assert len(batch.run_algorithm(DoubleNN())) == 3


# ----------------------------------------------------------------------
# Workload relocation compatibility
# ----------------------------------------------------------------------
def test_workload_importable_from_both_homes():
    from repro.engine.workload import QueryWorkload as EngineWorkload
    from repro.sim.runner import QueryWorkload as SimWorkload

    assert EngineWorkload is SimWorkload
