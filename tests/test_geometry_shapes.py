"""Tests for circles, ellipses, clipping and the ANN overlap heuristics."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    Circle,
    Ellipse,
    Point,
    Rect,
    circle_rect_overlap_ratio,
    clip_polygon_to_rect,
    ellipse_rect_overlap_ratio,
    polygon_area,
)

coords = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)
radii = st.floats(min_value=0.01, max_value=100, allow_nan=False, allow_infinity=False)


@st.composite
def rects(draw):
    x1 = draw(coords)
    y1 = draw(coords)
    w = draw(st.floats(min_value=0.01, max_value=100))
    h = draw(st.floats(min_value=0.01, max_value=100))
    return Rect(x1, y1, x1 + w, y1 + h)


# ----------------------------------------------------------------------
# Polygon area / clipping
# ----------------------------------------------------------------------
def test_polygon_area_triangle():
    tri = [Point(0, 0), Point(4, 0), Point(0, 3)]
    assert polygon_area(tri) == 6.0


def test_polygon_area_square_any_orientation():
    sq = [Point(0, 0), Point(0, 2), Point(2, 2), Point(2, 0)]  # clockwise
    assert polygon_area(sq) == 4.0


def test_polygon_area_degenerate():
    assert polygon_area([]) == 0.0
    assert polygon_area([Point(0, 0), Point(1, 1)]) == 0.0


def test_clip_polygon_fully_inside():
    tri = [Point(1, 1), Point(2, 1), Point(1, 2)]
    clipped = clip_polygon_to_rect(tri, Rect(0, 0, 10, 10))
    assert math.isclose(polygon_area(clipped), 0.5)


def test_clip_polygon_fully_outside():
    tri = [Point(20, 20), Point(21, 20), Point(20, 21)]
    assert clip_polygon_to_rect(tri, Rect(0, 0, 10, 10)) == []


def test_clip_polygon_half_overlap():
    sq = [Point(-1, 0), Point(1, 0), Point(1, 2), Point(-1, 2)]
    clipped = clip_polygon_to_rect(sq, Rect(0, 0, 5, 5))
    assert math.isclose(polygon_area(clipped), 2.0)


# ----------------------------------------------------------------------
# Circle
# ----------------------------------------------------------------------
def test_circle_area():
    assert math.isclose(Circle(Point(0, 0), 2).area, 4 * math.pi)


def test_circle_contains_point():
    c = Circle(Point(0, 0), 1)
    assert c.contains_point(Point(1, 0))  # boundary closed
    assert not c.contains_point(Point(1.001, 0))


def test_circle_intersects_rect():
    c = Circle(Point(0, 0), 1)
    assert c.intersects_rect(Rect(0.5, 0.5, 2, 2))
    assert not c.intersects_rect(Rect(2, 2, 3, 3))


def test_circle_polygon_area_converges():
    c = Circle(Point(0, 0), 3)
    approx = polygon_area(c.to_polygon(256))
    assert math.isclose(approx, c.area, rel_tol=1e-3)


def test_overlap_rect_inside_circle_is_one():
    c = Circle(Point(0, 0), 10)
    assert circle_rect_overlap_ratio(c, Rect(-1, -1, 1, 1)) == 1.0


def test_overlap_disjoint_is_zero():
    c = Circle(Point(0, 0), 1)
    assert circle_rect_overlap_ratio(c, Rect(5, 5, 6, 6)) == 0.0


def test_overlap_half_plane_split():
    # Circle centered on the rect's left edge: about half of a thin slab of
    # the rect near that edge is covered.  Use a rect that the circle covers
    # exactly half of: rect occupies x in [0, 1], circle radius 1 centered
    # at (0, 0.5) with rect [0,1]x[0,1] -> overlap = half disk area inside.
    c = Circle(Point(0, 0.5), 0.5)
    ratio = circle_rect_overlap_ratio(c, Rect(0, 0, 1, 1))
    expected = (math.pi * 0.25 / 2.0) / 1.0
    assert math.isclose(ratio, expected, rel_tol=2e-2)


def test_zero_radius_circle_overlap():
    assert circle_rect_overlap_ratio(Circle(Point(0, 0), 0.0), Rect(-1, -1, 1, 1)) == 0.0


@settings(max_examples=60, deadline=None)
@given(points, radii, rects())
def test_circle_overlap_matches_monte_carlo(center, radius, rect):
    c = Circle(center, radius)
    ratio = circle_rect_overlap_ratio(c, rect)
    rng = random.Random(42)
    n = 4000
    hits = 0
    for _ in range(n):
        p = Point(
            rect.xmin + rng.random() * rect.width,
            rect.ymin + rng.random() * rect.height,
        )
        if c.contains_point(p):
            hits += 1
    mc = hits / n
    assert abs(ratio - mc) < 0.05


@settings(max_examples=100, deadline=None)
@given(points, radii, rects())
def test_circle_overlap_in_unit_interval(center, radius, rect):
    r = circle_rect_overlap_ratio(Circle(center, radius), rect)
    assert 0.0 <= r <= 1.0


# ----------------------------------------------------------------------
# Ellipse
# ----------------------------------------------------------------------
def test_ellipse_degenerate_when_major_below_focal_distance():
    e = Ellipse(Point(0, 0), Point(4, 0), 3.0)
    assert e.is_empty
    assert e.to_polygon() == []
    assert ellipse_rect_overlap_ratio(e, Rect(0, 0, 1, 1)) == 0.0


def test_ellipse_circle_special_case():
    # Coincident foci -> a circle of radius major/2.
    e = Ellipse(Point(0, 0), Point(0, 0), 4.0)
    assert math.isclose(e.semi_major, 2.0)
    assert math.isclose(e.semi_minor, 2.0)
    assert math.isclose(e.area, math.pi * 4.0)


def test_ellipse_axes():
    e = Ellipse(Point(-3, 0), Point(3, 0), 10.0)
    assert math.isclose(e.semi_major, 5.0)
    assert math.isclose(e.semi_minor, 4.0)
    assert e.center == Point(0, 0)


def test_ellipse_contains_foci():
    e = Ellipse(Point(-1, 2), Point(3, 2), 6.0)
    assert e.contains_point(Point(-1, 2))
    assert e.contains_point(Point(3, 2))


def test_ellipse_polygon_vertices_satisfy_focal_sum():
    e = Ellipse(Point(-3, 1), Point(3, -1), 10.0)
    for v in e.to_polygon(64):
        focal_sum = v.distance_to(e.focus1) + v.distance_to(e.focus2)
        assert math.isclose(focal_sum, e.major, rel_tol=1e-9)


def test_ellipse_rotated_polygon_area():
    e = Ellipse(Point(0, 0), Point(6, 6), 12.0)
    approx = polygon_area(e.to_polygon(256))
    assert math.isclose(approx, e.area, rel_tol=1e-3)


def test_ellipse_overlap_rect_inside():
    e = Ellipse(Point(-1, 0), Point(1, 0), 10.0)
    assert ellipse_rect_overlap_ratio(e, Rect(-0.5, -0.5, 0.5, 0.5)) == 1.0


def test_ellipse_overlap_disjoint():
    e = Ellipse(Point(-1, 0), Point(1, 0), 4.0)
    assert ellipse_rect_overlap_ratio(e, Rect(10, 10, 11, 11)) == 0.0


@settings(max_examples=40, deadline=None)
@given(points, points, st.floats(min_value=0.1, max_value=50), rects())
def test_ellipse_overlap_matches_monte_carlo(f1, f2, extra, rect):
    e = Ellipse(f1, f2, f1.distance_to(f2) + extra)
    ratio = ellipse_rect_overlap_ratio(e, rect)
    rng = random.Random(7)
    n = 4000
    hits = 0
    for _ in range(n):
        p = Point(
            rect.xmin + rng.random() * rect.width,
            rect.ymin + rng.random() * rect.height,
        )
        if e.contains_point(p):
            hits += 1
    assert abs(ratio - hits / n) < 0.05


@settings(max_examples=100, deadline=None)
@given(points, points, st.floats(min_value=0.0, max_value=100), rects())
def test_ellipse_overlap_in_unit_interval(f1, f2, major, rect):
    r = ellipse_rect_overlap_ratio(Ellipse(f1, f2, major), rect)
    assert 0.0 <= r <= 1.0
