"""Tests for the broadcast kNN and window searches."""

import math
import random

import pytest

from repro.broadcast import (
    BroadcastChannel,
    BroadcastProgram,
    ChannelTuner,
    SystemParameters,
)
from repro.client import BroadcastKNNSearch, BroadcastWindowSearch
from repro.geometry import Point, Rect, distance
from repro.rtree import best_first_knn, str_pack
from repro.rtree.traversal import window_search


def make_setup(n=300, seed=0, m=2, phase=0.0):
    rng = random.Random(seed)
    pts = [Point(rng.random() * 1000, rng.random() * 1000) for _ in range(n)]
    params = SystemParameters(page_capacity=64)
    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    program = BroadcastProgram(tree, params, m=m)
    return pts, tree, ChannelTuner(BroadcastChannel(program, phase=phase))


# ----------------------------------------------------------------------
# kNN
# ----------------------------------------------------------------------
@pytest.mark.parametrize("k", [1, 3, 10])
def test_knn_matches_in_memory(k):
    pts, tree, tuner = make_setup(seed=1)
    q = Point(420, 530)
    got = BroadcastKNNSearch(tree, tuner, q, k).run_to_completion()
    want = best_first_knn(tree, q, k)
    assert len(got) == k
    for (gp, gd), (wp, wd) in zip(got, want):
        assert math.isclose(gd, wd, rel_tol=1e-12)


def test_knn_results_sorted():
    _, tree, tuner = make_setup(seed=2)
    got = BroadcastKNNSearch(tree, tuner, Point(100, 100), 8).run_to_completion()
    dists = [d for _, d in got]
    assert dists == sorted(dists)


def test_knn_k_exceeds_dataset():
    pts, tree, tuner = make_setup(n=5, seed=3)
    got = BroadcastKNNSearch(tree, tuner, Point(0, 0), 20).run_to_completion()
    assert len(got) == 5


def test_knn_invalid_k():
    _, tree, tuner = make_setup(n=10, seed=4)
    with pytest.raises(ValueError):
        BroadcastKNNSearch(tree, tuner, Point(0, 0), 0)


def test_knn_k1_equals_nn():
    pts, tree, tuner = make_setup(seed=5)
    q = Point(700, 200)
    [(pt, d)] = BroadcastKNNSearch(tree, tuner, q, 1).run_to_completion()
    assert math.isclose(d, min(distance(q, p) for p in pts), rel_tol=1e-12)


def test_knn_downloads_fewer_pages_for_smaller_k():
    _, tree, t1 = make_setup(n=600, seed=6)
    _, _, t2 = make_setup(n=600, seed=6)
    q = Point(500, 500)
    BroadcastKNNSearch(tree, t1, q, 1).run_to_completion()
    BroadcastKNNSearch(tree, t2, q, 50).run_to_completion()
    assert t1.index_pages <= t2.index_pages


def test_knn_step_on_finished_raises():
    _, tree, tuner = make_setup(n=10, seed=7)
    s = BroadcastKNNSearch(tree, tuner, Point(0, 0), 2)
    s.run_to_completion()
    with pytest.raises(RuntimeError):
        s.step()


# ----------------------------------------------------------------------
# Window search
# ----------------------------------------------------------------------
def test_window_matches_in_memory():
    pts, tree, tuner = make_setup(seed=8)
    win = Rect(200, 300, 600, 700)
    got = BroadcastWindowSearch(tree, tuner, win).run_to_completion()
    assert sorted(got) == sorted(window_search(tree, win))


def test_window_empty():
    _, tree, tuner = make_setup(seed=9)
    got = BroadcastWindowSearch(tree, tuner, Rect(-10, -10, -5, -5)).run_to_completion()
    assert got == []


def test_window_full_region():
    pts, tree, tuner = make_setup(n=150, seed=10)
    got = BroadcastWindowSearch(tree, tuner, Rect(-1, -1, 1001, 1001)).run_to_completion()
    assert len(got) == len(pts)
    assert tuner.index_pages == tree.node_count()


def test_window_boundary_inclusive():
    pts = [Point(0, 0), Point(5, 5), Point(10, 10)]
    params = SystemParameters()
    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    program = BroadcastProgram(tree, params, m=1)
    tuner = ChannelTuner(BroadcastChannel(program))
    got = BroadcastWindowSearch(tree, tuner, Rect(0, 0, 5, 5)).run_to_completion()
    assert sorted(got) == [Point(0, 0), Point(5, 5)]


def test_window_step_on_finished_raises():
    _, tree, tuner = make_setup(n=10, seed=11)
    s = BroadcastWindowSearch(tree, tuner, Rect(0, 0, 1, 1))
    s.run_to_completion()
    with pytest.raises(RuntimeError):
        s.step()


# ----------------------------------------------------------------------
# Queue accounting (Section 4.2.4 memory claim)
# ----------------------------------------------------------------------
def test_nn_queue_stays_small():
    from repro.client import BroadcastNNSearch

    pts, tree, tuner = make_setup(n=800, seed=12)
    search = BroadcastNNSearch(tree, tuner, Point(500, 500))
    search.run_to_completion()
    h, m = tree.height, max(tree.fanout, tree.leaf_capacity)
    # The delayed-pruning queue is bounded by roughly one fanout's worth of
    # siblings per level; allow slack for the arrival-order pop schedule.
    assert search.max_queue_size <= 3 * h * m
    assert search.max_queue_size >= 1


def test_knn_tracks_max_queue_size():
    """kNN carries the same memory-footprint accounting as the NN search."""
    pts, tree, tuner = make_setup(n=200, seed=7)
    search = BroadcastKNNSearch(tree, tuner, Point(400, 400), k=3)
    assert search.max_queue_size == 1  # the root is queued at construction
    search.run_to_completion()
    assert search.max_queue_size > 1
    # The queue can never have outgrown the whole tree.
    assert search.max_queue_size <= tree.node_count()


def test_window_tracks_max_queue_size():
    """The window search rides the shared queue mixin's accounting."""
    pts, tree, tuner = make_setup(n=300, seed=13)
    search = BroadcastWindowSearch(tree, tuner, Rect(100, 100, 900, 900))
    assert search.max_queue_size == 1  # the root is queued at construction
    search.run_to_completion()
    assert search.max_queue_size > 1
    assert search.max_queue_size <= tree.node_count()


# ----------------------------------------------------------------------
# Kernel path vs scalar oracle: bit-identical answers and tuner state
# ----------------------------------------------------------------------
def _setup_for(capacity, n, seed, phase):
    rng = random.Random(seed)
    pts = [Point(rng.random() * 1000, rng.random() * 1000) for _ in range(n)]
    params = SystemParameters(page_capacity=capacity)
    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    program = BroadcastProgram(tree, params, m=2)
    return pts, tree, ChannelTuner(BroadcastChannel(program, phase=phase))


@pytest.mark.parametrize("capacity", [64, 512])
@pytest.mark.parametrize("seed", range(6))
def test_knn_kernel_path_bit_identical(capacity, seed):
    """Seeded sweep: kernel and scalar kNN agree exactly, incl. tune-in."""
    from repro.geometry import kernels

    rng = random.Random(1000 + seed)
    q = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
    k = rng.choice([1, 3, 7, 20])
    phase = rng.uniform(0, 100)
    n = 400 + 60 * seed

    results = {}
    for flag in (False, True):
        _, tree, tuner = _setup_for(capacity, n, seed, phase)
        with kernels.use_kernels(flag):
            got = BroadcastKNNSearch(tree, tuner, q, k).run_to_completion()
        results[flag] = (got, tuner.now, tuner.index_pages, tuple(tuner.log))
    assert results[False] == results[True]


@pytest.mark.parametrize("capacity", [64, 512])
@pytest.mark.parametrize("seed", range(6))
def test_window_kernel_path_bit_identical(capacity, seed):
    """Seeded sweep: kernel and scalar window queries agree exactly."""
    from repro.geometry import kernels

    rng = random.Random(2000 + seed)
    x0, y0 = rng.uniform(0, 800), rng.uniform(0, 800)
    win = Rect(x0, y0, x0 + rng.uniform(10, 400), y0 + rng.uniform(10, 400))
    phase = rng.uniform(0, 100)
    n = 400 + 60 * seed

    results = {}
    for flag in (False, True):
        _, tree, tuner = _setup_for(capacity, n, seed, phase)
        with kernels.use_kernels(flag):
            got = BroadcastWindowSearch(tree, tuner, win).run_to_completion()
        results[flag] = (got, tuner.now, tuner.index_pages, tuple(tuner.log))
    assert results[False] == results[True]


def test_knn_kernel_path_handles_duplicate_distance_ties():
    """Exact distance ties at the k-th slot: both paths keep the same set."""
    from repro.geometry import kernels

    # A ring of symmetric points: many exactly-equal distances from q.
    pts = [Point(500 + dx, 500 + dy) for dx in range(-20, 21, 2)
           for dy in range(-20, 21, 2)]
    params = SystemParameters(page_capacity=512)
    q = Point(500, 500)
    results = {}
    for flag in (False, True):
        tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
        program = BroadcastProgram(tree, params, m=2)
        tuner = ChannelTuner(BroadcastChannel(program))
        with kernels.use_kernels(flag):
            got = BroadcastKNNSearch(tree, tuner, q, 7).run_to_completion()
        results[flag] = got
    assert results[False] == results[True]
