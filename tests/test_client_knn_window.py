"""Tests for the broadcast kNN and window searches."""

import math
import random

import pytest

from repro.broadcast import (
    BroadcastChannel,
    BroadcastProgram,
    ChannelTuner,
    SystemParameters,
)
from repro.client import BroadcastKNNSearch, BroadcastWindowSearch
from repro.geometry import Point, Rect, distance
from repro.rtree import best_first_knn, str_pack
from repro.rtree.traversal import window_search


def make_setup(n=300, seed=0, m=2, phase=0.0):
    rng = random.Random(seed)
    pts = [Point(rng.random() * 1000, rng.random() * 1000) for _ in range(n)]
    params = SystemParameters(page_capacity=64)
    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    program = BroadcastProgram(tree, params, m=m)
    return pts, tree, ChannelTuner(BroadcastChannel(program, phase=phase))


# ----------------------------------------------------------------------
# kNN
# ----------------------------------------------------------------------
@pytest.mark.parametrize("k", [1, 3, 10])
def test_knn_matches_in_memory(k):
    pts, tree, tuner = make_setup(seed=1)
    q = Point(420, 530)
    got = BroadcastKNNSearch(tree, tuner, q, k).run_to_completion()
    want = best_first_knn(tree, q, k)
    assert len(got) == k
    for (gp, gd), (wp, wd) in zip(got, want):
        assert math.isclose(gd, wd, rel_tol=1e-12)


def test_knn_results_sorted():
    _, tree, tuner = make_setup(seed=2)
    got = BroadcastKNNSearch(tree, tuner, Point(100, 100), 8).run_to_completion()
    dists = [d for _, d in got]
    assert dists == sorted(dists)


def test_knn_k_exceeds_dataset():
    pts, tree, tuner = make_setup(n=5, seed=3)
    got = BroadcastKNNSearch(tree, tuner, Point(0, 0), 20).run_to_completion()
    assert len(got) == 5


def test_knn_invalid_k():
    _, tree, tuner = make_setup(n=10, seed=4)
    with pytest.raises(ValueError):
        BroadcastKNNSearch(tree, tuner, Point(0, 0), 0)


def test_knn_k1_equals_nn():
    pts, tree, tuner = make_setup(seed=5)
    q = Point(700, 200)
    [(pt, d)] = BroadcastKNNSearch(tree, tuner, q, 1).run_to_completion()
    assert math.isclose(d, min(distance(q, p) for p in pts), rel_tol=1e-12)


def test_knn_downloads_fewer_pages_for_smaller_k():
    _, tree, t1 = make_setup(n=600, seed=6)
    _, _, t2 = make_setup(n=600, seed=6)
    q = Point(500, 500)
    BroadcastKNNSearch(tree, t1, q, 1).run_to_completion()
    BroadcastKNNSearch(tree, t2, q, 50).run_to_completion()
    assert t1.index_pages <= t2.index_pages


def test_knn_step_on_finished_raises():
    _, tree, tuner = make_setup(n=10, seed=7)
    s = BroadcastKNNSearch(tree, tuner, Point(0, 0), 2)
    s.run_to_completion()
    with pytest.raises(RuntimeError):
        s.step()


# ----------------------------------------------------------------------
# Window search
# ----------------------------------------------------------------------
def test_window_matches_in_memory():
    pts, tree, tuner = make_setup(seed=8)
    win = Rect(200, 300, 600, 700)
    got = BroadcastWindowSearch(tree, tuner, win).run_to_completion()
    assert sorted(got) == sorted(window_search(tree, win))


def test_window_empty():
    _, tree, tuner = make_setup(seed=9)
    got = BroadcastWindowSearch(tree, tuner, Rect(-10, -10, -5, -5)).run_to_completion()
    assert got == []


def test_window_full_region():
    pts, tree, tuner = make_setup(n=150, seed=10)
    got = BroadcastWindowSearch(tree, tuner, Rect(-1, -1, 1001, 1001)).run_to_completion()
    assert len(got) == len(pts)
    assert tuner.index_pages == tree.node_count()


def test_window_boundary_inclusive():
    pts = [Point(0, 0), Point(5, 5), Point(10, 10)]
    params = SystemParameters()
    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    program = BroadcastProgram(tree, params, m=1)
    tuner = ChannelTuner(BroadcastChannel(program))
    got = BroadcastWindowSearch(tree, tuner, Rect(0, 0, 5, 5)).run_to_completion()
    assert sorted(got) == [Point(0, 0), Point(5, 5)]


def test_window_step_on_finished_raises():
    _, tree, tuner = make_setup(n=10, seed=11)
    s = BroadcastWindowSearch(tree, tuner, Rect(0, 0, 1, 1))
    s.run_to_completion()
    with pytest.raises(RuntimeError):
        s.step()


# ----------------------------------------------------------------------
# Queue accounting (Section 4.2.4 memory claim)
# ----------------------------------------------------------------------
def test_nn_queue_stays_small():
    from repro.client import BroadcastNNSearch

    pts, tree, tuner = make_setup(n=800, seed=12)
    search = BroadcastNNSearch(tree, tuner, Point(500, 500))
    search.run_to_completion()
    h, m = tree.height, max(tree.fanout, tree.leaf_capacity)
    # The delayed-pruning queue is bounded by roughly one fanout's worth of
    # siblings per level; allow slack for the arrival-order pop schedule.
    assert search.max_queue_size <= 3 * h * m
    assert search.max_queue_size >= 1


def test_knn_tracks_max_queue_size():
    """kNN carries the same memory-footprint accounting as the NN search."""
    pts, tree, tuner = make_setup(n=200, seed=7)
    search = BroadcastKNNSearch(tree, tuner, Point(400, 400), k=3)
    assert search.max_queue_size == 1  # the root is queued at construction
    search.run_to_completion()
    assert search.max_queue_size > 1
    # The queue can never have outgrown the whole tree.
    assert search.max_queue_size <= tree.node_count()
