"""Unit and property tests for repro.geometry.segment."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    Point,
    Rect,
    Segment,
    reflect_point,
    segment_intersects_rect,
    segments_intersect,
)
from repro.geometry.segment import orientation, same_strict_side

coords = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


def test_orientation_signs():
    assert orientation(Point(0, 0), Point(1, 0), Point(0, 1)) > 0
    assert orientation(Point(0, 0), Point(1, 0), Point(0, -1)) < 0
    assert orientation(Point(0, 0), Point(1, 0), Point(2, 0)) == 0


def test_segment_length_and_midpoint():
    s = Segment(Point(0, 0), Point(3, 4))
    assert s.length == 5.0
    assert s.midpoint() == Point(1.5, 2)
    assert s.point_at(0.0) == s.a
    assert s.point_at(1.0) == s.b


def test_segments_crossing():
    a = Segment(Point(0, 0), Point(2, 2))
    b = Segment(Point(0, 2), Point(2, 0))
    assert segments_intersect(a, b)


def test_segments_parallel_disjoint():
    a = Segment(Point(0, 0), Point(2, 0))
    b = Segment(Point(0, 1), Point(2, 1))
    assert not segments_intersect(a, b)


def test_segments_touching_endpoint():
    a = Segment(Point(0, 0), Point(1, 1))
    b = Segment(Point(1, 1), Point(2, 0))
    assert segments_intersect(a, b)


def test_segments_collinear_overlapping():
    a = Segment(Point(0, 0), Point(2, 0))
    b = Segment(Point(1, 0), Point(3, 0))
    assert segments_intersect(a, b)


def test_segments_collinear_disjoint():
    a = Segment(Point(0, 0), Point(1, 0))
    b = Segment(Point(2, 0), Point(3, 0))
    assert not segments_intersect(a, b)


def test_segment_intersects_rect_endpoint_inside():
    r = Rect(0, 0, 2, 2)
    assert segment_intersects_rect(Segment(Point(1, 1), Point(5, 5)), r)


def test_segment_intersects_rect_passing_through():
    r = Rect(0, 0, 2, 2)
    assert segment_intersects_rect(Segment(Point(-1, 1), Point(3, 1)), r)


def test_segment_misses_rect():
    r = Rect(0, 0, 2, 2)
    assert not segment_intersects_rect(Segment(Point(-1, 5), Point(3, 5)), r)


def test_segment_grazes_rect_corner():
    r = Rect(0, 0, 2, 2)
    # The line x + y = 4 touches corner (2, 2).
    assert segment_intersects_rect(Segment(Point(0, 4), Point(4, 0)), r)


def test_same_strict_side():
    line = Segment(Point(0, 0), Point(1, 0))
    assert same_strict_side(line, Point(0, 1), Point(5, 2))
    assert not same_strict_side(line, Point(0, 1), Point(5, -2))
    assert not same_strict_side(line, Point(0, 1), Point(5, 0))  # on the line


def test_reflect_point_across_x_axis():
    line = Segment(Point(0, 0), Point(1, 0))
    assert reflect_point(Point(2, 3), line) == Point(2, -3)


def test_reflect_point_across_diagonal():
    line = Segment(Point(0, 0), Point(1, 1))
    mirrored = reflect_point(Point(1, 0), line)
    assert math.isclose(mirrored.x, 0, abs_tol=1e-12)
    assert math.isclose(mirrored.y, 1, abs_tol=1e-12)


def test_reflect_degenerate_raises():
    with pytest.raises(ValueError):
        reflect_point(Point(1, 1), Segment(Point(0, 0), Point(0, 0)))


@given(points, points, points)
def test_reflection_is_involution(p, a, b):
    if a == b:
        return
    line = Segment(a, b)
    twice = reflect_point(reflect_point(p, line), line)
    assert math.isclose(twice.x, p.x, abs_tol=1e-5)
    assert math.isclose(twice.y, p.y, abs_tol=1e-5)


@given(points, points, points)
def test_reflection_preserves_distance_to_line_points(p, a, b):
    if a == b:
        return
    mirrored = reflect_point(p, Segment(a, b))
    assert math.isclose(p.distance_to(a), mirrored.distance_to(a), rel_tol=1e-6, abs_tol=1e-5)
    assert math.isclose(p.distance_to(b), mirrored.distance_to(b), rel_tol=1e-6, abs_tol=1e-5)


@given(points, points, points, points)
def test_segments_intersect_symmetry(a, b, c, d):
    assert segments_intersect(Segment(a, b), Segment(c, d)) == segments_intersect(
        Segment(c, d), Segment(a, b)
    )
