"""Tests for the ASCII chart renderer."""

import pytest

from repro.sim.charts import render_chart


def test_basic_chart_structure():
    text = render_chart(
        [1, 2, 3],
        {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]},
        width=30,
        height=8,
        title="T",
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert len(lines) == 1 + 8 + 1 + 1 + 1  # title + grid + axis + x + legend
    assert "o=a" in lines[-1]
    assert "x=b" in lines[-1]
    assert "1 .. 3" in lines[-2]


def test_markers_present():
    text = render_chart([0, 1], {"up": [0.0, 10.0]}, width=20, height=6)
    assert "o" in text


def test_min_max_labels():
    text = render_chart([0, 1], {"s": [5.0, 25.0]}, width=20, height=6)
    assert "25" in text
    assert "5" in text


def test_constant_series_does_not_crash():
    text = render_chart([0, 1, 2], {"flat": [7.0, 7.0, 7.0]}, width=20, height=6)
    assert "flat" in text


def test_validation_errors():
    with pytest.raises(ValueError):
        render_chart([1, 2], {}, width=20, height=6)
    with pytest.raises(ValueError):
        render_chart([1, 2], {"a": [1.0]}, width=20, height=6)
    with pytest.raises(ValueError):
        render_chart([1], {"a": [1.0]}, width=20, height=6)
    with pytest.raises(ValueError):
        render_chart([1, 2], {"a": [1.0, 2.0]}, width=4, height=2)


def test_cli_chart_flag(capsys):
    from repro.sim.cli import main

    rc = main(["fig9a", "--scale", "0.02", "--queries", "2", "--chart"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "o=window-based" in out
