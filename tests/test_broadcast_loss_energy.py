"""Tests for the page-loss model and the energy model."""

import math
import random

import pytest

from repro.broadcast import (
    BroadcastChannel,
    BroadcastProgram,
    ChannelTuner,
    EnergyModel,
    PageLossModel,
    SystemParameters,
)
from repro.client import BroadcastNNSearch
from repro.core import DoubleNN, TNNEnvironment
from repro.datasets import uniform
from repro.geometry import Point, Rect, distance
from repro.rtree import str_pack


def make_setup(n=200, seed=0, loss=None):
    rng = random.Random(seed)
    pts = [Point(rng.random() * 1000, rng.random() * 1000) for _ in range(n)]
    params = SystemParameters(page_capacity=64)
    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    program = BroadcastProgram(tree, params, m=2)
    return pts, tree, ChannelTuner(BroadcastChannel(program), loss=loss)


# ----------------------------------------------------------------------
# PageLossModel
# ----------------------------------------------------------------------
def test_loss_rate_validation():
    with pytest.raises(ValueError):
        PageLossModel(rate=-0.1)
    with pytest.raises(ValueError):
        PageLossModel(rate=1.0)
    PageLossModel(rate=0.0)  # boundary ok


def test_loss_zero_never_loses():
    model = PageLossModel(rate=0.0)
    assert not any(model.lost(float(t)) for t in range(1000))


def test_loss_deterministic():
    model = PageLossModel(rate=0.3, seed=7)
    outcomes = [model.lost(float(t)) for t in range(100)]
    assert outcomes == [model.lost(float(t)) for t in range(100)]


def test_loss_seed_changes_outcomes():
    a = [PageLossModel(0.3, seed=1).lost(float(t)) for t in range(200)]
    b = [PageLossModel(0.3, seed=2).lost(float(t)) for t in range(200)]
    assert a != b


def test_loss_empirical_rate():
    model = PageLossModel(rate=0.25, seed=3)
    losses = sum(model.lost(float(t)) for t in range(20_000))
    assert abs(losses / 20_000 - 0.25) < 0.02


# ----------------------------------------------------------------------
# Lossy tuner behaviour
# ----------------------------------------------------------------------
def test_lossless_tuner_has_no_lost_pages():
    _, tree, tuner = make_setup(seed=1)
    BroadcastNNSearch(tree, tuner, Point(500, 500)).run_to_completion()
    assert tuner.lost_pages == 0


def test_lossy_search_still_exact():
    pts, tree, tuner = make_setup(seed=2, loss=PageLossModel(rate=0.3, seed=9))
    q = Point(444, 333)
    search = BroadcastNNSearch(tree, tuner, q)
    search.run_to_completion()
    _, d = search.result()
    assert math.isclose(d, min(distance(q, p) for p in pts), rel_tol=1e-12)
    assert tuner.lost_pages > 0


def test_loss_increases_access_and_tunein():
    q = Point(500, 500)
    _, tree, clean = make_setup(seed=3)
    s1 = BroadcastNNSearch(tree, clean, q)
    s1.run_to_completion()
    _, tree2, lossy = make_setup(seed=3, loss=PageLossModel(rate=0.4, seed=11))
    s2 = BroadcastNNSearch(tree2, lossy, q)
    s2.run_to_completion()
    assert lossy.now > clean.now
    assert lossy.pages_downloaded > clean.pages_downloaded
    # Lost attempts are part of the tune-in accounting.
    assert lossy.pages_downloaded >= clean.pages_downloaded + lossy.lost_pages * 0


def test_lossy_object_download():
    _, tree, tuner = make_setup(seed=4, loss=PageLossModel(rate=0.5, seed=13))
    ppo = tuner.channel.program.params.pages_per_object
    tuner.download_object(0)
    assert tuner.data_pages >= ppo
    assert tuner.data_pages == ppo + tuner.lost_pages


# ----------------------------------------------------------------------
# EnergyModel
# ----------------------------------------------------------------------
def test_energy_validation():
    with pytest.raises(ValueError):
        EnergyModel(active_watts=0)
    with pytest.raises(ValueError):
        EnergyModel(doze_watts=2.0, active_watts=1.0)
    with pytest.raises(ValueError):
        EnergyModel(page_seconds=0)


def test_energy_simple_accounting():
    model = EnergyModel(active_watts=1.0, doze_watts=0.1, page_seconds=1.0)
    # 10 pages active + 90 pages dozing.
    assert math.isclose(model.joules(10, 100), 10 * 1.0 + 90 * 0.1)


def test_energy_negative_rejected():
    model = EnergyModel()
    with pytest.raises(ValueError):
        model.joules(-1, 10)


def test_energy_of_result_and_savings():
    region = Rect(0, 0, 2000, 2000)
    env = TNNEnvironment.build(
        uniform(200, seed=1, region=region), uniform(200, seed=2, region=region)
    )
    p = Point(1000, 1000)
    base = DoubleNN().run(env, p)
    model = EnergyModel()
    assert model.of(base) > 0
    # Savings against itself are zero.
    assert model.savings(base, base) == 0.0


def test_energy_monotone_in_tunein():
    model = EnergyModel()
    assert model.joules(50, 100) > model.joules(10, 100)
