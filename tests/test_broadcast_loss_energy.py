"""Tests for the page-loss model and the energy model."""

import math
import random

import pytest

from repro.broadcast import (
    FAULT_CORRUPT,
    FAULT_LOST,
    FAULT_OK,
    BroadcastChannel,
    BroadcastProgram,
    ChannelTuner,
    EnergyModel,
    GilbertElliottLossModel,
    PageCorruptionModel,
    PageLossModel,
    SystemParameters,
    available_fault_models,
    make_fault_model,
    register_fault_model,
)
from repro.client import BroadcastNNSearch
from repro.core import DoubleNN, TNNEnvironment
from repro.datasets import uniform
from repro.geometry import Point, Rect, distance
from repro.rtree import str_pack


def make_setup(n=200, seed=0, loss=None):
    rng = random.Random(seed)
    pts = [Point(rng.random() * 1000, rng.random() * 1000) for _ in range(n)]
    params = SystemParameters(page_capacity=64)
    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    program = BroadcastProgram(tree, params, m=2)
    return pts, tree, ChannelTuner(BroadcastChannel(program), loss=loss)


# ----------------------------------------------------------------------
# PageLossModel
# ----------------------------------------------------------------------
def test_loss_rate_validation():
    with pytest.raises(ValueError):
        PageLossModel(rate=-0.1)
    with pytest.raises(ValueError):
        PageLossModel(rate=1.0)
    PageLossModel(rate=0.0)  # boundary ok


def test_loss_rate_rejects_non_finite_and_explains_livelock():
    """Satellite: NaN silently falls through chained comparisons, and
    rate=1.0 would make every replica fail — both must raise clearly."""
    for bad in (math.nan, math.inf, -math.inf):
        with pytest.raises(ValueError, match="finite"):
            PageLossModel(rate=bad)
    with pytest.raises(ValueError, match="livelock"):
        PageLossModel(rate=1.0)
    with pytest.raises(ValueError, match="finite"):
        PageLossModel(rate="0.5")  # type: ignore[arg-type]


def test_loss_zero_never_loses():
    model = PageLossModel(rate=0.0)
    assert not any(model.lost(float(t)) for t in range(1000))


def test_loss_deterministic():
    model = PageLossModel(rate=0.3, seed=7)
    outcomes = [model.lost(float(t)) for t in range(100)]
    assert outcomes == [model.lost(float(t)) for t in range(100)]


def test_loss_seed_changes_outcomes():
    a = [PageLossModel(0.3, seed=1).lost(float(t)) for t in range(200)]
    b = [PageLossModel(0.3, seed=2).lost(float(t)) for t in range(200)]
    assert a != b


def test_loss_empirical_rate():
    model = PageLossModel(rate=0.25, seed=3)
    losses = sum(model.lost(float(t)) for t in range(20_000))
    assert abs(losses / 20_000 - 0.25) < 0.02


# ----------------------------------------------------------------------
# Gilbert-Elliott bursty loss
# ----------------------------------------------------------------------
def test_ge_validation():
    with pytest.raises(ValueError):
        GilbertElliottLossModel(bad_rate=1.0)  # livelocks inside a fade
    with pytest.raises(ValueError):
        GilbertElliottLossModel(p_good_bad=1.5)
    with pytest.raises(ValueError):
        GilbertElliottLossModel(p_bad_good=math.nan)
    with pytest.raises(ValueError):
        GilbertElliottLossModel(regen=0)
    GilbertElliottLossModel(p_good_bad=1.0, p_bad_good=1.0)  # boundaries ok


def test_ge_deterministic_and_order_independent():
    """Any slot's outcome is a pure function of (seed, slot): querying out
    of order, repeatedly, or on a fresh instance never changes it."""
    kwargs = dict(
        bad_rate=0.7, p_good_bad=0.1, p_bad_good=0.25, seed=5, regen=16
    )
    a = GilbertElliottLossModel(**kwargs)
    forward = [a.classify(float(t)) for t in range(300)]
    b = GilbertElliottLossModel(**kwargs)
    backward = [b.classify(float(t)) for t in reversed(range(300))]
    assert forward == backward[::-1]
    assert forward == [a.classify(float(t)) for t in range(300)]  # memoised


def test_ge_fades_are_bursty():
    """Losses cluster: the conditional loss rate right after a loss is
    well above the marginal rate (the whole point of the model)."""
    model = GilbertElliottLossModel(
        good_rate=0.0, bad_rate=0.9, p_good_bad=0.03, p_bad_good=0.15, seed=2
    )
    outcomes = [model.lost(float(t)) for t in range(30_000)]
    marginal = sum(outcomes) / len(outcomes)
    after_loss = [b for a, b in zip(outcomes, outcomes[1:]) if a]
    conditional = sum(after_loss) / len(after_loss)
    assert 0.0 < marginal < 0.5
    assert conditional > 2.0 * marginal


def test_ge_never_transitions_stays_good():
    model = GilbertElliottLossModel(
        good_rate=0.0, bad_rate=0.9, p_good_bad=0.0, p_bad_good=0.0, seed=1
    )
    assert not any(model.lost(float(t)) for t in range(2_000))


def test_ge_fractional_slots_share_state_draw_independently():
    """Sub-slot arrivals (phased channels) map to the floor slot's state
    but draw their own loss uniform on the exact float arrival."""
    model = GilbertElliottLossModel(
        good_rate=0.0, bad_rate=1.0 - 1e-12, p_good_bad=0.5, p_bad_good=0.0,
        seed=3,
    )
    # bad_rate ~ 1: inside a fade every attempt fails, outside none does,
    # so two arrivals in the same slot must agree with the slot's state.
    for t in range(200):
        assert model.lost(t + 0.25) == model.lost(t + 0.75) == model.lost(
            float(t)
        )


# ----------------------------------------------------------------------
# Page corruption
# ----------------------------------------------------------------------
def test_corruption_classified_separately():
    model = PageCorruptionModel(rate=0.4, seed=6)
    codes = {model.classify(float(t)) for t in range(500)}
    assert codes == {FAULT_OK, FAULT_CORRUPT}
    assert FAULT_LOST not in codes
    # Operationally a corrupt decode is a loss: lost() forces the retry.
    assert any(model.lost(float(t)) for t in range(500))


def test_corrupt_pages_counted_separately_from_lost():
    _, tree, tuner = make_setup(
        seed=6, loss=PageCorruptionModel(rate=0.5, seed=8)
    )
    search = BroadcastNNSearch(tree, tuner, Point(500.0, 500.0))
    search.run_to_completion()
    assert tuner.corrupt_pages > 0
    assert tuner.lost_pages == 0
    assert any(not ok for *_, ok in tuner.log)


# ----------------------------------------------------------------------
# Fault-model registry
# ----------------------------------------------------------------------
def test_fault_model_registry():
    names = available_fault_models()
    for expected in ("iid", "loss", "gilbert-elliott", "ge", "corruption"):
        assert expected in names
    assert make_fault_model("iid", rate=0.2, seed=3) == PageLossModel(
        rate=0.2, seed=3
    )
    ge = make_fault_model("ge", p_bad_good=0.4)
    assert isinstance(ge, GilbertElliottLossModel)
    assert ge.p_bad_good == 0.4
    with pytest.raises(ValueError, match="unknown fault model"):
        make_fault_model("btree")
    register_fault_model("test-iid", PageLossModel)
    assert isinstance(make_fault_model("test-iid"), PageLossModel)


# ----------------------------------------------------------------------
# Lossy tuner behaviour
# ----------------------------------------------------------------------
def test_lossless_tuner_has_no_lost_pages():
    _, tree, tuner = make_setup(seed=1)
    BroadcastNNSearch(tree, tuner, Point(500, 500)).run_to_completion()
    assert tuner.lost_pages == 0


def test_lossy_search_still_exact():
    pts, tree, tuner = make_setup(seed=2, loss=PageLossModel(rate=0.3, seed=9))
    q = Point(444, 333)
    search = BroadcastNNSearch(tree, tuner, q)
    search.run_to_completion()
    _, d = search.result()
    assert math.isclose(d, min(distance(q, p) for p in pts), rel_tol=1e-12)
    assert tuner.lost_pages > 0


def test_loss_increases_access_and_tunein():
    q = Point(500, 500)
    _, tree, clean = make_setup(seed=3)
    s1 = BroadcastNNSearch(tree, clean, q)
    s1.run_to_completion()
    _, tree2, lossy = make_setup(seed=3, loss=PageLossModel(rate=0.4, seed=11))
    s2 = BroadcastNNSearch(tree2, lossy, q)
    s2.run_to_completion()
    assert lossy.now > clean.now
    assert lossy.pages_downloaded > clean.pages_downloaded
    # Lost attempts are part of the tune-in accounting.
    assert lossy.pages_downloaded >= clean.pages_downloaded + lossy.lost_pages * 0


def test_lossy_object_download():
    _, tree, tuner = make_setup(seed=4, loss=PageLossModel(rate=0.5, seed=13))
    ppo = tuner.channel.program.params.pages_per_object
    tuner.download_object(0)
    assert tuner.data_pages >= ppo
    assert tuner.data_pages == ppo + tuner.lost_pages


# ----------------------------------------------------------------------
# EnergyModel
# ----------------------------------------------------------------------
def test_energy_validation():
    with pytest.raises(ValueError):
        EnergyModel(active_watts=0)
    with pytest.raises(ValueError):
        EnergyModel(doze_watts=2.0, active_watts=1.0)
    with pytest.raises(ValueError):
        EnergyModel(page_seconds=0)


def test_energy_simple_accounting():
    model = EnergyModel(active_watts=1.0, doze_watts=0.1, page_seconds=1.0)
    # 10 pages active + 90 pages dozing.
    assert math.isclose(model.joules(10, 100), 10 * 1.0 + 90 * 0.1)


def test_energy_negative_rejected():
    model = EnergyModel()
    with pytest.raises(ValueError):
        model.joules(-1, 10)


def test_energy_of_result_and_savings():
    region = Rect(0, 0, 2000, 2000)
    env = TNNEnvironment.build(
        uniform(200, seed=1, region=region), uniform(200, seed=2, region=region)
    )
    p = Point(1000, 1000)
    base = DoubleNN().run(env, p)
    model = EnergyModel()
    assert model.of(base) > 0
    # Savings against itself are zero.
    assert model.savings(base, base) == 0.0


def test_energy_monotone_in_tunein():
    model = EnergyModel()
    assert model.joules(50, 100) > model.joules(10, 100)
