"""Light-scale smoke + shape tests for the canned experiments and CLI."""

import pytest

from repro.sim import experiments as exp
from repro.sim.cli import EXPERIMENTS, main

TINY = dict(scale=0.02, n_queries=3)


def test_fig9a_structure():
    s = exp.fig9a(**TINY)
    assert s.experiment_id == "fig9a"
    assert len(s.x_values) == len(exp.SIZE_SWEEP)
    assert set(s.series) == {
        "window-based", "approximate-tnn", "double-nn", "hybrid-nn"
    }
    for values in s.series.values():
        assert len(values) == len(s.x_values)
        assert all(v > 0 for v in values)
    assert "access time" in s.render()


def test_fig9_shape_approx_fastest_access():
    """The headline access-time ordering of Figure 9."""
    s = exp.fig9a(scale=0.05, n_queries=5)
    for i in range(len(s.x_values)):
        assert s.series["approximate-tnn"][i] <= s.series["window-based"][i]
        # Double-NN is never slower than Window-Based (equal when one
        # dataset dwarfs the other, Section 6.1.1).
        assert s.series["double-nn"][i] <= s.series["window-based"][i] * 1.05


def test_fig9_double_equals_hybrid_access():
    s = exp.fig9b(scale=0.04, n_queries=4)
    for d, h in zip(s.series["double-nn"], s.series["hybrid-nn"]):
        assert abs(d - h) / d < 0.1


def test_fig11_structure():
    s = exp.fig11b(**TINY)
    assert s.metric == "tune-in time"
    assert set(s.series) == {"window-based", "double-nn", "hybrid-nn"}


def test_fig11d_includes_approximate():
    s = exp.fig11d(**TINY)
    assert "approximate-tnn" in s.series


def test_fig12a_structure():
    s = exp.fig12a(**TINY)
    assert set(s.series) == {
        "window-eNN", "window-ANN", "double-eNN", "double-ANN"
    }


def test_fig12d_page_capacity_axis():
    s = exp.fig12d(scale=0.01, n_queries=2)
    assert s.x_values == [64, 128, 256, 512]


def test_fig13_structure():
    s = exp.fig13a(**TINY)
    assert set(s.series) == {
        "hybrid-eNN", "hybrid-ANN-1/150", "hybrid-ANN-1/200"
    }


def test_table3_structure():
    rates, text = exp.table3(scale=0.02, n_queries=2)
    assert set(rates) == {"uni-uni", "uni-real", "real-uni", "real-real"}
    assert all(0.0 <= v <= 1.0 for v in rates.values())
    assert "fail rate" in text


def test_scaled_floor():
    assert exp._scaled(10_000, 0.001) == 50
    assert exp._scaled(10_000, 0.5) == 5_000


def test_env_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.33")
    monkeypatch.setenv("REPRO_QUERIES", "7")
    assert exp.experiment_scale() == 0.33
    assert exp.queries_per_config() == 7


def test_cli_registry_covers_all_artifacts():
    assert set(EXPERIMENTS) == {
        "fig9a", "fig9b", "fig9c", "fig9d",
        "fig11a", "fig11b", "fig11c", "fig11d",
        "fig12a", "fig12b", "fig12c", "fig12d",
        "fig13a", "fig13b", "table3",
    }


def test_cli_runs_one_experiment(capsys):
    rc = main(["fig9a", "--scale", "0.02", "--queries", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "[fig9a]" in out
    assert "finished in" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_sweep_cache_reuses_trees_and_stays_exact():
    """SweepCache hits return identical results to cold builds."""
    from repro.sim.experiments import SweepCache
    from repro.core import TNNEnvironment
    from repro.datasets import sized_uniform
    from repro.engine import BatchRunner, QueryWorkload
    from repro.core import DoubleNN

    s_pts = sized_uniform(120, seed=1)
    r_pts = sized_uniform(120, seed=2)
    cache = SweepCache()
    warm1 = cache.build(s_pts, r_pts)
    assert len(cache.trees) == 2
    warm2 = cache.build(s_pts, r_pts)
    assert warm2.s_tree is warm1.s_tree  # cache hit shares the packed tree
    cold = TNNEnvironment.build(s_pts, r_pts)
    wl = QueryWorkload(4, seed=0)
    assert (
        BatchRunner(warm2, wl).run_algorithm(DoubleNN())
        == BatchRunner(cold, wl).run_algorithm(DoubleNN())
    )


def test_sweep_cache_eviction_keeps_tree_program_consistent():
    """A program outliving its evicted tree still pairs with its own tree.

    Regression test: FIFO eviction can drop a tree entry while the
    value-keyed program survives; the rebuilt environment must use the
    program's original tree (which carries the page ids the program's
    arrival arithmetic assumes), not an id-less fresh pack.
    """
    from repro.sim.experiments import SweepCache
    from repro.datasets import sized_uniform
    from repro.engine import BatchRunner, QueryWorkload
    from repro.core import DoubleNN

    cache = SweepCache()
    cache.MAX_TREES = 2  # force eviction on the second dataset pair
    s_pts = sized_uniform(100, seed=1)
    r_pts = sized_uniform(100, seed=2)
    first = cache.build(s_pts, r_pts)
    cache.build(sized_uniform(100, seed=3), sized_uniform(100, seed=4))
    assert len(cache.trees) == 2  # the first pair's trees were evicted
    again = cache.build(s_pts, r_pts)  # program-cache hit, tree-cache miss
    assert again.s_tree is again.s_program.tree
    assert all(n.page_id is not None for n in again.s_tree.iter_nodes())
    wl = QueryWorkload(4, seed=0)
    assert (
        BatchRunner(again, wl).run_algorithm(DoubleNN())
        == BatchRunner(first, wl).run_algorithm(DoubleNN())
    )
