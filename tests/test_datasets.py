"""Tests for the dataset generators."""

import math

import pytest

from repro.datasets import (
    PAPER_REGION_SIDE,
    UNIF_EXPONENTS,
    city_like,
    density_of,
    expected_nn_distance,
    gaussian_clusters,
    post_like,
    scale_to_region,
    sized_uniform,
    unif_by_exponent,
    unif_size,
    uniform,
)
from repro.geometry import Point, Rect


def test_uniform_count_and_region():
    pts = uniform(500, seed=1)
    assert len(pts) == 500
    region = Rect(0, 0, PAPER_REGION_SIDE, PAPER_REGION_SIDE)
    assert all(region.contains_point(p) for p in pts)


def test_uniform_deterministic_by_seed():
    assert uniform(50, seed=7) == uniform(50, seed=7)
    assert uniform(50, seed=7) != uniform(50, seed=8)


def test_uniform_invalid_size():
    with pytest.raises(ValueError):
        uniform(0)


def test_unif_sizes_match_paper():
    """Section 6 lists the UNIF(E) cardinalities explicitly."""
    want = [152, 382, 960, 2411, 6055, 15210, 38206, 95969]
    got = [unif_size(e) for e in UNIF_EXPONENTS]
    # round() vs the paper's (unstated) truncation can differ by 1.
    for g, w in zip(got, want):
        assert abs(g - w) <= 2, (g, w)


def test_unif_by_exponent_sizes():
    pts = unif_by_exponent(-6.6, seed=2)
    assert len(pts) == unif_size(-6.6)


def test_sized_uniform():
    assert len(sized_uniform(2000, seed=3)) == 2000


def test_gaussian_clusters_in_region():
    region = Rect(0, 0, 100, 100)
    pts = gaussian_clusters(300, clusters=5, seed=4, region=region)
    assert len(pts) == 300
    assert all(region.contains_point(p) for p in pts)


def test_gaussian_clusters_validation():
    with pytest.raises(ValueError):
        gaussian_clusters(0, clusters=3)
    with pytest.raises(ValueError):
        gaussian_clusters(10, clusters=0)


def test_clustered_data_is_skewed():
    """Clustered data concentrates in few grid cells; uniform does not."""
    region = Rect(0, 0, 1000, 1000)
    clustered = gaussian_clusters(2000, clusters=4, seed=5, region=region, spread=0.02)
    flat = uniform(2000, seed=5, region=region)

    def occupancy(points, cells=10):
        filled = {
            (int(p.x / 1000 * cells * 0.999), int(p.y / 1000 * cells * 0.999))
            for p in points
        }
        return len(filled)

    assert occupancy(clustered) < occupancy(flat) * 0.8


def test_city_like_defaults():
    pts = city_like(n=1000, seed=1)
    assert len(pts) == 1000
    region = Rect(0, 0, PAPER_REGION_SIDE, PAPER_REGION_SIDE)
    assert all(region.contains_point(p) for p in pts)


def test_post_like_region():
    pts = post_like(n=1000, seed=1)
    region = Rect(0, 0, 1_000_000, 1_000_000)
    assert all(region.contains_point(p) for p in pts)


def test_scale_to_region():
    pts = [Point(0, 0), Point(10, 20)]
    scaled = scale_to_region(pts, Rect(0, 0, 100, 100))
    assert scaled[0] == Point(0, 0)
    assert scaled[1] == Point(100, 100)


def test_scale_to_region_empty_raises():
    with pytest.raises(ValueError):
        scale_to_region([], Rect(0, 0, 1, 1))


def test_density_of():
    region = Rect(0, 0, 10, 10)
    assert density_of(uniform(50, seed=1, region=region), region) == 0.5


def test_expected_nn_distance():
    # density 1 -> expected NN distance 0.5
    assert math.isclose(expected_nn_distance(100, 100.0), 0.5)
    with pytest.raises(ValueError):
        expected_nn_distance(0, 1.0)
