"""Tests for the Hybrid-style chain TNN."""

import math
import random

from repro.datasets import uniform
from repro.extensions import ChainEnvironment, ChainTNN, HybridChainTNN, chain_oracle
from repro.geometry import Rect, distance

REGION = Rect(0, 0, 1000, 1000)


def make_env(sizes, seed0=0):
    datasets = [
        uniform(n, seed=seed0 + i, region=REGION) for i, n in enumerate(sizes)
    ]
    return ChainEnvironment.build(datasets)


def test_hybrid_chain_matches_oracle_k3():
    env = make_env([40, 35, 30], seed0=3)
    rng = random.Random(1)
    algo = HybridChainTNN()
    for _ in range(6):
        p = env.random_query_point(rng)
        result = algo.run(env, p, env.random_phases(rng))
        _, want = chain_oracle(p, env.datasets)
        assert math.isclose(result.distance, want, rel_tol=1e-9)


def test_hybrid_chain_matches_oracle_k4_unbalanced():
    """Very different dataset sizes force actual re-steering."""
    env = make_env([10, 400, 15, 300], seed0=9)
    rng = random.Random(2)
    algo = HybridChainTNN()
    for _ in range(4):
        p = env.random_query_point(rng)
        result = algo.run(env, p, env.random_phases(rng))
        _, want = chain_oracle(p, env.datasets)
        assert math.isclose(result.distance, want, rel_tol=1e-9)


def test_hybrid_chain_radius_not_worse_than_plain():
    """Cascade re-steering measures each leg from its predecessor, so the
    seed route (the radius) is on average no longer than plain ChainTNN's
    all-from-p route."""
    env = make_env([25, 500, 500], seed0=13)
    rng = random.Random(3)
    plain_r = hybrid_r = 0.0
    for _ in range(10):
        p = env.random_query_point(rng)
        phases = env.random_phases(rng)
        plain_r += ChainTNN().run(env, p, phases).radius
        hybrid_r += HybridChainTNN().run(env, p, phases).radius
    assert hybrid_r <= plain_r * 1.05


def test_hybrid_chain_route_consistency():
    env = make_env([20, 20, 20], seed0=17)
    p = env.random_query_point(random.Random(4))
    result = HybridChainTNN().run(env, p)
    total = distance(p, result.route[0])
    for a, b in zip(result.route, result.route[1:]):
        total += distance(a, b)
    assert math.isclose(total, result.distance, rel_tol=1e-9)
    assert result.radius >= result.distance - 1e-9
