"""Property tests: chunked distributed execution is order-insensitive.

Two layers make the distributed campaign bit-identical to the serial
oracle, and each is pinned down here on its own:

* a shard is a **pure function** of (environment, query slice) — however
  the workload is partitioned, ``execute_tnn_batch`` over the pieces
  concatenates to the serial run;
* the **merge is order-insensitive** — any interleaving of chunk
  arrivals, including shuffled, duplicated and stale-late chunks,
  produces the same workload-ordered result list, and therefore the
  same tuner summaries.
"""

import random

import pytest

from repro.broadcast import SystemParameters
from repro.core import DoubleNN, HybridNN, TNNEnvironment
from repro.datasets import sized_uniform
from repro.engine import QueryWorkload, execute_tnn_batch
from repro.engine.distributed import ChunkMerger
from repro.geometry import kernels
from repro.sim.stats import summarize_batch


@pytest.fixture(scope="module")
def env():
    return TNNEnvironment.build(
        sized_uniform(200, seed=3),
        sized_uniform(200, seed=4),
        params=SystemParameters(page_capacity=64),
    )


@pytest.fixture(scope="module")
def queries(env):
    return QueryWorkload(n_queries=18, seed=9).queries(env)


@pytest.fixture(scope="module", params=["double", "hybrid"])
def oracle(request, env, queries):
    algo = DoubleNN() if request.param == "double" else HybridNN()
    with kernels.use_kernels(True):
        return algo, execute_tnn_batch(env, algo, queries, record_log=False)


def _random_partition(rng, n):
    """A random contiguous-free partition of range(n) into chunks."""
    indices = list(range(n))
    rng.shuffle(indices)
    chunks, at = [], 0
    while at < n:
        size = rng.randint(1, 5)
        chunks.append(indices[at : at + size])
        at += size
    return chunks


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_any_partition_executes_bit_identical(env, queries, oracle, seed):
    """Shards are pure: executing arbitrary (even non-contiguous,
    shuffled) slices independently reproduces the serial results."""
    algo, want = oracle
    rng = random.Random(seed)
    merged = [None] * len(queries)
    with kernels.use_kernels(True):
        for chunk in _random_partition(rng, len(queries)):
            results = execute_tnn_batch(
                env, algo, [queries[i] for i in chunk], record_log=False
            )
            for i, res in zip(chunk, results):
                merged[i] = res
    assert merged == want
    assert summarize_batch(merged) == summarize_batch(want)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_merge_is_arrival_order_insensitive(queries, oracle, seed):
    """Any interleaving of chunk arrivals — shuffled across shards,
    duplicated, and replayed late — books the same result list."""
    algo, want = oracle
    rng = random.Random(seed)
    chunks = [
        [(i, want[i]) for i in chunk]
        for chunk in _random_partition(rng, len(queries))
    ]
    arrivals = list(chunks)
    # Duplicate a random subset (a zombie's resent frames)...
    arrivals += [rng.choice(chunks) for _ in range(rng.randint(1, 4))]
    # ...and shuffle the whole arrival order.
    rng.shuffle(arrivals)
    merger = ChunkMerger(len(queries))
    for pairs in arrivals:
        merger.book(pairs)
    assert merger.complete
    assert merger.results == want
    assert summarize_batch(merger.results) == summarize_batch(want)
    dup_pairs = sum(len(c) for c in arrivals) - len(queries)
    assert merger.duplicates_dropped == dup_pairs


def test_late_duplicate_with_divergent_payload_cannot_double_book(
    queries, oracle
):
    """First-write-wins: even a *corrupted* late duplicate (payload
    differs from the booked result) changes nothing — the fence is
    positional, not value-based."""
    _algo, want = oracle
    merger = ChunkMerger(len(queries))
    for i, res in enumerate(want):
        merger.book([(i, res)])
    merger.book([(0, "poison"), (1, "poison")])
    assert merger.results == want
    assert merger.duplicates_dropped == 2


def test_interleaved_partial_chunks_from_competing_leases(queries, oracle):
    """Two leases racing over the same slice (one revoked, re-leased)
    interleave partial chunks; the merge still lands exactly once per
    query."""
    _algo, want = oracle
    merger = ChunkMerger(len(queries))
    n = len(queries)
    first = [(i, want[i]) for i in range(0, n, 2)]
    second = [(i, want[i]) for i in range(n)]  # the re-lease redoes all
    # Alternate arrivals pair by pair.
    for a, b in zip(first, second):
        merger.book([a])
        merger.book([b])
    merger.book(second[len(first):])
    assert merger.complete
    assert merger.results == want
    assert summarize_batch(merger.results) == summarize_batch(want)
