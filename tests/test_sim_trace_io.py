"""Tests for trace tooling and dataset I/O."""

import math
import random

import pytest

from repro.broadcast import (
    BroadcastChannel,
    BroadcastProgram,
    ChannelTuner,
    PageLossModel,
    SystemParameters,
)
from repro.client import BroadcastNNSearch
from repro.datasets.io import load_points, save_points
from repro.geometry import Point
from repro.rtree import str_pack
from repro.sim.trace import render_timeline, trace_summary


def make_tuner(n=150, seed=0, loss=None, phase=0.0):
    rng = random.Random(seed)
    pts = [Point(rng.random() * 1000, rng.random() * 1000) for _ in range(n)]
    params = SystemParameters()
    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    program = BroadcastProgram(tree, params, m=2)
    return tree, ChannelTuner(BroadcastChannel(program, phase=phase), loss=loss)


# ----------------------------------------------------------------------
# Trace summary
# ----------------------------------------------------------------------
def test_summary_counts_match_tuner():
    tree, tuner = make_tuner(seed=1)
    BroadcastNNSearch(tree, tuner, Point(500, 500)).run_to_completion()
    s = trace_summary(tuner)
    assert s.pages == tuner.pages_downloaded
    assert s.index_pages == tuner.index_pages
    assert s.data_pages == 0
    assert s.lost_pages == 0
    assert s.first_event <= s.last_event


def test_summary_records_data_pages():
    tree, tuner = make_tuner(seed=2)
    tuner.download_object(0)
    s = trace_summary(tuner)
    assert s.data_pages == tuner.data_pages > 0


def test_summary_records_losses():
    tree, tuner = make_tuner(seed=3, loss=PageLossModel(rate=0.4, seed=5))
    BroadcastNNSearch(tree, tuner, Point(200, 800)).run_to_completion()
    s = trace_summary(tuner)
    assert s.lost_pages == tuner.lost_pages > 0


def test_summary_empty_tuner():
    _, tuner = make_tuner(seed=4)
    s = trace_summary(tuner)
    assert s.pages == 0
    assert s.duty_cycle == 0.0


def test_duty_cycle_below_one_for_real_queries():
    tree, tuner = make_tuner(n=600, seed=5)
    BroadcastNNSearch(tree, tuner, Point(500, 500)).run_to_completion()
    s = trace_summary(tuner)
    assert 0.0 < s.duty_cycle <= 1.0


# ----------------------------------------------------------------------
# Timeline rendering
# ----------------------------------------------------------------------
def test_timeline_structure():
    tree1, t1 = make_tuner(seed=6)
    tree2, t2 = make_tuner(seed=7, phase=13.0)
    BroadcastNNSearch(tree1, t1, Point(100, 100)).run_to_completion()
    BroadcastNNSearch(tree2, t2, Point(900, 900)).run_to_completion()
    text = render_timeline([t1, t2], labels=["S", "R"], width=40)
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("S |") or "S |" in lines[0]
    assert "#" in lines[0]
    assert "dozing" in lines[-1]


def test_timeline_marks_losses():
    tree, tuner = make_tuner(seed=8, loss=PageLossModel(rate=0.5, seed=9))
    BroadcastNNSearch(tree, tuner, Point(500, 500)).run_to_completion()
    text = render_timeline([tuner], width=60)
    assert "!" in text


def test_timeline_validation():
    with pytest.raises(ValueError):
        render_timeline([])
    _, tuner = make_tuner(seed=10)
    with pytest.raises(ValueError):
        render_timeline([tuner])  # no activity yet
    tree, t2 = make_tuner(seed=11)
    BroadcastNNSearch(tree, t2, Point(1, 1)).run_to_completion()
    with pytest.raises(ValueError):
        render_timeline([t2], labels=["a", "b"])


# ----------------------------------------------------------------------
# Dataset I/O
# ----------------------------------------------------------------------
def test_save_load_roundtrip(tmp_path):
    pts = [Point(1.5, -2.25), Point(0.0, 3.125), Point(1e-9, 39_000.0)]
    path = tmp_path / "pts.csv"
    assert save_points(pts, path, comment="test set") == 3
    assert load_points(path) == pts


def test_load_skips_comments_and_blanks(tmp_path):
    path = tmp_path / "pts.csv"
    path.write_text("# header\n\n1.0,2.0\n\n# more\n3.0,4.0\n")
    assert load_points(path) == [Point(1.0, 2.0), Point(3.0, 4.0)]


def test_load_rejects_malformed(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("1.0,2.0\n3.0\n")
    with pytest.raises(ValueError, match=":2:"):
        load_points(path)


def test_load_rejects_non_numeric(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b\n")
    with pytest.raises(ValueError, match=":1:"):
        load_points(path)


def test_roundtrip_preserves_exact_floats(tmp_path):
    rng = random.Random(0)
    pts = [Point(rng.random() * 1e6, rng.random() * 1e-6) for _ in range(100)]
    path = tmp_path / "precise.csv"
    save_points(pts, path)
    loaded = load_points(path)
    assert all(a == b for a, b in zip(pts, loaded))  # repr() round-trips
