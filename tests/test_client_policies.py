"""Tests for the pruning policies (exact + ANN heuristics)."""

import math

import pytest

from repro.client import AnnPolicy, ExactPolicy, PruneContext, dynamic_alpha, fixed_alpha
from repro.geometry import Point, Rect


def ctx(
    mbr=Rect(0, 0, 1, 1),
    depth=1,
    height=4,
    ub=10.0,
    query=Point(0.5, 0.5),
    start=None,
    end=None,
    witness=False,
):
    return PruneContext(
        mbr=mbr,
        depth=depth,
        tree_height=height,
        upper_bound=ub,
        query=query,
        start=start,
        end=end,
        is_bound_witness=witness,
    )


def test_exact_policy_never_prunes():
    assert not ExactPolicy().should_prune(ctx())
    assert not ExactPolicy().should_prune(ctx(ub=0.001))


def test_fixed_alpha_validation():
    with pytest.raises(ValueError):
        fixed_alpha(-0.1)
    with pytest.raises(ValueError):
        fixed_alpha(1.5)
    assert fixed_alpha(0.3)(2, 10) == 0.3


def test_dynamic_alpha_equation4():
    a = dynamic_alpha(1.0)
    assert a(0, 10) == 0.0  # the root is never approximated
    assert a(5, 10) == 0.5
    assert a(10, 10) == 1.0
    assert dynamic_alpha(0.5)(5, 10) == 0.25


def test_dynamic_alpha_clamped():
    a = dynamic_alpha(5.0)
    assert a(9, 10) == 1.0
    assert dynamic_alpha(1.0)(0, 0) == 0.0


def test_ann_accepts_float_alpha():
    p = AnnPolicy(0.5)
    assert p.alpha(3, 10) == 0.5


def test_ann_no_bound_no_prune():
    p = AnnPolicy(1.0)
    assert not p.should_prune(ctx(ub=math.inf))


def test_ann_witness_never_pruned():
    p = AnnPolicy(1.0)
    # A far-away MBR with tiny overlap would normally be pruned...
    far = Rect(100, 100, 101, 101)
    assert p.should_prune(ctx(mbr=far, ub=1.0))
    # ...but not while it witnesses the upper bound.
    assert not p.should_prune(ctx(mbr=far, ub=1.0, witness=True))


def test_ann_circle_full_overlap_not_pruned():
    p = AnnPolicy(0.5)
    inside = Rect(0.4, 0.4, 0.6, 0.6)
    assert not p.should_prune(ctx(mbr=inside, ub=5.0))


def test_ann_circle_partial_overlap_threshold():
    # MBR [0,1]^2, circle centered at origin radius 1: overlap ~ pi/4 = .785
    c = ctx(mbr=Rect(0, 0, 1, 1), query=Point(0, 0), ub=1.0)
    assert not AnnPolicy(0.5).should_prune(c)   # 0.785 > 0.5 -> keep
    assert AnnPolicy(0.9).should_prune(c)       # 0.785 <= 0.9 -> prune


def test_ann_alpha_zero_keeps_everything_overlapping():
    c = ctx(mbr=Rect(0, 0, 1, 1), query=Point(0, 0), ub=1.0)
    assert not AnnPolicy(0.0).should_prune(c)


def test_ann_ellipse_mode():
    # Transitive context: ellipse with foci (0,0), (2,0), major 3.
    c = ctx(
        mbr=Rect(0.5, -0.5, 1.5, 0.5),
        query=None,
        start=Point(0, 0),
        end=Point(2, 0),
        ub=3.0,
    )
    # The MBR around the segment midpoint is entirely inside the ellipse.
    assert not AnnPolicy(0.99).should_prune(c)
    far = ctx(
        mbr=Rect(50, 50, 51, 51),
        query=None,
        start=Point(0, 0),
        end=Point(2, 0),
        ub=3.0,
    )
    assert AnnPolicy(0.1).should_prune(far)


def test_dynamic_alpha_root_vs_leaf_behaviour():
    """Deep nodes are pruned more aggressively than shallow ones."""
    policy = AnnPolicy(dynamic_alpha(1.0))
    half_covered = Rect(0, -0.5, 2, 0.5)  # circle(origin,1) covers ~ 39%
    shallow = ctx(mbr=half_covered, query=Point(0, 0), ub=1.0, depth=1, height=10)
    deep = ctx(mbr=half_covered, query=Point(0, 0), ub=1.0, depth=9, height=10)
    assert not policy.should_prune(shallow)
    assert policy.should_prune(deep)
