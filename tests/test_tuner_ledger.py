"""Tuner-ledger unit coverage and lossy tuners crossing the executor seam.

Two contracts under test:

* :class:`~repro.broadcast.tuner.TunerLedger` — attachment is
  backend-transparent: an attached tuner's public attributes, accounting
  methods and materialised ``log`` are bit-identical to the standalone
  scalar oracle, through attach/detach round-trips, vectorised round
  flushes, lane growth and the ``REPRO_SCALAR_TUNERS=1`` escape hatch.
* The shared-scan executor's lossy seam — a :class:`FaultModel` makes
  receptions fallible; lossy NN searches stay on the arena/ledger fast
  path (the round flush replays the retry-to-next-replica loop closed
  form) and must stay bit-identical to the per-query oracle — results,
  ``lost_pages`` / ``corrupt_pages``, log events — across every fault
  model, loss seed, layout and tuner backend, also when sharing one
  executor run with lossless searches.
"""

import random

import pytest

from repro.broadcast import (
    BroadcastChannel,
    BroadcastProgram,
    ChannelTuner,
    GilbertElliottLossModel,
    PageCorruptionModel,
    PageLossModel,
    SystemParameters,
    available_layouts,
    make_layout,
)
from repro.broadcast.tuner import (
    _KIND_DATA,
    _KIND_INDEX,
    _LedgerTuner,
    TunerLedger,
    scalar_tuners_forced,
)
from repro.client import BroadcastNNSearch, SearchGroup, run_all
from repro.core import DoubleNN, HybridNN, TNNEnvironment
from repro.datasets import sized_uniform
from repro.engine import execute_tnn_batch
from repro.engine.shared_scan import SharedScanExecutor
from repro.geometry import Point, kernels
from repro.rtree import str_pack

import numpy as np


# ----------------------------------------------------------------------
# Fixtures and helpers
# ----------------------------------------------------------------------
def _make_channel(n=120, seed=0, phase=0.0):
    rng = random.Random(seed)
    pts = [Point(rng.random() * 1000, rng.random() * 1000) for _ in range(n)]
    params = SystemParameters(page_capacity=64)
    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    program = BroadcastProgram(tree, params, m=2)
    return BroadcastChannel(program, phase=phase)


def _build_env(loss=None, distributed_levels=None, n=400):
    return TNNEnvironment.build(
        sized_uniform(n, seed=1),
        sized_uniform(n, seed=2),
        params=SystemParameters(page_capacity=64),
        distributed_levels=distributed_levels,
        loss=loss,
    )


LOSS = PageLossModel(rate=0.25, seed=11)


@pytest.fixture(scope="module")
def env_lossy():
    return _build_env(loss=LOSS)


@pytest.fixture(scope="module")
def env_lossless():
    return _build_env()


def _random_queries(env, n, seed=0):
    rng = random.Random(seed)
    return [
        (env.random_query_point(rng), *env.random_phases(rng))
        for _ in range(n)
    ]


def _tuner_state(t):
    return (
        t.now,
        t.index_pages,
        t.data_pages,
        t.lost_pages,
        t.corrupt_pages,
        t.log,
    )


# ----------------------------------------------------------------------
# Ledger units: attach / detach
# ----------------------------------------------------------------------
def test_attach_moves_state_and_routes_attributes():
    t = ChannelTuner(_make_channel())
    t.record_index(3, 5.0)  # pre-attach scalar history
    ledger = TunerLedger()
    row = ledger.attach(t)
    assert type(t) is _LedgerTuner and row == 0
    # Reads route to the lanes, carrying the pre-attach state.
    assert t.now == 6.0 and t.index_pages == 1
    # Writes route to the lanes too.
    t.record_index(7, 10.0)
    assert ledger._now[row] == 11.0 and ledger._index[row] == 2
    # The materialised log is the pre-attach prefix plus arena events.
    assert t.log == [("index", 3, 5.0, True), ("index", 7, 10.0, True)]
    assert t.pages_downloaded == 2


def test_detach_restores_scalar_oracle():
    t = ChannelTuner(_make_channel())
    ledger = TunerLedger()
    ledger.attach(t)
    t.record_index(4, 2.0)
    t.data_pages = 3
    t.lost_pages = 1
    ledger.detach(t)
    assert type(t) is ChannelTuner
    assert _tuner_state(t) == (3.0, 1, 3, 1, 0, [("index", 4, 2.0, True)])
    # Standalone accounting keeps working on the plain dataclass.
    t.record_index(9, 20.0)
    assert t.now == 21.0 and t.index_pages == 2
    # detach is idempotent / ignores foreign tuners.
    ledger.detach(t)
    assert type(t) is ChannelTuner
    # The convenience method on an attached tuner does the same.
    t2 = ChannelTuner(_make_channel())
    ledger.attach(t2)
    t2.detach()
    assert type(t2) is ChannelTuner


def test_attach_idempotent_and_foreign_ledger_rejected():
    t = ChannelTuner(_make_channel())
    ledger = TunerLedger()
    assert ledger.attach(t) == ledger.attach(t) == 0
    assert len(ledger) == 1
    with pytest.raises(ValueError):
        TunerLedger().attach(t)


def test_lazy_log_materialisation_caches_per_arena_state():
    t = ChannelTuner(_make_channel())
    ledger = TunerLedger()
    ledger.attach(t)
    t.record_index(1, 0.0)
    first = t.log
    assert first is t.log  # cached: no new events since the read
    t.record_index(2, 3.0)
    second = t.log
    assert second is not first and len(second) == 2
    # The snapshot is detached from the arena: mutating it changes nothing.
    second.append("junk")
    t.record_index(5, 6.0)
    assert t.log[-1] == ("index", 5, 6.0, True) and "junk" not in t.log


# ----------------------------------------------------------------------
# Ledger units: vectorised flush vs the scalar oracle
# ----------------------------------------------------------------------
def test_flush_round_matches_scalar_record_index():
    ledger = TunerLedger()
    attached = [ChannelTuner(_make_channel(seed=i)) for i in range(3)]
    oracle = [ChannelTuner(_make_channel(seed=i)) for i in range(3)]
    rows = np.array([ledger.attach(t) for t in attached], dtype=np.int64)
    pages = np.array([5, 9, 2], dtype=np.int64)
    arrivals = np.array([10.0, 4.0, 7.5])
    ledger.flush_round(rows, pages, arrivals)
    for o, p, a in zip(oracle, pages.tolist(), arrivals.tolist()):
        o.record_index(p, a)
    for t, o in zip(attached, oracle):
        assert _tuner_state(t) == _tuner_state(o)
    # Empty rounds are a no-op.
    ledger.flush_round(np.empty(0, np.int64), pages[:0], arrivals[:0])
    assert ledger.event_count == 3


def test_flush_round_respects_record_log_rows():
    ledger = TunerLedger()
    noisy = ChannelTuner(_make_channel())
    quiet = ChannelTuner(_make_channel(), record_log=False)
    rows = np.array([ledger.attach(noisy), ledger.attach(quiet)])
    ledger.flush_round(rows, np.array([1, 2]), np.array([0.0, 5.0]))
    assert noisy.log == [("index", 1, 0.0, True)] and noisy.index_pages == 1
    assert quiet.log == [] and quiet.index_pages == 1  # counted, unlogged
    assert ledger.event_count == 1
    # All-quiet rounds skip the arena entirely.
    ledger.flush_round(rows[1:], np.array([3]), np.array([9.0]))
    assert ledger.event_count == 1 and quiet.now == 10.0


def test_record_index_run_matches_scalar_oracle():
    ledger = TunerLedger()
    attached = ChannelTuner(_make_channel())
    oracle = ChannelTuner(_make_channel())
    ledger.attach(attached)
    pages, arrivals = [3, 8, 1], [2.0, 6.0, 11.0]
    attached.record_index_run(pages, arrivals, 12.0)
    oracle.record_index_run(pages, arrivals, 12.0)
    assert _tuner_state(attached) == _tuner_state(oracle)
    # Empty runs record nothing.
    attached.record_index_run([], [], 12.0)
    assert ledger.event_count == 3


def test_event_chains_interleaved_across_rows():
    ledger = TunerLedger()
    a = ChannelTuner(_make_channel())
    b = ChannelTuner(_make_channel())
    ra, rb = ledger.attach(a), ledger.attach(b)
    ledger.append_event(ra, _KIND_INDEX, 1, 0.0, True)
    ledger.append_event(rb, _KIND_DATA, 7, 1.0, False)
    ledger.append_event(ra, _KIND_DATA, 2, 2.0, True)
    ledger.append_event(rb, _KIND_INDEX, 8, 3.0, True)
    assert ledger.events_of(ra) == [
        ("index", 1, 0.0, True),
        ("data", 2, 2.0, True),
    ]
    assert a.log == ledger.events_of(ra)
    assert b.log == [("data", 7, 1.0, False), ("index", 8, 3.0, True)]


def test_lane_and_arena_growth_preserve_state():
    ledger = TunerLedger()
    tuners = [ChannelTuner(_make_channel()) for _ in range(70)]
    for i, t in enumerate(tuners):
        row = ledger.attach(t)
        t.record_index_run(
            list(range(5)), [float(i * 5 + j) for j in range(5)], i * 5.0 + 5
        )
        assert row == i
    assert ledger.event_count == 350  # grew past both initial capacities
    for i, t in enumerate(tuners):
        assert t.index_pages == 5 and t.now == i * 5.0 + 5
        assert [e[2] for e in t.log] == [float(i * 5 + j) for j in range(5)]


def test_receive_paths_route_through_ledger_bit_identically():
    """download_index_page / download_object on an attached tuner — the
    scalar ``_receive`` retry loop writing through the row properties —
    match the standalone oracle, lossless and lossy."""
    for loss in (None, PageLossModel(rate=0.4, seed=3)):
        attached = ChannelTuner(_make_channel(phase=2.0), loss=loss)
        oracle = ChannelTuner(_make_channel(phase=2.0), loss=loss)
        TunerLedger().attach(attached)
        root = attached.channel.program.tree.root
        for t in (attached, oracle):
            t.download_index_page(root.page_id)
            t.download_index_page(root.children[0].page_id)
            t.download_object(0)
        assert _tuner_state(attached) == _tuner_state(oracle)
        if loss is not None:
            assert attached.lost_pages > 0  # the seed actually fades pages
            assert any(not ok for *_, ok in attached.log)


def test_scalar_tuners_forced_disables_ledger(monkeypatch, env_lossless):
    monkeypatch.setenv("REPRO_SCALAR_TUNERS", "1")
    assert scalar_tuners_forced()
    queries = _random_queries(env_lossless, 6)
    algo = HybridNN()
    with kernels.use_kernels(True):
        want = [algo.run(env_lossless, q, ps, pr) for q, ps, pr in queries]
        got = execute_tnn_batch(env_lossless, algo, queries)
    assert got == want
    # The executor still runs the arena — only the tuners stay scalar.
    executor = SharedScanExecutor()
    tuner = ChannelTuner(BroadcastChannel(env_lossless.s_program))
    search = BroadcastNNSearch(
        env_lossless.s_tree, tuner, Point(500.0, 500.0)
    )
    with kernels.use_kernels(True):
        executor.add(SearchGroup([search]))
    assert executor._arena is not None and executor._ledger is None
    assert type(tuner) is ChannelTuner
    monkeypatch.delenv("REPRO_SCALAR_TUNERS")
    assert not scalar_tuners_forced()


# ----------------------------------------------------------------------
# Lossy tuners crossing the executor seam
# ----------------------------------------------------------------------
def test_lossy_env_hands_out_lossy_tuners(env_lossy):
    ts, tr = env_lossy.tuners(1.0, 2.0)
    assert ts.loss is LOSS and tr.loss is LOSS


def test_lossy_nn_search_joins_the_arena(env_lossless):
    """Loss no longer demotes an NN search off the fast path: the round
    flush replays the retry chain, so lossy and clean NN searches share
    the arena, and the lossy sid is tracked for the faulty flush."""
    executor = SharedScanExecutor()
    lossy = BroadcastNNSearch(
        env_lossless.s_tree,
        ChannelTuner(BroadcastChannel(env_lossless.s_program), loss=LOSS),
        Point(500.0, 500.0),
    )
    clean = BroadcastNNSearch(
        env_lossless.s_tree,
        ChannelTuner(BroadcastChannel(env_lossless.s_program)),
        Point(500.0, 500.0),
    )
    lossy_group, clean_group = SearchGroup([lossy]), SearchGroup([clean])
    with kernels.use_kernels(True):
        executor.add(lossy_group)
        executor.add(clean_group)
    assert lossy_group in executor._arena_groups
    assert clean_group in executor._arena_groups
    assert not executor._legacy
    assert executor._any_lossy
    assert executor._sid_loss == {lossy._arena_sid: LOSS}


def test_shared_fast_cache_invalidates_on_loss_change(env_lossless):
    """Satellite regression: the cached fast-path verdict is keyed on the
    tuner's fault model, so swapping the loss model between runs
    recomputes instead of serving a stale verdict."""
    executor = SharedScanExecutor()
    tuner = ChannelTuner(BroadcastChannel(env_lossless.s_program))
    s = BroadcastNNSearch(env_lossless.s_tree, tuner, Point(500.0, 500.0))
    assert executor._fast(s, False)  # drain rules: lossless qualifies
    tuner.loss = LOSS
    assert not executor._fast(s, False)  # recomputed, not the stale True
    tuner.loss = None
    assert executor._fast(s, False)  # and back again
    # NN rules tolerate any fault model (fresh search: one policy each).
    s2 = BroadcastNNSearch(
        env_lossless.s_tree,
        ChannelTuner(BroadcastChannel(env_lossless.s_program), loss=LOSS),
        Point(500.0, 500.0),
    )
    assert executor._fast(s2, True)


@pytest.mark.parametrize("use_kernels", [True, False])
@pytest.mark.parametrize("algo_cls", [DoubleNN, HybridNN])
def test_lossy_tnn_bit_identity(env_lossy, use_kernels, algo_cls):
    """Arena-capable env + loss: the whole workload bursts, bit-identical."""
    queries = _random_queries(env_lossy, 10)
    algo = algo_cls()
    with kernels.use_kernels(use_kernels):
        want = [algo.run(env_lossy, q, ps, pr) for q, ps, pr in queries]
        got = execute_tnn_batch(env_lossy, algo, queries)
    assert got == want


def test_lossy_tnn_bit_identity_heap_backend():
    """Heap-backed frontiers (no cyclic page order) with loss on top."""
    env = _build_env(loss=LOSS, distributed_levels=2)
    queries = _random_queries(env, 6)
    algo = HybridNN()
    with kernels.use_kernels(True):
        want = [algo.run(env, q, ps, pr) for q, ps, pr in queries]
        got = execute_tnn_batch(env, algo, queries)
    assert got == want


def _nn_search(env, query, phase, loss):
    tuner = ChannelTuner(
        BroadcastChannel(env.s_program, phase=phase), loss=loss
    )
    return BroadcastNNSearch(env.s_tree, tuner, query)


def test_mixed_lossy_and_arena_searches_share_one_run(env_lossless):
    """Lossy and lossless NN searches in the same executor run all ride
    the arena and each match the run_all oracle — results, counters,
    lost_pages and log events."""
    rng = random.Random(42)
    cycle = env_lossless.s_program.cycle_length
    specs = [
        (
            env_lossless.random_query_point(rng),
            rng.uniform(0, cycle),
            LOSS if i % 2 else None,
        )
        for i in range(12)
    ]
    oracle = [_nn_search(env_lossless, *spec) for spec in specs]
    shared = [_nn_search(env_lossless, *spec) for spec in specs]
    with kernels.use_kernels(True):
        for s in oracle:
            run_all([s])
        executor = SharedScanExecutor()
        for s in shared:
            executor.add(SearchGroup([s]))
        # Loss no longer splits the run: every NN search is arena-served.
        assert executor._arena_groups and not executor._legacy
        executor.run()
    for got, want in zip(shared, oracle):
        assert got.result() == want.result()
        assert _tuner_state(got.tuner) == _tuner_state(want.tuner)
    assert any(s.tuner.lost_pages > 0 for s in shared)  # loss engaged


# ----------------------------------------------------------------------
# Randomized lossy bit-identity sweep: fault models x layouts x backends
# ----------------------------------------------------------------------
#: (fault-model factory, label) pairs exercised by the sweep — i.i.d.
#: loss, bursty Gilbert-Elliott fades and detected corruption.
_SWEEP_FAULTS = [
    lambda seed: PageLossModel(rate=0.3, seed=seed),
    lambda seed: GilbertElliottLossModel(
        good_rate=0.02,
        bad_rate=0.7,
        p_good_bad=0.1,
        p_bad_good=0.3,
        seed=seed,
        regen=32,
    ),
    lambda seed: PageCorruptionModel(rate=0.25, seed=seed),
]


@pytest.mark.parametrize("layout", sorted(available_layouts()))
def test_lossy_bit_identity_sweep_across_layouts(layout):
    """Property sweep: for every registered layout and fault model, a
    randomized NN workload on the shared executor matches the per-query
    run_all oracle bit for bit — results, clocks, page counters,
    lost/corrupt splits and full reception logs — with the ledger on
    (arena path), the ledger off (forced-scalar arena) and kernels off
    (scalar heap/burst oracle)."""
    env = TNNEnvironment.build(
        sized_uniform(240, seed=7),
        sized_uniform(240, seed=8),
        params=SystemParameters(page_capacity=64),
        layout=make_layout(layout),
    )
    rng = random.Random(hash(layout) & 0xFFFF)
    cycle = env.s_program.cycle_length
    specs = []
    for i, fault in enumerate(_SWEEP_FAULTS):
        for seed in (rng.randrange(1 << 16), rng.randrange(1 << 16)):
            specs.append(
                (
                    env.random_query_point(rng),
                    rng.uniform(0, cycle),
                    fault(seed),
                )
            )
    oracle = [_nn_search(env, *spec) for spec in specs]
    for s in oracle:
        run_all([s])
    for use_kernels in (True, False):
        shared = [_nn_search(env, *spec) for spec in specs]
        with kernels.use_kernels(use_kernels):
            executor = SharedScanExecutor()
            for s in shared:
                executor.add(SearchGroup([s]))
            executor.run()
        for got, want in zip(shared, oracle):
            assert got.result() == want.result()
            assert _tuner_state(got.tuner) == _tuner_state(want.tuner)
    assert any(s.tuner.lost_pages > 0 for s in oracle)
    assert any(s.tuner.corrupt_pages > 0 for s in oracle)


def test_lossy_sweep_forced_scalar_tuners(monkeypatch):
    """The ledger-off escape hatch (arena on, tuners scalar) replays the
    same faulty retry chains bit-identically."""
    monkeypatch.setenv("REPRO_SCALAR_TUNERS", "1")
    env = _build_env(n=240)
    rng = random.Random(5)
    cycle = env.s_program.cycle_length
    specs = [
        (
            env.random_query_point(rng),
            rng.uniform(0, cycle),
            _SWEEP_FAULTS[i % 3](rng.randrange(1 << 16)),
        )
        for i in range(9)
    ]
    oracle = [_nn_search(env, *spec) for spec in specs]
    shared = [_nn_search(env, *spec) for spec in specs]
    with kernels.use_kernels(True):
        for s in oracle:
            run_all([s])
        executor = SharedScanExecutor()
        for s in shared:
            executor.add(SearchGroup([s]))
        assert executor._ledger is None  # the escape hatch is live
        executor.run()
    for got, want in zip(shared, oracle):
        assert got.result() == want.result()
        assert _tuner_state(got.tuner) == _tuner_state(want.tuner)


@pytest.mark.parametrize(
    "loss",
    [
        PageLossModel(rate=0.35, seed=21),
        GilbertElliottLossModel(
            bad_rate=0.8, p_good_bad=0.15, p_bad_good=0.2, seed=9
        ),
        PageCorruptionModel(rate=0.3, seed=4),
    ],
    ids=["iid", "ge", "corruption"],
)
@pytest.mark.parametrize("algo_cls", [DoubleNN, HybridNN])
def test_faulty_tnn_campaign_bit_identity(loss, algo_cls):
    """Whole TNN campaigns under each fault model: the page-major batch
    (arena + ledger + faulty round flush) equals the per-query oracle."""
    env = _build_env(loss=loss, n=300)
    queries = _random_queries(env, 8)
    algo = algo_cls()
    with kernels.use_kernels(True):
        want = [algo.run(env, q, ps, pr) for q, ps, pr in queries]
        got = execute_tnn_batch(env, algo, queries)
    assert got == want
