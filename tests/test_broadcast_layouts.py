"""BroadcastLayout seam: program invariants, capabilities and cache identity.

Every backend registered at the seam must produce a program that honours
the :class:`~repro.broadcast.program.BroadcastProgram` contract the client
stack is built on: every index page on air at least once per cycle, data
pages at distinct in-cycle slots disjoint from index slots,
``next_index_arrival`` consistent with the position tables and monotone in
``now``, and the ``has_cyclic_order`` capability mirrored between the
layout and the program it builds.  The sweep-cache tests pin the satellite
fix: cache keys carry the full layout identity, so two backends (or two
schedule parameterisations of one backend) never alias.
"""

import pytest

from repro.broadcast import SystemParameters
from repro.broadcast.disks import BroadcastDiskProgram, hot_index_pages
from repro.broadcast.layout import (
    BroadcastDiskSchedule,
    GridAirIndexLayout,
    QuadtreeAirIndexLayout,
    RTreeInterleavedLayout,
    available_layouts,
    make_layout,
)
from repro.core import TNNEnvironment
from repro.datasets import sized_uniform
from repro.geometry import Rect
from repro.sim.experiments import SweepCache


HOT = Rect(0.0, 0.0, 12000.0, 12000.0)

LAYOUTS = {
    "rtree": RTreeInterleavedLayout(),
    "rtree-distributed": RTreeInterleavedLayout(distributed_levels=2),
    "grid": GridAirIndexLayout(),
    "quadtree": QuadtreeAirIndexLayout(),
    "disk-rtree": BroadcastDiskSchedule(hot_region=HOT),
    "disk-grid": BroadcastDiskSchedule(base=GridAirIndexLayout(), hot_region=HOT),
}

PARAMS = SystemParameters()
POINTS = sized_uniform(350, seed=21)


def _program(name):
    layout = LAYOUTS[name]
    tree = layout.build_index(POINTS, PARAMS)
    return layout, layout.build_program(tree, PARAMS)


@pytest.mark.parametrize("name", sorted(LAYOUTS))
def test_capability_flag_mirrored(name):
    layout, program = _program(name)
    assert program.has_cyclic_order == layout.has_cyclic_order
    # Legacy alias stays in sync for old callers.
    assert program.uniform_index_replication == program.has_cyclic_order


@pytest.mark.parametrize("name", sorted(LAYOUTS))
def test_every_page_on_air_at_distinct_slots(name):
    """Index + data slots are in-range, collision-free, padding-only gaps."""
    _, program = _program(name)
    index_slots = set()
    for page in range(program.index_length):
        positions = program.index_position_array(page)
        assert positions.size >= 1
        assert (positions >= 0).all() and (positions < program.cycle_length).all()
        as_list = positions.tolist()
        assert as_list == sorted(set(as_list))
        index_slots.update(as_list)
    data_slots = {
        program.data_page_position(off) for off in range(program.data_length)
    }
    assert len(data_slots) == program.data_length
    assert all(0 <= s < program.cycle_length for s in data_slots)
    assert not (index_slots & data_slots)
    # Whatever the cycle doesn't carry is chunk padding, nothing else.
    padding = program.cycle_length - len(index_slots) - len(data_slots)
    assert padding == program.m * program.chunk_length - program.data_length


@pytest.mark.parametrize("name", sorted(LAYOUTS))
def test_next_index_arrival_matches_tables_and_is_monotone(name):
    _, program = _program(name)
    pages = [0, program.index_length // 2, program.index_length - 1]
    nows = [0.0, 0.4, 17.0, float(program.cycle_length - 1), 3.7 * program.cycle_length]
    for page in pages:
        positions = set(program.index_position_array(page).tolist())
        prev = None
        for now in sorted(nows):
            arrival = program.next_index_arrival(page, now)
            assert arrival >= now
            assert int(arrival) % program.cycle_length in positions
            # Consistency with the generic position-table arithmetic.
            assert arrival == program.next_arrival_at_positions(
                program.index_position_array(page), now
            )
            if prev is not None:
                assert arrival >= prev or now <= prev
            prev = arrival


def test_hot_index_pages_ancestor_closed():
    layout = RTreeInterleavedLayout()
    tree = layout.build_index(POINTS, PARAMS)
    hot = set(hot_index_pages(tree, HOT))
    assert 0 in hot
    parent_of = {}
    for node in tree.iter_nodes():
        for child in node.children:
            parent_of[child.page_id] = node.page_id
    for page in hot:
        while page in parent_of:
            page = parent_of[page]
            assert page in hot


def test_disk_program_degenerate_hot_sets():
    tree = RTreeInterleavedLayout().build_index(POINTS, PARAMS)
    cold = BroadcastDiskProgram(tree, PARAMS, hot_pages=())
    assert cold.hot_index_length == 0
    # Index airs once per cycle; every page still reachable.
    assert all(
        cold.index_position_array(p).size == 1 for p in range(cold.index_length)
    )
    full = BroadcastDiskProgram(tree, PARAMS, hot_pages=range(tree.node_count()))
    assert full.replication_overhead() == full.m


def test_registry_round_trip():
    names = available_layouts()
    assert {"rtree", "rtree-distributed", "grid", "quadtree", "disk"} <= set(names)
    assert make_layout("grid", cells=4) == GridAirIndexLayout(cells=4)
    assert make_layout("rtree-distributed").distributed_levels == 2
    with pytest.raises(ValueError, match="unknown broadcast layout"):
        make_layout("btree")


def test_layout_and_legacy_args_conflict():
    with pytest.raises(ValueError, match="not both"):
        TNNEnvironment.build(
            POINTS, POINTS, layout=GridAirIndexLayout(), distributed_levels=2
        )


# ----------------------------------------------------------------------
# Sweep-cache identity (the satellite fix)
# ----------------------------------------------------------------------
def test_sweep_cache_keys_carry_layout_identity():
    """Same dataset + page geometry, different backends: no aliasing."""
    cache = SweepCache()
    s, r = sized_uniform(220, seed=22), sized_uniform(220, seed=23)
    envs = {
        name: cache.build(s, r, layout=layout)
        for name, layout in LAYOUTS.items()
    }
    programs = [id(env.s_program) for env in envs.values()]
    assert len(set(programs)) == len(programs)
    # Schedule-parameter differences must also keep distinct entries —
    # the old (dataset, page_size, m) key would have collapsed these.
    a = cache.build(s, r, layout=BroadcastDiskSchedule(hot_region=HOT))
    b = cache.build(
        s, r, layout=BroadcastDiskSchedule(hot_region=Rect(0, 0, 500.0, 500.0))
    )
    assert a.s_program is not b.s_program
    assert (
        cache.build(s, r, layout=RTreeInterleavedLayout(distributed_levels=1))
        .s_program
        is not cache.build(
            s, r, layout=RTreeInterleavedLayout(distributed_levels=2)
        ).s_program
    )


def test_sweep_cache_still_reuses_identical_layouts():
    cache = SweepCache()
    s, r = sized_uniform(220, seed=22), sized_uniform(220, seed=23)
    first = cache.build(s, r, layout=QuadtreeAirIndexLayout())
    second = cache.build(s, r, layout=QuadtreeAirIndexLayout())
    assert first.s_program is second.s_program
    assert first.s_tree is second.s_tree
    # An interleaved and a disk schedule over the same base index share
    # the packed tree (index_key) while keeping distinct programs.
    disk = cache.build(s, r, layout=BroadcastDiskSchedule(hot_region=HOT))
    base = cache.build(s, r, layout=RTreeInterleavedLayout())
    assert disk.s_tree is base.s_tree
    assert disk.s_program is not base.s_program
