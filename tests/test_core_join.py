"""Tests for the filter-phase transitive join."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import transitive_join
from repro.core.join import verify_pair
from repro.geometry import Point, transitive_distance


def test_join_simple():
    p = Point(0, 0)
    s, r, d = transitive_join(p, [Point(1, 0), Point(0, 5)], [Point(2, 0)])
    assert (s, r) == (Point(1, 0), Point(2, 0))
    assert math.isclose(d, 2.0)


def test_join_empty_candidates_no_seed():
    s, r, d = transitive_join(Point(0, 0), [], [Point(1, 1)])
    assert (s, r) == (None, None)
    assert d == math.inf
    s, r, d = transitive_join(Point(0, 0), [Point(1, 1)], [])
    assert (s, r) == (None, None)


def test_join_empty_candidates_with_seed_returns_seed():
    seed = (Point(1, 0), Point(2, 0))
    s, r, d = transitive_join(
        Point(0, 0), [], [], initial_bound=2.0, initial_pair=seed
    )
    assert (s, r) == seed
    assert d == 2.0


def test_join_seed_survives_when_unbeatable():
    p = Point(0, 0)
    seed = (Point(1, 0), Point(2, 0))  # d = 2
    s, r, d = transitive_join(
        p, [Point(10, 0)], [Point(20, 0)], initial_bound=2.0, initial_pair=seed
    )
    assert (s, r) == seed
    assert d == 2.0


def test_join_improves_on_seed():
    p = Point(0, 0)
    seed = (Point(5, 0), Point(10, 0))  # d = 10
    s, r, d = transitive_join(
        p, [Point(1, 0)], [Point(2, 0)], initial_bound=10.0, initial_pair=seed
    )
    assert (s, r) == (Point(1, 0), Point(2, 0))
    assert math.isclose(d, 2.0)


def test_join_first_hop_cutoff():
    """An s farther than the current best total can never participate."""
    p = Point(0, 0)
    s_cands = [Point(1, 0), Point(100, 0)]
    r_cands = [Point(2, 0)]
    s, r, d = transitive_join(p, s_cands, r_cands)
    assert s == Point(1, 0)
    assert math.isclose(d, 2.0)


def test_join_large_candidate_sets_block_logic():
    """More candidates than one numpy block; matches brute force."""
    import random

    rng = random.Random(0)
    p = Point(0.5, 0.5)
    s_cands = [Point(rng.random(), rng.random()) for _ in range(1500)]
    r_cands = [Point(rng.random(), rng.random()) for _ in range(700)]
    s, r, d = transitive_join(p, s_cands, r_cands)
    want = min(
        transitive_distance(p, a, b) for a in s_cands for b in r_cands
    )
    assert math.isclose(d, want, rel_tol=1e-12)


def test_verify_pair():
    assert verify_pair(Point(0, 0), Point(1, 0), Point(2, 0), 2.0)
    assert not verify_pair(Point(0, 0), Point(1, 0), Point(2, 0), 3.0)


coords = st.floats(min_value=0, max_value=100, allow_nan=False)
pts = st.tuples(coords, coords).map(lambda t: Point(*t))


@settings(max_examples=50, deadline=None)
@given(
    pts,
    st.lists(pts, min_size=1, max_size=40),
    st.lists(pts, min_size=1, max_size=40),
)
def test_join_matches_brute_force_property(p, s_cands, r_cands):
    s, r, d = transitive_join(p, s_cands, r_cands)
    want = min(transitive_distance(p, a, b) for a in s_cands for b in r_cands)
    assert math.isclose(d, want, rel_tol=1e-9, abs_tol=1e-9)
    assert verify_pair(p, s, r, d)


def test_join_dead_rows_inside_block_are_skipped():
    """Per-candidate skip: s rows whose first hop reaches the bound are dead.

    With a tight seed bound, only the near s candidates can matter; the
    join must still return the seed when every candidate's first hop
    already exceeds it, and the best improving pair otherwise.
    """
    p = Point(0, 0)
    seed = (Point(0.5, 0), Point(0.6, 0))  # transitive distance 0.6
    far_s = [Point(100 + i, 0) for i in range(20)]  # all first hops >= 100
    r = [Point(200, 0)]
    s_got, r_got, d = transitive_join(
        p, far_s, r, initial_bound=0.6, initial_pair=seed
    )
    assert (s_got, r_got) == seed
    assert math.isclose(d, 0.6)


def test_join_mixed_live_and_dead_rows():
    p = Point(0, 0)
    # One improving candidate buried among dead ones (first hop >= bound).
    s_cands = [Point(50, 0), Point(1, 0), Point(70, 0), Point(2, 0)]
    r_cands = [Point(1.5, 0), Point(90, 0)]
    seed = (Point(3, 0), Point(4, 0))  # bound 4.0
    s_got, r_got, d = transitive_join(
        p, s_cands, r_cands, initial_bound=4.0, initial_pair=seed
    )
    assert (s_got, r_got) == (Point(1, 0), Point(1.5, 0))
    assert math.isclose(d, 1.5)


@settings(max_examples=60, deadline=None)
@given(
    pts,
    st.lists(pts, min_size=1, max_size=600),
    st.lists(pts, min_size=1, max_size=5),
    st.floats(min_value=0.1, max_value=50.0),
)
def test_join_with_seed_bound_matches_brute_force(p, s_cands, r_cands, bound):
    """The per-row prune never changes the answer, only the work done."""
    seed_s = Point(p.x + bound / 2, p.y)
    seed_r = Point(p.x + bound, p.y)
    seed_d = transitive_distance(p, seed_s, seed_r)
    s, r, d = transitive_join(
        p, s_cands, r_cands, initial_bound=seed_d, initial_pair=(seed_s, seed_r)
    )
    want = min(
        seed_d,
        min(transitive_distance(p, a, b) for a in s_cands for b in r_cands),
    )
    assert math.isclose(d, want, rel_tol=1e-9, abs_tol=1e-9)
    assert verify_pair(p, s, r, d)
