"""Every example script must run clean and produce its expected output."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXPECTED_SNIPPETS = {
    "quickstart.py": ["Channel 1", "Answer: visit s", "hybrid-nn"],
    "trip_planning.py": ["post offices", "wrong answers", "0/30"],
    "energy_saving_ann.py": ["estimate", "factor sweep", "exact"],
    "multi_dataset_trip.py": ["Chain TNN", "Order-free TNN", "Round-trip TNN"],
    "radio_timeline.py": ["duty cycle", "dozing", "lost"],
}


def run_example(name: str) -> str:
    script = EXAMPLES_DIR / name
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.parametrize("name", sorted(EXPECTED_SNIPPETS))
def test_example_runs(name):
    out = run_example(name)
    for snippet in EXPECTED_SNIPPETS[name]:
        assert snippet in out, f"{name} output missing {snippet!r}"


def test_all_examples_are_tested():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED_SNIPPETS)
