"""Wire-level and bookkeeping units of the distributed campaign runner.

Everything here runs without spawning a single subprocess: framing over a
socketpair, deterministic fault-injection decisions, the first-write-wins
chunk merger, the lease-epoch zombie fence, and config validation.
"""

import socket
import threading

import pytest

from repro.broadcast import SystemParameters
from repro.core import HybridNN, TNNEnvironment
from repro.datasets import sized_uniform
from repro.engine.distributed import (
    CampaignConfig,
    CampaignCoordinator,
    ChunkMerger,
    FaultInjector,
    FrameChannel,
    ProtocolError,
    parse_address,
)
from repro.engine.distributed.coordinator import _Worker


def _channel_pair():
    a, b = socket.socketpair()
    return FrameChannel(a), FrameChannel(b)


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def test_frame_round_trip_preserves_fields():
    tx, rx = _channel_pair()
    try:
        tx.send("chunk", shard=3, epoch=7, pairs=[(0, "r0"), (5, "r5")])
        msg = rx.recv()
        assert msg == {
            "kind": "chunk",
            "shard": 3,
            "epoch": 7,
            "pairs": [(0, "r0"), (5, "r5")],
        }
    finally:
        tx.close()
        rx.close()


def test_frame_channel_is_thread_safe_under_concurrent_sends():
    tx, rx = _channel_pair()
    received = []
    try:
        def blast(tag):
            for i in range(50):
                tx.send("heartbeat", tag=tag, i=i)

        threads = [
            threading.Thread(target=blast, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for _ in range(200):
            received.append(rx.recv())
        for t in threads:
            t.join()
        # No frame was torn: every message parsed with its fields intact.
        assert len(received) == 200
        for tag in range(4):
            seq = [m["i"] for m in received if m["tag"] == tag]
            assert seq == sorted(seq)  # per-sender order survives
    finally:
        tx.close()
        rx.close()


def test_recv_on_closed_peer_raises_connection_error():
    tx, rx = _channel_pair()
    tx.close()
    with pytest.raises((ConnectionError, EOFError, OSError)):
        rx.recv()
    rx.close()


def test_oversized_frame_rejected():
    tx, rx = _channel_pair()
    try:
        # Forge a header promising an absurd frame length.
        tx.sock.sendall((1 << 62).to_bytes(8, "big"))
        with pytest.raises(ProtocolError):
            rx.recv()
    finally:
        tx.close()
        rx.close()


def test_parse_address():
    assert parse_address("127.0.0.1:7077") == ("127.0.0.1", 7077)
    assert parse_address("localhost:0") == ("localhost", 0)
    with pytest.raises(ValueError):
        parse_address("no-port-here")


# ----------------------------------------------------------------------
# Fault injector: deterministic, spec round-trip
# ----------------------------------------------------------------------
def test_injector_decisions_are_deterministic():
    a = FaultInjector(seed=42, drop=0.3, dup=0.2, delay=0.1, delay_p=0.5)
    b = FaultInjector(seed=42, drop=0.3, dup=0.2, delay=0.1, delay_p=0.5)
    plans_a = [a.plan_send("chunk") for _ in range(64)]
    plans_b = [b.plan_send("chunk") for _ in range(64)]
    assert plans_a == plans_b
    # ...and the sequence actually exercises every decision branch.
    copies = [c for c, _ in plans_a]
    assert 0 in copies and 1 in copies and 2 in copies


def test_injector_different_seeds_diverge():
    a = FaultInjector(seed=1, drop=0.5)
    b = FaultInjector(seed=2, drop=0.5)
    assert [a.plan_send("chunk") for _ in range(64)] != [
        b.plan_send("chunk") for _ in range(64)
    ]


def test_injector_only_targets_configured_kinds():
    inj = FaultInjector(seed=3, drop=1.0, kinds=("done",))
    assert inj.plan_send("chunk") == (1, 0.0)
    assert inj.plan_send("done")[0] == 0


def test_injector_spec_round_trip():
    inj = FaultInjector(
        seed=9,
        drop=0.25,
        dup=0.5,
        delay=1.5,
        delay_p=0.75,
        kill_after_chunks=3,
        freeze_heartbeats_after=2,
        kinds=("chunk", "done"),
    )
    back = FaultInjector.from_spec(inj.to_spec())
    assert back.to_spec() == inj.to_spec()
    assert back.seed == 9 and back.kill_after_chunks == 3
    assert back.kinds == ("chunk", "done")


def test_injector_spec_rejects_garbage():
    with pytest.raises(ValueError):
        FaultInjector.from_spec("drop")
    with pytest.raises(ValueError):
        FaultInjector.from_spec("explode=1.0")


def test_injector_heartbeat_freeze():
    inj = FaultInjector(seed=0, freeze_heartbeats_after=2)
    allowed = [inj.heartbeat_allowed() for _ in range(5)]
    assert allowed == [True, True, False, False, False]


# ----------------------------------------------------------------------
# Chunk merger
# ----------------------------------------------------------------------
def test_merger_first_write_wins_and_counts_duplicates():
    m = ChunkMerger(4)
    assert m.book([(0, "a"), (2, "c")]) == 2
    assert not m.complete
    # A duplicated late chunk for an already-booked index changes nothing.
    assert m.book([(0, "ZOMBIE"), (1, "b")]) == 1
    assert m.results == ["a", "b", "c", None]
    assert m.duplicates_dropped == 1
    assert m.unbooked([0, 1, 2, 3]) == [3]
    assert m.book([(3, "d")]) == 1
    assert m.complete


# ----------------------------------------------------------------------
# Lease-epoch zombie fence (driven straight at the coordinator internals)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_env():
    return TNNEnvironment.build(
        sized_uniform(80, seed=3),
        sized_uniform(80, seed=4),
        params=SystemParameters(page_capacity=64),
    )


def _fresh_coordinator(tiny_env, n=6):
    queries = [(p, 0.0, 0.0) for p, _, _ in _fake_queries(tiny_env, n)]
    return CampaignCoordinator(tiny_env, queries, HybridNN())


def _fake_queries(env, n):
    from repro.engine.workload import QueryWorkload

    return QueryWorkload(n, seed=9).queries(env)


def _fake_result(i):
    # The merger and the epoch gate treat results as opaque payloads, so
    # the fence tests don't need to build real TNNResult records.
    return f"result-{i}"


def test_stale_epoch_chunk_is_rejected(tiny_env):
    coord = _fresh_coordinator(tiny_env)
    coord._build_shards()
    sid = next(iter(coord._shards))
    shard = coord._shards[sid]
    zombie = _Worker("z@1", "z", None, 0.0)
    live = _Worker("l@2", "l", None, 0.0)
    coord._workers = {"z@1": zombie, "l@2": live}
    shard.epoch, shard.owner = 1, "z@1"
    granted_epoch = shard.epoch
    # The lease is revoked (deadline miss / death): epoch bumps.
    coord._revoke_locked(shard, coord.merger.unbooked(shard.indices))
    pairs = [(i, _fake_result(i)) for i in shard.indices[:2]]
    coord._accept_chunk_locked(
        zombie, {"shard": sid, "epoch": granted_epoch, "pairs": pairs}
    )
    assert coord.stats["stale_chunks_rejected"] == 1
    assert coord.merger.filled == 0  # the zombie booked nothing


def test_wrong_owner_chunk_is_rejected(tiny_env):
    coord = _fresh_coordinator(tiny_env)
    coord._build_shards()
    sid = next(iter(coord._shards))
    shard = coord._shards[sid]
    shard.epoch, shard.owner = 1, "rightful@1"
    impostor = _Worker("impostor@2", "i", None, 0.0)
    coord._accept_chunk_locked(
        impostor,
        {
            "shard": sid,
            "epoch": 1,
            "pairs": [(shard.indices[0], _fake_result(0))],
        },
    )
    assert coord.stats["stale_chunks_rejected"] == 1
    assert coord.merger.filled == 0


def test_done_with_gaps_revokes_and_requeues_remainder(tiny_env):
    coord = _fresh_coordinator(tiny_env)
    coord._build_shards()
    sid = next(iter(coord._shards))
    shard = coord._shards[sid]
    w = _Worker("w@1", "w", None, 0.0)
    coord._workers = {"w@1": w}
    shard.epoch, shard.owner = 1, "w@1"
    # Only part of the slice ever arrived (dropped frames)...
    part = shard.indices[:1]
    with coord._cond:
        coord._accept_chunk_locked(
            w,
            {"shard": sid, "epoch": 1, "pairs": [(part[0], _fake_result(0))]},
        )
        coord._accept_done_locked(w, {"shard": sid, "epoch": 1})
    # ...so "done" behaves like a deadline miss: revoked, remainder kept.
    assert coord.stats["revocations"] == 1
    assert shard.owner is None
    live = [
        s for s in coord._shards.values() if not s.retired
    ]
    requeued = sorted(i for s in live for i in s.indices)
    assert requeued == sorted(coord.merger.unbooked(range(len(coord.queries))))


def test_revocation_budget_retires_to_rescue(tiny_env):
    coord = _fresh_coordinator(tiny_env)
    coord._build_shards()
    sid = next(iter(coord._shards))
    shard = coord._shards[sid]
    for _ in range(coord.config.max_revocations + 1):
        coord._revoke_locked(shard, list(shard.indices))
        if shard.retired and coord._rescue:
            break
        # single live-worker path keeps the same shard object
    assert shard.retired
    assert sorted(coord._rescue) == sorted(shard.indices)


def test_revocation_splits_across_survivors(tiny_env):
    coord = _fresh_coordinator(tiny_env)
    coord._build_shards()
    sid = next(iter(coord._shards))
    shard = coord._shards[sid]
    coord._workers = {
        "a@1": _Worker("a@1", "a", None, 0.0),
        "b@2": _Worker("b@2", "b", None, 0.0),
    }
    cfg = CampaignConfig(chunk_size=1)
    coord.config = cfg
    before = set(coord._shards)
    indices = list(shard.indices)
    coord._revoke_locked(shard, indices)
    assert shard.retired  # split away
    assert coord.stats["reshards"] == 1
    pieces = [
        s
        for sid2, s in coord._shards.items()
        if sid2 not in before and not s.retired
    ]
    assert len(pieces) == 2
    assert sorted(i for s in pieces for i in s.indices) == sorted(indices)
    # Pieces inherit the revocation count: the budget caps total churn.
    assert all(s.revocations == shard.revocations for s in pieces)


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"heartbeat_interval": 0.0},
        {"heartbeat_interval": float("nan")},
        {"heartbeat_miss_budget": 0},
        {"heartbeat_miss_budget": 1.5},
        {"lease_timeout": -1.0},
        {"lease_timeout_per_query": float("inf")},
        {"worker_wait": -0.1},
        {"chunk_size": 0},
        {"shard_size": 0},
        {"reshard_backoff": -1.0},
        {"max_backoff": float("-inf")},
        {"max_revocations": -1},
    ],
)
def test_campaign_config_rejects_bad_knobs(kwargs):
    with pytest.raises(ValueError):
        CampaignConfig(**kwargs)


def test_campaign_config_defaults_are_valid():
    cfg = CampaignConfig()
    assert cfg.heartbeat_interval > 0
    assert cfg.chunk_size >= 1
