"""Full-stack fuzzing: random instances, random conditions, one invariant.

Every configuration in this module drives the complete pipeline (dataset ->
packed R-tree -> broadcast program -> client search -> estimate-filter ->
join) and asserts the single property everything rests on: the exact
algorithms return the oracle-optimal answer, no matter the page size,
replication factor, packing, phases, loss or skew.
"""

import math
import random

import pytest

from repro.broadcast import (
    BroadcastChannel,
    BroadcastProgram,
    ChannelTuner,
    PageLossModel,
    SystemParameters,
)
from repro.client import BroadcastNNSearch
from repro.core import DoubleNN, HybridNN, TNNEnvironment, WindowBasedTNN
from repro.datasets import gaussian_clusters, uniform
from repro.geometry import Point, Rect, distance, transitive_distance
from repro.rtree import build_rtree


def random_instance(rng):
    side = rng.choice([100.0, 1_000.0, 39_000.0])
    region = Rect(0.0, 0.0, side, side)
    maker = rng.choice(
        [
            lambda n, s: uniform(n, seed=s, region=region),
            lambda n, s: gaussian_clusters(
                n, clusters=rng.randint(1, 8), seed=s, region=region, spread=0.05
            ),
        ]
    )
    ns = rng.randint(1, 120)
    nr = rng.randint(1, 120)
    s_pts = maker(ns, rng.randint(0, 10_000))
    r_pts = maker(nr, rng.randint(0, 10_000))
    params = SystemParameters(page_capacity=rng.choice([64, 128, 256, 512]))
    m = rng.choice([None, 1, 2, 5])
    env = TNNEnvironment.build(s_pts, r_pts, params, m=m)
    return env, region


@pytest.mark.parametrize("seed", range(12))
def test_fuzz_full_stack_exactness(seed):
    rng = random.Random(seed * 7919)
    env, region = random_instance(rng)
    for _ in range(2):
        p = Point(
            rng.uniform(-region.width / 4, region.xmax + region.width / 4),
            rng.uniform(-region.height / 4, region.ymax + region.height / 4),
        )
        phases = env.random_phases(rng)
        want = min(
            transitive_distance(p, s, r)
            for s in env.s_points
            for r in env.r_points
        )
        for algo_cls in (WindowBasedTNN, DoubleNN, HybridNN):
            got = algo_cls().run(env, p, *phases)
            assert not got.failed
            assert math.isclose(got.distance, want, rel_tol=1e-9, abs_tol=1e-9), (
                f"{algo_cls.__name__} seed={seed}"
            )


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_lossy_broadcast_nn(seed):
    """NN over a lossy channel is exact for any loss rate < 1."""
    rng = random.Random(seed * 104729)
    n = rng.randint(2, 150)
    pts = uniform(n, seed=seed, region=Rect(0, 0, 500, 500))
    params = SystemParameters(page_capacity=rng.choice([64, 128]))
    tree = build_rtree(pts, params.leaf_capacity, params.internal_fanout)
    program = BroadcastProgram(tree, params, m=rng.choice([1, 3]))
    loss = PageLossModel(rate=rng.uniform(0.0, 0.6), seed=seed)
    tuner = ChannelTuner(
        BroadcastChannel(program, phase=rng.uniform(0, program.cycle_length)),
        loss=loss,
    )
    q = Point(rng.uniform(0, 500), rng.uniform(0, 500))
    search = BroadcastNNSearch(tree, tuner, q)
    search.run_to_completion()
    _, d = search.result()
    assert math.isclose(d, min(distance(q, p) for p in pts), rel_tol=1e-12)


@pytest.mark.parametrize("packing", ["str", "hilbert", "nearest_x"])
def test_fuzz_packing_independence(packing):
    """The answer is identical under every packing (only cost differs)."""
    rng = random.Random(42)
    s_pts = uniform(60, seed=1, region=Rect(0, 0, 800, 800))
    r_pts = uniform(60, seed=2, region=Rect(0, 0, 800, 800))
    env = TNNEnvironment.build(s_pts, r_pts, packing=packing)
    p = Point(400, 400)
    want = min(
        transitive_distance(p, s, r) for s in s_pts for r in r_pts
    )
    got = HybridNN().run(env, p, *env.random_phases(rng))
    assert math.isclose(got.distance, want, rel_tol=1e-9)
