"""Tests for the on-demand access baseline (Section 2.1's alternative)."""

import math
import random

import pytest

from repro.core import DoubleNN, TNNEnvironment
from repro.datasets import uniform
from repro.geometry import Rect
from repro.ondemand import (
    OnDemandParameters,
    OnDemandTNN,
    mm1_response_time,
)

REGION = Rect(0, 0, 2000, 2000)


@pytest.fixture(scope="module")
def env():
    return TNNEnvironment.build(
        uniform(150, seed=1, region=REGION), uniform(150, seed=2, region=REGION)
    )


def test_mm1_response_time():
    assert mm1_response_time(4.0, 0.0) == 4.0
    assert mm1_response_time(4.0, 0.5) == 8.0
    assert math.isclose(mm1_response_time(4.0, 0.9), 40.0)


def test_mm1_validation():
    with pytest.raises(ValueError):
        mm1_response_time(0.0, 0.5)
    with pytest.raises(ValueError):
        mm1_response_time(4.0, 1.0)
    with pytest.raises(ValueError):
        mm1_response_time(4.0, -0.1)


def test_parameters_utilisation():
    params = OnDemandParameters(service_pages=4.0, query_rate=0.01)
    assert math.isclose(params.utilisation(10), 0.4)
    with pytest.raises(ValueError):
        params.utilisation(-1)


def test_ondemand_answer_is_exact(env):
    rng = random.Random(5)
    server = OnDemandTNN(env)
    for _ in range(5):
        p = env.random_query_point(rng)
        got = server.run(p)
        want = DoubleNN().run(env, p)
        assert math.isclose(got.distance, want.distance, rel_tol=1e-9)


def test_ondemand_latency_grows_with_load(env):
    server = OnDemandTNN(env, OnDemandParameters(query_rate=0.01, service_pages=4.0))
    p = env.random_query_point(random.Random(6))
    light = server.run(p, n_clients=1)
    heavy = server.run(p, n_clients=20)
    assert heavy.access_time > light.access_time
    # Tune-in is load-independent (the client only pays its own messages).
    assert heavy.tune_in_time == light.tune_in_time


def test_ondemand_saturation_raises(env):
    server = OnDemandTNN(env, OnDemandParameters(query_rate=0.01, service_pages=4.0))
    p = env.random_query_point(random.Random(7))
    with pytest.raises(ValueError, match="saturated"):
        server.run(p, n_clients=25)  # rho = 1.0


def test_max_clients(env):
    server = OnDemandTNN(env, OnDemandParameters(query_rate=0.01, service_pages=4.0))
    limit = server.max_clients()
    assert limit == 24
    p = env.random_query_point(random.Random(8))
    server.run(p, n_clients=limit)  # must not raise


def test_broadcast_beats_ondemand_at_scale(env):
    """The motivating scalability claim: broadcast access time is flat in
    the client population; on-demand diverges near saturation."""
    server = OnDemandTNN(env, OnDemandParameters(query_rate=0.01, service_pages=4.0))
    p = env.random_query_point(random.Random(9))
    broadcast = DoubleNN().run(env, p)
    nearly_saturated = server.run(p, n_clients=24)
    lightly_loaded = server.run(p, n_clients=1)
    assert lightly_loaded.access_time < broadcast.access_time
    growth = nearly_saturated.access_time / lightly_loaded.access_time
    assert growth > 5
