"""Tests for the steppable broadcast NN search."""

import math
import random

import pytest

from repro.broadcast import (
    BroadcastChannel,
    BroadcastProgram,
    ChannelTuner,
    SystemParameters,
)
from repro.client import AnnPolicy, BroadcastNNSearch, SearchMode, dynamic_alpha
from repro.geometry import Point, distance, transitive_distance
from repro.rtree import best_first_nn, str_pack, transitive_nn


def make_setup(n=300, seed=0, m=2, phase=0.0, capacity=64):
    rng = random.Random(seed)
    pts = [Point(rng.random() * 1000, rng.random() * 1000) for _ in range(n)]
    params = SystemParameters(page_capacity=capacity)
    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    program = BroadcastProgram(tree, params, m=m)
    tuner = ChannelTuner(BroadcastChannel(program, phase=phase))
    return pts, tree, tuner


def test_broadcast_nn_matches_best_first():
    pts, tree, tuner = make_setup(seed=1)
    q = Point(321, 654)
    search = BroadcastNNSearch(tree, tuner, q)
    search.run_to_completion()
    got, got_d = search.result()
    _, want_d = best_first_nn(tree, q)
    assert math.isclose(got_d, want_d, rel_tol=1e-12)
    assert math.isclose(distance(q, got), want_d, rel_tol=1e-12)


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("phase", [0.0, 17.0, 101.0])
def test_broadcast_nn_exact_across_phases(seed, phase):
    pts, tree, tuner = make_setup(n=150, seed=seed, phase=phase)
    rng = random.Random(seed + 1000)
    q = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
    search = BroadcastNNSearch(tree, tuner, q)
    search.run_to_completion()
    _, got_d = search.result()
    want_d = min(distance(q, p) for p in pts)
    assert math.isclose(got_d, want_d, rel_tol=1e-12)


def test_broadcast_nn_monotone_clock():
    _, tree, tuner = make_setup(seed=2)
    search = BroadcastNNSearch(tree, tuner, Point(500, 500))
    times = []
    while not search.finished():
        search.step()
        times.append(tuner.now)
    assert times == sorted(times)


def test_broadcast_nn_downloads_less_than_full_index():
    _, tree, tuner = make_setup(n=800, seed=3)
    search = BroadcastNNSearch(tree, tuner, Point(500, 500))
    search.run_to_completion()
    assert tuner.index_pages < tree.node_count()


def test_step_on_finished_raises():
    _, tree, tuner = make_setup(n=10, seed=4)
    search = BroadcastNNSearch(tree, tuner, Point(0, 0))
    search.run_to_completion()
    with pytest.raises(RuntimeError):
        search.step()


def test_result_before_any_leaf_raises():
    _, tree, tuner = make_setup(n=50, seed=5)
    search = BroadcastNNSearch(tree, tuner, Point(0, 0))
    with pytest.raises(RuntimeError):
        search.result()


def test_start_time_delays_search():
    _, tree, tuner = make_setup(n=60, seed=6)
    search = BroadcastNNSearch(tree, tuner, Point(100, 100), start_time=37.0)
    assert tuner.now == 37.0
    search.run_to_completion()
    assert tuner.now > 37.0


# ----------------------------------------------------------------------
# Transitive mode (Hybrid Case 3 machinery)
# ----------------------------------------------------------------------
def test_transitive_mode_matches_oracle():
    pts, tree, tuner = make_setup(n=200, seed=7)
    p, r = Point(100, 900), Point(900, 100)
    search = BroadcastNNSearch(tree, tuner, p)
    search.switch_to_transitive(p, r)
    search.run_to_completion()
    s, d = search.result()
    _, want = transitive_nn(tree, p, r)
    assert math.isclose(d, want, rel_tol=1e-12)
    assert math.isclose(transitive_distance(p, s, r), want, rel_tol=1e-12)


def test_switch_to_transitive_mid_search():
    pts, tree, tuner = make_setup(n=250, seed=8)
    p, r = Point(200, 200), Point(800, 800)
    search = BroadcastNNSearch(tree, tuner, p)
    for _ in range(5):
        if search.finished():
            break
        search.step()
    search.switch_to_transitive(p, r)
    search.run_to_completion()
    _, d = search.result()
    want = min(transitive_distance(p, x, r) for x in pts)
    assert math.isclose(d, want, rel_tol=1e-12)


def test_switch_twice_raises():
    _, tree, tuner = make_setup(n=30, seed=9)
    p, r = Point(0, 0), Point(1, 1)
    search = BroadcastNNSearch(tree, tuner, p)
    search.switch_to_transitive(p, r)
    with pytest.raises(RuntimeError):
        search.switch_to_transitive(p, r)


def test_retarget_early_finds_exact_new_nn():
    """Retargeting before any leaf was consumed keeps every subtree
    reachable (delayed pruning), so the new NN is exact."""
    pts, tree, tuner = make_setup(n=250, seed=10)
    q1, q2 = Point(100, 100), Point(900, 900)
    search = BroadcastNNSearch(tree, tuner, q1)
    search.step()  # only the root was expanded: nothing consumed yet
    search.retarget(q2)
    assert search.mode is SearchMode.POINT
    search.run_to_completion()
    got, d = search.result()
    want = min(distance(q2, p) for p in pts)
    assert math.isclose(d, want, rel_tol=1e-12)


def test_retarget_late_searches_remaining_portion():
    """Retargeting mid-flight answers over the remaining portion of the
    tree plus the temporary result (Hybrid Case 2 semantics): the result is
    self-consistent and never beats the global NN."""
    pts, tree, tuner = make_setup(n=250, seed=10)
    q1, q2 = Point(100, 100), Point(900, 900)
    search = BroadcastNNSearch(tree, tuner, q1)
    for _ in range(40):
        if search.finished():
            break
        search.step()
    if search.finished():
        return
    search.retarget(q2)
    search.run_to_completion()
    got, d = search.result()
    assert got in pts
    assert math.isclose(d, distance(q2, got), rel_tol=1e-12)
    assert d >= min(distance(q2, p) for p in pts) - 1e-12


def test_retarget_in_transitive_mode_raises():
    _, tree, tuner = make_setup(n=30, seed=11)
    p, r = Point(0, 0), Point(1, 1)
    search = BroadcastNNSearch(tree, tuner, p)
    search.switch_to_transitive(p, r)
    with pytest.raises(RuntimeError):
        search.retarget(Point(2, 2))


# ----------------------------------------------------------------------
# ANN pruning
# ----------------------------------------------------------------------
def test_ann_visits_no_more_pages_than_exact():
    for seed in range(5):
        pts, tree, t_exact = make_setup(n=400, seed=seed)
        _, _, t_ann = make_setup(n=400, seed=seed)
        q = Point(500, 500)
        exact = BroadcastNNSearch(tree, t_exact, q)
        exact.run_to_completion()
        ann = BroadcastNNSearch(tree, t_ann, q, policy=AnnPolicy(dynamic_alpha(1.0)))
        ann.run_to_completion()
        assert t_ann.index_pages <= t_exact.index_pages


def test_ann_always_finds_some_point():
    for seed in range(8):
        pts, tree, tuner = make_setup(n=300, seed=seed)
        rng = random.Random(seed)
        q = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
        ann = BroadcastNNSearch(tree, tuner, q, policy=AnnPolicy(dynamic_alpha(1.0)))
        ann.run_to_completion()
        pt, d = ann.result()  # must not raise: witness chain reaches a leaf
        assert d >= min(distance(q, p) for p in pts) - 1e-12


def test_ann_alpha_zero_equals_exact():
    pts, tree, t1 = make_setup(n=300, seed=13)
    _, _, t2 = make_setup(n=300, seed=13)
    q = Point(444, 555)
    exact = BroadcastNNSearch(tree, t1, q)
    exact.run_to_completion()
    ann = BroadcastNNSearch(tree, t2, q, policy=AnnPolicy(0.0))
    ann.run_to_completion()
    assert t1.index_pages == t2.index_pages
    assert exact.result()[1] == ann.result()[1]


def test_ann_result_never_better_than_exact():
    pts, tree, tuner = make_setup(n=300, seed=14)
    q = Point(250, 750)
    ann = BroadcastNNSearch(tree, tuner, q, policy=AnnPolicy(dynamic_alpha(1.0)))
    ann.run_to_completion()
    _, ann_d = ann.result()
    _, exact_d = best_first_nn(tree, q)
    assert ann_d >= exact_d - 1e-12


def test_ann_transitive_mode():
    pts, tree, tuner = make_setup(n=300, seed=15)
    p, r = Point(100, 100), Point(900, 200)
    search = BroadcastNNSearch(
        tree, tuner, p, policy=AnnPolicy(dynamic_alpha(1.0 / 150))
    )
    search.switch_to_transitive(p, r)
    search.run_to_completion()
    s, d = search.result()
    want = min(transitive_distance(p, x, r) for x in pts)
    assert d >= want - 1e-12
    assert math.isclose(d, transitive_distance(p, s, r), rel_tol=1e-12)


def make_setup_with_empty_internal(q, n=60, seed=3):
    """A broadcast setup whose tree contains a childless internal node.

    The empty node's MBR hugs the query point, so its (void) MinMaxDist
    guarantee looks attractive and the node gets downloaded, exercising
    the witness hand-off guard.
    """
    from repro.geometry import Rect
    from repro.rtree.node import RTreeNode

    rng = random.Random(seed)
    pts = [Point(rng.random() * 1000, rng.random() * 1000) for _ in range(n)]
    params = SystemParameters(page_capacity=64)
    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    empty = RTreeNode(mbr=Rect(q.x - 1, q.y - 1, q.x + 1, q.y + 1), level=1)
    tree.root.children.append(empty)
    program = BroadcastProgram(tree, params, m=2)
    tuner = ChannelTuner(BroadcastChannel(program, phase=0.0))
    return tree, tuner, empty


def test_childless_internal_node_does_not_crash():
    """A childless internal node must not crash the witness hand-off.

    Degenerate packing can produce an internal node with no children; if
    it carried the upper bound's guarantee, the bound is rebuilt from the
    best concrete point instead of dereferencing a missing child.
    """
    q = Point(321, 654)
    tree, tuner, _ = make_setup_with_empty_internal(q, seed=3)
    search = BroadcastNNSearch(tree, tuner, q)
    search.run_to_completion()
    got, got_d = search.result()
    _, want_d = best_first_nn(tree, q)
    assert math.isclose(got_d, want_d, rel_tol=1e-12)


def test_childless_internal_witness_rebuilds_bound():
    """If the empty node itself witnessed the bound, the bound is reset."""
    q = Point(500, 500)
    tree, tuner, empty = make_setup_with_empty_internal(q, seed=5)
    search = BroadcastNNSearch(tree, tuner, q)
    # Force the empty node to be the current witness before it is absorbed.
    search._witness_page = empty.page_id
    search._absorb_internal(empty)
    # The void node no longer witnesses the bound; the rebuilt bound comes
    # from the best concrete point or a queued MBR's guarantee (rescan).
    assert search._witness_page != empty.page_id
    assert search.upper_bound >= search.best_dist or search._witness_page is not None
    search.run_to_completion()
    _, want_d = best_first_nn(tree, q)
    assert math.isclose(search.result()[1], want_d, rel_tol=1e-12)


def test_empty_internal_node_cannot_poison_upper_bound():
    """Regression: a void MinMaxDist guarantee must never be *accepted*.

    On a deep tree with the query far outside the region, an empty node
    whose MBR hugs the query would (if its guarantee were accepted at
    parent absorption) set a tiny upper bound and exact-prune every real
    subtree, finishing the search with no answer at all.
    """
    from repro.geometry import Rect
    from repro.rtree.node import RTreeNode

    rng = random.Random(42)
    pts = [Point(rng.random() * 1000, rng.random() * 1000) for _ in range(600)]
    params = SystemParameters(page_capacity=64)
    tree = str_pack(pts, params.leaf_capacity, params.internal_fanout)
    q = Point(5000, 5000)
    empty = RTreeNode(mbr=Rect(q.x - 1, q.y - 1, q.x + 1, q.y + 1), level=1)
    tree.root.children.append(empty)
    program = BroadcastProgram(tree, params, m=2)
    tuner = ChannelTuner(BroadcastChannel(program, phase=0.0))
    search = BroadcastNNSearch(tree, tuner, q)
    search.run_to_completion()
    got, got_d = search.result()
    want_d = min(distance(q, p) for p in pts)
    assert math.isclose(got_d, want_d, rel_tol=1e-12)


# ----------------------------------------------------------------------
# Kernel path (arrival frontier + certified bounds) vs scalar oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("capacity", [64, 512])
@pytest.mark.parametrize("seed", range(5))
def test_nn_kernel_path_bit_identical(capacity, seed):
    """Seeded sweep: the frontier's cached/weak bounds change nothing."""
    from repro.geometry import kernels

    rng = random.Random(4000 + seed)
    q = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
    phase = rng.uniform(0, 100)
    results = {}
    for flag in (False, True):
        _, tree, tuner = make_setup(
            n=300 + 50 * seed, seed=seed, phase=phase, capacity=capacity
        )
        with kernels.use_kernels(flag):
            search = BroadcastNNSearch(tree, tuner, q)
            search.run_to_completion()
        results[flag] = (
            search.result(),
            search.max_queue_size,
            tuner.now,
            tuner.index_pages,
            tuple(tuner.log),
        )
    assert results[False] == results[True]


@pytest.mark.parametrize("capacity", [64, 512])
@pytest.mark.parametrize("seed", range(5))
def test_hybrid_mutations_kernel_path_bit_identical(capacity, seed):
    """Mid-flight retarget + transitive switch, kernel vs scalar oracle.

    Exercises the certified weak transitive bounds and the rescan's
    epoch-refreshed lower bounds on both paths.
    """
    from repro.geometry import kernels

    rng = random.Random(5000 + seed)
    q = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
    target = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
    phase = rng.uniform(0, 100)
    switch_after = rng.randrange(3, 12)
    results = {}
    for flag in (False, True):
        _, tree, tuner = make_setup(
            n=300 + 50 * seed, seed=seed, phase=phase, capacity=capacity
        )
        with kernels.use_kernels(flag):
            search = BroadcastNNSearch(tree, tuner, q)
            steps = 0
            while not search.finished():
                search.step()
                steps += 1
                if steps == switch_after and not search.finished():
                    search.switch_to_transitive(q, target)
            trace = (
                search.result(),
                search.mode.value,
                search.max_queue_size,
                tuner.now,
                tuner.index_pages,
                tuple(tuner.log),
            )
        results[flag] = trace
    assert results[False] == results[True]


@pytest.mark.parametrize("seed", range(4))
def test_retarget_kernel_path_bit_identical(seed):
    """Case 2 re-steering: retarget mid-run, kernel vs scalar oracle."""
    from repro.geometry import kernels

    rng = random.Random(6000 + seed)
    q = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
    new_q = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
    phase = rng.uniform(0, 100)
    retarget_after = rng.randrange(2, 10)
    results = {}
    for flag in (False, True):
        _, tree, tuner = make_setup(n=400, seed=seed, phase=phase)
        with kernels.use_kernels(flag):
            search = BroadcastNNSearch(tree, tuner, q)
            steps = 0
            while not search.finished():
                search.step()
                steps += 1
                if steps == retarget_after and not search.finished():
                    search.retarget(new_q)
            trace = (
                search.result(),
                tuner.now,
                tuner.index_pages,
                tuple(tuner.log),
            )
        results[flag] = trace
    assert results[False] == results[True]
