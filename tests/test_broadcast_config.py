"""Tests for SystemParameters (Table 2 derivations)."""

import pytest

from repro.broadcast import SystemParameters
from repro.broadcast.config import PAPER_PAGE_CAPACITIES


def test_default_matches_table2():
    p = SystemParameters()
    assert p.page_capacity == 64
    assert p.pointer_size == 2
    assert p.coordinate_size == 4
    assert p.data_object_size == 1024


def test_entry_sizes():
    p = SystemParameters()
    assert p.mbr_entry_size == 18  # 4 coords * 4 bytes + 2-byte pointer
    assert p.point_entry_size == 10  # 2 coords * 4 bytes + 2-byte pointer


def test_fanout_64_bytes_matches_paper():
    """64-byte pages give fanout 3 — the paper's M = 3."""
    p = SystemParameters(page_capacity=64)
    assert p.internal_fanout == 3
    assert p.leaf_capacity == 6


@pytest.mark.parametrize(
    "capacity,fanout,leaf_cap",
    [(64, 3, 6), (128, 7, 12), (256, 14, 25), (512, 28, 51)],
)
def test_fanout_scaling(capacity, fanout, leaf_cap):
    p = SystemParameters(page_capacity=capacity)
    assert p.internal_fanout == fanout
    assert p.leaf_capacity == leaf_cap


@pytest.mark.parametrize("capacity", PAPER_PAGE_CAPACITIES)
def test_pages_per_object(capacity):
    p = SystemParameters(page_capacity=capacity)
    assert p.pages_per_object == -(-1024 // capacity)


def test_too_small_page_rejected():
    with pytest.raises(ValueError):
        SystemParameters(page_capacity=10)


def test_frozen():
    p = SystemParameters()
    with pytest.raises(AttributeError):
        p.page_capacity = 128
