"""Hypothesis property test: end-to-end exactness on arbitrary instances."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast import SystemParameters
from repro.core import DoubleNN, HybridNN, TNNEnvironment, WindowBasedTNN
from repro.geometry import Point, transitive_distance

coords = st.floats(min_value=0, max_value=500, allow_nan=False)
pts = st.tuples(coords, coords).map(lambda t: Point(*t))


@settings(max_examples=20, deadline=None)
@given(
    st.lists(pts, min_size=1, max_size=40),
    st.lists(pts, min_size=1, max_size=40),
    pts,
    st.floats(min_value=0, max_value=1, allow_nan=False),
    st.floats(min_value=0, max_value=1, allow_nan=False),
)
def test_all_exact_algorithms_agree_with_brute_force(
    s_pts, r_pts, query, frac_s, frac_r
):
    env = TNNEnvironment.build(
        s_pts, r_pts, SystemParameters(page_capacity=64), m=1
    )
    phase_s = frac_s * env.s_program.cycle_length
    phase_r = frac_r * env.r_program.cycle_length
    want = min(
        transitive_distance(query, s, r) for s in s_pts for r in r_pts
    )
    for algo_cls in (WindowBasedTNN, DoubleNN, HybridNN):
        result = algo_cls().run(env, query, phase_s, phase_r)
        assert not result.failed
        assert math.isclose(result.distance, want, rel_tol=1e-9, abs_tol=1e-9), (
            algo_cls.__name__
        )
