"""Tests for the exact circle-rectangle intersection area."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Circle, Point, Rect, polygon_area
from repro.geometry.circle_area import circle_rect_intersection_area
from repro.geometry.polygon import clip_polygon_to_rect

coords = st.floats(min_value=-50, max_value=50, allow_nan=False)
radii = st.floats(min_value=0.01, max_value=60, allow_nan=False)


@st.composite
def rects(draw):
    x1 = draw(coords)
    y1 = draw(coords)
    w = draw(st.floats(min_value=0.01, max_value=80))
    h = draw(st.floats(min_value=0.01, max_value=80))
    return Rect(x1, y1, x1 + w, y1 + h)


def test_rect_inside_circle():
    area = circle_rect_intersection_area(Point(0, 0), 10.0, Rect(-1, -1, 1, 1))
    assert math.isclose(area, 4.0, rel_tol=1e-12)


def test_circle_inside_rect():
    area = circle_rect_intersection_area(Point(0, 0), 2.0, Rect(-10, -10, 10, 10))
    assert math.isclose(area, math.pi * 4.0, rel_tol=1e-12)


def test_disjoint():
    assert circle_rect_intersection_area(Point(0, 0), 1.0, Rect(5, 5, 6, 6)) == 0.0


def test_zero_radius():
    assert circle_rect_intersection_area(Point(0, 0), 0.0, Rect(-1, -1, 1, 1)) == 0.0


def test_half_disk():
    # Rect covers exactly the right half-plane portion of the disk.
    area = circle_rect_intersection_area(Point(0, 0), 3.0, Rect(0, -10, 10, 10))
    assert math.isclose(area, math.pi * 9.0 / 2.0, rel_tol=1e-12)


def test_quarter_disk():
    area = circle_rect_intersection_area(Point(0, 0), 2.0, Rect(0, 0, 10, 10))
    assert math.isclose(area, math.pi, rel_tol=1e-12)


def test_circular_segment():
    # Strip x >= 1 of a unit-radius-2 disk: closed-form segment area.
    r, d = 2.0, 1.0
    expected = r * r * math.acos(d / r) - d * math.sqrt(r * r - d * d)
    area = circle_rect_intersection_area(Point(0, 0), r, Rect(1, -10, 10, 10))
    assert math.isclose(area, expected, rel_tol=1e-12)


def test_tangent_rect():
    # Rectangle touching the disk at exactly one boundary point.
    area = circle_rect_intersection_area(Point(0, 0), 1.0, Rect(1, -1, 3, 1))
    assert area == 0.0


@settings(max_examples=200, deadline=None)
@given(st.builds(Point, coords, coords), radii, rects())
def test_exact_matches_polygon_approximation(center, radius, rect):
    exact = circle_rect_intersection_area(center, radius, rect)
    circle = Circle(center, radius)
    approx = polygon_area(clip_polygon_to_rect(circle.to_polygon(512), rect))
    # The inscribed 512-gon underestimates by at most one sagitta strip
    # along the arc inside the rectangle: bound the *absolute* error by the
    # chord error scale r^2 * (pi/512)^2 * pi, plus a relative fallback.
    chord_error = math.pi * radius * radius * (math.pi / 512) ** 2 * 8
    scale = max(exact, approx, 1e-9)
    assert (
        abs(exact - approx) / scale < 5e-3
        or abs(exact - approx) <= chord_error + 1e-6
    )


@settings(max_examples=60, deadline=None)
@given(st.builds(Point, coords, coords), radii, rects())
def test_exact_matches_monte_carlo(center, radius, rect):
    exact = circle_rect_intersection_area(center, radius, rect)
    rng = random.Random(11)
    n = 5000
    hits = 0
    for _ in range(n):
        p = Point(
            rect.xmin + rng.random() * rect.width,
            rect.ymin + rng.random() * rect.height,
        )
        if Circle(center, radius).contains_point(p):
            hits += 1
    mc = hits / n * rect.area
    tolerance = 4 * rect.area / math.sqrt(n) + 1e-6
    assert abs(exact - mc) <= tolerance


@settings(max_examples=200, deadline=None)
@given(st.builds(Point, coords, coords), radii, rects())
def test_area_bounds(center, radius, rect):
    area = circle_rect_intersection_area(center, radius, rect)
    assert 0.0 <= area <= min(rect.area, math.pi * radius * radius) + 1e-9
