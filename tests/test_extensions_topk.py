"""Tests for the top-k TNN extension."""

import math
import random

import pytest

from repro.core import TNNEnvironment
from repro.datasets import uniform
from repro.extensions import TopKTNN, topk_join, topk_oracle
from repro.geometry import Point, Rect, transitive_distance

REGION = Rect(0, 0, 1000, 1000)


@pytest.fixture(scope="module")
def env():
    return TNNEnvironment.build(
        uniform(70, seed=51, region=REGION), uniform(60, seed=52, region=REGION)
    )


def test_invalid_k():
    with pytest.raises(ValueError):
        TopKTNN(0)


@pytest.mark.parametrize("k", [1, 3, 7])
def test_topk_matches_oracle(env, k):
    rng = random.Random(k)
    algo = TopKTNN(k)
    for _ in range(4):
        p = env.random_query_point(rng)
        result = algo.run(env, p, *env.random_phases(rng))
        want = topk_oracle(p, env.s_points, env.r_points, k)
        got = [d for _, _, d in result.pairs]
        assert len(got) == k
        assert all(
            math.isclose(g, w, rel_tol=1e-9) for g, w in zip(got, want)
        )


def test_topk_pairs_sorted_and_consistent(env):
    p = Point(500, 500)
    result = TopKTNN(5).run(env, p)
    dists = [d for _, _, d in result.pairs]
    assert dists == sorted(dists)
    for s, r, d in result.pairs:
        assert math.isclose(transitive_distance(p, s, r), d, rel_tol=1e-9)
    assert result.radius >= dists[-1] - 1e-9


def test_topk_k1_equals_tnn(env):
    from repro.core import DoubleNN

    rng = random.Random(9)
    p = env.random_query_point(rng)
    topk = TopKTNN(1).run(env, p)
    tnn = DoubleNN().run(env, p)
    assert math.isclose(topk.pairs[0][2], tnn.distance, rel_tol=1e-9)


def test_topk_pairs_are_distinct(env):
    p = Point(250, 750)
    result = TopKTNN(6).run(env, p)
    pairs = [(s, r) for s, r, _ in result.pairs]
    assert len(set(pairs)) == len(pairs)


def test_topk_join_direct():
    p = Point(0, 0)
    s_cands = [Point(1, 0), Point(2, 0), Point(3, 0)]
    r_cands = [Point(1.5, 0), Point(10, 0)]
    got = topk_join(p, s_cands, r_cands, 3)
    want = topk_oracle(p, s_cands, r_cands, 3)
    assert [d for _, _, d in got] == pytest.approx(want)


def test_topk_join_empty():
    assert topk_join(Point(0, 0), [], [Point(1, 1)], 3) == []


def test_topk_k_exceeds_pair_count():
    p = Point(0, 0)
    got = topk_join(p, [Point(1, 0)], [Point(2, 0)], 10)
    assert len(got) == 1
