"""Tests for the in-memory reference queries (NN, range, transitive NN)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Circle, Point, Rect, distance, transitive_distance
from repro.rtree import (
    best_first_knn,
    best_first_nn,
    str_pack,
    tnn_oracle,
    transitive_nn,
)
from repro.rtree.traversal import brute_force_tnn, range_search, window_search


def random_points(n, seed=0, side=1000.0):
    rng = random.Random(seed)
    return [Point(rng.random() * side, rng.random() * side) for _ in range(n)]


@pytest.fixture(scope="module")
def tree():
    return str_pack(random_points(800, seed=11), leaf_capacity=6, fanout=3)


@pytest.fixture(scope="module")
def tree_points(tree):
    return list(tree.iter_points())


def test_nn_matches_linear_scan(tree, tree_points):
    rng = random.Random(99)
    for _ in range(25):
        q = Point(rng.uniform(-100, 1100), rng.uniform(-100, 1100))
        got, got_d = best_first_nn(tree, q)
        want_d = min(distance(q, p) for p in tree_points)
        assert math.isclose(got_d, want_d, rel_tol=1e-12)
        assert math.isclose(distance(q, got), want_d, rel_tol=1e-12)


def test_nn_query_on_data_point(tree, tree_points):
    q = tree_points[42]
    _, d = best_first_nn(tree, q)
    assert d == 0.0


def test_knn_ordering_and_count(tree, tree_points):
    q = Point(500, 500)
    result = best_first_knn(tree, q, 10)
    assert len(result) == 10
    dists = [d for _, d in result]
    assert dists == sorted(dists)
    want = sorted(distance(q, p) for p in tree_points)[:10]
    assert all(math.isclose(a, b, rel_tol=1e-12) for a, b in zip(dists, want))


def test_knn_k_larger_than_dataset():
    tree = str_pack(random_points(5, seed=1), leaf_capacity=2, fanout=2)
    assert len(best_first_knn(tree, Point(0, 0), 50)) == 5


def test_knn_invalid_k(tree):
    with pytest.raises(ValueError):
        best_first_knn(tree, Point(0, 0), 0)


def test_range_search_matches_scan(tree, tree_points):
    circle = Circle(Point(400, 600), 120.0)
    got = sorted(range_search(tree, circle))
    want = sorted(p for p in tree_points if circle.contains_point(p))
    assert got == want


def test_range_search_empty(tree):
    assert range_search(tree, Circle(Point(-5000, -5000), 10.0)) == []


def test_range_search_covers_all(tree, tree_points):
    circle = Circle(Point(500, 500), 1e5)
    assert len(range_search(tree, circle)) == len(tree_points)


def test_window_search_matches_scan(tree, tree_points):
    win = Rect(100, 100, 400, 300)
    got = sorted(window_search(tree, win))
    want = sorted(p for p in tree_points if win.contains_point(p))
    assert got == want


def test_transitive_nn_matches_scan(tree, tree_points):
    rng = random.Random(5)
    for _ in range(15):
        p = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
        r = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
        s, d = transitive_nn(tree, p, r)
        want = min(transitive_distance(p, x, r) for x in tree_points)
        assert math.isclose(d, want, rel_tol=1e-12)
        assert math.isclose(transitive_distance(p, s, r), want, rel_tol=1e-12)


def test_tnn_oracle_matches_brute_force():
    rng = random.Random(13)
    s_pts = random_points(120, seed=21)
    r_pts = random_points(90, seed=22)
    s_tree = str_pack(s_pts, leaf_capacity=4, fanout=3)
    r_tree = str_pack(r_pts, leaf_capacity=4, fanout=3)
    for _ in range(10):
        p = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
        s1, r1, d1 = tnn_oracle(p, s_tree, r_tree)
        s2, r2, d2 = brute_force_tnn(p, s_pts, r_pts)
        assert math.isclose(d1, d2, rel_tol=1e-12)
        assert math.isclose(transitive_distance(p, s1, r1), d2, rel_tol=1e-12)


def test_tnn_oracle_single_points():
    s_tree = str_pack([Point(1, 0)], 4, 3)
    r_tree = str_pack([Point(2, 0)], 4, 3)
    s, r, d = tnn_oracle(Point(0, 0), s_tree, r_tree)
    assert (s, r) == (Point(1, 0), Point(2, 0))
    assert d == 2.0


coords = st.floats(min_value=0, max_value=100, allow_nan=False)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.tuples(coords, coords), min_size=1, max_size=60),
    st.tuples(coords, coords),
)
def test_nn_property(raw_pts, raw_q):
    pts = [Point(x, y) for x, y in raw_pts]
    q = Point(*raw_q)
    tree = str_pack(pts, leaf_capacity=3, fanout=3)
    _, d = best_first_nn(tree, q)
    assert math.isclose(d, min(distance(q, p) for p in pts), rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.tuples(coords, coords), min_size=1, max_size=40),
    st.lists(st.tuples(coords, coords), min_size=1, max_size=40),
    st.tuples(coords, coords),
)
def test_tnn_oracle_property(raw_s, raw_r, raw_p):
    s_pts = [Point(x, y) for x, y in raw_s]
    r_pts = [Point(x, y) for x, y in raw_r]
    p = Point(*raw_p)
    s_tree = str_pack(s_pts, leaf_capacity=3, fanout=3)
    r_tree = str_pack(r_pts, leaf_capacity=3, fanout=3)
    _, _, d = tnn_oracle(p, s_tree, r_tree)
    want = min(
        transitive_distance(p, s, r) for s in s_pts for r in r_pts
    )
    assert math.isclose(d, want, rel_tol=1e-9, abs_tol=1e-9)
