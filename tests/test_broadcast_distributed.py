"""Tests for distributed (partial-replication) air indexing."""

import math
import random

import pytest

from repro.broadcast import (
    BroadcastChannel,
    BroadcastProgram,
    ChannelTuner,
    SystemParameters,
)
from repro.broadcast.distributed import DistributedBroadcastProgram
from repro.client import BroadcastNNSearch
from repro.geometry import Point, distance
from repro.rtree import str_pack


def make_tree(n=200, seed=0):
    rng = random.Random(seed)
    pts = [Point(rng.random() * 1000, rng.random() * 1000) for _ in range(n)]
    params = SystemParameters(page_capacity=64)
    return pts, str_pack(pts, params.leaf_capacity, params.internal_fanout), params


def test_validation():
    pts, tree, params = make_tree()
    with pytest.raises(ValueError):
        DistributedBroadcastProgram(tree, params, m=2, replicated_levels=0)


def test_cycle_shorter_than_full_replication():
    pts, tree, params = make_tree(400)
    full = BroadcastProgram(tree, params, m=4)
    dist = DistributedBroadcastProgram(tree, params, m=4, replicated_levels=2)
    assert dist.cycle_length < full.cycle_length
    assert dist.top_index_length < dist.index_length


def test_degenerates_to_full_replication():
    pts, tree, params = make_tree(150)
    full = BroadcastProgram(tree, params, m=3)
    dist = DistributedBroadcastProgram(
        tree, params, m=3, replicated_levels=tree.height
    )
    assert dist.cycle_length == full.cycle_length
    for page in range(tree.node_count()):
        assert dist.index_page_positions(page) == full.index_page_positions(page)


def test_top_pages_replicated_deep_pages_once():
    pts, tree, params = make_tree(300)
    prog = DistributedBroadcastProgram(tree, params, m=4, replicated_levels=2)
    assert len(prog.index_page_positions(0)) == 4  # the root, everywhere
    # Find a leaf page (level 0, below the cutoff for a tall tree).
    leaf_page = next(
        node.page_id for node in tree.iter_nodes() if node.is_leaf
    )
    assert len(prog.index_page_positions(leaf_page)) == 1


def test_positions_within_cycle():
    pts, tree, params = make_tree(250)
    prog = DistributedBroadcastProgram(tree, params, m=3, replicated_levels=2)
    for page in range(prog.index_length):
        for pos in prog.index_page_positions(page):
            assert 0 <= pos < prog.cycle_length
    for off in range(0, prog.data_length, 7):
        assert 0 <= prog.data_page_position(off) < prog.cycle_length


def test_no_position_collisions():
    pts, tree, params = make_tree(120)
    prog = DistributedBroadcastProgram(tree, params, m=3, replicated_levels=2)
    seen = set()
    for page in range(prog.index_length):
        for pos in prog.index_page_positions(page):
            assert pos not in seen, f"collision at {pos}"
            seen.add(pos)
    for off in range(prog.data_length):
        pos = prog.data_page_position(off)
        assert pos not in seen, f"data collides at {pos}"
        seen.add(pos)


def test_replication_overhead_below_full():
    pts, tree, params = make_tree(300)
    prog = DistributedBroadcastProgram(tree, params, m=4, replicated_levels=2)
    assert prog.replication_overhead() < 4.0
    assert prog.replication_overhead() >= 1.0
    assert DistributedBroadcastProgram.full_replication_overhead(tree, 4) == 4.0


def test_nn_search_still_exact_on_distributed_program():
    pts, tree, params = make_tree(250, seed=5)
    prog = DistributedBroadcastProgram(tree, params, m=4, replicated_levels=2)
    for phase in (0.0, 31.0, 177.0):
        tuner = ChannelTuner(BroadcastChannel(prog, phase=phase))
        q = Point(321, 654)
        search = BroadcastNNSearch(tree, tuner, q)
        search.run_to_completion()
        _, d = search.result()
        assert math.isclose(d, min(distance(q, p) for p in pts), rel_tol=1e-12)


def test_arrival_idempotence():
    pts, tree, params = make_tree(180)
    prog = DistributedBroadcastProgram(tree, params, m=3, replicated_levels=2)
    for page in (0, 1, prog.index_length - 1):
        arrival = prog.next_index_arrival(page, 13.0)
        assert arrival >= 13.0
        assert prog.next_index_arrival(page, arrival) == arrival
