"""Tests for the markdown report generator and its CLI command."""

import pathlib

from repro.sim.report import REPORT_SECTIONS, generate_report


def test_report_sections_cover_all_artifacts():
    assert set(REPORT_SECTIONS) == {
        "fig9a", "fig9b", "fig9c", "fig9d",
        "fig11a", "fig11b", "fig11c", "fig11d",
        "fig12a", "fig12b", "fig12c", "fig12d",
        "fig13a", "fig13b", "table3",
    }


def test_generate_report_structure():
    seen = []
    text = generate_report(
        scale=0.02, n_queries=2, progress=lambda name, dt: seen.append(name)
    )
    assert text.startswith("# TNN multi-channel reproduction")
    for name in REPORT_SECTIONS:
        assert f"## {name}" in text
    assert "```text" in text
    assert seen == list(REPORT_SECTIONS)


def test_cli_report_command(tmp_path, capsys, monkeypatch):
    from repro.sim.cli import main

    # Table 3 at full scale is expensive; pin it down for the test run.
    monkeypatch.setenv("REPRO_TABLE3_SCALE", "0.02")
    out = tmp_path / "r.md"
    rc = main(
        ["report", "--scale", "0.02", "--queries", "2", "--out", str(out)]
    )
    assert rc == 0
    assert out.exists()
    content = out.read_text()
    assert "## table3" in content
    assert "report written" in capsys.readouterr().out
