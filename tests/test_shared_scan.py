"""Bit-identity A/B sweep and unit tests for the shared-scan executor.

The contract under test: the page-major executor
(:mod:`repro.engine.shared_scan`) must reproduce the per-query path —
answers, access times, tune-in counts, max queue sizes — bit for bit, for
every query type, at both the paper's page geometries, on the kernel path
*and* under ``REPRO_NO_KERNELS``-style scalar execution, including
workloads whose queries straddle different channel phases.
"""

import math

import pytest

from repro.broadcast import SystemParameters
from repro.client import BroadcastNNSearch, SearchGroup, run_all
from repro.core import DoubleNN, HybridNN, TNNEnvironment, WindowBasedTNN
from repro.core.environment import TNNEnvironment as _Env
from repro.datasets import sized_uniform
from repro.engine import (
    BatchRunner,
    KNNRequest,
    NNRequest,
    QueryEngine,
    QueryWorkload,
    RangeRequest,
    SharedScanRunner,
    WindowRequest,
    execute_tnn_batch,
    pool_chunk_count,
)
from repro.engine.shared_scan import SharedScanExecutor, shared_scan_supported
from repro.geometry import Point, Rect, kernels

import random


def _build_env(page_capacity, n=900):
    return TNNEnvironment.build(
        sized_uniform(n, seed=1),
        sized_uniform(n, seed=2),
        params=SystemParameters(page_capacity=page_capacity),
    )


@pytest.fixture(scope="module")
def env64():
    return _build_env(64)


@pytest.fixture(scope="module")
def env512():
    return _build_env(512)


def _random_queries(env, n, seed=0):
    rng = random.Random(seed)
    return [
        (env.random_query_point(rng), *env.random_phases(rng))
        for _ in range(n)
    ]


def _straddling_queries(env, n, seed=1):
    """Queries spread evenly across both channels' cycle phases."""
    rng = random.Random(seed)
    cs = env.s_program.cycle_length
    cr = env.r_program.cycle_length
    return [
        (env.random_query_point(rng), i * cs / n, ((n - i) * cr / n) % cr)
        for i in range(n)
    ]


# ----------------------------------------------------------------------
# TNN workloads: shared scan vs per-query oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("page_capacity", [64, 512])
@pytest.mark.parametrize("use_kernels", [True, False])
@pytest.mark.parametrize("algo_cls", [DoubleNN, HybridNN])
def test_tnn_bit_identity(page_capacity, use_kernels, algo_cls, env64, env512):
    env = env64 if page_capacity == 64 else env512
    queries = _random_queries(env, 25)
    algo = algo_cls()
    with kernels.use_kernels(use_kernels):
        want = [algo.run(env, q, ps, pr) for q, ps, pr in queries]
        got = execute_tnn_batch(env, algo, queries)
    assert got == want


@pytest.mark.parametrize("use_kernels", [True, False])
def test_tnn_bit_identity_phase_straddling(env64, use_kernels):
    """Queries at evenly spread phases of both cycles stay bit-identical."""
    queries = _straddling_queries(env64, 24)
    algo = HybridNN()
    with kernels.use_kernels(use_kernels):
        want = [algo.run(env64, q, ps, pr) for q, ps, pr in queries]
        got = execute_tnn_batch(env64, algo, queries)
    assert got == want


def test_shared_runner_matches_batch_runner(env64):
    workload = QueryWorkload(15, seed=3)
    base = BatchRunner(env64, workload, workers=0)
    shared = SharedScanRunner(env64, workload, workers=0)
    for algo_cls in (DoubleNN, HybridNN):
        assert shared.run_algorithm(algo_cls()) == base.run_algorithm(
            algo_cls()
        )


def test_shared_runner_falls_back_for_unsupported(env64):
    workload = QueryWorkload(6, seed=4)
    base = BatchRunner(env64, workload, workers=0)
    shared = SharedScanRunner(env64, workload, workers=0)
    # Foreign algorithm type, data retrieval, and subclasses all fall back.
    assert not shared_scan_supported(WindowBasedTNN())
    assert not shared_scan_supported(HybridNN(include_data_retrieval=True))

    class TweakedDoubleNN(DoubleNN):
        pass

    assert not shared_scan_supported(TweakedDoubleNN())
    assert shared_scan_supported(HybridNN())
    for algo in (WindowBasedTNN(), HybridNN(include_data_retrieval=True)):
        assert shared.run_algorithm(algo) == base.run_algorithm(algo)


def test_shared_runner_pool_phase_sharding(env64):
    workload = QueryWorkload(13, seed=5)
    shared = SharedScanRunner(env64, workload)
    serial = shared.run_algorithm(HybridNN(), workers=0)
    pooled = shared.run_algorithm(HybridNN(), workers=2)
    assert pooled == serial
    # Shards cover the workload exactly once, ordered by s-phase.
    shards = shared._phase_shards(3)
    flat = [i for shard in shards for i in shard]
    assert sorted(flat) == list(range(len(workload.queries(env64))))
    phases = [workload.queries(env64)[i][1] for i in flat]
    assert phases == sorted(phases)


def test_shared_runner_run_summary(env64):
    workload = QueryWorkload(8, seed=6)
    base = BatchRunner(env64, workload, workers=0)
    shared = SharedScanRunner(env64, workload, workers=0)
    algos = {"double-nn": DoubleNN(), "hybrid-nn": HybridNN()}
    assert shared.run(algos) == base.run(algos)


def test_distributed_layout_uses_per_query_path(env64):
    """Heap-backed searches (no cyclic page order) multiplex unchanged."""
    env = TNNEnvironment.build(
        sized_uniform(400, seed=1),
        sized_uniform(400, seed=2),
        params=SystemParameters(page_capacity=64),
        distributed_levels=2,
    )
    queries = _random_queries(env, 8)
    algo = HybridNN()
    want = [algo.run(env, q, ps, pr) for q, ps, pr in queries]
    assert execute_tnn_batch(env, algo, queries) == want


# ----------------------------------------------------------------------
# Mixed client batches (QueryEngine.run_many)
# ----------------------------------------------------------------------
def _mixed_requests(env, n, seed=9):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        p = env.random_query_point(rng)
        channel = "s" if rng.random() < 0.5 else "r"
        program = env.s_program if channel == "s" else env.r_program
        phase = rng.uniform(0, program.cycle_length)
        kind = i % 4
        if kind == 0:
            out.append(NNRequest(p, phase, channel))
        elif kind == 1:
            out.append(KNNRequest(p, 1 + i % 5, phase, channel))
        elif kind == 2:
            out.append(RangeRequest(p, rng.uniform(50, 2500), phase, channel))
        else:
            q = env.random_query_point(rng)
            out.append(
                WindowRequest(
                    Rect(
                        min(p.x, q.x), min(p.y, q.y), max(p.x, q.x), max(p.y, q.y)
                    ),
                    phase,
                    channel,
                )
            )
    return out


@pytest.mark.parametrize("page_capacity", [64, 512])
@pytest.mark.parametrize("use_kernels", [True, False])
def test_run_many_bit_identity(page_capacity, use_kernels, env64, env512):
    env = env64 if page_capacity == 64 else env512
    engine = QueryEngine(env)
    requests = _mixed_requests(env, 32)
    with kernels.use_kernels(use_kernels):
        got = engine.run_many(requests)
        want = []
        for r in requests:
            if isinstance(r, NNRequest):
                want.append(engine.nn(r.point, r.phase, r.channel))
            elif isinstance(r, KNNRequest):
                want.append(engine.knn(r.point, r.k, r.phase, r.channel))
            elif isinstance(r, RangeRequest):
                want.append(engine.range(r.center, r.radius, r.phase, r.channel))
            else:
                want.append(engine.window(r.window, r.phase, r.channel))
    assert got == want


def test_run_many_window_missing_root(env64):
    """A window outside the dataset is born finished and answers empty."""
    engine = QueryEngine(env64)
    outside = Rect(1e9, 1e9, 1e9 + 1, 1e9 + 1)
    answers = engine.run_many(
        [WindowRequest(outside), NNRequest(Point(100.0, 100.0))]
    )
    assert answers[0].answers == ()
    assert answers[0].tune_in == 0
    assert answers[1] == engine.nn(Point(100.0, 100.0))


def test_run_many_empty_batch(env64):
    assert QueryEngine(env64).run_many([]) == []


# ----------------------------------------------------------------------
# Multi-query kernels: every lane bit-identical to the single-query form
# ----------------------------------------------------------------------
def test_multi_query_kernels_bit_identical_to_single_query():
    import numpy as np

    rng = random.Random(42)
    k, n = 23, 5
    Q, P, E, MB, PTS = [], [], [], [], []
    for _ in range(k):
        Q.append((rng.uniform(-10, 10), rng.uniform(-10, 10)))
        P.append((rng.uniform(-10, 10), rng.uniform(-10, 10)))
        E.append((rng.uniform(-10, 10), rng.uniform(-10, 10)))
        rects = []
        for _ in range(n):
            x1, x2 = sorted((rng.uniform(-10, 10), rng.uniform(-10, 10)))
            y1, y2 = sorted((rng.uniform(-10, 10), rng.uniform(-10, 10)))
            if rng.random() < 0.2:
                x2 = x1  # degenerate side
            rects.append((x1, y1, x2, y2))
        MB.append(rects)
        PTS.append(
            [(rng.uniform(-10, 10), rng.uniform(-10, 10)) for _ in range(n)]
        )
    # Exact-touch configurations (corner query, coincident pair).
    Q[0] = (MB[0][0][0], MB[0][0][1])
    P[1] = E[1]
    Qa, Pa, Ea = np.array(Q), np.array(P), np.array(E)
    Ma, Pt = np.array(MB), np.array(PTS)

    lo_m, gu_m = kernels.point_bounds_multi(Qa, Ma)
    md_m = kernels.mindist_multi(Qa, Ma)
    md1_m = kernels.mindist_multi(Qa, Ma[:, 0, :])
    tl_m, tu_m = kernels.trans_bounds_multi(Pa, Ma, Ea)
    pd_m = kernels.point_dists_multi(Qa, Pt)
    td_m = kernels.trans_dists_multi(Pa, Pt, Ea)
    deflate = 1.0 - 1e-9
    wp_m, ep_m = kernels.point_weak_bounds_multi(Qa, Ma, deflate)
    wt_m, et_m, _ = kernels.trans_weak_bounds_multi(Pa, Ma, Ea, deflate)
    pr_m = kernels.point_dists_raw(Qa, Pt)
    tr_m = kernels.trans_dists_raw(Pa, Pt, Ea)

    for i in range(k):
        q, p, e = Point(*Q[i]), Point(*P[i]), Point(*E[i])
        lo, gu = kernels.point_bounds(q, Ma[i])
        assert (lo == lo_m[i]).all() and (gu == gu_m[i]).all()
        assert (kernels.mindist(q, Ma[i]) == md_m[i]).all()
        assert md1_m[i] == kernels.mindist(q, Ma[i, 0:1])[0]
        tl, tu = kernels.trans_bounds(p, Ma[i], e)
        assert (tl == tl_m[i]).all() and (tu == tu_m[i]).all()
        assert (kernels.point_dists(q, Pt[i]) == pd_m[i]).all()
        assert (kernels.trans_dists(p, Pt[i], e) == td_m[i]).all()
        # Certified estimate lanes: deflated weak rows strictly
        # under-estimate the exact bounds; raw estimates sit within a
        # few ulp of the exact values (gate-only, never stored).
        assert (wp_m[i] <= kernels.mindist(q, Ma[i])).all()
        assert (wt_m[i] <= tl).all()
        assert (ep_m[i] <= gu * (1 + 1e-12)).all()
        assert (ep_m[i] >= gu * (1 - 1e-12)).all()
        assert (et_m[i] <= tu * (1 + 1e-12)).all()
        assert (et_m[i] >= tu * (1 - 1e-12)).all()
        assert (abs(pr_m[i] - pd_m[i]) <= 1e-12 * (1 + pd_m[i])).all()
        assert (abs(tr_m[i] - td_m[i]) <= 1e-12 * (1 + td_m[i])).all()


def test_paired_group_requires_two_members():
    with pytest.raises(ValueError):
        SearchGroup([_Scripted([1.0])], paired=True)
    with pytest.raises(ValueError):
        SearchGroup(
            [_Scripted([1.0]), _Scripted([2.0]), _Scripted([3.0])],
            paired=True,
        )


# ----------------------------------------------------------------------
# SearchGroup scheduling semantics
# ----------------------------------------------------------------------
class _Scripted:
    """A steppable with scripted event times, recording its step count."""

    def __init__(self, times):
        self.times = list(times)
        self.steps = 0

    def finished(self):
        return not self.times

    def next_event_time(self):
        return self.times[0] if self.times else math.inf

    def step(self):
        self.times.pop(0)
        self.steps += 1


def test_search_group_due_matches_run_all_order():
    a = _Scripted([1.0, 4.0, 5.0])
    b = _Scripted([2.0, 3.0, 5.0])
    group = SearchGroup([a, b], paired=True)
    order = []
    while not group.finished():
        s = group.due()
        order.append("a" if s is a else "b")
        s.step()
        group.pending = [x for x in group.searches if not x.finished()]
    # run_all's argmin with ties to the earlier member: 1,2,3,4,(5,5)->a,b
    assert order == ["a", "b", "b", "a", "a", "b"]


def test_search_group_pending_excludes_born_finished():
    done = _Scripted([])
    live = _Scripted([1.0])
    group = SearchGroup([done, live])
    assert group.pending == [live]
    assert not group.finished()


def test_executor_drives_unknown_steppables_generically():
    s = _Scripted([1.0, 2.0, 3.0])
    executor = SharedScanExecutor()
    executor.add(SearchGroup([s]))
    executor.run()
    assert s.steps == 3 and s.finished()


# ----------------------------------------------------------------------
# Pool chunking (BatchRunner satellite fix)
# ----------------------------------------------------------------------
def test_pool_chunk_count_tracks_workload_and_workers():
    assert pool_chunk_count(1000, 4) == 16  # ~n/(4*workers) per chunk
    assert pool_chunk_count(3, 4) == 3  # never more chunks than queries
    assert pool_chunk_count(8, 2) == 8
    assert pool_chunk_count(100, 1) == 4
    assert pool_chunk_count(0, 4) == 1
    assert pool_chunk_count(5, 0) == 1


def test_batch_runner_pool_still_bit_identical(env64):
    workload = QueryWorkload(9, seed=12)
    runner = BatchRunner(env64, workload)
    assert runner.run_algorithm(DoubleNN(), workers=2) == runner.run_algorithm(
        DoubleNN(), workers=0
    )


# ----------------------------------------------------------------------
# Frontier micro-fix: _eval_pending skip-guard
# ----------------------------------------------------------------------
def test_eval_pending_guard_skips_fully_stamped_queues(env64):
    from repro.broadcast import BroadcastChannel, ChannelTuner
    from repro.client.frontier import ArrivalFrontier

    tuner = ChannelTuner(BroadcastChannel(env64.s_program))
    front = ArrivalFrontier(tuner)
    root = env64.s_tree.root
    nodes = list(root.children)
    calls = []

    def evaluator(mbrs):
        calls.append(mbrs.shape[0])
        return kernels.mindist(Point(0.0, 0.0), mbrs)

    front.lower_evaluator = evaluator
    # Push with records from an older epoch: the first pop under epoch 1
    # batch-evaluates every stale entry, later pops reuse the stamps.
    front.push_many(nodes, [0.0] * len(nodes), epoch=0)
    n = len(nodes)
    got = front.pop(epoch=1)
    assert got[1] is not None
    assert calls == [n]
    for _ in range(n - 1):
        node, lb, weak, _ = front.pop_with_arrival(1)
        assert lb is not None and not weak
    assert calls == [n]  # guard: no further scans, all records were valid

    # A fresh stale push re-arms the scan exactly once.
    front.push_many(nodes, [0.0] * len(nodes), epoch=0)
    front.pop(epoch=1)
    assert len(calls) == 2


def test_peek_page_matches_next_pop(env64):
    """The "next page needed" hook names exactly the page the pop serves."""
    from repro.broadcast import BroadcastChannel, ChannelTuner
    from repro.client.frontier import ArrivalFrontier

    tuner = ChannelTuner(BroadcastChannel(env64.s_program, phase=7.0))
    front = ArrivalFrontier(tuner)
    nodes = list(env64.s_tree.root.children)
    front.push_many(nodes)
    tuner.advance_to(123.0)
    while not front.finished():
        page = front.peek_page()
        node, _, _, arrival = front.pop_with_arrival()
        assert node.page_id == page
        assert arrival == tuner.peek_index_arrival(page)
        tuner.advance_to(arrival + 1.0)
    assert front.peek_page() is None


def test_pop_until_prunes_and_respects_limit(env64):
    from repro.broadcast import BroadcastChannel, ChannelTuner
    from repro.client.frontier import ArrivalFrontier

    tuner = ChannelTuner(BroadcastChannel(env64.s_program))
    front = ArrivalFrontier(tuner)
    nodes = list(env64.s_tree.root.children)
    # Bounds above the upper bound are consumed silently; the survivor
    # (lb <= ub) is returned with its arrival.
    lbs = [10.0] * (len(nodes) - 1) + [1.0]
    front.push_many(nodes, lbs, epoch=0)
    res = front.pop_until(5.0, 0)
    assert res is not None
    node, lb, weak, arrival = res
    assert lb == 1.0 and not weak
    assert node is nodes[-1]
    assert front.finished()  # all pruned entries were consumed
    # With an arrival limit below every queued arrival, nothing pops.
    front.push_many(nodes, lbs, epoch=0)
    assert front.pop_until(5.0, 0, limit=-1.0) is None
    assert len(front) == len(nodes)


# ----------------------------------------------------------------------
# Binned phase A (node store) vs the scalar row-loop oracle
# ----------------------------------------------------------------------
def _store_vs_oracle(env, algo, queries, monkeypatch):
    """Run the workload on both phase-A paths; return (store, oracle)."""
    monkeypatch.delenv("REPRO_NO_NODE_STORE", raising=False)
    with kernels.use_kernels(True):
        store = execute_tnn_batch(env, algo, queries)
    monkeypatch.setenv("REPRO_NO_NODE_STORE", "1")
    try:
        with kernels.use_kernels(True):
            oracle = execute_tnn_batch(env, algo, queries)
    finally:
        monkeypatch.delenv("REPRO_NO_NODE_STORE", raising=False)
    return store, oracle


@pytest.mark.parametrize("loss_kwargs", [
    {"name": "iid", "rate": 0.25, "seed": 11},
    {"name": "ge", "bad_rate": 0.6, "p_good_bad": 0.1, "seed": 5},
])
@pytest.mark.parametrize("algo_cls", [DoubleNN, HybridNN])
def test_store_oracle_identity_under_loss(algo_cls, loss_kwargs, monkeypatch):
    """Lossy channels: retry rows re-book bit-identically on both paths.

    Serve rows whose download fails walk the tuner retry loop; the store
    path must re-sync the arena clocks past the retries exactly like the
    scalar row loop (and like the per-query runs, which the loss-model
    determinism ties to the same retry sequence).
    """
    from repro.broadcast import make_fault_model

    kwargs = dict(loss_kwargs)
    loss = make_fault_model(kwargs.pop("name"), **kwargs)
    env = TNNEnvironment.build(
        sized_uniform(1500, seed=21),
        sized_uniform(1500, seed=22),
        params=SystemParameters(page_capacity=64),
        loss=loss,
    )
    queries = _random_queries(env, 30, seed=23)
    store, oracle = _store_vs_oracle(env, algo_cls(), queries, monkeypatch)
    assert store == oracle


@pytest.mark.parametrize("lossy", [False, True])
def test_store_oracle_identity_forced_scalar_tuners(lossy, monkeypatch):
    """REPRO_SCALAR_TUNERS=1: the per-row download booking stays exact.

    Without a ledger the store path books every kept row's clock, page
    counter and reception log scalar, row by row — the same statements
    the oracle loop runs, in the same kept order (and through the tuner
    retry loop when the channel is lossy).
    """
    from repro.broadcast import PageLossModel

    env = TNNEnvironment.build(
        sized_uniform(1500, seed=24),
        sized_uniform(1500, seed=25),
        params=SystemParameters(page_capacity=64),
        loss=PageLossModel(rate=0.25, seed=11) if lossy else None,
    )
    queries = _random_queries(env, 30, seed=26)
    monkeypatch.setenv("REPRO_SCALAR_TUNERS", "1")
    store, oracle = _store_vs_oracle(env, HybridNN(), queries, monkeypatch)
    assert store == oracle
