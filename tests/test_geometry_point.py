"""Unit and property tests for repro.geometry.point."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, distance, transitive_distance

coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


def test_distance_simple():
    assert distance(Point(0, 0), Point(3, 4)) == 5.0


def test_distance_zero():
    p = Point(1.5, -2.5)
    assert distance(p, p) == 0.0


def test_distance_method_matches_function():
    a, b = Point(1, 2), Point(4, 6)
    assert a.distance_to(b) == distance(a, b)


def test_point_unpacking():
    x, y = Point(3, 7)
    assert (x, y) == (3, 7)


def test_point_is_hashable():
    assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2


def test_translated():
    assert Point(1, 1).translated(2, -3) == Point(3, -2)


def test_midpoint():
    assert Point(0, 0).midpoint(Point(4, 6)) == Point(2, 3)


def test_transitive_distance_simple():
    # p -> s -> r along a straight line.
    assert transitive_distance(Point(0, 0), Point(1, 0), Point(3, 0)) == 3.0


def test_transitive_distance_detour_is_longer():
    p, r = Point(0, 0), Point(2, 0)
    direct = distance(p, r)
    assert transitive_distance(p, Point(1, 5), r) > direct


@given(points, points)
def test_distance_symmetry(a, b):
    assert distance(a, b) == distance(b, a)


@given(points, points)
def test_distance_nonnegative(a, b):
    assert distance(a, b) >= 0.0


@given(points, points, points)
def test_triangle_inequality(a, b, c):
    assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-6


@given(points, points, points)
def test_transitive_distance_lower_bounded_by_direct(p, s, r):
    assert transitive_distance(p, s, r) >= distance(p, r) - 1e-6


@given(points, points)
def test_midpoint_is_equidistant(a, b):
    m = a.midpoint(b)
    assert math.isclose(distance(a, m), distance(m, b), rel_tol=1e-9, abs_tol=1e-6)
