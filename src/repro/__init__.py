"""repro — Transitive Nearest-Neighbor queries over multi-channel wireless
broadcast.

A full reproduction of Zhang, Lee, Mitra and Zheng, *Processing Transitive
Nearest-Neighbor Queries in Multi-Channel Access Environments* (EDBT 2008):
packed R-tree air indexes, the (1, m) broadcast medium, the client-side
query processors (Window-Based, Approximate, Double-NN, Hybrid-NN) and the
ANN energy optimisation, plus the experiment harness that regenerates every
figure and table of the paper's evaluation.

Bulk workloads run through :mod:`repro.engine`: a :class:`QueryEngine`
facade over NN / kNN / range / TNN queries and a :class:`BatchRunner` that
executes whole seeded workloads — in-process or fanned out over a process
pool with bit-identical results — on top of cached broadcast arrival
tables and vectorised aggregation.

Quickstart::

    from repro import QueryEngine, TNNEnvironment, Point
    from repro.datasets import uniform

    env = TNNEnvironment.build(uniform(2000, seed=1), uniform(2000, seed=2))
    result = QueryEngine(env).tnn(Point(19500, 19500))
    print(result.pair, result.distance, result.access_time, result.tune_in_time)
"""

from repro.geometry import Point, Rect, Circle, Ellipse
from repro.broadcast import SystemParameters
from repro.core import (
    AnnOptimization,
    ApproximateTNN,
    BruteForceTNN,
    DoubleNN,
    HybridNN,
    TNNAlgorithm,
    TNNEnvironment,
    TNNResult,
    WindowBasedTNN,
)
from repro.engine import BatchRunner, QueryEngine, QueryWorkload

__version__ = "1.0.0"

__all__ = [
    "Point",
    "Rect",
    "Circle",
    "Ellipse",
    "SystemParameters",
    "TNNEnvironment",
    "TNNResult",
    "TNNAlgorithm",
    "AnnOptimization",
    "BatchRunner",
    "QueryEngine",
    "QueryWorkload",
    "BruteForceTNN",
    "WindowBasedTNN",
    "ApproximateTNN",
    "DoubleNN",
    "HybridNN",
    "__version__",
]
