"""Client-side broadcast query processing engine.

Implements the building blocks shared by every TNN algorithm:

* :class:`BroadcastNNSearch` — a *steppable* nearest-neighbor search over an
  air-indexed R-tree.  The candidate queue is ordered by **arrival time**
  (not MINDIST), because backtracking on a broadcast medium means waiting a
  whole index replica (Section 2.2 / Figure 3).  Children are pushed without
  pruning and filtered at pop time — the paper's *delayed pruning*
  adjustment (Section 4.2.4) that makes Hybrid-NN's mid-flight re-steering
  sound.  The search supports the two Hybrid-NN mutations: ``retarget``
  (Case 2: replace the query point) and ``switch_to_transitive`` (Case 3:
  hunt for the minimum transitive distance with MinTransDist /
  MinMaxTransDist).
* :class:`BroadcastRangeSearch` — the filter-phase circle query.
* pruning policies — exact search and the ANN approximation of Section 5
  (Heuristics 1 and 2, static and dynamic alpha).
* :func:`run_all` — a cooperative scheduler that interleaves steppable
  searches on multiple channels in simulated-time order via a
  lazy-invalidation event heap (O(log channels) per page arrival);
  :func:`run_all_scan` is the brute-force reference.
* :class:`ArrivalFrontier` — the struct-of-arrays candidate queue behind
  every steppable search on the kernel path: arrivals refreshed per
  arrival tick and lower bounds evaluated in queue-wide kernel batches,
  so even 64-byte-page / M = 3 geometries clear the dispatch floor.
"""

from repro.client.policies import (
    AnnPolicy,
    ExactPolicy,
    PruneContext,
    dynamic_alpha,
    fixed_alpha,
)
from repro.client.frontier import ArrivalFrontier
from repro.client.search import BroadcastNNSearch, SearchMode
from repro.client.range_query import BroadcastRangeSearch
from repro.client.knn import BroadcastKNNSearch
from repro.client.window import BroadcastWindowSearch
from repro.client.scheduler import (
    SearchGroup,
    run_all,
    run_all_scan,
    run_sequential,
)

__all__ = [
    "ArrivalFrontier",
    "BroadcastNNSearch",
    "BroadcastKNNSearch",
    "BroadcastRangeSearch",
    "BroadcastWindowSearch",
    "SearchMode",
    "ExactPolicy",
    "AnnPolicy",
    "PruneContext",
    "fixed_alpha",
    "dynamic_alpha",
    "SearchGroup",
    "run_all",
    "run_all_scan",
    "run_sequential",
]
