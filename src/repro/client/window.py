"""Steppable broadcast window (rectangle) query.

Section 2.2 of the paper uses window queries as the canonical example of
R-tree search; the filter phase's circle query is a special case.  This
class completes the client API with the rectangular variant.

The window never moves, so unlike the NN searches there is nothing delayed
pruning could save: children are filtered against the window **at push
time** (one vectorised intersect mask per expanded node on the kernel
path), which keeps the arrival queue to exactly the nodes that will be
downloaded.  Leaf containment runs as one comparison mask over the leaf's
``points_array()``.  Queue plumbing — head-state caching, batched arrival
refresh and ``max_queue_size`` accounting — comes from
:class:`ArrivalQueueMixin`, shared with every other steppable search.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.broadcast.tuner import ChannelTuner
from repro.client.arrival_queue import ArrivalQueueMixin
from repro.geometry import Point, Rect, kernels
from repro.rtree.node import RTreeNode
from repro.rtree.tree import RTree


class BroadcastWindowSearch(ArrivalQueueMixin):
    """Collects every indexed point inside a closed rectangle."""

    def __init__(
        self,
        tree: RTree,
        tuner: ChannelTuner,
        window: Rect,
        start_time: float = 0.0,
    ) -> None:
        self.tree = tree
        self.tuner = tuner
        self.window = window
        self.results: List[Point] = []
        self._init_queue()
        tuner.advance_to(start_time)
        if window.intersects_rect(tree.root.mbr):
            self._push(tree.root)

    def step(self) -> None:
        """Download and absorb one queued (intersecting) node."""
        node = self._pop_head()
        self.tuner.download_index_page(node.page_id)
        if node.is_leaf:
            self._absorb_leaf(node)
        else:
            self._push_intersecting(node)

    def _absorb_leaf(self, node: RTreeNode) -> None:
        w = self.window
        if kernels.enabled() and node.fanout >= kernels.min_batch_leaf():
            pts = node.points_array()
            self._absorb_leaf_inside(
                node,
                (w.xmin <= pts[:, 0])
                & (pts[:, 0] <= w.xmax)
                & (w.ymin <= pts[:, 1])
                & (pts[:, 1] <= w.ymax),
            )
            return
        self.results.extend(p for p in node.points if w.contains_point(p))

    def _absorb_leaf_inside(self, node: RTreeNode, inside: np.ndarray) -> None:
        """Collect the points of a precomputed containment mask row.

        The elementwise closed comparisons match ``Rect.contains_point``
        exactly.  (The shared-scan executor resolves drained window
        searches wholesale in its flat leaf pass; this is the per-leaf
        mask consumer behind :meth:`_absorb_leaf`.)
        """
        self.results.extend(
            node.points[i] for i in np.flatnonzero(inside).tolist()
        )

    def _push_intersecting(self, node: RTreeNode) -> None:
        w = self.window
        if kernels.enabled() and node.fanout >= kernels.min_batch():
            mbrs = node.child_mbr_array()
            self._push_hit(
                node,
                ~(
                    (mbrs[:, 0] > w.xmax)
                    | (mbrs[:, 2] < w.xmin)
                    | (mbrs[:, 1] > w.ymax)
                    | (mbrs[:, 3] < w.ymin)
                ),
            )
            return
        for child in node.children:
            if w.intersects_rect(child.mbr):
                self._push(child)

    def _push_hit(self, node: RTreeNode, hit: np.ndarray) -> None:
        """Queue the children selected by a precomputed intersect mask row."""
        for i in np.flatnonzero(hit).tolist():
            self._push(node.children[i])

    def run_to_completion(self) -> List[Point]:
        while not self.finished():
            self.step()
        return self.results
