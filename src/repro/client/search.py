"""Steppable broadcast nearest-neighbor search.

The search engine behind the estimate phase of every TNN algorithm.  Its
queue is a priority queue keyed by *arrival time* on the broadcast channel,
so pages are consumed in the order they fly by and backtracking never
happens (Section 2.2).  Children of a visited node are pushed **without**
pruning; all pruning happens when a node is popped (delayed pruning,
Section 4.2.4), which is what allows Hybrid-NN to change the query point or
the distance metric mid-search without having discarded the subtree that
the *new* query needs.

Two modes exist:

* ``SearchMode.POINT`` — classic NN to a query point ``q``; prunes with
  MinDist, tightens the upper bound with MinMaxDist (internal nodes) and
  real point distances (leaves).
* ``SearchMode.TRANSITIVE`` — Hybrid-NN Case 3; finds the ``s`` minimising
  ``dis(p,s)+dis(s,r)``, pruning with MinTransDist and tightening with
  MinMaxTransDist (Algorithm 2 of the paper).
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.broadcast.tuner import ChannelTuner
from repro.client.arrival_queue import ArrivalQueueMixin
from repro.client.policies import ExactPolicy, PruneContext, PruningPolicy
from repro.geometry import Point, distance, min_max_trans_dist, min_trans_dist
from repro.geometry import kernels
from repro.rtree.node import RTreeNode
from repro.rtree.tree import RTree


class SearchMode(enum.Enum):
    """What the search minimises."""

    POINT = "point"
    TRANSITIVE = "transitive"


class BroadcastNNSearch(ArrivalQueueMixin):
    """One NN search over one broadcast channel, advanced step by step."""

    def __init__(
        self,
        tree: RTree,
        tuner: ChannelTuner,
        query: Point,
        policy: PruningPolicy | None = None,
        start_time: float = 0.0,
    ) -> None:
        self.tree = tree
        self.tuner = tuner
        self.policy = policy or ExactPolicy()
        self.mode = SearchMode.POINT
        self.query: Optional[Point] = query
        self.start: Optional[Point] = None
        self.end: Optional[Point] = None

        self.upper_bound = math.inf
        self.best_point: Optional[Point] = None
        self.best_dist = math.inf
        #: page_id of the node currently witnessing the upper bound, if the
        #: bound comes from a MinMaxDist-style guarantee rather than a point.
        self._witness_page: Optional[int] = None
        #: Lower bounds precomputed in batch when a node's parent was
        #: expanded, keyed by page_id and stamped with the metric epoch —
        #: Hybrid-NN mode switches invalidate them wholesale by bumping the
        #: epoch instead of touching every entry.
        self._lb_cache: Dict[int, Tuple[int, float]] = {}
        self._metric_epoch = 0

        self._init_queue()
        tuner.advance_to(start_time)
        self._push(tree.root)

    # ------------------------------------------------------------------
    # Distance metrics for the current mode
    # ------------------------------------------------------------------
    def _lower_bound(self, node: RTreeNode) -> float:
        cached = self._lb_cache.get(node.page_id)
        if cached is not None and cached[0] == self._metric_epoch:
            return cached[1]
        if self.mode is SearchMode.POINT:
            return node.mbr.mindist(self.query)
        return min_trans_dist(self.start, node.mbr, self.end)

    def _guaranteed_bound(self, node: RTreeNode) -> float:
        if self.mode is SearchMode.POINT:
            return node.mbr.minmaxdist(self.query)
        return min_max_trans_dist(self.start, node.mbr, self.end)

    def _point_dist(self, pt: Point) -> float:
        if self.mode is SearchMode.POINT:
            return distance(self.query, pt)
        return distance(self.start, pt) + distance(pt, self.end)

    def _batch_threshold(self, leaf: bool) -> int:
        """Smallest batch worth a kernel call under the current metric.

        Point-mode kernels compete with one C-level ``math.hypot`` per
        element; the transitive kernels amortise Lemma 1-3's ~25 scalar
        side tests per MBR, so their thresholds differ per mode.
        """
        if self.mode is SearchMode.POINT:
            return kernels.min_batch_point()
        return kernels.min_batch_leaf() if leaf else kernels.min_batch()

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process one queued node (prune it or download and expand it)."""
        node = self._pop_head()

        if self._lower_bound(node) > self.upper_bound:
            return  # exact pruning: provably cannot improve the answer
        if self.policy.should_prune(self._prune_context(node)):
            return  # ANN pruning: unlikely to improve the answer

        self.tuner.download_index_page(node.page_id)
        if node.is_leaf:
            self._absorb_leaf(node)
        else:
            self._absorb_internal(node)

    def run_to_completion(self) -> None:
        while not self.finished():
            self.step()

    def _prune_context(self, node: RTreeNode) -> PruneContext:
        return PruneContext(
            mbr=node.mbr,
            depth=self.tree.depth_of(node),
            tree_height=self.tree.height,
            upper_bound=self.upper_bound,
            query=self.query if self.mode is SearchMode.POINT else None,
            start=self.start,
            end=self.end,
            is_bound_witness=(node.page_id == self._witness_page),
            point_count=node.point_count,
        )

    def _absorb_leaf(self, node: RTreeNode) -> None:
        if kernels.enabled() and node.fanout >= self._batch_threshold(leaf=True):
            pts = node.points_array()
            if self.mode is SearchMode.POINT:
                dists = kernels.point_dists(self.query, pts)
            else:
                dists = kernels.trans_dists(self.start, pts, self.end)
            i = int(np.argmin(dists))
            d = float(dists[i])
            if d < self.best_dist:
                self.best_dist = d
                self.best_point = node.points[i]
        else:
            for pt in node.points:
                d = self._point_dist(pt)
                if d < self.best_dist:
                    self.best_dist = d
                    self.best_point = pt
        if self.best_dist < self.upper_bound:
            self.upper_bound = self.best_dist
            self._witness_page = None  # a concrete point witnesses the bound

    def _absorb_internal(self, node: RTreeNode) -> None:
        was_witness = node.page_id == self._witness_page
        best_child = None
        best_guarantee = math.inf
        if kernels.enabled() and node.fanout >= self._batch_threshold(leaf=False):
            # One kernel pass over the whole fan-out: push every child with
            # its precomputed (cached) lower bound, then inherit the best
            # backed MinMaxDist-style guarantee via a masked argmin.
            mbrs = node.child_mbr_array()
            if self.mode is SearchMode.POINT:
                lower, guaranteed = kernels.point_bounds(self.query, mbrs)
            else:
                lower, guaranteed = kernels.trans_bounds(
                    self.start, mbrs, self.end
                )
            epoch = self._metric_epoch
            for child, lb in zip(node.children, lower.tolist()):
                self._push(child)  # delayed pruning: push everything
                self._lb_cache[child.page_id] = (epoch, lb)
            backed = np.where(
                node.child_count_array() > 0, guaranteed, math.inf
            )
            i = int(np.argmin(backed))
            if math.isfinite(backed[i]):
                best_guarantee = float(backed[i])
                best_child = node.children[i]
        else:
            for child in node.children:
                self._push(child)  # delayed pruning: push everything
                if child.point_count <= 0:
                    # Empty subtree (degenerate packing): its MinMaxDist-style
                    # guarantee promises a point that does not exist — taking
                    # it would corrupt the upper bound and exact-prune the
                    # subtrees holding the real answer.
                    continue
                z = self._guaranteed_bound(child)
                if z < best_guarantee:
                    best_guarantee = z
                    best_child = child
        if best_child is None:
            # Every child subtree is empty (or the node is childless): no
            # guarantee to inherit.  If this node witnessed the bound, its
            # guarantee was void — rebuild from the best concrete point
            # and the surviving queue instead of crashing on the hand-off.
            if was_witness:
                self.upper_bound = self.best_dist
                self._witness_page = None
                self._rescan_queue_bounds()
            return
        if best_guarantee < self.upper_bound:
            self.upper_bound = best_guarantee
            self._witness_page = best_child.page_id
        elif was_witness and self._witness_page == node.page_id:
            # The downloaded node carried the bound's guarantee; hand the
            # witness role to the child that inherits it so ANN pruning can
            # never orphan the upper bound.
            self._witness_page = best_child.page_id

    # ------------------------------------------------------------------
    # Hybrid-NN mutations
    # ------------------------------------------------------------------
    def retarget(self, new_query: Point) -> None:
        """Case 2: replace the query point, keeping the remaining queue.

        The old best point (found w.r.t. the previous query) seeds the new
        upper bound after re-evaluation, and every queued MBR's MinMaxDist
        is scanned for an even tighter initial bound — the paper's "initial
        upper bound update".
        """
        if self.mode is not SearchMode.POINT:
            raise RuntimeError("retarget() only applies to point mode")
        self._metric_epoch += 1  # cached lower bounds no longer apply
        self.query = new_query
        if self.best_point is not None:
            self.best_dist = distance(new_query, self.best_point)
        else:
            self.best_dist = math.inf
        self.upper_bound = self.best_dist
        self._witness_page = None
        self._rescan_queue_bounds()

    def switch_to_transitive(self, start: Point, end: Point) -> None:
        """Case 3: minimise ``dis(start, s) + dis(s, end)`` from here on."""
        if self.mode is SearchMode.TRANSITIVE:
            raise RuntimeError("search is already in transitive mode")
        self._metric_epoch += 1  # cached lower bounds no longer apply
        self.mode = SearchMode.TRANSITIVE
        self.start = start
        self.end = end
        self.query = None
        if self.best_point is not None:
            self.best_dist = distance(start, self.best_point) + distance(
                self.best_point, end
            )
        else:
            self.best_dist = math.inf
        self.upper_bound = self.best_dist
        self._witness_page = None
        self._rescan_queue_bounds()

    def _rescan_queue_bounds(self) -> None:
        """Initial upper-bound update over every queued MBR (Section 4.2.3)."""
        if kernels.enabled() and len(self._queue) >= self._batch_threshold(
            leaf=False
        ):
            backed = [n for _, _, n in self._queue if n.point_count > 0]
            if not backed:
                return
            mbrs = kernels.as_mbr_array([n.mbr for n in backed])
            if self.mode is SearchMode.POINT:
                lower, bounds = kernels.point_bounds(self.query, mbrs)
            else:
                lower, bounds = kernels.trans_bounds(self.start, mbrs, self.end)
            # Refresh the pushed lower bounds under the new metric too: the
            # rescan already touches every queued MBR, so the pop-time
            # delayed-pruning test stays a cache hit after a mode switch.
            epoch = self._metric_epoch
            for n, lb in zip(backed, lower.tolist()):
                self._lb_cache[n.page_id] = (epoch, lb)
            i = int(np.argmin(bounds))
            if float(bounds[i]) < self.upper_bound:
                self.upper_bound = float(bounds[i])
                self._witness_page = backed[i].page_id
            return
        for _, _, node in self._queue:
            if node.point_count <= 0:
                continue  # empty subtree: no point backs its guarantee
            z = self._guaranteed_bound(node)
            if z < self.upper_bound:
                self.upper_bound = z
                self._witness_page = node.page_id

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self) -> Tuple[Point, float]:
        """The best point found and its distance under the current mode."""
        if self.best_point is None:
            raise RuntimeError("search finished without finding any point")
        return self.best_point, self.best_dist
