"""Steppable broadcast nearest-neighbor search.

The search engine behind the estimate phase of every TNN algorithm.  Its
queue is a priority queue keyed by *arrival time* on the broadcast channel,
so pages are consumed in the order they fly by and backtracking never
happens (Section 2.2).  Children of a visited node are pushed **without**
pruning; all pruning happens when a node is popped (delayed pruning,
Section 4.2.4), which is what allows Hybrid-NN to change the query point or
the distance metric mid-search without having discarded the subtree that
the *new* query needs.

Two modes exist:

* ``SearchMode.POINT`` — classic NN to a query point ``q``; prunes with
  MinDist, tightens the upper bound with MinMaxDist (internal nodes) and
  real point distances (leaves).
* ``SearchMode.TRANSITIVE`` — Hybrid-NN Case 3; finds the ``s`` minimising
  ``dis(p,s)+dis(s,r)``, pruning with MinTransDist and tightening with
  MinMaxTransDist (Algorithm 2 of the paper).

On the kernel path the queue is the struct-of-arrays arrival frontier
(:mod:`repro.client.frontier`): bounds are pre-cached next to the queue
entries — fused whole-fan-out kernel calls above the dispatch floor,
certified cheap estimates below it (see :meth:`_weak_lower` /
:meth:`_certified_keep`: deflated under-estimates prove prunes, inflated
over-estimates prove keeps, and only the rounding-margin band between them
ever pays for the exact metric) — and Hybrid-NN mode switches re-evaluate
the whole queue in one kernel batch (:meth:`_rescan_queue_bounds`).  Every
decision is certified identical to the scalar oracle
(``kernels.use_kernels(False)``), which remains the seed implementation.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.broadcast.tuner import ChannelTuner
from repro.client.arrival_queue import ArrivalQueueMixin
from repro.client.policies import ExactPolicy, PruneContext, PruningPolicy
from repro.geometry import Point, distance, min_max_trans_dist, min_trans_dist
from repro.geometry import kernels
from repro.rtree.node import RTreeNode
from repro.rtree.tree import RTree


class SearchMode(enum.Enum):
    """What the search minimises."""

    POINT = "point"
    TRANSITIVE = "transitive"


#: Certification margins for the cheap transitive bound estimates.  The
#: weak/center estimates and the scalar Lemma 1 evaluation each carry at
#: most a few ulp (~1e-15 relative) of rounding slack; a 1e-9 margin buries
#: that by six orders of magnitude, so a deflated under-estimate or an
#: inflated over-estimate that decides the prune test decides it exactly
#: like the scalar oracle.  Entries inside the margin band fall back to the
#: exact metric.
_CERT_DEFLATE = 1.0 - 1e-9
_CERT_INFLATE = 1.0 + 1e-9


class BroadcastNNSearch(ArrivalQueueMixin):
    """One NN search over one broadcast channel, advanced step by step."""

    def __init__(
        self,
        tree: RTree,
        tuner: ChannelTuner,
        query: Point,
        policy: PruningPolicy | None = None,
        start_time: float = 0.0,
    ) -> None:
        self.tree = tree
        self.tuner = tuner
        self.policy = policy or ExactPolicy()
        #: Trivial policies never prune, so the hot loop skips building
        #: their PruneContext entirely.
        self._policy_trivial = getattr(self.policy, "trivial", False)
        self.mode = SearchMode.POINT
        #: ``mode`` as the metric bit of the shared-scan executor's packed
        #: lane keys, maintained by the two mode writes (here and
        #: :meth:`switch_to_transitive`) so the per-survivor binning reads
        #: an int instead of comparing enums.
        self._point_bit = 1
        self.query: Optional[Point] = query
        self.start: Optional[Point] = None
        self.end: Optional[Point] = None

        self.upper_bound = math.inf
        self.best_point: Optional[Point] = None
        self.best_dist = math.inf
        #: page_id of the node currently witnessing the upper bound, if the
        #: bound comes from a MinMaxDist-style guarantee rather than a point.
        self._witness_page: Optional[int] = None
        #: Lower bounds precomputed in batch when a node's parent was
        #: expanded, keyed by page_id and stamped with the metric epoch —
        #: Hybrid-NN mode switches invalidate them wholesale by bumping the
        #: epoch instead of touching every entry.
        self._lb_cache: Dict[int, Tuple[int, float]] = {}
        self._metric_epoch = 0

        self._init_queue()
        tuner.advance_to(start_time)
        self._push(tree.root)

    # ------------------------------------------------------------------
    # Distance metrics for the current mode
    # ------------------------------------------------------------------
    def _lower_bound(self, node: RTreeNode) -> float:
        cached = self._lb_cache.get(node.page_id)
        if cached is not None and cached[0] == self._metric_epoch:
            return cached[1]
        if self.mode is SearchMode.POINT:
            return node.mbr.mindist(self.query)
        return min_trans_dist(self.start, node.mbr, self.end)

    def _guaranteed_bound(self, node: RTreeNode) -> float:
        if self.mode is SearchMode.POINT:
            return node.mbr.minmaxdist(self.query)
        return min_max_trans_dist(self.start, node.mbr, self.end)

    def _point_dist(self, pt: Point) -> float:
        if self.mode is SearchMode.POINT:
            return distance(self.query, pt)
        return distance(self.start, pt) + distance(pt, self.end)

    def _batch_lower_eval(self, mbrs: np.ndarray) -> np.ndarray:
        """Frontier hook: transitive lower bounds for a whole MBR batch.

        Installed only in transitive mode: Lemma 1 costs ~25 scalar side
        tests per MBR, so one queue-wide kernel call wins from two lanes
        up.  The point metric stays scalar at pop time — it is a single
        C-level ``math.hypot``, which the exact vectorised hypot cannot
        beat below ~100 lanes regardless of the batching axis.
        """
        return kernels.min_trans_dist(self.start, mbrs, self.end)

    def _weak_lower(self, mbr) -> float:
        """Certified under-estimate of the transitive Lemma 1 bound.

        ``dis(p,s) + dis(s,r) >= MinDist(p, M) + MinDist(r, M)`` for any
        ``s`` in ``M``; the deflation absorbs the few-ulp rounding slack
        between this estimate and the scalar Lemma 1 value, so
        ``weak > upper_bound`` certifies the exact scalar test would have
        pruned too.  Two hypots instead of Lemma 1's ~25 side tests.
        """
        return (
            mbr.mindist(self.start) + mbr.mindist(self.end)
        ) * _CERT_DEFLATE

    def _corner_minmax_trans(self, mbr) -> float:
        """Lemma 3 via shared corner distances — half the hypot count.

        ``min_max_trans_dist`` is ``min`` over the four CCW sides of
        ``max`` over the side's two endpoints of the corner transitive
        distance; the scalar helper in :mod:`repro.geometry.transitive`
        recomputes each corner for both adjacent sides.  Evaluating the
        four corners once and replaying the same max/min order is
        bit-identical (identical hypot calls, identical sums) at 8 hypots
        instead of 16.  Kept on the frontier path so the scalar oracle
        stays the seed implementation.
        """
        p, r = self.start, self.end
        c0, c1, c2, c3 = mbr.corners()
        t0 = distance(p, c0) + distance(c0, r)
        t1 = distance(p, c1) + distance(c1, r)
        t2 = distance(p, c2) + distance(c2, r)
        t3 = distance(p, c3) + distance(c3, r)
        return min(max(t0, t1), max(t1, t2), max(t2, t3), max(t3, t0))

    def _certified_keep(self, node: RTreeNode) -> bool:
        """Certified over-estimate test: provably *not* prunable.

        Two tiers of upper bounds on Lemma 1, each inflated by the
        rounding margin: the transitive distance through the MBR's center
        (two hypots; the center lies in the MBR) and, failing that, the
        best corner transitive distance (eight hypots; Lemma 1's case-3
        candidate set).  Either one falling at or below ``upper_bound``
        certifies the exact scalar test would have kept the node — no
        Lemma 1 evaluation needed.
        """
        p, r = self.start, self.end
        xmin, ymin, xmax, ymax = node.mbr
        cx = (xmin + xmax) / 2.0
        cy = (ymin + ymax) / 2.0
        u = math.hypot(p.x - cx, p.y - cy) + math.hypot(cx - r.x, cy - r.y)
        bound = self.upper_bound
        if u * _CERT_INFLATE <= bound:
            return True
        t = min(
            math.hypot(p.x - xmin, p.y - ymin)
            + math.hypot(xmin - r.x, ymin - r.y),
            math.hypot(p.x - xmax, p.y - ymin)
            + math.hypot(xmax - r.x, ymin - r.y),
            math.hypot(p.x - xmax, p.y - ymax)
            + math.hypot(xmax - r.x, ymax - r.y),
            math.hypot(p.x - xmin, p.y - ymax)
            + math.hypot(xmin - r.x, ymax - r.y),
        )
        return t * _CERT_INFLATE <= bound

    def _batch_threshold(self, leaf: bool) -> int:
        """Smallest batch worth a kernel call under the current metric.

        Point-mode kernels compete with one C-level ``math.hypot`` per
        element; the transitive kernels amortise Lemma 1-3's ~25 scalar
        side tests per MBR, so their thresholds differ per mode.
        """
        if self.mode is SearchMode.POINT:
            return kernels.min_batch_point()
        return kernels.min_batch_leaf() if leaf else kernels.min_batch()

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process one queued node (prune it or download and expand it)."""
        node, lb, weak = self._pop_head_bound(self._metric_epoch)
        if not self._decide_keep(node, lb, weak):
            return

        self.tuner.download_index_page(node.page_id)
        if node.is_leaf:
            self._absorb_leaf(node)
        else:
            self._absorb_internal(node)

    def _decide_keep(
        self, node: RTreeNode, lb: Optional[float], weak: bool
    ) -> bool:
        """The pop-time pruning decision for one dequeued node.

        Shared verbatim by :meth:`step` and the shared-scan executor's
        phase-A serve loop, so an externally driven search prunes exactly
        like a self-stepping one.
        """
        if lb is None:
            if self._frontier is not None and self.mode is SearchMode.POINT:
                # Frontier bounds live in the frontier lanes, so a miss
                # here never has a dict entry either — go straight to the
                # one-hypot metric.
                lb = node.mbr.mindist(self.query)
            else:
                lb = self._lower_bound(node)
            weak = False

        if lb > self.upper_bound:
            return False  # exact pruning: provably cannot improve the answer
        if weak:
            # The weak bound could not prove the prune; certify the keep or
            # fall back to the exact metric for the borderline entries.
            if self.mode is SearchMode.POINT:
                # Weak point bounds (shared-scan batches): MINDIST is one
                # hypot, so the exact test *is* the cheap resolution.
                if node.mbr.mindist(self.query) > self.upper_bound:
                    return False
            elif not self._certified_keep(node):
                if self._lower_bound(node) > self.upper_bound:
                    return False
        if not self._policy_trivial and self.policy.should_prune(
            self._prune_context(node)
        ):
            return False  # ANN pruning: unlikely to improve the answer
        return True

    def run_to_completion(self) -> None:
        while not self.finished():
            self.step()

    def _prune_context(self, node: RTreeNode) -> PruneContext:
        return PruneContext(
            mbr=node.mbr,
            depth=self.tree.depth_of(node),
            tree_height=self.tree.height,
            upper_bound=self.upper_bound,
            query=self.query if self.mode is SearchMode.POINT else None,
            start=self.start,
            end=self.end,
            is_bound_witness=(node.page_id == self._witness_page),
            point_count=node.point_count,
        )

    def _absorb_leaf(self, node: RTreeNode) -> None:
        if kernels.enabled() and node.fanout >= self._batch_threshold(leaf=True):
            pts = node.points_array()
            if self.mode is SearchMode.POINT:
                dists = kernels.point_dists(self.query, pts)
            else:
                dists = kernels.trans_dists(self.start, pts, self.end)
            i = int(np.argmin(dists))
            d = float(dists[i])
            if d < self.best_dist:
                self.best_dist = d
                self.best_point = node.points[i]
        else:
            for pt in node.points:
                d = self._point_dist(pt)
                if d < self.best_dist:
                    self.best_dist = d
                    self.best_point = pt
        if self.best_dist < self.upper_bound:
            self.upper_bound = self.best_dist
            self._witness_page = None  # a concrete point witnesses the bound

    def _absorb_internal(self, node: RTreeNode) -> None:
        was_witness = node.page_id == self._witness_page
        best_child = None
        best_guarantee = math.inf
        if kernels.enabled() and node.fanout >= self._batch_threshold(leaf=False):
            # One kernel pass over the whole fan-out: push every child with
            # its precomputed (cached) lower bound, then inherit the best
            # backed MinMaxDist-style guarantee via a masked argmin.
            mbrs = node.child_mbr_array()
            if self.mode is SearchMode.POINT:
                lower, guaranteed = kernels.point_bounds(self.query, mbrs)
            else:
                lower, guaranteed = kernels.trans_bounds(
                    self.start, mbrs, self.end
                )
            epoch = self._metric_epoch
            if self._frontier is not None:
                # delayed pruning: push everything, bounds pre-cached
                self._frontier.push_many(
                    node.children, lower, epoch, src=node
                )
            else:
                for child, lb in zip(node.children, lower.tolist()):
                    self._push(child)  # delayed pruning: push everything
                    self._lb_cache[child.page_id] = (epoch, lb)
            backed = np.where(
                node.child_count_array() > 0, guaranteed, math.inf
            )
            i = int(np.argmin(backed))
            if math.isfinite(backed[i]):
                best_guarantee = float(backed[i])
                best_child = node.children[i]
        elif self._frontier is not None:
            # Small fan-out on the frontier: cache a cheap certified lower
            # bound per child next to the queue entry, and let it also skip
            # guarantee evaluations that provably cannot tighten the best
            # (the guarantee always dominates the lower bound:
            # MinMaxDist >= MinDist, MinMaxTransDist >= MinTransDist).
            children = node.children
            epoch = self._metric_epoch
            if self.mode is SearchMode.POINT:
                # The exact one-hypot MinDist doubles as the pop-time
                # bound, so the pop never recomputes it.
                q = self.query
                lbs = [child.mbr.mindist(q) for child in children]
                self._frontier.push_many(children, lbs, epoch, src=node)
                for k, child in enumerate(children):
                    if child.point_count <= 0:
                        continue  # empty subtree: nothing backs a guarantee
                    if lbs[k] * _CERT_DEFLATE >= best_guarantee:
                        continue
                    z = child.mbr.minmaxdist(q)
                    if z < best_guarantee:
                        best_guarantee = z
                        best_child = child
            else:
                # Transitive: the weak two-hypot under-estimate prunes
                # ~99% of pops without touching Lemma 1.
                lbs = [self._weak_lower(child.mbr) for child in children]
                self._frontier.push_many(
                    children, lbs, epoch, weak=True, src=node
                )
                for k, child in enumerate(children):
                    if child.point_count <= 0:
                        continue  # empty subtree: nothing backs a guarantee
                    if lbs[k] >= best_guarantee:
                        continue
                    z = self._corner_minmax_trans(child.mbr)
                    if z < best_guarantee:
                        best_guarantee = z
                        best_child = child
        else:
            for child in node.children:
                self._push(child)  # delayed pruning: push everything
                if child.point_count <= 0:
                    # Empty subtree (degenerate packing): its MinMaxDist-style
                    # guarantee promises a point that does not exist — taking
                    # it would corrupt the upper bound and exact-prune the
                    # subtrees holding the real answer.
                    continue
                z = self._guaranteed_bound(child)
                if z < best_guarantee:
                    best_guarantee = z
                    best_child = child
        if best_child is None:
            # Every child subtree is empty (or the node is childless): no
            # guarantee to inherit.  If this node witnessed the bound, its
            # guarantee was void — rebuild from the best concrete point
            # and the surviving queue instead of crashing on the hand-off.
            if was_witness:
                self.upper_bound = self.best_dist
                self._witness_page = None
                self._rescan_queue_bounds()
            return
        if best_guarantee < self.upper_bound:
            self.upper_bound = best_guarantee
            self._witness_page = best_child.page_id
        elif was_witness and self._witness_page == node.page_id:
            # The downloaded node carried the bound's guarantee; hand the
            # witness role to the child that inherits it so ANN pruning can
            # never orphan the upper bound.
            self._witness_page = best_child.page_id

    # ------------------------------------------------------------------
    # Shared-scan absorb hooks (externally batched bounds)
    # ------------------------------------------------------------------
    def _absorb_internal_shared(
        self, node: RTreeNode, lbs, gi: int, gv: float
    ) -> None:
        """Absorb an internal node whose exact bounds were batched.

        The point-metric lane of the shared-scan executor: ``lbs`` is the
        exact per-child MINDIST bound row, ``(gi, gv)`` the masked argmin
        over the children's backed MINMAXDIST guarantees (``inf`` when no
        child subtree holds a point).  This is the whole-fan-out kernel
        branch of :meth:`_absorb_internal` with the kernel evaluation
        hoisted out — same pushes, same guarantee selection, same witness
        hand-off.
        """
        was_witness = node.page_id == self._witness_page
        self._frontier.push_many(
            node.children, lbs, self._metric_epoch, src=node
        )
        if gv == math.inf:
            # Every child subtree is empty: no guarantee to inherit (cf.
            # the best_child-is-None branch of _absorb_internal).
            if was_witness:
                self.upper_bound = self.best_dist
                self._witness_page = None
                self._rescan_queue_bounds()
            return
        if gv < self.upper_bound:
            self.upper_bound = gv
            self._witness_page = node.children[gi].page_id
        elif was_witness:
            self._witness_page = node.children[gi].page_id

    def _absorb_leaf_shared(self, node: RTreeNode, i: int, d: float) -> None:
        """Absorb a leaf from its batched distance row's argmin ``(i, d)``.

        Mirrors the kernel branch of :meth:`_absorb_leaf`: only the row
        minimum can improve the incumbent, and ``np.argmin`` picks the
        first minimum exactly like the scalar strict-``<`` offer loop.
        """
        if d < self.best_dist:
            self.best_dist = d
            self.best_point = node.points[i]
        if self.best_dist < self.upper_bound:
            self.upper_bound = self.best_dist
            self._witness_page = None  # a concrete point witnesses the bound

    def _absorb_internal_weak(
        self, node: RTreeNode, lbs, need_guarantee: bool
    ) -> None:
        """Absorb an internal node with batch-certified weak child bounds.

        The transitive-metric lane of the shared-scan executor (point-mode
        lanes use the exact :meth:`_absorb_internal_shared`): ``lbs`` are
        certified weak (deflated under-estimate) lower bounds per child,
        queued for the delayed-pruning pop tests exactly like
        :meth:`_absorb_internal` queues its own weak bounds.
        ``need_guarantee`` is the batch's deflate-gated verdict on the
        MinMaxTransDist guarantee scan: when ``False`` the raw estimates
        prove that no backed child guarantee can tighten ``upper_bound``
        (and this node does not witness the bound), so skipping the scan
        is observationally identical; when ``True`` the scan runs here
        with the exact scalar metrics, making every stored value
        bit-identical to the per-query path.
        """
        self._frontier.push_many(
            node.children, lbs, self._metric_epoch, weak=True, src=node
        )
        if need_guarantee:
            self._guarantee_scan_weak(node, lbs)

    def _guarantee_scan_weak(self, node: RTreeNode, lbs) -> None:
        """The exact MinMaxTransDist guarantee scan of a weak absorb.

        Split out of :meth:`_absorb_internal_weak` so the shared arena
        path — which stages the whole lane's pushes in one call — can run
        just the scan for the (minority of) nodes whose batched estimate
        could not prove it a no-op.  Pushing first is equivalent: the
        queue never enters the scan.
        """
        was_witness = node.page_id == self._witness_page
        if isinstance(lbs, np.ndarray):
            lbs = lbs.tolist()  # plain floats for the scalar scan below
        best_child = None
        best_guarantee = math.inf
        for k, child in enumerate(node.children):
            if child.point_count <= 0:
                continue  # empty subtree: nothing backs a guarantee
            if lbs[k] >= best_guarantee:
                continue  # the weak bound already rules this child out
            z = self._corner_minmax_trans(child.mbr)
            if z < best_guarantee:
                best_guarantee = z
                best_child = child
        if best_child is None:
            # Every child subtree is empty (cf. _absorb_internal).
            if was_witness:
                self.upper_bound = self.best_dist
                self._witness_page = None
                self._rescan_queue_bounds()
            return
        if best_guarantee < self.upper_bound:
            self.upper_bound = best_guarantee
            self._witness_page = best_child.page_id
        elif was_witness:
            self._witness_page = best_child.page_id

    # ------------------------------------------------------------------
    # Hybrid-NN mutations
    # ------------------------------------------------------------------
    def retarget(self, new_query: Point) -> None:
        """Case 2: replace the query point, keeping the remaining queue.

        The old best point (found w.r.t. the previous query) seeds the new
        upper bound after re-evaluation, and every queued MBR's MinMaxDist
        is scanned for an even tighter initial bound — the paper's "initial
        upper bound update".
        """
        if self.mode is not SearchMode.POINT:
            raise RuntimeError("retarget() only applies to point mode")
        self._metric_epoch += 1  # cached lower bounds no longer apply
        self.query = new_query
        if self.best_point is not None:
            self.best_dist = distance(new_query, self.best_point)
        else:
            self.best_dist = math.inf
        self.upper_bound = self.best_dist
        self._witness_page = None
        self._rescan_queue_bounds()

    def switch_to_transitive(self, start: Point, end: Point) -> None:
        """Case 3: minimise ``dis(start, s) + dis(s, end)`` from here on."""
        if self.mode is SearchMode.TRANSITIVE:
            raise RuntimeError("search is already in transitive mode")
        self._metric_epoch += 1  # cached lower bounds no longer apply
        self.mode = SearchMode.TRANSITIVE
        self._point_bit = 0
        self.start = start
        self.end = end
        self.query = None
        if self._frontier is not None:
            # Pop-time misses now batch-evaluate every pending queue entry
            # in one Lemma 1 kernel call, whatever each node's fan-out was
            # (arrival-tick batching across the queue).
            self._frontier.lower_evaluator = self._batch_lower_eval
        if self.best_point is not None:
            self.best_dist = distance(start, self.best_point) + distance(
                self.best_point, end
            )
        else:
            self.best_dist = math.inf
        self.upper_bound = self.best_dist
        self._witness_page = None
        self._rescan_queue_bounds()

    def _rescan_queue_bounds(self) -> None:
        """Initial upper-bound update over every queued MBR (Section 4.2.3).

        Both paths also refresh every queued entry's cached lower bound
        under the new metric epoch — the rescan touches every MBR anyway,
        so the pop-time delayed-pruning test stays a cache hit after a
        Hybrid-NN mode switch on the kernel *and* the scalar path.
        """
        front = self._frontier
        if front is not None:
            nodes = front.active_nodes()
        else:
            nodes = [node for _, _, node in self._queue]
        if not nodes:
            return
        epoch = self._metric_epoch
        if kernels.enabled() and len(nodes) >= self._batch_threshold(
            leaf=False
        ):
            # The queued rows come from the pack-time child-MBR caches
            # (frontier chunk refs / arena MBR lane) — no repacking of MBR
            # namedtuples per rescan.
            if front is not None:
                mbrs = front.active_mbrs()
            else:
                mbrs = kernels.as_mbr_array([n.mbr for n in nodes])
            counts = np.array([n.point_count for n in nodes], dtype=np.int64)
            if self.mode is SearchMode.POINT:
                lower, bounds = kernels.point_bounds(self.query, mbrs)
            else:
                lower, bounds = kernels.trans_bounds(self.start, mbrs, self.end)
            if front is not None:
                front.store_lower(range(len(nodes)), lower, epoch)
            else:
                for n, lb in zip(nodes, lower.tolist()):
                    self._lb_cache[n.page_id] = (epoch, lb)
            # Only subtrees holding at least one point back their
            # MinMaxDist-style guarantee (cf. _absorb_internal).
            backed = np.where(counts > 0, bounds, math.inf)
            i = int(np.argmin(backed))
            if math.isfinite(backed[i]) and float(backed[i]) < self.upper_bound:
                self.upper_bound = float(backed[i])
                self._witness_page = nodes[i].page_id
            return
        rows: list[int] = []
        lbs: list[float] = []
        for row, node in enumerate(nodes):
            if self.mode is SearchMode.POINT:
                lb = node.mbr.mindist(self.query)
            else:
                lb = min_trans_dist(self.start, node.mbr, self.end)
            if front is not None:
                rows.append(row)
                lbs.append(lb)
            else:
                self._lb_cache[node.page_id] = (epoch, lb)
            if node.point_count <= 0:
                continue  # empty subtree: no point backs its guarantee
            z = self._guaranteed_bound(node)
            if z < self.upper_bound:
                self.upper_bound = z
                self._witness_page = node.page_id
        if front is not None and rows:
            front.store_lower(rows, np.array(lbs, dtype=np.float64), epoch)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self) -> Tuple[Point, float]:
        """The best point found and its distance under the current mode."""
        if self.best_point is None:
            raise RuntimeError("search finished without finding any point")
        return self.best_point, self.best_dist
