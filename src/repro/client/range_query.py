"""Steppable broadcast range (circle) query — the filter phase workhorse."""

from __future__ import annotations

from typing import List

from repro.broadcast.tuner import ChannelTuner
from repro.client.arrival_queue import ArrivalQueueMixin
from repro.geometry import Circle, Point
from repro.rtree.tree import RTree


class BroadcastRangeSearch(ArrivalQueueMixin):
    """Collects every indexed point inside a circle from a broadcast channel.

    Like :class:`BroadcastNNSearch`, the traversal consumes index pages in
    arrival order: nodes intersecting the circle are downloaded, the rest
    are skipped for free.
    """

    def __init__(
        self,
        tree: RTree,
        tuner: ChannelTuner,
        circle: Circle,
        start_time: float = 0.0,
    ) -> None:
        self.tree = tree
        self.tuner = tuner
        self.circle = circle
        self.results: List[Point] = []
        self._init_queue()
        tuner.advance_to(start_time)
        self._push(tree.root)

    def step(self) -> None:
        """Process one queued node."""
        node = self._pop_head()
        if not self.circle.intersects_rect(node.mbr):
            return  # skipped for free: never downloaded
        self.tuner.download_index_page(node.page_id)
        if node.is_leaf:
            self.results.extend(
                p for p in node.points if self.circle.contains_point(p)
            )
        else:
            for child in node.children:
                self._push(child)

    def run_to_completion(self) -> List[Point]:
        while not self.finished():
            self.step()
        return self.results
