"""Steppable broadcast range (circle) query — the filter phase workhorse."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.broadcast.tuner import ChannelTuner
from repro.client.arrival_queue import ArrivalQueueMixin
from repro.geometry import Circle, Point, kernels
from repro.rtree.node import RTreeNode
from repro.rtree.tree import RTree


class BroadcastRangeSearch(ArrivalQueueMixin):
    """Collects every indexed point inside a circle from a broadcast channel.

    Like :class:`BroadcastNNSearch`, the traversal consumes index pages in
    arrival order: nodes intersecting the circle are downloaded, the rest
    are skipped for free.  Queue plumbing comes from the shared arrival
    frontier; on the kernel path, leaf containment runs as one
    :func:`kernels.point_dists` call over the leaf's ``points_array()``
    (circle containment is exactly ``dis(center, p) <= radius``).
    """

    def __init__(
        self,
        tree: RTree,
        tuner: ChannelTuner,
        circle: Circle,
        start_time: float = 0.0,
    ) -> None:
        self.tree = tree
        self.tuner = tuner
        self.circle = circle
        self.results: List[Point] = []
        self._init_queue()
        tuner.advance_to(start_time)
        self._push(tree.root)

    def step(self) -> None:
        """Process one queued node."""
        node = self._pop_head()
        if not self.circle.intersects_rect(node.mbr):
            return  # skipped for free: never downloaded
        self.tuner.download_index_page(node.page_id)
        if node.is_leaf:
            self._absorb_leaf(node)
        else:
            self._push_children(node)

    def _push_children(self, node: RTreeNode) -> None:
        """Queue a whole fan-out (range pushes without pre-computed bounds).

        The frontier backend takes the whole sibling run in one sorted
        splice; the oracle heap keeps its per-entry pushes.
        """
        if self._frontier is not None:
            self._frontier.push_many(node.children, src=node)
        else:
            for child in node.children:
                self._push(child)

    def _absorb_leaf(self, node: RTreeNode) -> None:
        if kernels.enabled() and node.fanout >= kernels.min_batch_leaf():
            self._absorb_leaf_known(
                node, kernels.point_dists(self.circle.center, node.points_array())
            )
            return
        self.results.extend(
            p for p in node.points if self.circle.contains_point(p)
        )

    def _absorb_leaf_known(self, node: RTreeNode, d: np.ndarray) -> None:
        """Collect the in-circle points of a precomputed distance row.

        Containment is exactly ``dis(center, p) <= radius`` in leaf order,
        like the scalar loop.  (The shared-scan executor resolves drained
        range searches wholesale in its flat leaf pass instead; this is
        the per-leaf row consumer behind :meth:`_absorb_leaf`.)
        """
        self.results.extend(
            node.points[i]
            for i in np.flatnonzero(d <= self.circle.radius).tolist()
        )

    def run_to_completion(self) -> List[Point]:
        while not self.finished():
            self.step()
        return self.results
