"""Steppable broadcast range (circle) query — the filter phase workhorse."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.broadcast.tuner import ChannelTuner
from repro.client.arrival_queue import ArrivalQueueMixin
from repro.geometry import Circle, Point, kernels
from repro.rtree.node import RTreeNode
from repro.rtree.tree import RTree


class BroadcastRangeSearch(ArrivalQueueMixin):
    """Collects every indexed point inside a circle from a broadcast channel.

    Like :class:`BroadcastNNSearch`, the traversal consumes index pages in
    arrival order: nodes intersecting the circle are downloaded, the rest
    are skipped for free.  Queue plumbing comes from the shared arrival
    frontier; on the kernel path, leaf containment runs as one
    :func:`kernels.point_dists` call over the leaf's ``points_array()``
    (circle containment is exactly ``dis(center, p) <= radius``).
    """

    def __init__(
        self,
        tree: RTree,
        tuner: ChannelTuner,
        circle: Circle,
        start_time: float = 0.0,
    ) -> None:
        self.tree = tree
        self.tuner = tuner
        self.circle = circle
        self.results: List[Point] = []
        self._init_queue()
        tuner.advance_to(start_time)
        self._push(tree.root)

    def step(self) -> None:
        """Process one queued node."""
        node = self._pop_head()
        if not self.circle.intersects_rect(node.mbr):
            return  # skipped for free: never downloaded
        self.tuner.download_index_page(node.page_id)
        if node.is_leaf:
            self._absorb_leaf(node)
        else:
            for child in node.children:
                self._push(child)

    def _absorb_leaf(self, node: RTreeNode) -> None:
        if kernels.enabled() and node.fanout >= kernels.min_batch_leaf():
            d = kernels.point_dists(self.circle.center, node.points_array())
            self.results.extend(
                node.points[i]
                for i in np.flatnonzero(d <= self.circle.radius).tolist()
            )
            return
        self.results.extend(
            p for p in node.points if self.circle.contains_point(p)
        )

    def run_to_completion(self) -> List[Point]:
        while not self.finished():
            self.step()
        return self.results
