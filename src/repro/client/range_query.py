"""Steppable broadcast range (circle) query — the filter phase workhorse."""

from __future__ import annotations

import heapq
import itertools
import math
from typing import List, Tuple

from repro.broadcast.tuner import ChannelTuner
from repro.geometry import Circle, Point
from repro.rtree.node import RTreeNode
from repro.rtree.tree import RTree


class BroadcastRangeSearch:
    """Collects every indexed point inside a circle from a broadcast channel.

    Like :class:`BroadcastNNSearch`, the traversal consumes index pages in
    arrival order: nodes intersecting the circle are downloaded, the rest
    are skipped for free.
    """

    def __init__(
        self,
        tree: RTree,
        tuner: ChannelTuner,
        circle: Circle,
        start_time: float = 0.0,
    ) -> None:
        self.tree = tree
        self.tuner = tuner
        self.circle = circle
        self.results: List[Point] = []
        self._counter = itertools.count()
        self._queue: List[Tuple[float, int, RTreeNode]] = []
        tuner.advance_to(start_time)
        self._push(tree.root)

    def _push(self, node: RTreeNode) -> None:
        arrival = self.tuner.peek_index_arrival(node.page_id)
        heapq.heappush(self._queue, (arrival, next(self._counter), node))

    def _normalize_head(self) -> None:
        while self._queue:
            arrival, seq, node = self._queue[0]
            true_arrival = self.tuner.peek_index_arrival(node.page_id)
            if true_arrival <= arrival:
                return
            heapq.heapreplace(self._queue, (true_arrival, seq, node))

    def finished(self) -> bool:
        return not self._queue

    def next_event_time(self) -> float:
        self._normalize_head()
        return self._queue[0][0] if self._queue else math.inf

    @property
    def now(self) -> float:
        return self.tuner.now

    def step(self) -> None:
        """Process one queued node."""
        if not self._queue:
            raise RuntimeError("step() on a finished search")
        self._normalize_head()
        _, _, node = heapq.heappop(self._queue)
        if not self.circle.intersects_rect(node.mbr):
            return  # skipped for free: never downloaded
        self.tuner.download_index_page(node.page_id)
        if node.is_leaf:
            self.results.extend(
                p for p in node.points if self.circle.contains_point(p)
            )
        else:
            for child in node.children:
                self._push(child)

    def run_to_completion(self) -> List[Point]:
        while not self.finished():
            self.step()
        return self.results
