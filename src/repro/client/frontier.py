"""Arrival frontier — the batched struct-of-arrays candidate queue.

The boxed-tuple heap of the original :class:`ArrivalQueueMixin` pays python
per entry three times over: one ``peek_index_arrival`` call per push, one
per lazy head refresh, and one scalar bound evaluation per pop.  At the
paper's small page geometries (64-byte pages, M = 3) the per-node fan-out
never reaches the geometry kernels' dispatch floor, so the whole client hot
path used to stay scalar.  This frontier restructures the queue around two
observations:

**Arrival order is cyclic page order.**  On a uniformly replicated (1, m)
channel the next arrival of page ``p`` at clock ``now`` is
``base + (p - base) % L`` with ``base = ceil(now - phase)`` and ``L`` the
super-page length — so "earliest next arrival" is simply the cyclic
successor of ``base % L`` among the queued page ids.  Page ids never
change, so the frontier keeps its entries **sorted by page id** and pops
with one bisect: no arrival is ever computed at push time, no head ever
goes stale, and ``next_event_time`` is one closed-form expression for the
head alone (bit-identical to the scalar peek: same integer arithmetic,
same final phase addition).  This replaces the heap's per-push peek and
per-pop head-normalisation chatter with O(log n) pointer work.

**Bounds live with the queue and batch across it, not the fan-out.**
Each entry carries an epoch-stamped lower-bound record next to its node:
exact bounds from a fused whole-fan-out kernel call (large fan-outs) or a
whole-queue rescan batch (Hybrid-NN mode switches), and certified *weak*
under-estimates (see ``BroadcastNNSearch._weak_lower``) where one more
kernel dispatch would cost more than it saves — the dominant regime at
64-byte pages, where a queue of ~(H-1)(M-1) entries receives only ~M-1
new stale entries per arrival tick.  When a pop still finds no bound
under the current epoch and an evaluator is installed, one kernel call
evaluates **every** pending-unevaluated entry in the frontier at once,
regardless of how small each node's fan-out was.  A Hybrid-NN metric
switch invalidates every cached bound wholesale by bumping the epoch; the
stamps make that O(1).

Entry state is struct-of-arrays: parallel append-only per-slot lanes plus
the (page, slot) order lists.  The hot scalar lanes are plain python
lists — a list store is ~5x cheaper than a numpy scalar write, and at
R-tree queue sizes the lanes are only materialised as numpy arrays at
batch boundaries (rescan / pending-batch evaluation), where the kernels
want them.

The frontier is the kernel-path backend of :class:`ArrivalQueueMixin` for
uniformly replicated programs; the original heap remains in place as the
bit-identical scalar oracle (``kernels.use_kernels(False)`` /
``REPRO_NO_KERNELS=1``) and as the fallback for irregular layouts
(distributed indexing, which has no cyclic page order to exploit).

**The columnar arena.**  One search's frontier holds ~(H-1)(M-1) entries —
far too few for numpy to beat python lists on any single operation.  A
*workload* of active searches holds tens of thousands, and the shared-scan
executor touches every one of them every round: one head selection per
search (the pairing ping-pong) plus one certified-prune walk per serve.
:class:`FrontierArena` therefore hoists the queued entries of **every**
registered search into one set of struct-of-arrays lanes — page id, slot,
lower bound, weak flag, epoch stamp, owner search id, MBR row — addressed
per search by an (offset, length) segment.  Round execution becomes three
whole-workload array passes (cyclic arrival keys, head/survivor segmented
minima, certified prune-run consumption) plus O(1) python per *search*:
the driver pops a round's worth of certified prunes without ever touching
them one entry at a time.  An :class:`ArrivalFrontier` attached to an
arena (``attach`` happens at executor registration) transparently routes
its whole API — pushes, pops, rescans, ``pop_until`` — to its segment, so
the search code is backend-agnostic; standalone frontiers (the per-query
path, kNN/range/window) keep the list lanes above, which profiling shows
are the fastest single-search representation.
"""

from __future__ import annotations

import math
import os
from bisect import bisect_left, bisect_right
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.geometry import kernels
from repro.rtree.node import RTreeNode


def node_store_disabled() -> bool:
    """True when ``REPRO_NO_NODE_STORE=1`` disables the global node store.

    The escape hatch mirrors ``REPRO_NO_KERNELS`` / ``REPRO_SCALAR_TUNERS``:
    with it set, the shared-scan executor keeps every arena frontier on the
    per-frontier node-slot lists and serves phase A through the original
    per-survivor row loop — the bit-identity oracle for the vectorised
    store path.
    """
    return os.environ.get("REPRO_NO_NODE_STORE", "0") == "1"

#: Bit width of the entry-index field in the packed ``key << BITS | index``
#: comparison values of the arena's segmented argmin — supports 4M queued
#: entries per arena, far beyond any workload's live frontier total.
_IDX_BITS = 22
_IDX_MASK = (1 << _IDX_BITS) - 1
#: "No entry survives" sentinel for the packed comparisons (any real packed
#: value is far below it; its decoded key is far above any cyclic key).
_HUGE = np.int64(1) << np.int64(62)
#: Epoch sentinel for entries pushed without a bound record: never equal to
#: a search's metric epoch (epochs start at 0 and only grow).
_NO_EPOCH = -1


def _tree_store_struct(tree) -> tuple:
    """One tree's BFS-ordered structural node columns (cached).

    Returns ``(nodes, child0, level, lane_key, mbr)`` where ``nodes`` is
    the BFS node list (every internal node's children occupy one
    contiguous run — the property the arena's base-plus-intra flush
    arithmetic needs), ``child0`` holds each internal node's first-child
    index (-1 for leaves), ``lane_key`` packs the fan-out shape as
    ``(fanout << 2) | (is_leaf << 1)`` (matching the executor's lane
    keys), and ``mbr`` serves each node's ``(4,)`` float64 row gathered
    from the parents' pack-time child-MBR chunks — the same float values
    :meth:`ArrivalFrontier._mbr_row` returns.  Structure never changes
    after packing, so the cache lives on the tree object for good;
    page ids are handled separately (:func:`_tree_store_pages`).
    """
    try:
        return tree._store_struct
    except AttributeError:
        pass
    order: List[RTreeNode] = [tree.root]
    child0: List[int] = []
    keys: List[int] = []
    levels: List[int] = []
    i = 0
    while i < len(order):
        nd = order[i]
        if nd.is_leaf:
            child0.append(-1)
            keys.append((len(nd.points) << 2) | 2)
        else:
            child0.append(len(order))
            keys.append(len(nd.children) << 2)
            order.extend(nd.children)
        levels.append(nd.level)
        i += 1
    n = len(order)
    c0 = np.array(child0, dtype=np.int64)
    mbr = np.empty((n, 4), dtype=np.float64)
    mbr[0] = np.asarray(tree.root.mbr, dtype=np.float64)
    for i, nd in enumerate(order):
        if not nd.is_leaf:
            b = child0[i]
            mbr[b:b + len(nd.children)] = nd.child_mbr_array()
    struct = (
        order,
        c0,
        np.array(levels, dtype=np.int64),
        np.array(keys, dtype=np.int64),
        mbr,
    )
    tree._store_struct = struct
    return struct


def _tree_store_pages(tree) -> np.ndarray:
    """The BFS-ordered page-id column of one tree (cached).

    Page ids bind the current broadcast layout, so — unlike the
    structural columns — this cache is part of the node store's
    **invalidation contract**: :meth:`repro.rtree.tree.RTree
    .assign_page_ids` resets it (alongside the per-node child-page
    views) whenever a program renumbers the tree.
    """
    pages = getattr(tree, "_store_pages", None)
    if pages is not None:
        return pages
    order = _tree_store_struct(tree)[0]
    pages = np.fromiter(
        (nd.page_id for nd in order), dtype=np.int64, count=len(order)
    )
    tree._store_pages = pages
    return pages


class NodeStore:
    """Global columnar registry of every node an arena run can serve.

    One store backs one :class:`~repro.engine.shared_scan
    .SharedScanExecutor` run over a fixed set of trees.  Every node of
    every tree gets a *store id* (``nid``): BFS order per tree, trees
    concatenated — so each internal node's children are the contiguous
    run ``child0[nid] .. child0[nid] + fanout``, and a staged fan-out is
    an ``(offset, count)`` pair instead of a python list splice.  The
    arena's ``_e_slot`` lane holds nids when a store is attached, which
    turns phase A's survivor handling (lane-key gathers, weak-point
    MINDIST checks, argsort binning) and the absorb glue (``stage_lane``
    handoffs, witness/upper-bound mirror updates) into whole-workload
    array passes.

    ``lane_row`` mirrors each node's per-run ``_lane_row`` stamp against
    the executor's combined geometry blocks, so a store must be built
    **after** :func:`~repro.engine.shared_scan.combine_lane_blocks` of
    the same trees.  ``_store_nid`` stamps on the nodes are per-build,
    like the lane-row stamps: a node may appear in stores with different
    partners (and hence different offsets) across environments.

    Invalidation contract: structure and geometry are immutable after
    packing and cache on the tree forever; the page column binds the
    broadcast layout and is dropped by ``RTree.assign_page_ids`` — a
    store built before a re-layout must not be reused afterwards (the
    executor builds one store per run, after the program assigns pages).
    """

    __slots__ = (
        "nodes", "child0", "level", "lane_key", "lane_row", "page",
        "mbr", "leaf_bit", "tree_ids",
    )

    @classmethod
    def build(cls, trees) -> "NodeStore":
        seen: list = []
        for t in trees:
            if not any(t is u for u in seen):
                seen.append(t)
        nodes: List[RTreeNode] = []
        c0_parts: List[np.ndarray] = []
        lvl_parts: List[np.ndarray] = []
        key_parts: List[np.ndarray] = []
        mbr_parts: List[np.ndarray] = []
        page_parts: List[np.ndarray] = []
        off = 0
        for t in seen:
            order, c0, levels, keys, mbr = _tree_store_struct(t)
            for i, nd in enumerate(order):
                nd._store_nid = off + i
            if off:
                c0 = c0.copy()
                c0[c0 >= 0] += off
            nodes.extend(order)
            c0_parts.append(c0)
            lvl_parts.append(levels)
            key_parts.append(keys)
            mbr_parts.append(mbr)
            page_parts.append(_tree_store_pages(t))
            off += len(order)
        store = cls()
        store.nodes = nodes
        store.child0 = (
            c0_parts[0] if len(c0_parts) == 1 else np.concatenate(c0_parts)
        )
        store.level = (
            lvl_parts[0] if len(lvl_parts) == 1 else np.concatenate(lvl_parts)
        )
        store.lane_key = (
            key_parts[0] if len(key_parts) == 1 else np.concatenate(key_parts)
        )
        store.mbr = (
            mbr_parts[0] if len(mbr_parts) == 1 else np.vstack(mbr_parts)
        )
        store.page = (
            page_parts[0] if len(page_parts) == 1
            else np.concatenate(page_parts)
        )
        store.lane_row = np.fromiter(
            (nd._lane_row for nd in nodes), dtype=np.int64, count=len(nodes)
        )
        # Pre-split leaf flag (lane-key bit 1): the round's leaf-finish
        # probe mask gathers this directly instead of re-masking keys.
        store.leaf_bit = (store.lane_key & 2) != 0
        store.tree_ids = frozenset(id(t) for t in seen)
        return store


class ArrivalFrontier:
    """Arrival-ordered candidate frontier with epoch-stamped bound lanes."""

    __slots__ = (
        "_tuner",
        "_phase",
        "_cycle",
        "_order_pages",
        "_order_slots",
        "_nodes",
        "_bounds",
        "_mbr_bases",
        "_mbr_chunks",
        "_version",
        "_peek_now",
        "_peek_version",
        "_peek_value",
        "_peek_head",
        "_push_ops",
        "_eval_guard",
        "_arena",
        "_sid",
        "max_size",
        "lower_evaluator",
    )

    def __init__(self, tuner) -> None:
        self._tuner = tuner
        channel = tuner.channel
        self._phase = channel.phase
        self._cycle = channel.program.super_page_length
        #: Columnar arena this frontier is attached to (``None`` when the
        #: frontier runs standalone on its own list lanes).
        self._arena: Optional["FrontierArena"] = None
        self._sid = -1
        #: Cached child-MBR chunk per ``push_many`` (base slot -> the
        #: parent's contiguous ``(n, 4)`` array): rescans and pending-batch
        #: evaluations gather rows from these instead of re-packing MBR
        #: namedtuples into fresh arrays.
        self._mbr_bases: List[int] = []
        self._mbr_chunks: List[np.ndarray] = []
        #: Queued page ids in ascending order plus their parallel slots.
        self._order_pages: List[int] = []
        self._order_slots: List[int] = []
        #: Per-slot lanes (parallel, append-only): the queued node and its
        #: bound record ``(epoch, lower_bound, weak)`` or ``None``.  Slots
        #: are never recycled — a frontier lives for one search, so slot
        #: growth is bounded by the nodes the search visits, and skipping
        #: the free-list bookkeeping keeps pushes and pops branch-free.
        self._nodes: List[RTreeNode] = []
        self._bounds: List[Optional[Tuple[int, float, bool]]] = []
        self._version = 0
        self._peek_now = math.nan
        self._peek_version = -1
        self._peek_value = math.inf
        self._peek_head = 0
        #: Monotone count of push operations, and the (epoch, push-count)
        #: state as of which every queued record was known to carry a valid
        #: bound — lets :meth:`_eval_pending` skip its stale scan entirely
        #: when nothing new was queued since the last full evaluation.
        self._push_ops = 0
        self._eval_guard: Tuple[int, int] = (-2, -1)
        #: Largest queue size reached — the client's memory footprint.
        self.max_size = 0
        #: ``fn(mbrs) -> lower_bounds`` under the owner's current metric;
        #: installed by the search only while batching beats the scalar
        #: loop (transitive mode), consulted by the batched pop path.
        self.lower_evaluator: Optional[Callable[[np.ndarray], np.ndarray]] = (
            None
        )

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        arena = self._arena
        if arena is not None:
            sid = self._sid
            return int(arena._live[sid]) + int(arena._staged_cnt[sid])
        return len(self._order_pages)

    def finished(self) -> bool:
        """True when no candidates remain queued."""
        arena = self._arena
        if arena is not None:
            sid = self._sid
            return not arena._live[sid] and not arena._staged_cnt[sid]
        return not self._order_pages

    def footprint(self) -> int:
        """Largest queue size reached (the client's memory footprint).

        Attached frontiers track the peak in the arena's ``_maxsz`` lane,
        updated by one vector maximum per flush; entries staged since the
        last flush are covered by the current length (pushes only grow a
        queue, so the running peak is always one of the two).
        """
        arena = self._arena
        if arena is not None:
            return max(
                self.max_size,
                int(arena._maxsz[self._sid]),
                arena.len_attached(self),
            )
        return self.max_size

    def push(
        self,
        node: RTreeNode,
        lb: Optional[float] = None,
        epoch: int = -1,
        weak: bool = False,
    ) -> None:
        """Queue one node; ``lb`` pre-caches its lower bound under ``epoch``.

        ``weak=True`` marks the bound as a certified *under*-estimate of
        the exact metric (it can prove a prune but never a keep); the pop
        result carries the flag back so the owner knows whether to verify.
        No arrival is computed — cyclic page order *is* arrival order, so
        queueing is one sorted insert plus the slot-lane writes.
        """
        if self._arena is not None:
            self._arena.stage(self, [node], None if lb is None else [lb],
                              epoch, weak, None)
            return
        nodes = self._nodes
        slot = len(nodes)
        nodes.append(node)
        self._bounds.append(None if lb is None else (epoch, lb, weak))
        page = node.page_id
        i = bisect_left(self._order_pages, page)
        self._order_pages.insert(i, page)
        self._order_slots.insert(i, slot)
        self._version += 1
        self._push_ops += 1
        if len(self._order_pages) > self.max_size:
            self.max_size = len(self._order_pages)

    def push_many(
        self,
        nodes,
        lbs=None,
        epoch: int = -1,
        weak: bool = False,
        src: Optional[RTreeNode] = None,
    ) -> None:
        """Queue a whole fan-out in one call (one version/footprint update).

        ``lbs`` pre-caches one lower bound per node under ``epoch`` —
        either the fused whole-fan-out kernel results (a float64 row) or
        the certified cheap estimates of the small-fan-out path (a list).
        ``nodes`` must be in ascending ``page_id`` order (an R-tree node's
        children always are: DFS preorder).  ``src``, when given, is the
        parent node whose **complete** fan-out is being queued: its cached
        child page/MBR arrays replace the per-child repacking both here
        and in later rescans.
        """
        if not len(nodes):
            return
        if self._arena is not None:
            self._arena.stage(self, nodes, lbs, epoch, weak, src)
            return
        order_pages = self._order_pages
        order_slots = self._order_slots
        slot_nodes = self._nodes
        slot_bounds = self._bounds
        base_slot = len(slot_nodes)
        if src is not None:
            pages = src.child_page_list()
            self._mbr_bases.append(base_slot)
            self._mbr_chunks.append(src.child_mbr_array())
        else:
            pages = [node.page_id for node in nodes]
        slots = range(base_slot, base_slot + len(pages))
        slot_nodes.extend(nodes)
        if lbs is None:
            slot_bounds.extend([None] * len(pages))
        else:
            if isinstance(lbs, np.ndarray):
                lbs = lbs.tolist()  # plain floats: cheaper pop-time compares
            slot_bounds.extend([(epoch, lb, weak) for lb in lbs])
        # An expanded node's children occupy one gap of the sorted order:
        # their DFS-preorder ids ascend, and every page id strictly between
        # two siblings belongs to the earlier sibling's (unexpanded, hence
        # unqueued) subtree.  One bisect plus a slice splice inserts the
        # whole fan-out; anything violating the invariant (defensive only)
        # falls back to per-item inserts.
        i = bisect_left(order_pages, pages[0])
        if i == len(order_pages) or order_pages[i] > pages[-1]:
            order_pages[i:i] = pages
            order_slots[i:i] = slots
        else:  # pragma: no cover - non-sibling batches
            for page, slot in zip(pages, slots):
                j = bisect_left(order_pages, page)
                order_pages.insert(j, page)
                order_slots.insert(j, slot)
        self._version += 1
        self._push_ops += 1
        if len(order_pages) > self.max_size:
            self.max_size = len(order_pages)

    # ------------------------------------------------------------------
    # Cyclic-order head selection
    # ------------------------------------------------------------------
    def _head_index(self) -> int:
        """Order index of the truly-next entry at the current clock."""
        base = math.ceil(self._tuner.now - self._phase)
        i = bisect_left(self._order_pages, base % self._cycle)
        if i == len(self._order_pages):
            i = 0  # wrap: the earliest page of the next index copy
        return i

    def peek_arrival(self) -> float:
        """Arrival time of the truly-next queued page (inf when empty).

        Cached per (clock, queue-version) state: the scheduler peeks every
        unstepped search once per event, and nothing moved for those.  The
        head's order index is cached alongside, so the pop that usually
        follows a peek at the same state skips its bisect entirely.
        """
        if self._arena is not None:
            return self._arena.peek_arrival_attached(self)
        if not self._order_pages:
            return math.inf
        now = self._tuner.now
        if now == self._peek_now and self._version == self._peek_version:
            return self._peek_value
        base = math.ceil(now - self._phase)
        i = bisect_left(self._order_pages, base % self._cycle)
        if i == len(self._order_pages):
            i = 0
        page = self._order_pages[i]
        value = base + (page - base) % self._cycle + self._phase
        self._peek_now = now
        self._peek_version = self._version
        self._peek_value = value
        self._peek_head = i
        return value

    def peek_page(self) -> Optional[int]:
        """Page id of the truly-next queued entry (``None`` when empty).

        The "next page needed" half of the external-driver protocol: which
        page this search is waiting for, without computing its arrival
        time.  (The shared-scan executor's specialised serve loops inline
        the same head selection; this is the reference form for drivers
        that want one page at a time, property-tested against
        :meth:`pop_with_arrival`.)
        """
        if self._arena is not None:
            return self._arena.peek_page_attached(self)
        if not self._order_pages:
            return None
        if (
            self._tuner.now == self._peek_now
            and self._version == self._peek_version
        ):
            return self._order_pages[self._peek_head]
        return self._order_pages[self._head_index()]

    # ------------------------------------------------------------------
    # Popping with lazily batched bounds
    # ------------------------------------------------------------------
    def pop(
        self, epoch: int = -1
    ) -> Tuple[RTreeNode, Optional[float], bool]:
        """Remove and return ``(next_node, lower_bound_or_None, weak)``.

        The bound is served from the epoch-stamped record when possible.
        On a miss, one kernel call evaluates **all** pending-unevaluated
        entries (the arrival-tick batch) provided an evaluator is installed
        and the batch is worthwhile; otherwise ``None`` is returned and the
        caller computes the single bound scalar — bit-identical either way.
        ``weak`` is True when the bound is a certified under-estimate (it
        can prove a prune, never a keep).
        """
        if self._arena is not None:
            node, lb, weak, _ = self._arena.pop_attached(self, epoch)
            return node, lb, weak
        if not self._order_pages:
            raise RuntimeError("step() on a finished search")
        if (
            self._tuner.now == self._peek_now
            and self._version == self._peek_version
        ):
            # The scheduler peeked at this exact state just before
            # dispatching the step — reuse its head index.
            i = self._peek_head
        else:
            i = self._head_index()
        self._order_pages.pop(i)
        slot = self._order_slots.pop(i)
        self._version += 1
        node = self._nodes[slot]
        record = self._bounds[slot]
        lb: Optional[float] = None
        weak = False
        if record is not None and record[0] == epoch:
            lb = record[1]
            weak = record[2]
        elif self.lower_evaluator is not None:
            lb = self._eval_pending(node, epoch)
        return node, lb, weak

    def pop_with_arrival(
        self, epoch: int = -1
    ) -> Tuple[RTreeNode, Optional[float], bool, float]:
        """:meth:`pop` plus the popped page's arrival time at this clock.

        The "absorb this page" half of the external-driver protocol: a
        driver that downloads the popped page itself needs its arrival —
        one closed-form expression, identical to
        :meth:`~repro.broadcast.tuner.ChannelTuner.peek_index_arrival` —
        returned alongside the entry instead of recomputed.  Reuses the
        head index *and* arrival cached by a preceding
        :meth:`peek_arrival` at the same (clock, queue) state.  (The
        shared-scan executor's kNN/range/window drains inline this exact
        arithmetic for whole runs of pops; this method is the reference
        one-pop form, property-tested against them.)
        """
        if self._arena is not None:
            return self._arena.pop_attached(self, epoch)
        if not self._order_pages:
            raise RuntimeError("step() on a finished search")
        now = self._tuner.now
        if now == self._peek_now and self._version == self._peek_version:
            i = self._peek_head
            arrival = self._peek_value
        else:
            base = math.ceil(now - self._phase)
            i = bisect_left(self._order_pages, base % self._cycle)
            if i == len(self._order_pages):
                i = 0
            page = self._order_pages[i]
            arrival = base + (page - base) % self._cycle + self._phase
        self._order_pages.pop(i)
        slot = self._order_slots.pop(i)
        self._version += 1
        node = self._nodes[slot]
        record = self._bounds[slot]
        lb: Optional[float] = None
        weak = False
        if record is not None and record[0] == epoch:
            lb = record[1]
            weak = record[2]
        elif self.lower_evaluator is not None:
            lb = self._eval_pending(node, epoch)
        return node, lb, weak, arrival

    def pop_until(
        self,
        upper_bound: float,
        epoch: int,
        limit: float = math.inf,
        strict: bool = False,
    ) -> Optional[Tuple[RTreeNode, Optional[float], bool, float]]:
        """Pop and prune entries until one needs the caller; batch form.

        Consumes the truly-next entries in arrival order while each one's
        cached bound *proves* a prune — an exact or weak record under
        ``epoch`` with ``lb > upper_bound`` (a weak bound is a certified
        under-estimate, so it proves prunes, never keeps) — and its arrival
        lies within ``limit`` (``<=``, or ``<`` when ``strict``; the
        shared-scan driver passes the sibling search's next event time
        here, reproducing ``run_all``'s pair ping-pong tie rule).  Stops
        and returns ``(node, lb, weak, arrival)`` at the first entry the
        caller must handle: a keeper (exact ``lb <= upper_bound``), a weak
        bound that could not prove its prune, or a missing bound.  Returns
        ``None`` when the queue empties or the next arrival falls outside
        ``limit``.

        One call replaces a pop-per-prune driver round-trip: pruning pops
        never move the channel clock, so the cyclic-order base is computed
        once for the whole run.
        """
        if self._arena is not None:
            return self._arena.pop_until_attached(
                self, upper_bound, epoch, limit, strict
            )
        order_pages = self._order_pages
        if not order_pages:
            return None
        order_slots = self._order_slots
        nodes = self._nodes
        bounds = self._bounds
        cycle = self._cycle
        phase = self._phase
        base = math.ceil(self._tuner.now - phase)
        start = base % cycle
        while order_pages:
            i = bisect_left(order_pages, start)
            if i == len(order_pages):
                i = 0
            page = order_pages[i]
            arrival = base + (page - base) % cycle + phase
            if arrival > limit or (strict and arrival == limit):
                return None
            order_pages.pop(i)
            slot = order_slots.pop(i)
            self._version += 1
            record = bounds[slot]
            if record is not None and record[0] == epoch:
                lb = record[1]
                if lb > upper_bound:
                    continue  # certified prune (weak or exact)
                return nodes[slot], lb, record[2], arrival
            node = nodes[slot]
            if self.lower_evaluator is not None:
                lb = self._eval_pending(node, epoch)
                if lb is not None:
                    if lb > upper_bound:
                        continue  # exact prune from the batch evaluation
                    return node, lb, False, arrival
            return node, None, False, arrival
        return None

    def _eval_pending(self, popped: RTreeNode, epoch: int) -> Optional[float]:
        """Batch-evaluate every stale entry plus the popped node.

        One kernel call covers the whole pending-unevaluated set — the
        arrival-tick batch that makes the bound evaluation independent of
        any single node's fan-out.  Entries whose epoch-stamped bound is
        still valid are never re-evaluated, and the stale scan itself is
        skipped entirely when no push happened since the queue was last
        known fully stamped under this epoch (the ``_eval_guard`` state) —
        a pop can only remove entries, never un-stamp one.
        """
        if self._eval_guard == (epoch, self._push_ops):
            return None
        stale = [
            slot
            for slot in self._order_slots
            if (rec := self._bounds[slot]) is None or rec[0] != epoch
        ]
        if not stale:
            # Nothing pending besides the popped head: a one-lane kernel
            # call cannot beat the caller's scalar evaluation (the only
            # installed evaluator, the transitive metric, wins from two
            # lanes up), and the guard spares future scans.
            self._eval_guard = (epoch, self._push_ops)
            return None
        assert self.lower_evaluator is not None
        mbrs = np.empty((len(stale) + 1, 4), dtype=np.float64)
        for k, slot in enumerate(stale):
            mbrs[k] = self._mbr_row(slot, self._nodes[slot])
        mbrs[-1] = self._mbr_row(None, popped)
        values = self.lower_evaluator(mbrs)
        for slot, value in zip(stale, values.tolist()):
            self._bounds[slot] = (epoch, value, False)
        self._eval_guard = (epoch, self._push_ops)
        return float(values[-1])

    def _mbr_row(self, slot: Optional[int], node: RTreeNode):
        """One entry's MBR row, served from the cached parent chunk.

        ``push_many`` records (base slot, parent child-MBR array) chunk
        references, so a slot pushed as part of a complete fan-out reads
        its row straight out of the pack-time cache; slots pushed loose
        (the root, hand-built tests) fall back to the node's own MBR.
        """
        if slot is not None and self._mbr_bases:
            c = bisect_right(self._mbr_bases, slot) - 1
            if c >= 0:
                base = self._mbr_bases[c]
                chunk = self._mbr_chunks[c]
                if slot - base < chunk.shape[0]:
                    return chunk[slot - base]
        return np.asarray(node.mbr, dtype=np.float64)

    # ------------------------------------------------------------------
    # Whole-queue access (Hybrid-NN's initial upper-bound rescan)
    # ------------------------------------------------------------------
    def active_nodes(self) -> List[RTreeNode]:
        """The queued nodes, in cyclic page order."""
        if self._arena is not None:
            return self._arena.active_nodes_attached(self)
        nodes = []
        for slot in self._order_slots:
            node = self._nodes[slot]
            assert node is not None
            nodes.append(node)
        return nodes

    def active_mbrs(self) -> np.ndarray:
        """The queued nodes' MBR rows, aligned with :meth:`active_nodes`.

        Rows come from the cached pack-time child-MBR arrays (or the arena
        MBR lane) — no repacking of MBR namedtuples per rescan.
        """
        if self._arena is not None:
            return self._arena.active_mbrs_attached(self)
        slots = self._order_slots
        rows = np.empty((len(slots), 4), dtype=np.float64)
        for k, slot in enumerate(slots):
            rows[k] = self._mbr_row(slot, self._nodes[slot])
        return rows

    def store_lower(self, rows, values: np.ndarray, epoch: int) -> None:
        """Cache exact lower bounds for the given :meth:`active_nodes` rows."""
        if self._arena is not None:
            self._arena.store_lower_attached(self, rows, values, epoch)
            return
        vals = values.tolist()
        for k, row in enumerate(rows):
            self._bounds[self._order_slots[row]] = (epoch, vals[k], False)
        if len(vals) == len(self._order_slots):
            # A whole-queue rescan leaves every record stamped: pop-misses
            # under this epoch need no stale scan until the next push.
            self._eval_guard = (epoch, self._push_ops)


# ----------------------------------------------------------------------
# The shared columnar frontier arena
# ----------------------------------------------------------------------
class FrontierArena:
    """Struct-of-arrays store for the frontiers of many active searches.

    One arena serves one :class:`~repro.engine.shared_scan
    .SharedScanExecutor` run.  Queued entries of every registered search
    live in shared numpy lanes — page id, slot (into the owner frontier's
    node list), lower bound, weak flag, epoch stamp, owner search id and
    MBR row — grouped per search into one contiguous ``(offset, length)``
    segment.  The executor's round then runs as whole-workload array
    passes:

    * :meth:`begin_round` — cyclic arrival keys for every entry plus one
      segmented minimum: the head arrival of **every** search at once (the
      pairing ping-pong's ``t0``/``t1`` reads, previously one python peek
      per search per round);
    * :meth:`serve` — one certified prune mask over all queued entries
      (``stamped and lb > upper_bound`` under each owner's metric epoch)
      and one segmented minimum over the non-prunable entries: each served
      search's certified-prunable *run* is consumed as a mask write and
      its survivor comes back as O(1) scalars.  This is
      :meth:`ArrivalFrontier.pop_until` for the whole workload in a
      handful of numpy dispatches.

    Mutation is deferred and batched: pops tombstone entries (``dead``
    lane), pushes stage per-fan-out runs referencing the pack-time child
    arrays, and :meth:`flush` merges both into fresh compact lanes once
    per round with vectorised scatters.  Registration is append-only: a
    finished search keeps its (empty) segment and its slot in the
    per-search lanes until the arena is dropped, so the per-round passes
    scale with searches *ever registered* — the right trade for one
    executor run over one workload (the intended lifetime); a very
    long-lived arena over many generations of searches would want a
    retire-and-compact step here.  Between flushes, attached
    :class:`ArrivalFrontier` methods (the rare paths: re-steer rescans,
    scalar ``pop_until`` continuations after a failed certified keep,
    defensive pops) operate on the lanes directly, so every frontier
    behaviour is available in attached form, bit-identical to the
    standalone list lanes.
    """

    def __init__(self, store: Optional[NodeStore] = None) -> None:
        self._searches: List[object] = []
        #: Global :class:`NodeStore` of the run's trees.  When present,
        #: the ``_e_slot`` lane holds store ids instead of per-frontier
        #: node-slot indices: staging never touches the frontiers' node
        #: lists (a fan-out is ``child0[nid] + arange(n)``), attached
        #: pops resolve nodes/MBRs through the store columns, and the
        #: executor's phase A reads survivors as pure array gathers.
        #: ``None`` (standalone arenas, ``REPRO_NO_NODE_STORE=1``) keeps
        #: the original per-frontier slot addressing.
        self._store = store
        # Per-search state lanes (grown amortised; index = search id).
        cap = 64
        self._now = np.zeros(cap, dtype=np.float64)
        self._phase = np.zeros(cap, dtype=np.float64)
        self._cycle = np.ones(cap, dtype=np.int64)
        self._ub = np.full(cap, math.inf, dtype=np.float64)
        self._epoch = np.zeros(cap, dtype=np.int64)
        #: Mirror of each search's ``_witness_page`` (-1 when a concrete
        #: point, not a node guarantee, witnesses the upper bound) — lets
        #: the executor vectorise the witness hand-off tests of a whole
        #: absorb lane.
        self._wit = np.full(cap, -1, dtype=np.int64)
        self._qx = np.full(cap, math.nan, dtype=np.float64)
        self._qy = np.full(cap, math.nan, dtype=np.float64)
        self._sx = np.full(cap, math.nan, dtype=np.float64)
        self._sy = np.full(cap, math.nan, dtype=np.float64)
        self._ex = np.full(cap, math.nan, dtype=np.float64)
        self._ey = np.full(cap, math.nan, dtype=np.float64)
        #: Packed ``(sx, sy, ex, ey)`` rows mirroring the four transitive
        #: lanes above: a margin-band serve batch gathers all four
        #: endpoint components with one fancy index.
        self._trans = np.full((cap, 4), math.nan, dtype=np.float64)
        self._live = np.zeros(cap, dtype=np.int64)
        #: Entries staged since the last flush, per search — replaces the
        #: per-frontier versioned counters, so lane staging can bump a
        #: whole absorb lane's counts with one scatter-add.
        self._staged_cnt = np.zeros(cap, dtype=np.int64)
        #: Mirror of each search's ``_point_bit`` (1 = point metric, 0 =
        #: transitive) — folds into the store's lane keys so phase A
        #: builds every survivor's absorb-lane key in one vector ``or``.
        self._pbit = np.zeros(cap, dtype=np.int64)
        #: Boolean view of the same bit: the weak-survivor split masks
        #: with it directly, skipping a per-round ``== 1`` pass.
        self._pbool = np.zeros(cap, dtype=bool)
        #: Mirror of each attached frontier's ``max_size`` footprint,
        #: updated by one masked vector maximum per flush.
        self._maxsz = np.zeros(cap, dtype=np.int64)
        #: Flush generation — staged counters on frontiers are valid only
        #: when stamped with the current generation, which lets the flush
        #: skip a per-frontier reset loop entirely.
        self._flushes = 0
        # Entry lanes (compact, owner-grouped; rebuilt by flush()).
        self._m = 0
        self._e_page = np.empty(0, dtype=np.int64)
        self._e_slot = np.empty(0, dtype=np.int64)
        self._e_lb = np.empty(0, dtype=np.float64)
        #: Certified keep bound per entry: an inflated upper bound on the
        #: exact Lemma 1 value (Lemma 3 corner / centre estimates).  A
        #: weak survivor whose ``_e_ub`` sits at or below its owner's
        #: upper bound provably passes the exact pop-time keep test — the
        #: executor skips the scalar certification entirely.  ``inf``
        #: (single pushes, point lanes) just falls back to that scalar.
        self._e_ub = np.empty(0, dtype=np.float64)
        self._e_weak = np.empty(0, dtype=bool)
        self._e_epoch = np.empty(0, dtype=np.int64)
        self._e_owner = np.empty(0, dtype=np.int64)
        self._dead = np.empty(0, dtype=bool)
        self._n_dead = 0
        self._seg_start = np.zeros(1, dtype=np.int64)
        # Staged fan-out runs: (frontier, count, pages, base_slot,
        # lbs-or-None, epoch, weak) — plus whole absorb lanes
        # staged in one call each: (frontiers, n, pages, bases, lbs,
        # epochs, weak).
        self._staged: List[tuple] = []
        self._staged_lanes: List[tuple] = []
        self._dirty_adds = False
        # Mutation counter: invalidates the per-search sorted-order cache.
        self._ver = 0
        self._order_cache: Tuple[int, int, Optional[np.ndarray]] = (-1, -1, None)
        # Round state cached by begin_round() for the serve() that follows.
        self._r_key: Optional[np.ndarray] = None
        self._r_comp: Optional[np.ndarray] = None
        self._r_base: Optional[np.ndarray] = None
        self._r_occ: Optional[np.ndarray] = None
        self._r_offsets: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Registration and state sync
    # ------------------------------------------------------------------
    def register(self, search) -> int:
        """Attach one NN search's frontier to the arena; returns its id.

        Any entries already queued standalone (normally just the tree
        root) are imported as staged runs; the frontier's node slot list
        stays where it is and keeps its numbering.
        """
        f = search._frontier
        sid = len(self._searches)
        self._searches.append(search)
        if sid >= self._now.shape[0]:
            self._grow_searches()
        self._now[sid] = search.tuner.now
        self._phase[sid] = f._phase
        self._cycle[sid] = f._cycle
        self._live[sid] = 0
        self._staged_cnt[sid] = 0
        self._maxsz[sid] = f.max_size
        search._arena_sid = sid
        # Import the standalone entries before flipping the backend.  In
        # store mode the staged base is the entry's store id — the
        # frontier's slot numbering is abandoned (its node list is never
        # consulted again); otherwise the slot survives as-is.
        store = self._store
        order_pages = f._order_pages
        order_slots = f._order_slots
        f._arena = self
        f._sid = sid
        for page, slot in zip(order_pages, order_slots):
            rec = f._bounds[slot]
            if rec is None:
                lbs, epoch, weak = None, _NO_EPOCH, False
            else:
                lbs, epoch, weak = (
                    np.array([rec[1]], dtype=np.float64), rec[0], rec[2]
                )
            base = f._nodes[slot]._store_nid if store is not None else slot
            self._staged.append(
                (f, 1, np.array([page], dtype=np.int64), base, lbs,
                 epoch, weak)
            )
            self._staged_cnt[sid] += 1
        f._order_pages = None  # the arena segment is the queue now
        f._order_slots = None
        self.sync(search)
        self._dirty_adds = True
        self._ver += 1
        return sid

    def _grow_searches(self) -> None:
        for name in ("_now", "_phase", "_cycle", "_ub", "_epoch", "_wit",
                     "_qx", "_qy", "_sx", "_sy", "_ex", "_ey", "_live",
                     "_staged_cnt", "_pbit", "_pbool", "_maxsz", "_trans"):
            old = getattr(self, name)
            new = np.empty((old.shape[0] * 2,) + old.shape[1:], dtype=old.dtype)
            new[: old.shape[0]] = old
            setattr(self, name, new)

    def sync(self, search) -> None:
        """Mirror one search's mutable serve state into the arena lanes.

        Called after every absorb (``upper_bound`` moves) and after every
        ``on_finish`` re-steer (metric epoch / query points move).  The
        vectorised round reads exclusively from these lanes.
        """
        sid = search._arena_sid
        self._ub[sid] = search.upper_bound
        self._epoch[sid] = search._metric_epoch
        pb = getattr(search, "_point_bit", 0)
        self._pbit[sid] = pb
        self._pbool[sid] = pb == 1
        wp = search._witness_page
        self._wit[sid] = -1 if wp is None else wp
        q = search.query
        if q is not None:
            self._qx[sid] = q.x
            self._qy[sid] = q.y
        start = search.start
        if start is not None:
            end = search.end
            self._sx[sid] = start.x
            self._sy[sid] = start.y
            self._ex[sid] = end.x
            self._ey[sid] = end.y
            self._trans[sid] = (start.x, start.y, end.x, end.y)

    def queries_of(self, sids: List[int]) -> np.ndarray:
        """``(k, 2)`` query-point block for a point-metric kernel lane."""
        idx = np.asarray(sids, dtype=np.int64)
        return np.column_stack((self._qx[idx], self._qy[idx]))

    def transitive_of(self, sids: List[int]) -> Tuple[np.ndarray, np.ndarray]:
        """``(starts, ends)`` blocks for a transitive kernel lane."""
        idx = np.asarray(sids, dtype=np.int64)
        return (
            np.column_stack((self._sx[idx], self._sy[idx])),
            np.column_stack((self._ex[idx], self._ey[idx])),
        )

    # ------------------------------------------------------------------
    # Staging and flushing
    # ------------------------------------------------------------------
    def stage(self, f: ArrivalFrontier, nodes, lbs, epoch, weak, src) -> None:
        """Queue one fan-out run; merged into the lanes at the next flush.

        O(1) python per *run*: cached child page/MBR views are staged by
        reference, the bound row rides along as the kernel result array,
        and even the ``max_size`` footprint accounting is deferred to the
        flush (pushes only grow a queue, so the post-flush size dominates
        every intermediate one).
        """
        n = len(nodes)
        store = self._store
        if store is not None:
            # Store mode: the staged base is a store id run — no node-list
            # extension, no MBR-chunk bookkeeping (the store columns serve
            # both).  A complete fan-out starts at the parent's first
            # child; loose nodes stage as single-entry runs (the defensive
            # multi-node case splits, since arbitrary nids need not be
            # contiguous).
            if src is not None:
                base = int(store.child0[src._store_nid])
                pages = src.child_page_array()
            elif n == 1:
                base = nodes[0]._store_nid
                pages = np.array([nodes[0].page_id], dtype=np.int64)
            else:  # pragma: no cover - no driver stages loose multi-pushes
                for i, nd in enumerate(nodes):
                    self.stage(
                        f, [nd], None if lbs is None else [lbs[i]],
                        epoch, weak, None,
                    )
                return
        else:
            base = len(f._nodes)
            f._nodes.extend(nodes)
            if src is not None:
                pages = src.child_page_array()
                f._mbr_bases.append(base)
                f._mbr_chunks.append(src.child_mbr_array())
            else:
                pages = np.array(
                    [nd.page_id for nd in nodes], dtype=np.int64
                )
        if lbs is None:
            run = (f, n, pages, base, None, _NO_EPOCH, False)
        else:
            run = (f, n, pages, base,
                   lbs if isinstance(lbs, np.ndarray)
                   else np.asarray(lbs, dtype=np.float64),
                   epoch, weak)
        self._staged.append(run)
        self._bump_staged(f, n)

    def stage_lane(self, searches, nodes, n: int, lbs: np.ndarray,
                   weak: bool, ubs: Optional[np.ndarray] = None,
                   pages: Optional[np.ndarray] = None) -> None:
        """Stage one absorb lane's fan-outs in a single call.

        ``k`` searches each queue the ``n`` children of their expanded
        node, with bounds from the lane's ``(k, n)`` kernel block and each
        owner's current metric epoch.  One slim python pass over the lane
        replaces ``k`` separate ``push_many`` calls; the flush expands the
        lane into per-search runs with pure array arithmetic.  ``pages``
        optionally carries the lane's child page ids (``(k, n)`` or flat,
        row order matching ``nodes``) pre-gathered by the caller — the
        shared-scan executor reads them out of its per-fan-out page
        blocks — replacing the per-node concatenation here.
        """
        k = len(searches)
        store = self._store
        epochs = [s._metric_epoch for s in searches]
        if store is not None:
            # Store mode: bases are the parents' first-child store ids —
            # pure array arithmetic, no node-list splices, no MBR chunks.
            sids = np.fromiter(
                (s._arena_sid for s in searches), dtype=np.int64, count=k
            )
            nids = np.fromiter(
                (nd._store_nid for nd in nodes), dtype=np.int64, count=k
            )
            bases = store.child0[nids]
            self._staged_cnt[sids] += n
            fs: object = sids
        else:
            fs = [s._frontier for s in searches]
            bases_l = [len(f._nodes) for f in fs]
            for f, node, base in zip(fs, nodes, bases_l):
                f._nodes.extend(node.children)
                f._mbr_bases.append(base)
                f._mbr_chunks.append(node.child_mbr_array())
                self._staged_cnt[f._sid] += n
            bases = np.array(bases_l, dtype=np.int64)
        if pages is None:
            pages = np.concatenate(
                [node.child_page_array() for node in nodes]
            )
        else:
            pages = pages.reshape(-1)
        self._staged_lanes.append(
            (fs, n, pages, bases, lbs.ravel(),
             np.array(epochs, dtype=np.int64), weak,
             None if ubs is None else ubs.ravel())
        )

    def stage_lane_ids(self, sids: np.ndarray, nids: np.ndarray, n: int,
                       lbs: np.ndarray, weak: bool,
                       ubs: Optional[np.ndarray] = None) -> None:
        """Store-mode :meth:`stage_lane` taking id arrays directly.

        The vectorised absorb path never materialises search or node
        objects for a lane — it hands the survivor sids/nids straight
        through, and the fan-out bases, child pages and owner epochs all
        come from store/arena column gathers.  Requires an attached
        :class:`NodeStore`.
        """
        store = self._store
        bases = store.child0[nids]
        pages = store.page[
            (bases[:, None] + np.arange(n, dtype=np.int64)).reshape(-1)
        ]
        self._staged_cnt[sids] += n
        self._staged_lanes.append(
            (sids, n, pages, bases, lbs.ravel(), self._epoch[sids], weak,
             None if ubs is None else ubs.ravel())
        )

    def _bump_staged(self, f: ArrivalFrontier, n: int) -> None:
        self._staged_cnt[f._sid] += n

    def len_attached(self, f: ArrivalFrontier) -> int:
        sid = f._sid
        return int(self._live[sid]) + int(self._staged_cnt[sid])

    def _fresh(self, f: ArrivalFrontier) -> None:
        """Flush when ``f`` has staged entries or unmerged registrations."""
        if self._dirty_adds or self._staged_cnt[f._sid]:
            self.flush()

    def flush(self) -> None:
        """Merge staged runs and drop tombstoned entries — compact lanes.

        One vectorised rebuild per executor round: surviving entries keep
        their per-owner order, each owner's staged run lands at its
        segment tail, and every lane is scattered in one fancy-index write
        (python cost is O(1) per *staged run*, not per entry).
        """
        staged = self._staged
        lanes = self._staged_lanes
        if (not staged and not lanes and self._n_dead == 0
                and not self._dirty_adds):
            return
        S = len(self._searches)
        n = self._m
        owner_old = self._e_owner[:n]
        alive_idx = np.flatnonzero(~self._dead[:n])
        counts_live = np.bincount(owner_old[alive_idx], minlength=S)
        counts_new = counts_live
        have_staged = bool(staged or lanes)
        if have_staged:
            # Normalise single runs and staged lanes into one run-level
            # view: per-run owner/count/base/epoch/weak arrays plus the
            # flat page and bound data in the same run order.
            sid_parts: List[np.ndarray] = []
            count_parts: List[np.ndarray] = []
            base_parts: List[np.ndarray] = []
            epoch_parts: List[np.ndarray] = []
            weak_parts: List[np.ndarray] = []
            page_parts: List[np.ndarray] = []
            lb_parts: List[np.ndarray] = []
            ub_parts: List[np.ndarray] = []
            if staged:
                fs, ns, pages_l, bases, lbs_l, epochs, weaks = map(
                    list, zip(*staged)
                )
                k1 = len(fs)
                sid_parts.append(np.fromiter(
                    (ft._sid for ft in fs), dtype=np.int64, count=k1
                ))
                count_parts.append(np.array(ns, dtype=np.int64))
                base_parts.append(np.array(bases, dtype=np.int64))
                epoch_parts.append(np.array(epochs, dtype=np.int64))
                weak_parts.append(np.array(weaks, dtype=bool))
                page_parts.extend(pages_l)
                lb_parts.extend(
                    v if v is not None else np.full(c, math.nan)
                    for v, c in zip(lbs_l, ns)
                )
                ub_parts.extend(np.full(c, math.inf) for c in ns)
            for (lfs, ln, lpages, lbases, llbs, lepochs, lweak,
                 lubs) in lanes:
                k = len(lfs)
                sid_parts.append(
                    lfs if isinstance(lfs, np.ndarray) else np.fromiter(
                        (ft._sid for ft in lfs), dtype=np.int64, count=k
                    )
                )
                count_parts.append(np.full(k, ln, dtype=np.int64))
                base_parts.append(lbases)
                epoch_parts.append(lepochs)
                weak_parts.append(np.full(k, lweak, dtype=bool))
                page_parts.append(lpages)
                lb_parts.append(llbs)
                ub_parts.append(
                    lubs if lubs is not None
                    else np.full(k * ln, math.inf)
                )
            st_sids = (sid_parts[0] if len(sid_parts) == 1
                       else np.concatenate(sid_parts))
            st_counts = (count_parts[0] if len(count_parts) == 1
                         else np.concatenate(count_parts))
            st_bases = (base_parts[0] if len(base_parts) == 1
                        else np.concatenate(base_parts))
            st_epochs = (epoch_parts[0] if len(epoch_parts) == 1
                         else np.concatenate(epoch_parts))
            st_weaks = (weak_parts[0] if len(weak_parts) == 1
                        else np.concatenate(weak_parts))
            counts_new = counts_live + np.bincount(
                st_sids, weights=st_counts, minlength=S
            ).astype(np.int64)
        seg = np.empty(S + 1, dtype=np.int64)
        seg[0] = 0
        np.cumsum(counts_new, out=seg[1:])
        m = int(seg[-1])
        if m >= (1 << _IDX_BITS):  # would corrupt the packed-key argmins
            raise RuntimeError(
                f"arena overflow: {m} queued entries exceed the "
                f"{1 << _IDX_BITS}-entry packed-index capacity"
            )
        e_page = np.empty(m, dtype=np.int64)
        e_slot = np.empty(m, dtype=np.int64)
        e_lb = np.empty(m, dtype=np.float64)
        e_ub = np.empty(m, dtype=np.float64)
        e_weak = np.empty(m, dtype=bool)
        e_epoch = np.empty(m, dtype=np.int64)
        if alive_idx.size:
            oa = owner_old[alive_idx]
            cb = np.empty(S, dtype=np.int64)
            cb[0] = 0
            np.cumsum(counts_live[:-1], out=cb[1:])
            dest = seg[:-1][oa] + (np.arange(alive_idx.size) - cb[oa])
            e_page[dest] = self._e_page[alive_idx]
            e_slot[dest] = self._e_slot[alive_idx]
            e_lb[dest] = self._e_lb[alive_idx]
            e_ub[dest] = self._e_ub[alive_idx]
            e_weak[dest] = self._e_weak[alive_idx]
            e_epoch[dest] = self._e_epoch[alive_idx]
        if have_staged:
            total = int(st_counts.sum())
            run_off = np.empty(st_counts.shape[0], dtype=np.int64)
            run_off[0] = 0
            np.cumsum(st_counts[:-1], out=run_off[1:])
            intra = np.arange(total) - np.repeat(run_off, st_counts)
            if np.unique(st_sids).shape[0] == st_sids.shape[0]:
                # One staged run per owner (every executor round): each
                # run lands at its segment tail in one vector expression.
                dest = np.repeat(
                    seg[:-1][st_sids] + counts_live[st_sids], st_counts
                ) + intra
            else:
                # Multiple runs per owner (imports of a pre-stepped
                # search, externally driven frontiers): place each run
                # after the owner's previously placed ones.
                dest = np.empty(total, dtype=np.int64)
                fill: dict = {}
                pos = 0
                for sid, cnt in zip(st_sids.tolist(), st_counts.tolist()):
                    off = fill.get(sid, 0)
                    fill[sid] = off + cnt
                    d0 = int(seg[sid]) + int(counts_live[sid]) + off
                    dest[pos:pos + cnt] = np.arange(d0, d0 + cnt)
                    pos += cnt
            e_page[dest] = (
                page_parts[0] if len(page_parts) == 1
                else np.concatenate(page_parts)
            )
            e_slot[dest] = np.repeat(st_bases, st_counts) + intra
            e_lb[dest] = (
                lb_parts[0] if len(lb_parts) == 1
                else np.concatenate(lb_parts)
            )
            e_ub[dest] = (
                ub_parts[0] if len(ub_parts) == 1
                else np.concatenate(ub_parts)
            )
            e_epoch[dest] = np.repeat(st_epochs, st_counts)
            e_weak[dest] = np.repeat(st_weaks, st_counts)
            # Footprint accounting, deferred from stage(): pushes only
            # grow a queue, so each frontier's largest size this flush
            # window is its post-flush size (counts_new) — one vector
            # maximum over every owner covers multiple staged runs per
            # frontier too.  (Import runs were already counted standalone;
            # their post-import size never exceeds that standalone peak,
            # so folding them in here cannot overcount.)
            self._maxsz[:S] = np.maximum(self._maxsz[:S], counts_new)
        self._e_page, self._e_slot = e_page, e_slot
        self._e_lb, self._e_weak, self._e_epoch = e_lb, e_weak, e_epoch
        self._e_ub = e_ub
        self._e_owner = np.repeat(np.arange(S, dtype=np.int64), counts_new)
        self._m = m
        self._dead = np.zeros(m, dtype=bool)
        self._n_dead = 0
        self._live[:S] = counts_new
        self._seg_start = seg
        self._staged = []
        self._staged_lanes = []
        self._staged_cnt[:S] = 0
        self._flushes += 1
        self._dirty_adds = False
        self._ver += 1

    # ------------------------------------------------------------------
    # The vectorised round: heads and batched pop_until
    # ------------------------------------------------------------------
    def begin_round(self) -> np.ndarray:
        """Head arrival of every registered search (inf when empty).

        One pass over all queued entries: cyclic arrival keys from the
        closed form (``base + (page - base) % L + phase``), then a
        segmented minimum per search.  The keys are cached for the
        :meth:`serve` call of the same round.
        """
        S = len(self._searches)
        n = self._m
        owner = self._e_owner
        base = np.ceil(self._now[:S] - self._phase[:S]).astype(np.int64)
        startk = base % self._cycle[:S]
        key = (self._e_page - startk[owner]) % self._cycle[owner]
        # Tie-break equal pages toward the newest entry (the standalone
        # frontier's sorted insert places newer equal pages first); lane
        # order is chronological per owner, so the reversed index wins.
        comp = (key << _IDX_BITS) | (
            _IDX_MASK - np.arange(n, dtype=np.int64)
        )
        if self._n_dead:
            comp = np.where(self._dead, _HUGE, comp)
        occ = self._live[:S] > 0
        offsets = self._seg_start[:-1][occ]
        heads = np.full(S, math.inf, dtype=np.float64)
        if offsets.size:
            head_comp = np.minimum.reduceat(comp, offsets)
            heads[occ] = (
                base[occ] + (head_comp >> _IDX_BITS)
            ).astype(np.float64) + self._phase[:S][occ]
        self._r_key = key
        self._r_comp = comp
        self._r_base = base
        self._r_occ = occ
        self._r_offsets = offsets
        return heads

    def serve(
        self,
        due: np.ndarray,
        limits: np.ndarray,
        stricts: np.ndarray,
    ) -> dict:
        """Batched ``pop_until`` for every due search of this round.

        Consumes each due search's certified-prunable run (entries whose
        epoch-stamped bound proves a prune, up to the first survivor and
        within the pairing limit) with one mask write, and returns the
        survivors as parallel python lists: entry index, arrival, slot,
        bound, weak/stamped flags, plus the post-consumption live count.
        The caller finishes each serve in O(1): verify the survivor's keep
        (rare scalar work), download, and group it into the round's
        absorb lanes.  Must follow :meth:`begin_round` in the same round.
        """
        S = len(self._searches)
        owner = self._e_owner
        key = self._r_key
        comp = self._r_comp
        base = self._r_base
        limit_by = np.full(S, -math.inf, dtype=np.float64)
        limit_by[due] = limits
        strict_by = np.zeros(S, dtype=bool)
        strict_by[due] = stricts
        stamped = self._e_epoch == self._epoch[owner]
        prunable = stamped & (self._e_lb > self._ub[owner])
        npc = np.where(prunable, _HUGE, comp)
        sur_comp_by = np.full(S, _HUGE, dtype=np.int64)
        if self._r_offsets.size:
            sur_comp_by[self._r_occ] = np.minimum.reduceat(
                npc, self._r_offsets
            )
        arrival = (base[owner] + key).astype(np.float64) + self._phase[owner]
        lim_e = limit_by[owner]
        allowed = (arrival < lim_e) | (
            (arrival == lim_e) & ~strict_by[owner]
        )
        consumed = prunable & allowed & (
            key < (sur_comp_by >> _IDX_BITS)[owner]
        )
        cidx = np.flatnonzero(consumed)
        if cidx.size:
            self._dead[cidx] = True
            self._n_dead += cidx.size
            self._live[:S] -= np.bincount(owner[cidx], minlength=S)
            self._ver += 1
        sur_comp = sur_comp_by[due]
        has = sur_comp < _HUGE
        sidx = _IDX_MASK - (sur_comp & _IDX_MASK)
        sarr = (
            base[due] + (sur_comp >> _IDX_BITS)
        ).astype(np.float64) + self._phase[due]
        ok = has & ((sarr < limits) | ((sarr == limits) & ~stricts))
        # Actionable survivors are consumed (and their owners' clocks
        # advanced to arrival + 1) right here, in three vector writes —
        # the caller's python loop only performs the download bookkeeping.
        # The rare scalar fallbacks (failed certified keep, stale bounds)
        # re-sync the owner's clock from its tuner.
        kidx = sidx[ok]
        if kidx.size:
            kdue = due[ok]
            self._dead[kidx] = True
            self._n_dead += kidx.size
            self._live[:S] -= np.bincount(kdue, minlength=S)
            self._now[kdue] = sarr[ok] + 1.0
            self._ver += 1
        gidx = np.where(has, sidx, 0)
        live = self._live[due]
        res = {
            # Vector views for the executor's row selection and the
            # TunerLedger round flush: actionable / finish-probe rows come
            # from flatnonzero over these, and the confirmed downloads'
            # clock/counter/event updates batch straight from them instead
            # of being re-derived row by row.
            "act_np": ok,
            "has_np": has,
            "live_np": live,
            "arrival_np": sarr,
            "page_np": self._e_page[gidx],
            "idx_np": sidx,
            "slot_np": self._e_slot[gidx],
            "lb_np": self._e_lb[gidx],
            "ub_np": self._e_ub[gidx],
            "weak_np": self._e_weak[gidx],
            "stamped_np": stamped[gidx],
        }
        if self._store is None:
            # The scalar row loop reads per-row python values; the store
            # path replaces it with array passes and skips the tolists.
            res.update(
                act=ok.tolist(),
                has=has.tolist(),
                idx=sidx.tolist(),
                arrival=sarr.tolist(),
                slot=res["slot_np"].tolist(),
                lb=res["lb_np"].tolist(),
                ub=res["ub_np"].tolist(),
                weak=res["weak_np"].tolist(),
                stamped=res["stamped_np"].tolist(),
                live=live.tolist(),
            )
        return res

    def kill(self, sid: int, idx: int) -> None:
        """Tombstone one entry (a consumed survivor)."""
        self._dead[idx] = True
        self._n_dead += 1
        self._live[sid] -= 1
        self._ver += 1

    # ------------------------------------------------------------------
    # Attached-frontier operations (rare paths, full pop semantics)
    # ------------------------------------------------------------------
    def _alive_of(self, sid: int) -> np.ndarray:
        s0 = int(self._seg_start[sid])
        s1 = int(self._seg_start[sid + 1])
        if self._n_dead:
            return s0 + np.flatnonzero(~self._dead[s0:s1])
        return np.arange(s0, s1)

    def _keys_of(self, f: ArrivalFrontier, idxs: np.ndarray) -> np.ndarray:
        base = math.ceil(f._tuner.now - f._phase)
        return (self._e_page[idxs] - base % f._cycle) % f._cycle

    def peek_arrival_attached(self, f: ArrivalFrontier) -> float:
        self._fresh(f)
        idxs = self._alive_of(f._sid)
        if not idxs.size:
            return math.inf
        base = math.ceil(f._tuner.now - f._phase)
        key = int(self._keys_of(f, idxs).min())
        return base + key + f._phase

    def peek_page_attached(self, f: ArrivalFrontier) -> Optional[int]:
        self._fresh(f)
        idxs = self._alive_of(f._sid)
        if not idxs.size:
            return None
        keys = self._keys_of(f, idxs)
        comp = (keys << _IDX_BITS) | (_IDX_MASK - idxs)
        return int(self._e_page[idxs[int(np.argmin(comp))]])

    def _node_of(self, f: ArrivalFrontier, e: int) -> RTreeNode:
        """The entry's node — store column or frontier slot list."""
        slot = int(self._e_slot[e])
        store = self._store
        return store.nodes[slot] if store is not None else f._nodes[slot]

    def pop_attached(
        self, f: ArrivalFrontier, epoch: int
    ) -> Tuple[RTreeNode, Optional[float], bool, float]:
        """Attached :meth:`ArrivalFrontier.pop_with_arrival` semantics."""
        self._fresh(f)
        sid = f._sid
        idxs = self._alive_of(sid)
        if not idxs.size:
            raise RuntimeError("step() on a finished search")
        base = math.ceil(f._tuner.now - f._phase)
        keys = self._keys_of(f, idxs)
        comp = (keys << _IDX_BITS) | (_IDX_MASK - idxs)
        t = int(np.argmin(comp))
        e = int(idxs[t])
        arrival = base + int(keys[t]) + f._phase
        self.kill(sid, e)
        node = self._node_of(f, e)
        lb: Optional[float] = None
        weak = False
        if int(self._e_epoch[e]) == epoch:
            lb = float(self._e_lb[e])
            weak = bool(self._e_weak[e])
        elif f.lower_evaluator is not None:
            lb = self._eval_stale_attached(f, e, epoch)
        return node, lb, weak, arrival

    def pop_until_attached(
        self,
        f: ArrivalFrontier,
        upper_bound: float,
        epoch: int,
        limit: float = math.inf,
        strict: bool = False,
    ) -> Optional[Tuple[RTreeNode, Optional[float], bool, float]]:
        """Attached :meth:`ArrivalFrontier.pop_until` semantics.

        The scalar reference walk over one segment — used by the
        executor's continuation after a failed certified keep (the
        vectorised :meth:`serve` already consumed up to that survivor)
        and by any external driver of an attached search.
        """
        self._fresh(f)
        sid = f._sid
        idxs = self._alive_of(sid)
        if not idxs.size:
            return None
        base = math.ceil(f._tuner.now - f._phase)
        keys = self._keys_of(f, idxs)
        order = np.argsort((keys << _IDX_BITS) | (_IDX_MASK - idxs))
        for t in order.tolist():
            e = int(idxs[t])
            arrival = base + int(keys[t]) + f._phase
            if arrival > limit or (strict and arrival == limit):
                return None
            self.kill(sid, e)
            if int(self._e_epoch[e]) == epoch:
                lb = float(self._e_lb[e])
                if lb > upper_bound:
                    continue  # certified prune (weak or exact)
                return (
                    self._node_of(f, e), lb,
                    bool(self._e_weak[e]), arrival,
                )
            node = self._node_of(f, e)
            if f.lower_evaluator is not None:
                lb = self._eval_stale_attached(f, e, epoch)
                if lb is not None:
                    if lb > upper_bound:
                        continue
                    return node, lb, False, arrival
            return node, None, False, arrival
        return None

    def _eval_stale_attached(
        self, f: ArrivalFrontier, popped_idx: int, epoch: int
    ) -> Optional[float]:
        """Attached ``_eval_pending``: batch-evaluate the stale entries."""
        idxs = self._alive_of(f._sid)
        stale = idxs[self._e_epoch[idxs] != epoch]
        if not stale.size:
            return None
        store = self._store
        if store is not None:
            # One MBR-column gather replaces the per-slot chunk walk.
            rows = store.mbr[
                np.append(self._e_slot[stale], self._e_slot[popped_idx])
            ]
        else:
            nodes = f._nodes
            slots = self._e_slot[stale].tolist()
            slots.append(int(self._e_slot[popped_idx]))
            rows = np.empty((len(slots), 4), dtype=np.float64)
            for k, slot in enumerate(slots):
                rows[k] = f._mbr_row(slot, nodes[slot])
        values = f.lower_evaluator(rows)
        self._e_lb[stale] = values[:-1]
        self._e_epoch[stale] = epoch
        self._e_weak[stale] = False
        self._ver += 1
        return float(values[-1])

    # ------------------------------------------------------------------
    # Whole-queue access for attached frontiers (re-steer rescans)
    # ------------------------------------------------------------------
    def _sorted_alive(self, f: ArrivalFrontier) -> np.ndarray:
        """Live entry indices of one search, sorted by page id.

        Page order is the standalone frontier's storage order, so rescans
        observe the exact iteration order of the oracle (argmin ties in
        the upper-bound scan resolve identically).
        """
        sid = f._sid
        ver, cached_sid, cached = self._order_cache
        if ver == self._ver and cached_sid == sid and cached is not None:
            return cached
        idxs = self._alive_of(sid)
        # Equal pages order newest-first, like the standalone frontier's
        # sorted insert (real searches queue each page at most once; this
        # matters only for externally driven degenerate frontiers).
        order = idxs[np.argsort(
            (self._e_page[idxs] << _IDX_BITS) | (_IDX_MASK - idxs)
        )]
        self._order_cache = (self._ver, sid, order)
        return order

    def active_nodes_attached(self, f: ArrivalFrontier) -> List[RTreeNode]:
        self._fresh(f)
        store = self._store
        nodes = store.nodes if store is not None else f._nodes
        return [nodes[slot] for slot in
                self._e_slot[self._sorted_alive(f)].tolist()]

    def active_mbrs_attached(self, f: ArrivalFrontier) -> np.ndarray:
        self._fresh(f)
        store = self._store
        if store is not None:
            return store.mbr[self._e_slot[self._sorted_alive(f)]]
        nodes = f._nodes
        slots = self._e_slot[self._sorted_alive(f)].tolist()
        rows = np.empty((len(slots), 4), dtype=np.float64)
        for k, slot in enumerate(slots):
            rows[k] = f._mbr_row(slot, nodes[slot])
        return rows

    def store_lower_attached(
        self, f: ArrivalFrontier, rows, values: np.ndarray, epoch: int
    ) -> None:
        self._fresh(f)
        order = self._sorted_alive(f)
        sel = order[np.asarray(rows, dtype=np.int64)]
        self._e_lb[sel] = values
        self._e_epoch[sel] = epoch
        self._e_weak[sel] = False
