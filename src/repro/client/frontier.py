"""Arrival frontier — the batched struct-of-arrays candidate queue.

The boxed-tuple heap of the original :class:`ArrivalQueueMixin` pays python
per entry three times over: one ``peek_index_arrival`` call per push, one
per lazy head refresh, and one scalar bound evaluation per pop.  At the
paper's small page geometries (64-byte pages, M = 3) the per-node fan-out
never reaches the geometry kernels' dispatch floor, so the whole client hot
path used to stay scalar.  This frontier restructures the queue around two
observations:

**Arrival order is cyclic page order.**  On a uniformly replicated (1, m)
channel the next arrival of page ``p`` at clock ``now`` is
``base + (p - base) % L`` with ``base = ceil(now - phase)`` and ``L`` the
super-page length — so "earliest next arrival" is simply the cyclic
successor of ``base % L`` among the queued page ids.  Page ids never
change, so the frontier keeps its entries **sorted by page id** and pops
with one bisect: no arrival is ever computed at push time, no head ever
goes stale, and ``next_event_time`` is one closed-form expression for the
head alone (bit-identical to the scalar peek: same integer arithmetic,
same final phase addition).  This replaces the heap's per-push peek and
per-pop head-normalisation chatter with O(log n) pointer work.

**Bounds live with the queue and batch across it, not the fan-out.**
Each entry carries an epoch-stamped lower-bound record next to its node:
exact bounds from a fused whole-fan-out kernel call (large fan-outs) or a
whole-queue rescan batch (Hybrid-NN mode switches), and certified *weak*
under-estimates (see ``BroadcastNNSearch._weak_lower``) where one more
kernel dispatch would cost more than it saves — the dominant regime at
64-byte pages, where a queue of ~(H-1)(M-1) entries receives only ~M-1
new stale entries per arrival tick.  When a pop still finds no bound
under the current epoch and an evaluator is installed, one kernel call
evaluates **every** pending-unevaluated entry in the frontier at once,
regardless of how small each node's fan-out was.  A Hybrid-NN metric
switch invalidates every cached bound wholesale by bumping the epoch; the
stamps make that O(1).

Entry state is struct-of-arrays: parallel append-only per-slot lanes plus
the (page, slot) order lists.  The hot scalar lanes are plain python
lists — a list store is ~5x cheaper than a numpy scalar write, and at
R-tree queue sizes the lanes are only materialised as numpy arrays at
batch boundaries (rescan / pending-batch evaluation), where the kernels
want them.

The frontier is the kernel-path backend of :class:`ArrivalQueueMixin` for
uniformly replicated programs; the original heap remains in place as the
bit-identical scalar oracle (``kernels.use_kernels(False)`` /
``REPRO_NO_KERNELS=1``) and as the fallback for irregular layouts
(distributed indexing, which has no cyclic page order to exploit).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.geometry import kernels
from repro.rtree.node import RTreeNode


class ArrivalFrontier:
    """Arrival-ordered candidate frontier with epoch-stamped bound lanes."""

    __slots__ = (
        "_tuner",
        "_phase",
        "_cycle",
        "_order_pages",
        "_order_slots",
        "_nodes",
        "_bounds",
        "_version",
        "_peek_now",
        "_peek_version",
        "_peek_value",
        "_peek_head",
        "_push_ops",
        "_eval_guard",
        "max_size",
        "lower_evaluator",
    )

    def __init__(self, tuner) -> None:
        self._tuner = tuner
        channel = tuner.channel
        self._phase = channel.phase
        self._cycle = channel.program.super_page_length
        #: Queued page ids in ascending order plus their parallel slots.
        self._order_pages: List[int] = []
        self._order_slots: List[int] = []
        #: Per-slot lanes (parallel, append-only): the queued node and its
        #: bound record ``(epoch, lower_bound, weak)`` or ``None``.  Slots
        #: are never recycled — a frontier lives for one search, so slot
        #: growth is bounded by the nodes the search visits, and skipping
        #: the free-list bookkeeping keeps pushes and pops branch-free.
        self._nodes: List[RTreeNode] = []
        self._bounds: List[Optional[Tuple[int, float, bool]]] = []
        self._version = 0
        self._peek_now = math.nan
        self._peek_version = -1
        self._peek_value = math.inf
        self._peek_head = 0
        #: Monotone count of push operations, and the (epoch, push-count)
        #: state as of which every queued record was known to carry a valid
        #: bound — lets :meth:`_eval_pending` skip its stale scan entirely
        #: when nothing new was queued since the last full evaluation.
        self._push_ops = 0
        self._eval_guard: Tuple[int, int] = (-2, -1)
        #: Largest queue size reached — the client's memory footprint.
        self.max_size = 0
        #: ``fn(mbrs) -> lower_bounds`` under the owner's current metric;
        #: installed by the search only while batching beats the scalar
        #: loop (transitive mode), consulted by the batched pop path.
        self.lower_evaluator: Optional[Callable[[np.ndarray], np.ndarray]] = (
            None
        )

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._order_pages)

    def finished(self) -> bool:
        """True when no candidates remain queued."""
        return not self._order_pages

    def push(
        self,
        node: RTreeNode,
        lb: Optional[float] = None,
        epoch: int = -1,
        weak: bool = False,
    ) -> None:
        """Queue one node; ``lb`` pre-caches its lower bound under ``epoch``.

        ``weak=True`` marks the bound as a certified *under*-estimate of
        the exact metric (it can prove a prune but never a keep); the pop
        result carries the flag back so the owner knows whether to verify.
        No arrival is computed — cyclic page order *is* arrival order, so
        queueing is one sorted insert plus the slot-lane writes.
        """
        nodes = self._nodes
        slot = len(nodes)
        nodes.append(node)
        self._bounds.append(None if lb is None else (epoch, lb, weak))
        page = node.page_id
        i = bisect_left(self._order_pages, page)
        self._order_pages.insert(i, page)
        self._order_slots.insert(i, slot)
        self._version += 1
        self._push_ops += 1
        if len(self._order_pages) > self.max_size:
            self.max_size = len(self._order_pages)

    def push_many(
        self,
        nodes,
        lbs=None,
        epoch: int = -1,
        weak: bool = False,
    ) -> None:
        """Queue a whole fan-out in one call (one version/footprint update).

        ``lbs`` pre-caches one lower bound per node under ``epoch`` —
        either the fused whole-fan-out kernel results or the certified
        cheap estimates of the small-fan-out path.  ``nodes`` must be in
        ascending ``page_id`` order (an R-tree node's children always are:
        DFS preorder).
        """
        if not nodes:
            return
        order_pages = self._order_pages
        order_slots = self._order_slots
        slot_nodes = self._nodes
        slot_bounds = self._bounds
        base_slot = len(slot_nodes)
        pages = [node.page_id for node in nodes]
        slots = range(base_slot, base_slot + len(pages))
        slot_nodes.extend(nodes)
        if lbs is None:
            slot_bounds.extend([None] * len(pages))
        else:
            slot_bounds.extend([(epoch, lb, weak) for lb in lbs])
        # An expanded node's children occupy one gap of the sorted order:
        # their DFS-preorder ids ascend, and every page id strictly between
        # two siblings belongs to the earlier sibling's (unexpanded, hence
        # unqueued) subtree.  One bisect plus a slice splice inserts the
        # whole fan-out; anything violating the invariant (defensive only)
        # falls back to per-item inserts.
        i = bisect_left(order_pages, pages[0])
        if i == len(order_pages) or order_pages[i] > pages[-1]:
            order_pages[i:i] = pages
            order_slots[i:i] = slots
        else:  # pragma: no cover - non-sibling batches
            for page, slot in zip(pages, slots):
                j = bisect_left(order_pages, page)
                order_pages.insert(j, page)
                order_slots.insert(j, slot)
        self._version += 1
        self._push_ops += 1
        if len(order_pages) > self.max_size:
            self.max_size = len(order_pages)

    # ------------------------------------------------------------------
    # Cyclic-order head selection
    # ------------------------------------------------------------------
    def _head_index(self) -> int:
        """Order index of the truly-next entry at the current clock."""
        base = math.ceil(self._tuner.now - self._phase)
        i = bisect_left(self._order_pages, base % self._cycle)
        if i == len(self._order_pages):
            i = 0  # wrap: the earliest page of the next index copy
        return i

    def peek_arrival(self) -> float:
        """Arrival time of the truly-next queued page (inf when empty).

        Cached per (clock, queue-version) state: the scheduler peeks every
        unstepped search once per event, and nothing moved for those.  The
        head's order index is cached alongside, so the pop that usually
        follows a peek at the same state skips its bisect entirely.
        """
        if not self._order_pages:
            return math.inf
        now = self._tuner.now
        if now == self._peek_now and self._version == self._peek_version:
            return self._peek_value
        base = math.ceil(now - self._phase)
        i = bisect_left(self._order_pages, base % self._cycle)
        if i == len(self._order_pages):
            i = 0
        page = self._order_pages[i]
        value = base + (page - base) % self._cycle + self._phase
        self._peek_now = now
        self._peek_version = self._version
        self._peek_value = value
        self._peek_head = i
        return value

    def peek_page(self) -> Optional[int]:
        """Page id of the truly-next queued entry (``None`` when empty).

        The "next page needed" half of the external-driver protocol: which
        page this search is waiting for, without computing its arrival
        time.  (The shared-scan executor's specialised serve loops inline
        the same head selection; this is the reference form for drivers
        that want one page at a time, property-tested against
        :meth:`pop_with_arrival`.)
        """
        if not self._order_pages:
            return None
        if (
            self._tuner.now == self._peek_now
            and self._version == self._peek_version
        ):
            return self._order_pages[self._peek_head]
        return self._order_pages[self._head_index()]

    # ------------------------------------------------------------------
    # Popping with lazily batched bounds
    # ------------------------------------------------------------------
    def pop(
        self, epoch: int = -1
    ) -> Tuple[RTreeNode, Optional[float], bool]:
        """Remove and return ``(next_node, lower_bound_or_None, weak)``.

        The bound is served from the epoch-stamped record when possible.
        On a miss, one kernel call evaluates **all** pending-unevaluated
        entries (the arrival-tick batch) provided an evaluator is installed
        and the batch is worthwhile; otherwise ``None`` is returned and the
        caller computes the single bound scalar — bit-identical either way.
        ``weak`` is True when the bound is a certified under-estimate (it
        can prove a prune, never a keep).
        """
        if not self._order_pages:
            raise RuntimeError("step() on a finished search")
        if (
            self._tuner.now == self._peek_now
            and self._version == self._peek_version
        ):
            # The scheduler peeked at this exact state just before
            # dispatching the step — reuse its head index.
            i = self._peek_head
        else:
            i = self._head_index()
        self._order_pages.pop(i)
        slot = self._order_slots.pop(i)
        self._version += 1
        node = self._nodes[slot]
        record = self._bounds[slot]
        lb: Optional[float] = None
        weak = False
        if record is not None and record[0] == epoch:
            lb = record[1]
            weak = record[2]
        elif self.lower_evaluator is not None:
            lb = self._eval_pending(node, epoch)
        return node, lb, weak

    def pop_with_arrival(
        self, epoch: int = -1
    ) -> Tuple[RTreeNode, Optional[float], bool, float]:
        """:meth:`pop` plus the popped page's arrival time at this clock.

        The "absorb this page" half of the external-driver protocol: a
        driver that downloads the popped page itself needs its arrival —
        one closed-form expression, identical to
        :meth:`~repro.broadcast.tuner.ChannelTuner.peek_index_arrival` —
        returned alongside the entry instead of recomputed.  Reuses the
        head index *and* arrival cached by a preceding
        :meth:`peek_arrival` at the same (clock, queue) state.  (The
        shared-scan executor's kNN/range/window drains inline this exact
        arithmetic for whole runs of pops; this method is the reference
        one-pop form, property-tested against them.)
        """
        if not self._order_pages:
            raise RuntimeError("step() on a finished search")
        now = self._tuner.now
        if now == self._peek_now and self._version == self._peek_version:
            i = self._peek_head
            arrival = self._peek_value
        else:
            base = math.ceil(now - self._phase)
            i = bisect_left(self._order_pages, base % self._cycle)
            if i == len(self._order_pages):
                i = 0
            page = self._order_pages[i]
            arrival = base + (page - base) % self._cycle + self._phase
        self._order_pages.pop(i)
        slot = self._order_slots.pop(i)
        self._version += 1
        node = self._nodes[slot]
        record = self._bounds[slot]
        lb: Optional[float] = None
        weak = False
        if record is not None and record[0] == epoch:
            lb = record[1]
            weak = record[2]
        elif self.lower_evaluator is not None:
            lb = self._eval_pending(node, epoch)
        return node, lb, weak, arrival

    def pop_until(
        self,
        upper_bound: float,
        epoch: int,
        limit: float = math.inf,
        strict: bool = False,
    ) -> Optional[Tuple[RTreeNode, Optional[float], bool, float]]:
        """Pop and prune entries until one needs the caller; batch form.

        Consumes the truly-next entries in arrival order while each one's
        cached bound *proves* a prune — an exact or weak record under
        ``epoch`` with ``lb > upper_bound`` (a weak bound is a certified
        under-estimate, so it proves prunes, never keeps) — and its arrival
        lies within ``limit`` (``<=``, or ``<`` when ``strict``; the
        shared-scan driver passes the sibling search's next event time
        here, reproducing ``run_all``'s pair ping-pong tie rule).  Stops
        and returns ``(node, lb, weak, arrival)`` at the first entry the
        caller must handle: a keeper (exact ``lb <= upper_bound``), a weak
        bound that could not prove its prune, or a missing bound.  Returns
        ``None`` when the queue empties or the next arrival falls outside
        ``limit``.

        One call replaces a pop-per-prune driver round-trip: pruning pops
        never move the channel clock, so the cyclic-order base is computed
        once for the whole run.
        """
        order_pages = self._order_pages
        if not order_pages:
            return None
        order_slots = self._order_slots
        nodes = self._nodes
        bounds = self._bounds
        cycle = self._cycle
        phase = self._phase
        base = math.ceil(self._tuner.now - phase)
        start = base % cycle
        while order_pages:
            i = bisect_left(order_pages, start)
            if i == len(order_pages):
                i = 0
            page = order_pages[i]
            arrival = base + (page - base) % cycle + phase
            if arrival > limit or (strict and arrival == limit):
                return None
            order_pages.pop(i)
            slot = order_slots.pop(i)
            self._version += 1
            record = bounds[slot]
            if record is not None and record[0] == epoch:
                lb = record[1]
                if lb > upper_bound:
                    continue  # certified prune (weak or exact)
                return nodes[slot], lb, record[2], arrival
            node = nodes[slot]
            if self.lower_evaluator is not None:
                lb = self._eval_pending(node, epoch)
                if lb is not None:
                    if lb > upper_bound:
                        continue  # exact prune from the batch evaluation
                    return node, lb, False, arrival
            return node, None, False, arrival
        return None

    def _eval_pending(self, popped: RTreeNode, epoch: int) -> Optional[float]:
        """Batch-evaluate every stale entry plus the popped node.

        One kernel call covers the whole pending-unevaluated set — the
        arrival-tick batch that makes the bound evaluation independent of
        any single node's fan-out.  Entries whose epoch-stamped bound is
        still valid are never re-evaluated, and the stale scan itself is
        skipped entirely when no push happened since the queue was last
        known fully stamped under this epoch (the ``_eval_guard`` state) —
        a pop can only remove entries, never un-stamp one.
        """
        if self._eval_guard == (epoch, self._push_ops):
            return None
        stale = [
            slot
            for slot in self._order_slots
            if (rec := self._bounds[slot]) is None or rec[0] != epoch
        ]
        if not stale:
            # Nothing pending besides the popped head: a one-lane kernel
            # call cannot beat the caller's scalar evaluation (the only
            # installed evaluator, the transitive metric, wins from two
            # lanes up), and the guard spares future scans.
            self._eval_guard = (epoch, self._push_ops)
            return None
        nodes = [self._nodes[slot] for slot in stale]
        nodes.append(popped)
        assert self.lower_evaluator is not None
        mbrs = kernels.as_mbr_array([n.mbr for n in nodes])
        values = self.lower_evaluator(mbrs)
        for slot, value in zip(stale, values.tolist()):
            self._bounds[slot] = (epoch, value, False)
        self._eval_guard = (epoch, self._push_ops)
        return float(values[-1])

    # ------------------------------------------------------------------
    # Whole-queue access (Hybrid-NN's initial upper-bound rescan)
    # ------------------------------------------------------------------
    def active_nodes(self) -> List[RTreeNode]:
        """The queued nodes, in cyclic page order."""
        nodes = []
        for slot in self._order_slots:
            node = self._nodes[slot]
            assert node is not None
            nodes.append(node)
        return nodes

    def store_lower(self, rows, values: np.ndarray, epoch: int) -> None:
        """Cache exact lower bounds for the given :meth:`active_nodes` rows."""
        vals = values.tolist()
        for k, row in enumerate(rows):
            self._bounds[self._order_slots[row]] = (epoch, vals[k], False)
        if len(vals) == len(self._order_slots):
            # A whole-queue rescan leaves every record stamped: pop-misses
            # under this epoch need no stale scan until the next push.
            self._eval_guard = (epoch, self._push_ops)
