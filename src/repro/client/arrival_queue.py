"""Arrival-ordered candidate queue shared by every steppable search.

All broadcast searches (NN, kNN, range) consume index pages in the order
they fly by, so they share one queue discipline: a priority queue keyed by
each node's next on-air arrival, with stale heads refreshed lazily and the
result cached per (clock, head) state.  The mixin also tracks the largest
queue size reached — the client's memory footprint (Section 4.2.4 bounds
the delayed-pruning queue by ``(H - 1) x (M - 1)`` MBRs for a DFS-ordered
broadcast).

Subclasses provide ``self.tuner`` and call :meth:`_init_queue` before the
first :meth:`_push`.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import List, Optional, Tuple

from repro.broadcast.tuner import ChannelTuner
from repro.rtree.node import RTreeNode


class ArrivalQueueMixin:
    """Queue plumbing for searches driven by broadcast arrival order."""

    tuner: ChannelTuner

    def _init_queue(self) -> None:
        self._counter = itertools.count()
        self._queue: List[Tuple[float, int, RTreeNode]] = []
        #: Cached (clock, head-seq) of the last head normalization, so the
        #: scheduler's next_event_time / step pairs don't re-peek arrivals.
        self._head_state: Optional[Tuple[float, int]] = None
        #: Largest queue size reached — the client's memory footprint.
        self.max_queue_size = 0

    def _push(self, node: RTreeNode) -> None:
        arrival = self.tuner.peek_index_arrival(node.page_id)
        heapq.heappush(self._queue, (arrival, next(self._counter), node))
        self._head_state = None
        if len(self._queue) > self.max_queue_size:
            self.max_queue_size = len(self._queue)

    def _normalize_head(self) -> None:
        """Refresh stale arrival keys so the head is the true next page.

        Arrivals are computed at push time; by pop time the clock may have
        moved past them, in which case the node's next replica is later.
        Recomputed keys never decrease, so one sift per displaced head
        converges.  The result is cached per (clock, head) state: arrivals
        only go stale when this channel's clock moves or the queue changes,
        both of which invalidate the cache.
        """
        if not self._queue:
            return
        state = (self.tuner.now, self._queue[0][1])
        if state == self._head_state:
            return
        while True:
            arrival, seq, node = self._queue[0]
            true_arrival = self.tuner.peek_index_arrival(node.page_id)
            if true_arrival <= arrival:
                break
            heapq.heapreplace(self._queue, (true_arrival, seq, node))
        self._head_state = (self.tuner.now, self._queue[0][1])

    def _pop_head(self) -> RTreeNode:
        """Normalize, pop and return the truly-next node."""
        if not self._queue:
            raise RuntimeError("step() on a finished search")
        self._normalize_head()
        _, _, node = heapq.heappop(self._queue)
        self._head_state = None
        return node

    # ------------------------------------------------------------------
    # Introspection for the scheduler
    # ------------------------------------------------------------------
    def finished(self) -> bool:
        return not self._queue

    def next_event_time(self) -> float:
        """Arrival time of the next page this search would download."""
        self._normalize_head()
        return self._queue[0][0] if self._queue else math.inf

    @property
    def now(self) -> float:
        return self.tuner.now
