"""Arrival-ordered candidate queue shared by every steppable search.

All broadcast searches (NN, kNN, window, range) consume index pages in the
order they fly by, so they share one queue discipline: candidates ordered
by each node's next on-air arrival, popped truly-next under the current
channel clock.  The mixin also tracks the largest queue size reached — the
client's memory footprint (Section 4.2.4 bounds the delayed-pruning queue
by ``(H - 1) x (M - 1)`` MBRs for a DFS-ordered broadcast).

Two interchangeable backends produce bit-identical pop orders:

* the struct-of-arrays :class:`~repro.client.frontier.ArrivalFrontier`
  (kernel path) — arrivals refreshed per arrival tick in one batched call,
  lower bounds evaluated lazily in queue-wide kernel batches;
* the original boxed-tuple heap with lazy head normalisation (scalar
  oracle, selected by ``kernels.use_kernels(False)`` /
  ``REPRO_NO_KERNELS=1``) — arrivals are computed at push time and stale
  heads are refreshed one sift at a time, with the result cached per
  (clock, head) state.

Subclasses provide ``self.tuner`` and call :meth:`_init_queue` before the
first :meth:`_push`.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import List, Optional, Tuple

from repro.broadcast.tuner import ChannelTuner
from repro.client.frontier import ArrivalFrontier
from repro.geometry import kernels
from repro.rtree.node import RTreeNode


class ArrivalQueueMixin:
    """Queue plumbing for searches driven by broadcast arrival order."""

    tuner: ChannelTuner

    def _init_queue(self) -> None:
        #: Backend choice is fixed per search: a search constructed under
        #: ``use_kernels(False)`` stays on the oracle heap for its
        #: lifetime, and layouts without cyclic page order (distributed
        #: indexing, broadcast-disk schedules) give the frontier's
        #: closed-form arrival arithmetic nothing to exploit — the
        #: generating BroadcastLayout declares the capability and the
        #: program mirrors it as ``has_cyclic_order``.
        use_frontier = kernels.enabled() and getattr(
            getattr(getattr(self.tuner, "channel", None), "program", None),
            "has_cyclic_order",
            False,
        )
        self._heap_max = 0
        if use_frontier:
            frontier = ArrivalFrontier(self.tuner)
            self._frontier: Optional[ArrivalFrontier] = frontier
            # Flatten the dispatch for the hot loop: the frontier's own
            # bound methods replace the mixin's forwarding wrappers.
            self._push = frontier.push
            self._pop_head_bound = frontier.pop
            self.next_event_time = frontier.peek_arrival
            self.finished = frontier.finished
            return
        self._frontier = None
        self._counter = itertools.count()
        self._queue: List[Tuple[float, int, RTreeNode]] = []
        #: Cached (clock, head-seq) of the last head normalization, so the
        #: scheduler's next_event_time / step pairs don't re-peek arrivals.
        self._head_state: Optional[Tuple[float, int]] = None

    @property
    def max_queue_size(self) -> int:
        """Largest queue size reached — the client's memory footprint."""
        f = self._frontier
        if f is not None:
            return f.footprint()
        return self._heap_max

    def _push(
        self,
        node: RTreeNode,
        lb: Optional[float] = None,
        epoch: int = -1,
        weak: bool = False,
    ) -> None:
        """Queue a node; ``lb`` pre-caches its lower bound under ``epoch``.

        The heap backend ignores the bound hint — its callers cache bounds
        in the search's page-id dict instead.
        """
        if self._frontier is not None:
            # Only reachable when a subclass calls the unbound method; the
            # instance attribute set in _init_queue normally shadows it.
            self._frontier.push(node, lb, epoch, weak)
            return
        arrival = self.tuner.peek_index_arrival(node.page_id)
        heapq.heappush(self._queue, (arrival, next(self._counter), node))
        self._head_state = None
        if len(self._queue) > self._heap_max:
            self._heap_max = len(self._queue)

    def _normalize_head(self) -> None:
        """Refresh stale arrival keys so the head is the true next page.

        Arrivals are computed at push time; by pop time the clock may have
        moved past them, in which case the node's next replica is later.
        Recomputed keys never decrease, so one sift per displaced head
        converges.  The result is cached per (clock, head) state: arrivals
        only go stale when this channel's clock moves or the queue changes,
        both of which invalidate the cache.
        """
        if not self._queue:
            return
        state = (self.tuner.now, self._queue[0][1])
        if state == self._head_state:
            return
        while True:
            arrival, seq, node = self._queue[0]
            true_arrival = self.tuner.peek_index_arrival(node.page_id)
            if true_arrival <= arrival:
                break
            heapq.heapreplace(self._queue, (true_arrival, seq, node))
        self._head_state = (self.tuner.now, self._queue[0][1])

    def _pop_head(self) -> RTreeNode:
        """Normalize, pop and return the truly-next node."""
        node, _, _ = self._pop_head_bound()
        return node

    def _pop_head_bound(
        self, epoch: int = -1
    ) -> Tuple[RTreeNode, Optional[float], bool]:
        """Pop the truly-next node plus its cached/batched lower bound.

        The bound is ``None`` when this backend does not manage bounds (the
        oracle heap) or when the frontier's pending-unevaluated set is too
        small for a worthwhile kernel batch — the caller then evaluates the
        single bound scalar, which is bit-identical either way.  The third
        element flags a *weak* bound: a certified under-estimate that can
        prove a prune but must be verified before a keep.
        """
        if self._frontier is not None:
            return self._frontier.pop(epoch)
        if not self._queue:
            raise RuntimeError("step() on a finished search")
        self._normalize_head()
        _, _, node = heapq.heappop(self._queue)
        self._head_state = None
        return node, None, False

    # ------------------------------------------------------------------
    # Introspection for the scheduler
    # ------------------------------------------------------------------
    def finished(self) -> bool:
        if self._frontier is not None:
            return self._frontier.finished()
        return not self._queue

    def next_event_time(self) -> float:
        """Arrival time of the next page this search would download."""
        if self._frontier is not None:
            return self._frontier.peek_arrival()
        self._normalize_head()
        return self._queue[0][0] if self._queue else math.inf

    @property
    def now(self) -> float:
        return self.tuner.now
