"""Pruning policies: exact NN and the ANN approximation of Section 5.

The exact policy prunes only nodes that provably cannot improve the answer
(handled by the search itself via MinDist / MinTransDist).  The ANN policy
additionally discards nodes whose *probability* of containing the answer is
small, estimated by the covered-area fraction of the node's MBR:

* Heuristic 1 (plain NN): overlap of ``circle(query, upper_bound)``;
* Heuristic 2 (Hybrid Case 3): overlap of the ellipse with foci ``(p, r)``
  and major axis ``upper_bound``.

A node is pruned when the covered fraction is at most ``alpha``.  ``alpha``
may be fixed or the paper's dynamic value ``node_depth / tree_height *
factor`` (Equation 4): near the root alpha ~ 0 (prudent, pruning costs
whole subtrees), near the leaves alpha grows (aggressive, penalty is
small).  The node currently witnessing the upper bound is never pruned, so
the search always reaches a real data point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from repro.geometry import (
    Circle,
    Ellipse,
    Point,
    Rect,
    circle_rect_overlap_ratio,
    ellipse_rect_overlap_ratio,
)

#: alpha as a function of (node_depth, tree_height).
AlphaFunction = Callable[[int, int], float]


def fixed_alpha(alpha: float) -> AlphaFunction:
    """A constant pruning threshold (the static baseline of Lin et al.)."""
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    return lambda depth, height: alpha


def dynamic_alpha(factor: float = 1.0) -> AlphaFunction:
    """Equation 4: ``alpha = node_depth / tree_height * factor``.

    The paper uses ``factor = 1`` for Double-NN and Window-Based-TNN and
    ``factor = 1/150`` or ``1/200`` for Hybrid-NN.
    """

    def alpha(depth: int, height: int) -> float:
        if height <= 0:
            return 0.0
        return min(max(depth / height * factor, 0.0), 1.0)

    return alpha


@dataclass(frozen=True)
class PruneContext:
    """Everything a policy may inspect when deciding to drop a node."""

    mbr: Rect
    depth: int
    tree_height: int
    upper_bound: float
    #: Plain-NN query point (None in transitive mode).
    query: Optional[Point]
    #: Transitive-mode endpoints (None in plain mode).
    start: Optional[Point]
    end: Optional[Point]
    #: True when this node is the current witness of the upper bound.
    is_bound_witness: bool
    #: Data points in the node's subtree (for the probability estimate).
    point_count: int = 1


class PruningPolicy(Protocol):
    """Decides whether a *not-yet-excluded* node may be skipped anyway.

    A policy may set ``trivial = True`` to promise ``should_prune`` is a
    constant ``False``; the search then skips building the
    :class:`PruneContext` on its hot path.
    """

    def should_prune(self, ctx: PruneContext) -> bool:  # pragma: no cover
        ...


class ExactPolicy:
    """Exact NN search: no approximate pruning at all."""

    name = "exact"
    trivial = True

    def should_prune(self, ctx: PruneContext) -> bool:
        return False


class AnnPolicy:
    """Approximate NN pruning via MBR coverage (Heuristics 1 and 2).

    The paper prunes a node when the estimated *probability* that it
    contains a bound-improving point falls below alpha, with the node's
    contents assumed uniformly distributed inside its MBR.  Under that very
    assumption a node holding ``n`` points has

        ``P(some point in overlap) = 1 - (1 - ratio)^n``

    where ``ratio = area(shape ∩ MBR) / area(MBR)``.  For ``n = 1`` this is
    exactly the paper's overlap ratio; for the large subtrees behind
    shallow nodes it correctly saturates toward 1 so a top-level node that
    covers the query region is never discarded on a sliver-thin *relative*
    overlap — a literal ratio-only test does exactly that and wrecks the
    answer quality the ANN optimisation relies on (see DESIGN.md).
    """

    name = "ann"

    def __init__(self, alpha: AlphaFunction | float = 1.0) -> None:
        if isinstance(alpha, (int, float)):
            alpha = fixed_alpha(float(alpha))
        self.alpha = alpha

    def should_prune(self, ctx: PruneContext) -> bool:
        if ctx.is_bound_witness:
            # The witness must stay visitable or the search may terminate
            # without reaching any leaf (Section 5.1).
            return False
        if ctx.upper_bound == float("inf"):
            # No bound yet: the covering shape is the whole plane.
            return False
        threshold = self.alpha(ctx.depth, ctx.tree_height)
        if threshold <= 0.0:
            return False
        if ctx.query is not None:
            shape_ratio = circle_rect_overlap_ratio(
                Circle(ctx.query, ctx.upper_bound), ctx.mbr
            )
        else:
            assert ctx.start is not None and ctx.end is not None
            shape_ratio = ellipse_rect_overlap_ratio(
                Ellipse(ctx.start, ctx.end, ctx.upper_bound), ctx.mbr
            )
        return self._containment_probability(shape_ratio, ctx.point_count) <= threshold

    @staticmethod
    def _containment_probability(ratio: float, count: int) -> float:
        """``1 - (1 - ratio)^count`` with numerical care at the edges."""
        if ratio >= 1.0:
            return 1.0
        if ratio <= 0.0:
            return 0.0
        n = max(count, 1)
        return -math.expm1(n * math.log1p(-ratio))
