"""Steppable broadcast k-nearest-neighbor search.

Generalises :class:`~repro.client.search.BroadcastNNSearch` to ``k``
answers: the pruning bound is the k-th best candidate distance, everything
else (arrival-order queue, delayed pruning, doze-between-pages accounting)
is identical.  Not used by the TNN algorithms themselves but part of the
public client API — a broadcast spatial library without kNN would be
incomplete, and the generalised TNN variants of future work build on it.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Tuple

from repro.broadcast.tuner import ChannelTuner
from repro.client.arrival_queue import ArrivalQueueMixin
from repro.geometry import Point, distance
from repro.rtree.tree import RTree


class BroadcastKNNSearch(ArrivalQueueMixin):
    """Exact k-NN over one broadcast channel, in arrival order."""

    def __init__(
        self,
        tree: RTree,
        tuner: ChannelTuner,
        query: Point,
        k: int,
        start_time: float = 0.0,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.tree = tree
        self.tuner = tuner
        self.query = query
        self.k = k
        #: Max-heap (negated distances) of the best k candidates so far.
        self._best: List[Tuple[float, int, Point]] = []
        self._init_queue()
        tuner.advance_to(start_time)
        self._push(tree.root)

    # ------------------------------------------------------------------
    @property
    def bound(self) -> float:
        """The k-th best candidate distance (inf until k candidates seen)."""
        if len(self._best) < self.k:
            return math.inf
        return -self._best[0][0]

    def _offer(self, pt: Point) -> None:
        d = distance(self.query, pt)
        entry = (-d, next(self._counter), pt)
        if len(self._best) < self.k:
            heapq.heappush(self._best, entry)
        elif d < self.bound:
            heapq.heapreplace(self._best, entry)

    # ------------------------------------------------------------------
    def step(self) -> None:
        node = self._pop_head()
        if node.mbr.mindist(self.query) > self.bound:
            return
        self.tuner.download_index_page(node.page_id)
        if node.is_leaf:
            for pt in node.points:
                self._offer(pt)
        else:
            for child in node.children:
                self._push(child)

    def run_to_completion(self) -> List[Tuple[Point, float]]:
        while not self.finished():
            self.step()
        return self.results()

    def results(self) -> List[Tuple[Point, float]]:
        """The (up to) k nearest points, ascending by distance."""
        ordered = sorted(self._best, key=lambda e: -e[0])
        return [(pt, -negd) for negd, _, pt in ordered]
