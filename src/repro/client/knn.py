"""Steppable broadcast k-nearest-neighbor search.

Generalises :class:`~repro.client.search.BroadcastNNSearch` to ``k``
answers: the pruning bound is the k-th best candidate distance, everything
else (arrival-order queue, delayed pruning, doze-between-pages accounting)
is identical.  Not used by the TNN algorithms themselves but part of the
public client API — a broadcast spatial library without kNN would be
incomplete, and the generalised TNN variants of future work build on it.

Queue plumbing comes from the shared arrival frontier; on the kernel
path, leaf absorption evaluates every leaf point in one
:func:`kernels.point_dists` call and pre-filters the candidate heap
offers with ``np.partition``.  The scalar per-point loop stays as the
bit-identical oracle (``kernels.use_kernels(False)``).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import List, Tuple

import numpy as np

from repro.broadcast.tuner import ChannelTuner
from repro.client.arrival_queue import ArrivalQueueMixin
from repro.geometry import Point, distance, kernels
from repro.rtree.node import RTreeNode
from repro.rtree.tree import RTree


class BroadcastKNNSearch(ArrivalQueueMixin):
    """Exact k-NN over one broadcast channel, in arrival order."""

    def __init__(
        self,
        tree: RTree,
        tuner: ChannelTuner,
        query: Point,
        k: int,
        start_time: float = 0.0,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.tree = tree
        self.tuner = tuner
        self.query = query
        self.k = k
        #: Max-heap (negated distances) of the best k candidates so far.
        self._best: List[Tuple[float, int, Point]] = []
        self._offer_seq = itertools.count()
        self._init_queue()
        tuner.advance_to(start_time)
        self._push(tree.root)

    # ------------------------------------------------------------------
    @property
    def bound(self) -> float:
        """The k-th best candidate distance (inf until k candidates seen)."""
        if len(self._best) < self.k:
            return math.inf
        return -self._best[0][0]

    def _offer(self, pt: Point) -> None:
        self._offer_known(pt, distance(self.query, pt))

    def _offer_known(self, pt: Point, d: float) -> None:
        """Offer a candidate whose distance is already evaluated."""
        entry = (-d, next(self._offer_seq), pt)
        if len(self._best) < self.k:
            heapq.heappush(self._best, entry)
        elif d < self.bound:
            heapq.heapreplace(self._best, entry)

    # ------------------------------------------------------------------
    def step(self) -> None:
        node = self._pop_head()
        if node.mbr.mindist(self.query) > self.bound:
            return
        self.tuner.download_index_page(node.page_id)
        if node.is_leaf:
            self._absorb_leaf(node)
        else:
            self._push_children(node)

    def _push_children(self, node: RTreeNode) -> None:
        """Queue a whole fan-out (kNN pushes without pre-computed bounds).

        The frontier backend takes the whole sibling run in one sorted
        splice; the oracle heap keeps its per-entry pushes.
        """
        if self._frontier is not None:
            self._frontier.push_many(node.children, src=node)
        else:
            for child in node.children:
                self._push(child)

    def _absorb_leaf(self, node: RTreeNode) -> None:
        if not (
            kernels.enabled() and node.fanout >= kernels.min_batch_leaf()
        ):
            for pt in node.points:
                self._offer(pt)
            return
        # One kernel call covers the whole leaf; each element is
        # bit-identical to math.hypot, so replaying the offer loop on the
        # precomputed distances reproduces the scalar heap exactly.
        self._absorb_leaf_known(node, kernels.point_dists(self.query, node.points_array()))

    def _absorb_leaf_known(self, node: RTreeNode, d: np.ndarray) -> None:
        """Replay the offer loop on a precomputed leaf distance row.

        ``d`` may come from the per-leaf kernel call above or from a
        multi-query batch row of the shared-scan executor — each element is
        bit-identical to ``math.hypot``, so the candidate heap evolves
        exactly as on the scalar path.
        """
        if len(self._best) < self.k:
            for i, pt in enumerate(node.points):
                self._offer_known(pt, float(d[i]))
            return
        idx = np.flatnonzero(d < self.bound)
        if idx.size == 0:
            return
        if idx.size > self.k:
            # Only candidates at or below the k-th smallest candidate
            # distance can survive; points beyond it either never enter
            # the heap or are evicted before the leaf is fully absorbed,
            # and dropping them does not disturb which (or in what
            # relative offer order) the survivors are offered.  Ties at
            # the cut are kept, so this is a superset of any k-smallest.
            v = np.partition(d[idx], self.k - 1)[self.k - 1]
            idx = idx[d[idx] <= v]
        for i in idx.tolist():
            self._offer_known(node.points[i], float(d[i]))

    def run_to_completion(self) -> List[Tuple[Point, float]]:
        while not self.finished():
            self.step()
        return self.results()

    def results(self) -> List[Tuple[Point, float]]:
        """The (up to) k nearest points, ascending by (distance, offer order).

        The offer-order tiebreak makes the listing independent of the
        binary heap's internal layout, which the kernel path's candidate
        pre-filter is allowed to perturb (it skips offers that provably
        cannot survive, without renumbering the survivors).
        """
        ordered = sorted(self._best, key=lambda e: (-e[0], e[1]))
        return [(pt, -negd) for negd, _, pt in ordered]
