"""Cooperative scheduler for steppable searches on parallel channels.

A mobile device tuned into multiple channels advances each channel's search
as its pages arrive.  :func:`run_all` interleaves any number of steppable
searches in simulated-time order, stepping whichever search would download
the earliest page next — this is what "the two NN queries are processed in
parallel" (Algorithm 1, line 3) means operationally.  An optional callback
fires after every step so a coordinator (Hybrid-NN) can react the moment
one channel finishes.

:func:`run_all` keeps the unfinished searches in a lazy-invalidation event
heap — O(log channels) per simulated page arrival — so one client can
interleave many channels (the async channel tuners of the roadmap).  Keys
are revalidated at pop time, which absorbs ``after_step`` callbacks that
mutate *other* searches (Hybrid-NN's re-steering): a mutated search is
simply re-keyed the next time it reaches the top.  The one requirement is
the natural one for simulated time — a search's ``next_event_time`` never
moves below the event times already dispatched (it can only grow as the
channel clock advances).  :func:`run_all_scan`, the original O(channels)
argmin scan, stays as the brute-force reference oracle for the property
tests.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Optional, Protocol, Sequence


class Steppable(Protocol):
    """Anything the scheduler can drive (NN and range searches qualify)."""

    def finished(self) -> bool:  # pragma: no cover - protocol
        ...

    def next_event_time(self) -> float:  # pragma: no cover - protocol
        ...

    def step(self) -> None:  # pragma: no cover - protocol
        ...


def run_all(
    searches: Sequence[Steppable],
    after_step: Optional[Callable[[Steppable], None]] = None,
    on_finish: Optional[Callable[[Steppable], None]] = None,
) -> None:
    """Drive all searches to completion in simulated-time order.

    At every iteration the unfinished search with the earliest next page
    arrival is stepped once (ties broken by position in ``searches``, like
    the scan reference).  ``after_step(search)`` runs after each step and
    ``on_finish(search)`` after the step that completes a search; either
    may mutate the *other* searches (Hybrid-NN's re-steering) before
    scheduling continues.  Finish-driven coordinators should prefer
    ``on_finish`` — it lets the scheduler skip the per-event re-peek of
    searches no callback could have touched.
    """
    if len(searches) == 1:
        s = searches[0]
        if s.finished():
            return
        while not s.finished():
            s.step()
            if after_step is not None:
                after_step(s)
        if on_finish is not None:
            on_finish(s)
        return
    if len(searches) == 2:
        # The paper's own workload shape (two channels) dominates; skip
        # the heap and ping-pong on two floats.  A finished search's
        # next_event_time is inf, which retires it from the comparison.
        a, b = searches
        ta = a.next_event_time()
        tb = b.next_event_time()
        while True:
            stepped = a if ta <= tb else b  # tie: first search, like scan
            if stepped is a:
                if ta == math.inf:
                    return
                a.step()
            else:
                b.step()
            fired = False
            if after_step is not None:
                after_step(stepped)
                fired = True
            if on_finish is not None and stepped.finished():
                on_finish(stepped)
                fired = True
            if not fired:
                if stepped is a:
                    ta = a.next_event_time()
                else:
                    tb = b.next_event_time()
                continue
            # A callback may have re-steered either search: refresh both,
            # exactly like the scan reference's per-event argmin.
            ta = a.next_event_time()
            tb = b.next_event_time()
    heap = [
        (s.next_event_time(), i)
        for i, s in enumerate(searches)
        if not s.finished()
    ]
    heapq.heapify(heap)
    while heap:
        t, i = heap[0]
        search = searches[i]
        if search.finished():
            heapq.heappop(heap)
            continue
        current = search.next_event_time()
        if current != t:
            # Stale key (a callback touched this search since it was
            # filed): re-key and re-examine the heap.
            heapq.heapreplace(heap, (current, i))
            continue
        search.step()
        if after_step is not None:
            after_step(search)
        if search.finished():
            heapq.heappop(heap)
            if on_finish is not None:
                on_finish(search)
        else:
            heapq.heapreplace(heap, (search.next_event_time(), i))


def run_all_scan(
    searches: Sequence[Steppable],
    after_step: Optional[Callable[[Steppable], None]] = None,
    on_finish: Optional[Callable[[Steppable], None]] = None,
) -> None:
    """Reference scheduler: argmin scan over all searches per event.

    O(channels) per simulated page arrival.  Kept as the oracle the event
    heap is property-tested against; prefer :func:`run_all`.
    """
    while True:
        # Inline argmin over unfinished searches: this loop runs once per
        # simulated page arrival, so no per-iteration list/lambda allocation.
        nxt = None
        best = None
        for s in searches:
            if s.finished():
                continue
            t = s.next_event_time()
            if best is None or t < best:
                best = t
                nxt = s
        if nxt is None:
            return
        nxt.step()
        if after_step is not None:
            after_step(nxt)
        if on_finish is not None and nxt.finished():
            on_finish(nxt)


def run_sequential(searches: Sequence[Steppable]) -> None:
    """Drive searches one after another (single-channel style)."""
    for s in searches:
        while not s.finished():
            s.step()
