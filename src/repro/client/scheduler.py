"""Cooperative scheduler for steppable searches on parallel channels.

A mobile device tuned into multiple channels advances each channel's search
as its pages arrive.  :func:`run_all` interleaves any number of steppable
searches in simulated-time order, stepping whichever search would download
the earliest page next — this is what "the two NN queries are processed in
parallel" (Algorithm 1, line 3) means operationally.  An optional callback
fires after every step so a coordinator (Hybrid-NN) can react the moment
one channel finishes.

:func:`run_all` keeps the unfinished searches in a lazy-invalidation event
heap — O(log channels) per simulated page arrival — so one client can
interleave many channels (the async channel tuners of the roadmap).  Keys
are revalidated at pop time, which absorbs ``after_step`` callbacks that
mutate *other* searches (Hybrid-NN's re-steering): a mutated search is
simply re-keyed the next time it reaches the top.  The one requirement is
the natural one for simulated time — a search's ``next_event_time`` never
moves below the event times already dispatched (it can only grow as the
channel clock advances).  :func:`run_all_scan`, the original O(channels)
argmin scan, stays as the brute-force reference oracle for the property
tests.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Optional, Protocol, Sequence


class Steppable(Protocol):
    """Anything the scheduler can drive (NN and range searches qualify)."""

    def finished(self) -> bool:  # pragma: no cover - protocol
        ...

    def next_event_time(self) -> float:  # pragma: no cover - protocol
        ...

    def step(self) -> None:  # pragma: no cover - protocol
        ...


def run_all(
    searches: Sequence[Steppable],
    after_step: Optional[Callable[[Steppable], None]] = None,
    on_finish: Optional[Callable[[Steppable], None]] = None,
) -> None:
    """Drive all searches to completion in simulated-time order.

    At every iteration the unfinished search with the earliest next page
    arrival is stepped once (ties broken by position in ``searches``, like
    the scan reference).  ``after_step(search)`` runs after each step and
    ``on_finish(search)`` after the step that completes a search; either
    may mutate the *other* searches (Hybrid-NN's re-steering) before
    scheduling continues.  Finish-driven coordinators should prefer
    ``on_finish`` — it lets the scheduler skip the per-event re-peek of
    searches no callback could have touched.
    """
    if len(searches) == 1:
        s = searches[0]
        if s.finished():
            return
        while not s.finished():
            s.step()
            if after_step is not None:
                after_step(s)
        if on_finish is not None:
            on_finish(s)
        return
    if len(searches) == 2:
        # The paper's own workload shape (two channels) dominates; skip
        # the heap and ping-pong on two floats.  A finished search's
        # next_event_time is inf, which retires it from the comparison.
        a, b = searches
        ta = a.next_event_time()
        tb = b.next_event_time()
        while True:
            stepped = a if ta <= tb else b  # tie: first search, like scan
            if stepped is a:
                if ta == math.inf:
                    return
                a.step()
            else:
                b.step()
            fired = False
            if after_step is not None:
                after_step(stepped)
                fired = True
            if on_finish is not None and stepped.finished():
                on_finish(stepped)
                fired = True
            if not fired:
                if stepped is a:
                    ta = a.next_event_time()
                else:
                    tb = b.next_event_time()
                continue
            # A callback may have re-steered either search: refresh both,
            # exactly like the scan reference's per-event argmin.
            ta = a.next_event_time()
            tb = b.next_event_time()
    heap = [
        (s.next_event_time(), i)
        for i, s in enumerate(searches)
        if not s.finished()
    ]
    heapq.heapify(heap)
    while heap:
        t, i = heap[0]
        search = searches[i]
        if search.finished():
            heapq.heappop(heap)
            continue
        current = search.next_event_time()
        if current != t:
            # Stale key (a callback touched this search since it was
            # filed): re-key and re-examine the heap.
            heapq.heapreplace(heap, (current, i))
            continue
        search.step()
        if after_step is not None:
            after_step(search)
        if search.finished():
            heapq.heappop(heap)
            if on_finish is not None:
                on_finish(search)
        else:
            heapq.heapreplace(heap, (search.next_event_time(), i))


def run_all_scan(
    searches: Sequence[Steppable],
    after_step: Optional[Callable[[Steppable], None]] = None,
    on_finish: Optional[Callable[[Steppable], None]] = None,
) -> None:
    """Reference scheduler: argmin scan over all searches per event.

    O(channels) per simulated page arrival.  Kept as the oracle the event
    heap is property-tested against; prefer :func:`run_all`.
    """
    while True:
        # Inline argmin over unfinished searches: this loop runs once per
        # simulated page arrival, so no per-iteration list/lambda allocation.
        nxt = None
        best = None
        for s in searches:
            if s.finished():
                continue
            t = s.next_event_time()
            if best is None or t < best:
                best = t
                nxt = s
        if nxt is None:
            return
        nxt.step()
        if after_step is not None:
            after_step(nxt)
        if on_finish is not None and nxt.finished():
            on_finish(nxt)


def run_sequential(searches: Sequence[Steppable]) -> None:
    """Drive searches one after another (single-channel style)."""
    for s in searches:
        while not s.finished():
            s.step()


class SearchGroup:
    """One query's searches, scheduled by an external page-major driver.

    The shared-scan executor (:mod:`repro.engine.shared_scan`) multiplexes
    *many* queries' searches over the broadcast cycle; a ``SearchGroup``
    carries the per-query scheduling contract that :func:`run_all` enforced
    when each query was driven alone:

    * ``paired=True`` — exactly **two** members, coupled through an
      ``on_finish`` callback that mutates the sibling (Hybrid-NN's
      re-steering), so only the member :func:`run_all` would step next
      (:meth:`due`) may be served per driver round.  A sibling must never
      advance past the finisher's completion event, or it would process a
      page under the wrong metric.
    * ``paired=False`` — the members are mutually independent (no callback
      observes another member: Double-NN's estimate phase, the filter
      phase's two range queries, any single-search query).  The driver may
      serve every unfinished member each round, in any order: each member's
      own step sequence — and therefore every answer, access time, tune-in
      count and queue size — is the same as under :func:`run_all`.

    ``on_finish(search)`` fires once per member, directly after the serve
    that finishes it — the same moment :func:`run_all` fires it.  ``tag``
    is the owner's cookie (the executor stores its job there).

    ``pending`` is the members still running.  The driver owns it: it
    removes a member right after the serve that finishes it, so group
    bookkeeping costs one ``finished()`` probe per serve instead of a
    per-round sweep over every member of every group.  Members already
    finished at construction never enter it (and, matching
    :func:`run_all`, never see ``on_finish``).

    Finish events are backend-transparent with respect to the tuners: an
    ``on_finish`` coordinator that reads ``search.tuner.now`` or the page
    counters sees the same values whether the tuner holds scalars or is
    attached to a :class:`~repro.broadcast.tuner.TunerLedger` — attached
    tuners route those attributes to their ledger rows, which the
    executor flushes before any finish probe of the same round fires.
    """

    __slots__ = ("searches", "pending", "paired", "on_finish", "tag")

    def __init__(
        self,
        searches: Sequence[Steppable],
        paired: bool = False,
        on_finish: Optional[Callable[[Steppable], None]] = None,
        tag: object = None,
    ) -> None:
        self.searches = list(searches)
        if paired and len(self.searches) != 2:
            raise ValueError(
                f"a paired group holds exactly two searches, "
                f"got {len(self.searches)}"
            )
        self.pending = [s for s in self.searches if not s.finished()]
        self.paired = paired
        self.on_finish = on_finish
        self.tag = tag

    def due(self) -> Optional[Steppable]:
        """The member :func:`run_all` would step next (``None`` when done).

        Earliest ``next_event_time`` wins, ties break to the earlier
        member — exactly the scan reference's argmin (and, for two members,
        ``run_all``'s ``ta <= tb`` ping-pong).  This is the reference
        selection rule; the shared-scan executor inlines the two-member
        case in its round loop and is tested against it.
        """
        pending = self.pending
        if len(pending) == 1:
            return pending[0]
        best = None
        nxt = None
        for s in pending:
            t = s.next_event_time()
            if best is None or t < best:
                best = t
                nxt = s
        return nxt

    def finished(self) -> bool:
        """True when every member has run to completion."""
        return not self.pending
