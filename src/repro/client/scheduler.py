"""Cooperative scheduler for steppable searches on parallel channels.

A mobile device tuned into multiple channels advances each channel's search
as its pages arrive.  :func:`run_all` interleaves any number of steppable
searches in simulated-time order, stepping whichever search would download
the earliest page next — this is what "the two NN queries are processed in
parallel" (Algorithm 1, line 3) means operationally.  An optional callback
fires after every step so a coordinator (Hybrid-NN) can react the moment
one channel finishes.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, Sequence


class Steppable(Protocol):
    """Anything the scheduler can drive (NN and range searches qualify)."""

    def finished(self) -> bool:  # pragma: no cover - protocol
        ...

    def next_event_time(self) -> float:  # pragma: no cover - protocol
        ...

    def step(self) -> None:  # pragma: no cover - protocol
        ...


def run_all(
    searches: Sequence[Steppable],
    after_step: Optional[Callable[[Steppable], None]] = None,
) -> None:
    """Drive all searches to completion in simulated-time order.

    At every iteration the unfinished search with the earliest next page
    arrival is stepped once.  ``after_step(search)`` runs after each step,
    letting a coordinator mutate the *other* searches (Hybrid-NN's
    re-steering) before scheduling continues.
    """
    while True:
        # Inline argmin over unfinished searches: this loop runs once per
        # simulated page arrival, so no per-iteration list/lambda allocation.
        nxt = None
        best = None
        for s in searches:
            if s.finished():
                continue
            t = s.next_event_time()
            if best is None or t < best:
                best = t
                nxt = s
        if nxt is None:
            return
        nxt.step()
        if after_step is not None:
            after_step(nxt)


def run_sequential(searches: Sequence[Steppable]) -> None:
    """Drive searches one after another (single-channel style)."""
    for s in searches:
        while not s.finished():
            s.step()
