"""Wireless broadcast substrate: pages, (1, m) programs and channels.

Models the server side of the paper's system (Figure 1): each channel
endlessly cycles a broadcast program that interleaves the full R-tree index
(depth-first preorder, one node per page) with the data pages using the
(1, m) scheme of Imielinski, Viswanathan and Badrinath.  Time is measured in
page slots; random access is impossible — a client that misses a page waits
for its next replica, which is exactly the linearity constraint that shapes
all the client-side algorithms.
"""

from repro.broadcast.config import SystemParameters
from repro.broadcast.program import BroadcastProgram, optimal_m
from repro.broadcast.channel import BroadcastChannel
from repro.broadcast.tuner import ChannelTuner
from repro.broadcast.loss import (
    FAULT_CORRUPT,
    FAULT_LOST,
    FAULT_OK,
    FaultModel,
    GilbertElliottLossModel,
    PageCorruptionModel,
    PageLossModel,
    available_fault_models,
    make_fault_model,
    register_fault_model,
)
# layout must precede energy: energy imports repro.core, whose environment
# module imports the layout names back out of this (partially initialised)
# package.
from repro.broadcast.layout import (
    BroadcastDiskSchedule,
    BroadcastLayout,
    GridAirIndexLayout,
    QuadtreeAirIndexLayout,
    RTreeInterleavedLayout,
    available_layouts,
    make_layout,
    register_layout,
)
from repro.broadcast.energy import EnergyModel

__all__ = [
    "SystemParameters",
    "BroadcastProgram",
    "BroadcastChannel",
    "ChannelTuner",
    "FaultModel",
    "PageLossModel",
    "GilbertElliottLossModel",
    "PageCorruptionModel",
    "FAULT_OK",
    "FAULT_LOST",
    "FAULT_CORRUPT",
    "register_fault_model",
    "make_fault_model",
    "available_fault_models",
    "EnergyModel",
    "optimal_m",
    "BroadcastLayout",
    "RTreeInterleavedLayout",
    "GridAirIndexLayout",
    "QuadtreeAirIndexLayout",
    "BroadcastDiskSchedule",
    "register_layout",
    "make_layout",
    "available_layouts",
]
