"""The pluggable air-index backend seam: :class:`BroadcastLayout`.

Everything above the broadcast substrate — frontier cyclic-order math,
shared-scan rounds, the sweep cache — used to silently assume one physical
organisation: a packed R-tree interleaved ``(1, m)``.  A
:class:`BroadcastLayout` makes that choice an explicit strategy object
that owns *schedule generation* end to end:

* **which air index** is packed over the dataset
  (:meth:`BroadcastLayout.build_index` — R-tree, fixed grid, quadtree);
* **which broadcast schedule** its pages fly in
  (:meth:`BroadcastLayout.build_program` — uniform ``(1, m)``
  interleaving, distributed indexing, skew-aware broadcast disks);
* **which capabilities** the resulting channel guarantees
  (:attr:`BroadcastLayout.has_cyclic_order` — whether arrival order is
  cyclic page-id order, the contract behind the arrival frontier's
  closed-form fast path and the shared-scan columnar arena; layouts
  without it route clients onto the hardened heap fallback);
* **its own identity** (:meth:`BroadcastLayout.index_key` /
  :meth:`BroadcastLayout.cache_key`) — the sweep cache keys packed trees
  and programs on these, so two backends over the same dataset and page
  geometry never alias each other's cache entries.

The logical query semantics (NN/kNN/range/window pruning, Lemma 1–3
bounds) never change across backends — only the physical layout does, so
backends are swappable and directly comparable, which is what
``benchmarks/bench_air_index_matrix.py`` sweeps.

Registering a new backend
-------------------------

Subclass :class:`BroadcastLayout` (a frozen dataclass, so identity
derives from the constructor parameters), implement ``build_index`` /
``build_program``, declare ``has_cyclic_order`` honestly (claiming cyclic
order on an uneven schedule silently corrupts client arrival arithmetic),
and optionally :func:`register_layout` a factory so sweeps and CLI tools
can construct it by name via :func:`make_layout`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.broadcast.config import SystemParameters
from repro.broadcast.disks import BroadcastDiskProgram, hot_index_pages
from repro.broadcast.distributed import DistributedBroadcastProgram
from repro.broadcast.program import BroadcastProgram
from repro.geometry import Point, Rect
from repro.rtree.tree import RTree


@dataclass(frozen=True)
class BroadcastLayout:
    """Base strategy: how one channel's index and schedule are generated.

    Frozen-dataclass subclasses get value identity for free, which the
    cache keys (and therefore :class:`~repro.sim.experiments.SweepCache`)
    rely on.  The base class is abstract in spirit: ``build_index`` and
    ``build_program`` must be overridden.
    """

    #: Declared capability: arrival order is cyclic page-id order (every
    #: index page's replicas exactly one super-page apart).  Programs this
    #: layout builds must carry the same flag.
    has_cyclic_order = True

    @property
    def name(self) -> str:
        """Human-readable backend name (benchmark rows, registry)."""
        return type(self).__name__

    # ------------------------------------------------------------------
    # Schedule generation
    # ------------------------------------------------------------------
    def build_index(
        self, points: Sequence[Point], params: SystemParameters
    ) -> RTree:
        """Pack the air index for one dataset under this backend."""
        raise NotImplementedError

    def build_program(
        self, tree: RTree, params: SystemParameters, m: Optional[int] = None
    ) -> BroadcastProgram:
        """Lay the packed index out as a broadcast schedule."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Identity (sweep-cache keys)
    # ------------------------------------------------------------------
    def index_key(self) -> Tuple:
        """Identity of the *index build* this layout performs.

        Two layouts sharing an ``index_key`` (for the same dataset and
        page geometry) may share a cached packed tree — e.g. an
        interleaved and a broadcast-disk schedule over the same STR
        R-tree.
        """
        return (type(self).__name__,)

    def cache_key(self) -> Tuple:
        """Full layout identity: backend type plus every schedule param.

        Dataclass equality covers all constructor parameters, so the
        default — type name plus the instance itself — distinguishes any
        two layouts that could produce different schedules.
        """
        return (type(self).__name__, self)


@dataclass(frozen=True)
class RTreeInterleavedLayout(BroadcastLayout):
    """Today's default backend: a packed R-tree interleaved ``(1, m)``.

    ``distributed_levels`` switches the schedule to distributed indexing
    (top levels replicated per chunk, deep pages once per cycle) — kept on
    this layout because it shares the R-tree index build and predates the
    seam (:mod:`repro.broadcast.distributed`).
    """

    packing: str = "str"
    distributed_levels: Optional[int] = None

    @property
    def has_cyclic_order(self) -> bool:  # type: ignore[override]
        return self.distributed_levels is None

    @property
    def name(self) -> str:
        if self.distributed_levels is not None:
            return f"rtree-distributed-t{self.distributed_levels}"
        return f"rtree-{self.packing}"

    def build_index(self, points, params):
        from repro.rtree.packing import build_rtree

        return build_rtree(
            list(points), params.leaf_capacity, params.internal_fanout,
            self.packing,
        )

    def build_program(self, tree, params, m=None):
        if self.distributed_levels is None:
            return BroadcastProgram(tree, params, m=m)
        return DistributedBroadcastProgram(
            tree, params, m=m, replicated_levels=self.distributed_levels
        )

    def index_key(self):
        return ("rtree", self.packing)


@dataclass(frozen=True)
class GridAirIndexLayout(BroadcastLayout):
    """Fixed-grid air index (:mod:`repro.index.grid`), interleaved (1, m).

    The schedule is the classic uniform interleave, so cyclic order (and
    with it the frontier fast path and the shared-scan arena) holds; only
    the index partitioning differs from the R-tree backend.
    """

    cells: Optional[int] = None

    @property
    def name(self) -> str:
        return "grid" if self.cells is None else f"grid-{self.cells}"

    def build_index(self, points, params):
        from repro.index.grid import grid_pack

        return grid_pack(
            list(points), params.leaf_capacity, params.internal_fanout,
            cells=self.cells,
        )

    def build_program(self, tree, params, m=None):
        return BroadcastProgram(tree, params, m=m)

    def index_key(self):
        return ("grid", self.cells)


@dataclass(frozen=True)
class QuadtreeAirIndexLayout(BroadcastLayout):
    """Region-quadtree air index (:mod:`repro.index.quadtree`), (1, m)."""

    max_depth: int = 16

    @property
    def name(self) -> str:
        return "quadtree"

    def build_index(self, points, params):
        from repro.index.quadtree import quadtree_pack

        return quadtree_pack(
            list(points), params.leaf_capacity, params.internal_fanout,
            max_depth=self.max_depth,
        )

    def build_program(self, tree, params, m=None):
        return BroadcastProgram(tree, params, m=m)

    def index_key(self):
        return ("quadtree", self.max_depth)


@dataclass(frozen=True)
class BroadcastDiskSchedule(BroadcastLayout):
    """Skew-aware wrapper: any base index, hot pages repeated per chunk.

    Decorates another layout's index with a broadcast-disk schedule
    (:mod:`repro.broadcast.disks`): index pages whose MBR intersects
    ``hot_region`` ride the fast disk (every chunk), the rest air once per
    cycle.  Hot replicas are unevenly spaced, so the wrapper never has
    cyclic order regardless of the base layout.
    """

    base: BroadcastLayout = RTreeInterleavedLayout()
    #: The query population's hot region (fast-disk membership test).
    hot_region: Rect = Rect(0.0, 0.0, 0.0, 0.0)

    has_cyclic_order = False

    @property
    def name(self) -> str:
        return f"disk[{self.base.name}]"

    def build_index(self, points, params):
        return self.base.build_index(points, params)

    def build_program(self, tree, params, m=None):
        return BroadcastDiskProgram(
            tree, params, m=m, hot_pages=hot_index_pages(tree, self.hot_region)
        )

    def index_key(self):
        return self.base.index_key()


# ----------------------------------------------------------------------
# Backend registry (sweeps, benchmarks, CLI tools construct by name)
# ----------------------------------------------------------------------
_LAYOUT_REGISTRY: Dict[str, Callable[..., BroadcastLayout]] = {}


def register_layout(name: str, factory: Callable[..., BroadcastLayout]) -> None:
    """Register a backend factory under ``name`` (overwrites silently)."""
    _LAYOUT_REGISTRY[name] = factory


def make_layout(name: str, **kwargs) -> BroadcastLayout:
    """Construct a registered backend by name, e.g. ``make_layout("grid")``."""
    try:
        factory = _LAYOUT_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown broadcast layout {name!r}; "
            f"choose from {sorted(_LAYOUT_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def available_layouts() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_LAYOUT_REGISTRY)


register_layout("rtree", RTreeInterleavedLayout)
register_layout(
    "rtree-distributed",
    lambda distributed_levels=2, **kw: RTreeInterleavedLayout(
        distributed_levels=distributed_levels, **kw
    ),
)
register_layout("grid", GridAirIndexLayout)
register_layout("quadtree", QuadtreeAirIndexLayout)
register_layout("disk", BroadcastDiskSchedule)
