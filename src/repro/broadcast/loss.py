"""Wireless channel fault models.

Broadcast is an unreliable medium: a client can fail to decode a page
(fading, interference, a corrupted frame) and — with no uplink — its only
recourse is waiting for the page's next replica.  The paper assumes a
lossless channel; this module makes the assumption explicit and testable
behind one **fault-model seam**: a :class:`FaultModel` classifies every
reception attempt as ok / lost / corrupt, deterministically per
``(page slot, seed)``, so two clients with the same seed observe the same
fades and experiments stay reproducible.

Three registered implementations cover the usual channel abstractions:

* :class:`PageLossModel` — i.i.d. loss, every attempt fails independently
  with one rate (the original model, unchanged behaviour);
* :class:`GilbertElliottLossModel` — the classic two-state Markov burst
  channel (a *good* state with rare losses, a *bad* state modelling a
  correlated fade), so consecutive slots fail together the way real
  multipath fades make them;
* :class:`PageCorruptionModel` — a detected bad decode: the page was
  received but fails its checksum.  Operationally identical to a loss
  (wait for the next replica) but counted separately
  (``ChannelTuner.corrupt_pages``), the distinction link-layer studies
  report.

All models plug into ``TNNEnvironment.build(..., loss=...)`` and are
constructible by name through :func:`make_fault_model` for sweeps and CLI
tools, mirroring the ``register_layout`` registry.
"""

from __future__ import annotations

import hashlib
import math
import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List

#: Fault classification codes returned by :meth:`FaultModel.classify`.
FAULT_OK = 0
FAULT_LOST = 1
FAULT_CORRUPT = 2


def _slot_uniform(seed: int, slot: float, tag: int) -> float:
    """A uniform in ``[0, 1)`` that is a pure function of (seed, slot, tag).

    ``tag`` domain-separates independent draws at the same slot (state
    transitions vs loss outcomes), so models composing several random
    decisions per slot never correlate them by accident.
    """
    digest = hashlib.blake2b(
        struct.pack("<qqd", seed, tag, float(slot)), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") / 2**64


class FaultModel:
    """One reception attempt's fate, as a pure function of its slot.

    Subclasses implement :meth:`classify`; :meth:`lost` is the boolean
    view legacy callers use (any non-ok fault forces a retry — a corrupt
    page is operationally a loss, it only counts differently).  Outcomes
    must be deterministic per ``(slot, seed)``: replicas of the same page
    at different slots fade independently, as on a real channel, while
    the same client asking about the same slot twice gets a consistent
    answer — the property the shared-scan executor's closed-form retry
    rescheduling and the per-query retry loop both rely on to stay
    bit-identical.
    """

    def classify(self, page_slot: float) -> int:
        """Fault code for the reception attempt at absolute ``page_slot``."""
        raise NotImplementedError

    def lost(self, page_slot: float) -> bool:
        """Whether the reception attempt at ``page_slot`` fails."""
        return self.classify(page_slot) != FAULT_OK


def _check_rate(name: str, rate: float) -> None:
    """Validate one failure probability.

    Non-finite rates (NaN silently falls through chained comparisons)
    are rejected explicitly, and ``rate == 1.0`` is refused because every
    retry loop in the client stack waits for the *next replica* of a
    failed page: a page that always fails would livelock the client
    forever instead of surfacing an error.
    """
    if not isinstance(rate, (int, float)) or not math.isfinite(rate):
        raise ValueError(f"{name} must be a finite number, got {rate!r}")
    if not 0.0 <= rate < 1.0:
        raise ValueError(
            f"{name} must be in [0, 1), got {rate} — a rate of 1.0 would "
            "make every replica fail and livelock the retry loop"
        )


def _check_probability(name: str, p: float) -> None:
    if not isinstance(p, (int, float)) or not math.isfinite(p):
        raise ValueError(f"{name} must be a finite number, got {p!r}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {p}")


@dataclass(frozen=True)
class PageLossModel(FaultModel):
    """I.i.d. page loss: every reception attempt fails with ``rate``."""

    rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        _check_rate("loss rate", self.rate)

    def lost(self, page_slot: float) -> bool:
        """Whether the reception attempt at absolute slot ``page_slot`` fails.

        Hashes the slot with the seed so the outcome is a pure function of
        (slot, seed) — replicas of the same page at different slots fade
        independently, as on a real channel.
        """
        if self.rate == 0.0:
            return False
        digest = hashlib.blake2b(
            struct.pack("<qd", self.seed, float(page_slot)), digest_size=8
        ).digest()
        u = int.from_bytes(digest, "little") / 2**64
        return u < self.rate

    def classify(self, page_slot: float) -> int:
        return FAULT_LOST if self.lost(page_slot) else FAULT_OK


@dataclass(frozen=True)
class GilbertElliottLossModel(FaultModel):
    """Two-state Markov (Gilbert–Elliott) bursty loss.

    The channel alternates between a *good* state (losses at
    ``good_rate``) and a *bad* state (a fade: losses at ``bad_rate``),
    with per-slot transition probabilities ``p_good_bad`` and
    ``p_bad_good`` — mean fade length ``1 / p_bad_good`` slots, so
    consecutive replicas of nearby pages fail together instead of
    independently.

    Determinism per ``(slot, seed)`` despite the chain's memory: the
    state sequence regenerates every ``regen`` slots — at each window
    boundary the state is drawn fresh from the chain's stationary
    distribution, then evolved slot by slot with hashed per-slot
    uniforms inside the window.  Any slot's state is therefore a pure
    function of (seed, its window, its offset), computable without
    global history; computed windows are memoised so a retry chain
    walking consecutive slots pays O(1) amortised per query.
    """

    good_rate: float = 0.0
    bad_rate: float = 0.5
    p_good_bad: float = 0.05
    p_bad_good: float = 0.25
    seed: int = 0
    #: State-regeneration window (slots).  Larger windows preserve longer
    #: bursts; the default comfortably exceeds the mean fade length of
    #: any plausible parameterisation.
    regen: int = 64
    _windows: Dict[int, List[bool]] = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    # Domain-separation tags for the per-slot uniform draws.
    _TAG_STATE0 = 0
    _TAG_TRANSITION = 1
    _TAG_LOSS = 2

    def __post_init__(self) -> None:
        _check_rate("good-state loss rate", self.good_rate)
        _check_rate("bad-state loss rate", self.bad_rate)
        _check_probability("p_good_bad", self.p_good_bad)
        _check_probability("p_bad_good", self.p_bad_good)
        if not isinstance(self.regen, int) or self.regen < 1:
            raise ValueError(
                f"regen window must be a positive int, got {self.regen!r}"
            )

    def _window_states(self, w: int) -> List[bool]:
        """Bad-state flags for every slot of window ``w`` (memoised)."""
        states = self._windows.get(w)
        if states is not None:
            return states
        start = w * self.regen
        # Stationary P(bad); a chain that never transitions stays good.
        denom = self.p_good_bad + self.p_bad_good
        p_bad = self.p_good_bad / denom if denom > 0.0 else 0.0
        bad = _slot_uniform(self.seed, start, self._TAG_STATE0) < p_bad
        states = [bad]
        for off in range(1, self.regen):
            u = _slot_uniform(self.seed, start + off, self._TAG_TRANSITION)
            bad = (u >= self.p_bad_good) if bad else (u < self.p_good_bad)
            states.append(bad)
        self._windows[w] = states
        return states

    def classify(self, page_slot: float) -> int:
        slot = math.floor(page_slot)
        w, off = divmod(slot, self.regen)
        rate = (
            self.bad_rate if self._window_states(w)[off] else self.good_rate
        )
        if rate == 0.0:
            return FAULT_OK
        u = _slot_uniform(self.seed, page_slot, self._TAG_LOSS)
        return FAULT_LOST if u < rate else FAULT_OK


@dataclass(frozen=True)
class PageCorruptionModel(FaultModel):
    """I.i.d. detected bad decodes: received but failing the checksum.

    Operationally identical to a loss — the client waits for the next
    replica — but counted in ``ChannelTuner.corrupt_pages`` instead of
    ``lost_pages``, so experiments can separate erasures (never heard)
    from corruption (heard wrong), the split link-layer traces report.
    """

    rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        _check_rate("corruption rate", self.rate)

    def classify(self, page_slot: float) -> int:
        if self.rate == 0.0:
            return FAULT_OK
        digest = hashlib.blake2b(
            struct.pack("<qd", self.seed, float(page_slot)), digest_size=8
        ).digest()
        u = int.from_bytes(digest, "little") / 2**64
        return FAULT_CORRUPT if u < self.rate else FAULT_OK


# ----------------------------------------------------------------------
# Fault-model registry (sweeps, benchmarks, CLI tools construct by name)
# ----------------------------------------------------------------------
_FAULT_REGISTRY: Dict[str, Callable[..., FaultModel]] = {}


def register_fault_model(
    name: str, factory: Callable[..., FaultModel]
) -> None:
    """Register a fault-model factory under ``name`` (overwrites silently)."""
    _FAULT_REGISTRY[name] = factory


def make_fault_model(name: str, **kwargs) -> FaultModel:
    """Construct a registered fault model by name, e.g.
    ``make_fault_model("gilbert-elliott", p_bad_good=0.2)``."""
    try:
        factory = _FAULT_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown fault model {name!r}; "
            f"choose from {sorted(_FAULT_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def available_fault_models() -> List[str]:
    """Registered fault-model names, sorted."""
    return sorted(_FAULT_REGISTRY)


register_fault_model("iid", PageLossModel)
register_fault_model("loss", PageLossModel)
register_fault_model("gilbert-elliott", GilbertElliottLossModel)
register_fault_model("ge", GilbertElliottLossModel)
register_fault_model("corruption", PageCorruptionModel)
