"""Wireless page-loss model.

Broadcast is an unreliable medium: a client can fail to decode a page
(fading, interference) and — with no uplink — its only recourse is waiting
for the page's next replica.  The paper assumes a lossless channel; this
model makes the assumption explicit and testable, and the loss ablation
benchmark quantifies how quickly access time degrades.

Losses are deterministic per ``(page slot, seed)``: two clients with the
same seed observe the same fades, so experiments stay reproducible, and the
same client asking about the same slot twice gets a consistent answer.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass


@dataclass(frozen=True)
class PageLossModel:
    """I.i.d. page-loss: every reception attempt fails with ``rate``."""

    rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {self.rate}")

    def lost(self, page_slot: float) -> bool:
        """Whether the reception attempt at absolute slot ``page_slot`` fails.

        Hashes the slot with the seed so the outcome is a pure function of
        (slot, seed) — replicas of the same page at different slots fade
        independently, as on a real channel.
        """
        if self.rate == 0.0:
            return False
        digest = hashlib.blake2b(
            struct.pack("<qd", self.seed, float(page_slot)), digest_size=8
        ).digest()
        u = int.from_bytes(digest, "little") / 2**64
        return u < self.rate
