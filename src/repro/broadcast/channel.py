"""A broadcast channel: a program endlessly on air with a phase offset."""

from __future__ import annotations

from repro.broadcast.program import BroadcastProgram


class BroadcastChannel:
    """One wireless channel cycling a :class:`BroadcastProgram`.

    ``phase`` shifts the whole program in time: the page at cycle offset 0
    is on air at absolute times ``phase + k * cycle_length``.  Each query in
    the evaluation draws a random phase per channel, reproducing the paper's
    "two random numbers ... simulate the waiting time to get the two roots".
    """

    def __init__(self, program: BroadcastProgram, phase: float = 0.0) -> None:
        self.program = program
        self.phase = phase % program.cycle_length if program.cycle_length else 0.0

    @property
    def cycle_length(self) -> int:
        return self.program.cycle_length

    def next_index_arrival(self, page_id: int, now: float) -> float:
        """Earliest arrival of index page ``page_id`` at or after ``now``."""
        return (
            self.program.next_index_arrival(page_id, now - self.phase) + self.phase
        )

    def next_root_arrival(self, now: float) -> float:
        """Earliest arrival of the R-tree root (page 0) at or after ``now``."""
        return self.next_index_arrival(0, now)

    def next_data_arrival(self, data_offset: int, now: float) -> float:
        """Earliest arrival of one data page at or after ``now``."""
        pos = self.program.data_page_position(data_offset)
        return (
            self.program.next_arrival_at_positions([pos], now - self.phase)
            + self.phase
        )

    def download_object(self, object_index: int, now: float) -> tuple[float, int]:
        """Download every page of a data object starting at/after ``now``.

        Returns ``(finish_time, pages_downloaded)``.  Pages are fetched in
        stream order; consecutive pages are usually adjacent slots but an
        object that straddles a chunk boundary waits out the interleaved
        index copy, which the arrival arithmetic handles naturally.
        """
        t = now
        pages = 0
        for off in self.program.object_data_offsets(object_index):
            arrival = self.next_data_arrival(off, t)
            t = arrival + 1.0
            pages += 1
        return t, pages
