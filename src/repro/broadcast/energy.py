"""Energy model: convert page counts into joules.

The paper reports tune-in time in pages as the energy proxy.  This helper
closes the loop to physical units using the classic two-state radio model
(active while receiving a page, doze otherwise), with defaults in the range
reported for early-2000s WaveLAN-class mobile radios that this literature
assumed (~1 W active, ~50 mW doze, 128 B pages over ~1 Mbps air link).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import TNNResult


@dataclass(frozen=True)
class EnergyModel:
    """A two-state (active / doze) radio energy model."""

    active_watts: float = 1.0
    doze_watts: float = 0.05
    #: Airtime of one broadcast page, in seconds.
    page_seconds: float = 0.001

    def __post_init__(self) -> None:
        if self.active_watts <= 0 or self.doze_watts < 0 or self.page_seconds <= 0:
            raise ValueError("energy parameters must be positive")
        if self.doze_watts > self.active_watts:
            raise ValueError("doze power cannot exceed active power")

    def joules(self, tune_in_pages: float, access_time_pages: float) -> float:
        """Total energy for a query given its two page metrics.

        Active for every downloaded page, dozing for the rest of the
        elapsed access time (per channel the split differs, but the sum of
        both channels' pages against the total elapsed time is the
        conventional first-order estimate).
        """
        if tune_in_pages < 0 or access_time_pages < 0:
            raise ValueError("page counts must be non-negative")
        active_s = tune_in_pages * self.page_seconds
        doze_s = max(access_time_pages - tune_in_pages, 0.0) * self.page_seconds
        return active_s * self.active_watts + doze_s * self.doze_watts

    def of(self, result: TNNResult) -> float:
        """Energy estimate of one TNN query result."""
        return self.joules(result.tune_in_time, result.access_time)

    def savings(self, baseline: TNNResult, optimised: TNNResult) -> float:
        """Fractional energy saving of ``optimised`` over ``baseline``."""
        base = self.of(baseline)
        if base == 0:
            return 0.0
        return 1.0 - self.of(optimised) / base
