"""Client-side tuner: the per-channel clock and energy accounting.

The tuner is the client's radio on one channel.  It records every page
downloaded (tune-in time — the paper's proxy for energy) and the clock
position reached (access time).  Between downloads the client is dozing, so
only explicit ``download_*`` calls consume energy.

An optional :class:`~repro.broadcast.loss.PageLossModel` makes receptions
fallible: a lost page still costs the listening energy (it counts toward
tune-in) but the client must wait for the page's next replica, stretching
access time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.broadcast.channel import BroadcastChannel
from repro.broadcast.loss import PageLossModel


@dataclass
class ChannelTuner:
    """Tracks time and pages downloaded on one broadcast channel."""

    channel: BroadcastChannel
    loss: Optional[PageLossModel] = None
    now: float = 0.0
    index_pages: int = 0
    data_pages: int = 0
    #: Reception attempts that failed (subset of the page counters above).
    lost_pages: int = 0
    #: ``(kind, ref, arrival, ok)`` reception events for trace tooling.
    log: list[tuple] = field(default_factory=list)

    @property
    def pages_downloaded(self) -> int:
        """Total tune-in time on this channel, in pages."""
        return self.index_pages + self.data_pages

    def advance_to(self, t: float) -> None:
        """Doze until absolute time ``t`` (no energy cost)."""
        if t > self.now:
            self.now = t

    def _receive(self, next_arrival, kind: str, ref: int) -> int:
        """Attempt receptions until one succeeds.

        Returns the number of reception attempts made (an ``int >= 1``,
        counting the final successful one).  ``next_arrival(t)`` maps a
        time to the page's next on-air slot.  Every attempt (successful or
        lost) keeps the radio active for one slot, advances the clock past
        it, and is appended to ``log`` as a ``(kind, ref, arrival, ok)``
        event for trace tooling.
        """
        # NOTE: the shared-scan executor's serve loops inline this success
        # path for lossless tuners (``now = arrival + 1.0``, one page
        # counted, one ``(kind, ref, arrival, True)`` log entry) — see
        # repro/engine/shared_scan.py.  Any change to the accounting here
        # must be mirrored there to preserve the bit-identity contract.
        attempts = 0
        while True:
            arrival = next_arrival(self.now)
            self.now = arrival + 1.0
            attempts += 1
            ok = self.loss is None or not self.loss.lost(arrival)
            self.log.append((kind, ref, arrival, ok))
            if ok:
                return attempts
            self.lost_pages += 1

    def download_index_page(self, page_id: int) -> float:
        """Wait for and download one index page; returns the finish time."""
        attempts = self._receive(
            lambda t: self.channel.next_index_arrival(page_id, t),
            "index",
            page_id,
        )
        self.index_pages += attempts
        return self.now

    def peek_index_arrival(self, page_id: int) -> float:
        """Arrival time of an index page if requested now (no download)."""
        return self.channel.next_index_arrival(page_id, self.now)

    def download_object(self, object_index: int) -> float:
        """Download all pages of a data object; returns the finish time."""
        for off in self.channel.program.object_data_offsets(object_index):
            attempts = self._receive(
                lambda t, off=off: self.channel.next_data_arrival(off, t),
                "data",
                object_index,
            )
            self.data_pages += attempts
        return self.now
