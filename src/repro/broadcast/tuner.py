"""Client-side tuner: the per-channel clock and energy accounting.

The tuner is the client's radio on one channel.  It records every page
downloaded (tune-in time — the paper's proxy for energy) and the clock
position reached (access time).  Between downloads the client is dozing, so
only explicit ``download_*`` calls consume energy.

An optional :class:`~repro.broadcast.loss.FaultModel` makes receptions
fallible: a lost (or corrupt — a detected bad decode) page still costs the
listening energy (it counts toward tune-in) but the client must wait for
the page's next replica, stretching access time.  Losses and corruptions
are counted separately (``lost_pages`` / ``corrupt_pages``).

**The columnar tuner ledger.**  A single query's tuner is four scalars and
a list — the cheapest possible representation.  A *workload* of thousands
of concurrent tuners, each receiving one page per shared-scan round, pays
python attribute-write and tuple-allocation cost per download; profiling
(``BENCH_profile_hot_path.json``) measured that per-download bookkeeping as
the dominant share of the shared hot path once queues and geometry were
vectorised.  :class:`TunerLedger` therefore hoists attached tuners' state
into shared struct-of-arrays lanes — per-tuner ``now`` / ``index_pages`` /
``data_pages`` / ``lost_pages`` plus one packed ``(kind, ref, arrival,
ok)`` event arena replacing the per-tuner tuple logs — and the shared-scan
executor updates all of them with **one vectorised pass per round**
(:meth:`TunerLedger.flush_round`), alongside the
:class:`~repro.client.frontier.FrontierArena` flush.

Attachment is backend-transparent, the same contract
:class:`~repro.client.frontier.ArrivalFrontier` honours for its arena:
:meth:`TunerLedger.attach` swaps the instance onto the
:class:`_LedgerTuner` subclass, whose properties route every read and
write of the public attributes to the ledger lanes, and whose accounting
methods append to the event arena instead of the tuple list.  Standalone
tuners keep today's plain scalars — bit for bit the oracle — at plain
attribute speed (no property indirection is ever paid off-ledger).
``REPRO_SCALAR_TUNERS=1`` forces every tuner to stay standalone (the
escape hatch mirroring ``REPRO_NO_KERNELS``), which degrades the executor
to the scalar per-download accounting it replaced.

``ChannelTuner.log`` on an attached tuner materialises lazily from the
event arena: each row keeps a chain of its own events (``prev`` indices),
so one tuner's log gathers in time order proportional to *its* events.
Trace tooling (:mod:`repro.sim.trace`) sees tuples identical to the
scalar oracle's.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.broadcast.channel import BroadcastChannel
from repro.broadcast.loss import FAULT_LOST, FaultModel

#: Event-kind codes of the packed event arena.
_KIND_INDEX = 0
_KIND_DATA = 1
_KIND_NAMES = ("index", "data")


def scalar_tuners_forced() -> bool:
    """True when ``REPRO_SCALAR_TUNERS=1`` disables ledger attachment.

    The escape hatch mirrors ``REPRO_NO_KERNELS``: with it set, every
    tuner stays a standalone scalar dataclass and the shared-scan
    executor performs the original per-download accounting — the
    bit-identity oracle for the ledger path.
    """
    return os.environ.get("REPRO_SCALAR_TUNERS", "0") == "1"


@dataclass
class ChannelTuner:
    """Tracks time and pages downloaded on one broadcast channel."""

    channel: BroadcastChannel
    loss: Optional[FaultModel] = None
    now: float = 0.0
    index_pages: int = 0
    data_pages: int = 0
    #: Reception attempts that failed (subsets of the page counters
    #: above): pages never decoded vs pages decoded wrong (a detected
    #: bad checksum) — both force a wait for the next replica.
    lost_pages: int = 0
    corrupt_pages: int = 0
    #: ``(kind, ref, arrival, ok)`` reception events for trace tooling.
    log: list[tuple] = field(default_factory=list)
    #: Batch campaigns that never read traces set this False to skip the
    #: log list/event-arena appends entirely (the counters still count).
    record_log: bool = True

    @property
    def pages_downloaded(self) -> int:
        """Total tune-in time on this channel, in pages."""
        return self.index_pages + self.data_pages

    def advance_to(self, t: float) -> None:
        """Doze until absolute time ``t`` (no energy cost)."""
        if t > self.now:
            self.now = t

    def _receive(self, next_arrival, kind: str, ref: int) -> int:
        """Attempt receptions until one succeeds.

        Returns the number of reception attempts made (an ``int >= 1``,
        counting the final successful one).  ``next_arrival(t)`` maps a
        time to the page's next on-air slot.  Every attempt (successful or
        lost) keeps the radio active for one slot, advances the clock past
        it, and is appended to ``log`` as a ``(kind, ref, arrival, ok)``
        event for trace tooling.
        """
        # NOTE: the shared-scan executor's serve loops inline this success
        # path for lossless tuners (``now = arrival + 1.0``, one page
        # counted, one ``(kind, ref, arrival, True)`` log entry — batched
        # through the TunerLedger when attached), and its round flush
        # replays the whole retry chain closed-form for faulty tuners
        # (``TunerLedger.flush_round_faulty``) — see
        # repro/engine/shared_scan.py.  Any change to the accounting here
        # must be mirrored there to preserve the bit-identity contract.
        loss = self.loss
        attempts = 0
        while True:
            arrival = next_arrival(self.now)
            self.now = arrival + 1.0
            attempts += 1
            fault = 0 if loss is None else loss.classify(arrival)
            self._record_event(kind, ref, arrival, fault == 0)
            if fault == 0:
                return attempts
            if fault == FAULT_LOST:
                self.lost_pages += 1
            else:
                self.corrupt_pages += 1

    def _receive_at(self, next_arrival, arg, kind: str, ref: int) -> int:
        """:meth:`_receive` with the page selector passed as ``arg``.

        ``next_arrival(arg, t)`` is a long-lived bound method (for example
        ``channel.next_data_arrival``), so callers looping over many pages
        never allocate a closure per page — the per-page variable rides
        along as a plain argument.  Accounting is identical to
        :meth:`_receive`.
        """
        loss = self.loss
        attempts = 0
        while True:
            arrival = next_arrival(arg, self.now)
            self.now = arrival + 1.0
            attempts += 1
            fault = 0 if loss is None else loss.classify(arrival)
            self._record_event(kind, ref, arrival, fault == 0)
            if fault == 0:
                return attempts
            if fault == FAULT_LOST:
                self.lost_pages += 1
            else:
                self.corrupt_pages += 1

    # ------------------------------------------------------------------
    # Accounting primitives (overridden lane-for-lane by _LedgerTuner)
    # ------------------------------------------------------------------
    def _record_event(self, kind: str, ref: int, arrival: float,
                      ok: bool) -> None:
        """Append one reception event (no-op under ``record_log=False``)."""
        if self.record_log:
            self.log.append((kind, ref, arrival, ok))

    def record_index(self, page_id: int, arrival: float) -> None:
        """One successful lossless index reception — the inlined
        ``_receive`` success path used by the shared-scan serve loops."""
        self.now = arrival + 1.0
        self.index_pages += 1
        if self.record_log:
            self.log.append(("index", page_id, arrival, True))

    def record_index_run(self, pages: List[int], arrivals: List[float],
                         now: float) -> None:
        """A drained run of successful lossless index receptions.

        The executor's kNN/range/window drains pop whole traversals per
        serve; they collect the downloaded ``(page, arrival)`` pairs in
        plain lists and account for the run in one call — one clock
        write, one counter add, one log extend (or one event-arena append
        when attached) instead of per-pop attribute writes.
        """
        self.now = now
        self.index_pages += len(pages)
        if self.record_log:
            self.log.extend(
                ("index", p, a, True) for p, a in zip(pages, arrivals)
            )

    def download_index_page(self, page_id: int) -> float:
        """Wait for and download one index page; returns the finish time."""
        attempts = self._receive_at(
            self.channel.next_index_arrival, page_id, "index", page_id
        )
        self.index_pages += attempts
        return self.now

    def peek_index_arrival(self, page_id: int) -> float:
        """Arrival time of an index page if requested now (no download)."""
        return self.channel.next_index_arrival(page_id, self.now)

    def download_object(self, object_index: int) -> float:
        """Download all pages of a data object; returns the finish time."""
        # The per-offset closure this loop used to rebuild
        # (``lambda t, off=off: ...``) is hoisted: the channel's bound
        # method is looked up once and each offset rides along as the
        # _receive_at argument.
        next_data = self.channel.next_data_arrival
        for off in self.channel.program.object_data_offsets(object_index):
            attempts = self._receive_at(next_data, off, "data", object_index)
            self.data_pages += attempts
        return self.now


# ----------------------------------------------------------------------
# The columnar tuner ledger
# ----------------------------------------------------------------------
class TunerLedger:
    """Struct-of-arrays state lanes + packed event arena for many tuners.

    One ledger serves one shared-scan executor run.  Each attached tuner
    owns one *row* of the per-tuner lanes (``now``, ``index_pages``,
    ``data_pages``, ``lost_pages``, ``record_log``) and a chain of events
    in the shared arena (``kind`` / ``ref`` / ``arrival`` / ``ok`` lanes
    plus a ``prev`` index lane linking each row's events newest-first).

    The executor's hot path calls :meth:`flush_round` once per round with
    the round's confirmed index downloads — owner rows, page ids and
    arrivals straight from the :class:`~repro.client.frontier
    .FrontierArena` serve — and the ledger advances every clock, counter
    and event lane vectorised.  The rare scalar continuations (failed
    certified keeps, kernel-off rounds, lossy retries) write their row
    through the attached tuner's own methods, so per-tuner event order
    stays chronological: a tuner receives at most one index page per
    round, and scalar writes of round *n* land before the vectorised
    flush of round *n*.

    Rows are append-only for the ledger's lifetime (one executor run —
    the same trade :class:`~repro.client.frontier.FrontierArena` makes);
    :meth:`detach` hands a tuner its final scalars (and materialised log)
    back and restores the plain dataclass behaviour.
    """

    def __init__(self) -> None:
        cap = 64
        self._now = np.zeros(cap, dtype=np.float64)
        self._index = np.zeros(cap, dtype=np.int64)
        self._data = np.zeros(cap, dtype=np.int64)
        self._lost = np.zeros(cap, dtype=np.int64)
        self._corrupt = np.zeros(cap, dtype=np.int64)
        self._rec = np.ones(cap, dtype=bool)
        #: Arena index of each row's newest event (-1: none yet).
        self._last = np.full(cap, -1, dtype=np.int64)
        self._tuners: List[ChannelTuner] = []
        # The packed event arena.
        ecap = 256
        self._ev_kind = np.zeros(ecap, dtype=np.int8)
        self._ev_ref = np.zeros(ecap, dtype=np.int64)
        self._ev_arrival = np.zeros(ecap, dtype=np.float64)
        self._ev_ok = np.ones(ecap, dtype=bool)
        #: Previous event of the same row (-1 terminates the chain) — one
        #: extra lane write per event buys O(own events) log
        #: materialisation per tuner instead of an O(all events) scan.
        self._ev_prev = np.full(ecap, -1, dtype=np.int64)
        self._ev_n = 0

    def __len__(self) -> int:
        return len(self._tuners)

    @property
    def event_count(self) -> int:
        """Total events recorded across every attached tuner."""
        return self._ev_n

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, tuner: ChannelTuner) -> int:
        """Move one tuner's state into ledger lanes; returns its row.

        Idempotent: a tuner already attached to *this* ledger keeps its
        row.  Events already in the tuner's scalar ``log`` stay where
        they are as the materialisation prefix — attachment at any point
        of a tuner's life preserves its full event history.
        """
        if type(tuner) is _LedgerTuner:
            if tuner._ledger is self:
                return tuner._row
            raise ValueError("tuner is attached to a different ledger")
        row = len(self._tuners)
        if row >= self._now.shape[0]:
            self._grow_rows()
        d = tuner.__dict__
        self._now[row] = d["now"]
        self._index[row] = d["index_pages"]
        self._data[row] = d["data_pages"]
        self._lost[row] = d["lost_pages"]
        self._corrupt[row] = d["corrupt_pages"]
        self._rec[row] = d["record_log"]
        self._last[row] = -1
        self._tuners.append(tuner)
        d["_ledger"] = self
        d["_row"] = row
        d["_log_cache"] = None
        tuner.__class__ = _LedgerTuner
        return row

    def detach(self, tuner: ChannelTuner) -> None:
        """Restore one tuner to standalone scalars (log materialised)."""
        if type(tuner) is not _LedgerTuner or tuner._ledger is not self:
            return
        row = tuner._row
        d = tuner.__dict__
        d["log"] = d["log"] + self.events_of(row)
        d["now"] = float(self._now[row])
        d["index_pages"] = int(self._index[row])
        d["data_pages"] = int(self._data[row])
        d["lost_pages"] = int(self._lost[row])
        d["corrupt_pages"] = int(self._corrupt[row])
        del d["_ledger"], d["_row"], d["_log_cache"]
        tuner.__class__ = ChannelTuner
        self._tuners[row] = None  # type: ignore[call-overload]
        self._last[row] = -1

    def _grow_rows(self) -> None:
        for name in ("_now", "_index", "_data", "_lost", "_corrupt",
                     "_rec", "_last"):
            old = getattr(self, name)
            new = np.empty(old.shape[0] * 2, dtype=old.dtype)
            if name == "_last":
                new[old.shape[0]:] = -1
            new[: old.shape[0]] = old
            setattr(self, name, new)

    def _grow_events(self, need: int) -> None:
        cap = self._ev_kind.shape[0]
        while cap < need:
            cap *= 2
        for name in ("_ev_kind", "_ev_ref", "_ev_arrival", "_ev_ok",
                     "_ev_prev"):
            old = getattr(self, name)
            new = np.empty(cap, dtype=old.dtype)
            new[: old.shape[0]] = old
            setattr(self, name, new)

    # ------------------------------------------------------------------
    # Event recording
    # ------------------------------------------------------------------
    def append_event(self, row: int, kind: int, ref: int, arrival: float,
                     ok: bool) -> None:
        """Record one event for one row (the scalar fallback path)."""
        if not self._rec[row]:
            return
        i = self._ev_n
        if i + 1 > self._ev_kind.shape[0]:
            self._grow_events(i + 1)
        self._ev_kind[i] = kind
        self._ev_ref[i] = ref
        self._ev_arrival[i] = arrival
        self._ev_ok[i] = ok
        self._ev_prev[i] = self._last[row]
        self._last[row] = i
        self._ev_n = i + 1

    def append_run(self, row: int, kind: int, refs, arrivals) -> None:
        """Record a chronological run of successful events for one row."""
        if not self._rec[row]:
            return
        k = len(refs)
        if k == 0:
            return
        base = self._ev_n
        if base + k > self._ev_kind.shape[0]:
            self._grow_events(base + k)
        end = base + k
        self._ev_kind[base:end] = kind
        self._ev_ref[base:end] = refs
        self._ev_arrival[base:end] = arrivals
        self._ev_ok[base:end] = True
        self._ev_prev[base] = self._last[row]
        if k > 1:
            self._ev_prev[base + 1:end] = np.arange(base, end - 1)
        self._last[row] = end - 1
        self._ev_n = end

    def flush_round(self, rows: np.ndarray, pages: np.ndarray,
                    arrivals: np.ndarray) -> None:
        """One vectorised pass over a round's confirmed index downloads.

        ``rows`` must be distinct (the executor serves each search at
        most once per round, and one tuner backs at most one live
        search): every row's clock moves to ``arrival + 1.0``, its index
        counter increments, and — for rows recording logs — one
        ``("index", page, arrival, True)`` event joins the arena with the
        per-row chains updated in one scatter.
        """
        k = rows.shape[0]
        if k == 0:
            return
        self._now[rows] = arrivals + 1.0
        self._index[rows] += 1
        if self._rec[rows].all():
            erows, epages, earrs = rows, pages, arrivals
        else:
            keep = self._rec[rows]
            if not keep.any():
                return
            erows = rows[keep]
            epages = pages[keep]
            earrs = arrivals[keep]
        base = self._ev_n
        k = erows.shape[0]
        if base + k > self._ev_kind.shape[0]:
            self._grow_events(base + k)
        end = base + k
        idx = np.arange(base, end, dtype=np.int64)
        self._ev_kind[base:end] = _KIND_INDEX
        self._ev_ref[base:end] = epages
        self._ev_arrival[base:end] = earrs
        self._ev_ok[base:end] = True
        self._ev_prev[base:end] = self._last[erows]
        self._last[erows] = idx
        self._ev_n = end

    def flush_round_faulty(
        self,
        rows: np.ndarray,
        pages: np.ndarray,
        attempts: np.ndarray,
        finals: np.ndarray,
        lost: np.ndarray,
        corrupt: np.ndarray,
        ev_arrivals: np.ndarray,
    ) -> None:
        """:meth:`flush_round` for rows whose download may have retried.

        A faulty tuner's retry chain on a cyclic frontier re-attempts the
        same page exactly one index replica later each time; the executor
        resolves each row's chain against its fault model closed-form and
        hands the results here: ``attempts`` (>= 1) counts every
        reception including the final successful one, ``finals`` is each
        row's successful arrival, ``lost`` / ``corrupt`` split the
        ``attempts - 1`` failures by fault kind, and ``ev_arrivals``
        concatenates every row's per-attempt arrival slots (row-major,
        chronological — ``attempts.sum()`` values, bit-exact to the slots
        the scalar ``_receive`` loop would visit).

        One vectorised pass books the whole round: clocks move to
        ``final + 1.0``, the index counters gain ``attempts``, the fault
        counters gain their splits, and — for rows recording logs — each
        row's full attempt chain joins the event arena in chronological
        order (failures ``ok=False``, the final success ``ok=True``) with
        the per-row ``prev`` chains linked across the run.
        """
        k = rows.shape[0]
        if k == 0:
            return
        self._now[rows] = finals + 1.0
        self._index[rows] += attempts
        self._lost[rows] += lost
        self._corrupt[rows] += corrupt
        keep = self._rec[rows]
        if keep.all():
            erows, epages, eatt, earr = rows, pages, attempts, ev_arrivals
        else:
            if not keep.any():
                return
            erows = rows[keep]
            epages = pages[keep]
            eatt = attempts[keep]
            earr = ev_arrivals[np.repeat(keep, attempts)]
        total = int(eatt.sum())
        base = self._ev_n
        if base + total > self._ev_kind.shape[0]:
            self._grow_events(base + total)
        end = base + total
        ends = base + np.cumsum(eatt)
        starts = ends - eatt
        # Intra-run attempt number of every event: 0..attempts-1 per row.
        intra = np.arange(total, dtype=np.int64) - np.repeat(
            starts - base, eatt
        )
        self._ev_kind[base:end] = _KIND_INDEX
        self._ev_ref[base:end] = np.repeat(epages, eatt)
        self._ev_arrival[base:end] = earr
        self._ev_ok[base:end] = intra == np.repeat(eatt - 1, eatt)
        prev = np.arange(base - 1, end - 1, dtype=np.int64)
        prev[starts - base] = self._last[erows]
        self._ev_prev[base:end] = prev
        self._last[erows] = ends - 1
        self._ev_n = end

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def events_of(self, row: int) -> List[tuple]:
        """One row's events as scalar-oracle tuples, in time order."""
        idxs: List[int] = []
        prev = self._ev_prev
        e = int(self._last[row])
        while e >= 0:
            idxs.append(e)
            e = int(prev[e])
        if not idxs:
            return []
        idxs.reverse()
        sel = np.array(idxs, dtype=np.int64)
        kinds = self._ev_kind[sel].tolist()
        refs = self._ev_ref[sel].tolist()
        arrs = self._ev_arrival[sel].tolist()
        oks = self._ev_ok[sel].tolist()
        names = _KIND_NAMES
        return [
            (names[k], r, a, o)
            for k, r, a, o in zip(kinds, refs, arrs, oks)
        ]


class _LedgerTuner(ChannelTuner):
    """A :class:`ChannelTuner` attached to a :class:`TunerLedger`.

    :meth:`TunerLedger.attach` swaps an instance onto this class; every
    public attribute routes to the owner's ledger row, so search code,
    result constructors and trace tooling stay backend-agnostic — the
    same transparency contract :class:`~repro.client.frontier
    .ArrivalFrontier` honours when attached to a
    :class:`~repro.client.frontier.FrontierArena`.  Scalars written by
    the dataclass ``__init__`` remain in ``__dict__`` (shadowed by these
    properties) until :meth:`TunerLedger.detach` syncs them back.
    """

    _ledger: TunerLedger
    _row: int

    @property
    def now(self) -> float:
        return float(self._ledger._now[self._row])

    @now.setter
    def now(self, value: float) -> None:
        self._ledger._now[self._row] = value

    @property
    def index_pages(self) -> int:
        return int(self._ledger._index[self._row])

    @index_pages.setter
    def index_pages(self, value: int) -> None:
        self._ledger._index[self._row] = value

    @property
    def data_pages(self) -> int:
        return int(self._ledger._data[self._row])

    @data_pages.setter
    def data_pages(self, value: int) -> None:
        self._ledger._data[self._row] = value

    @property
    def lost_pages(self) -> int:
        return int(self._ledger._lost[self._row])

    @lost_pages.setter
    def lost_pages(self, value: int) -> None:
        self._ledger._lost[self._row] = value

    @property
    def corrupt_pages(self) -> int:
        return int(self._ledger._corrupt[self._row])

    @corrupt_pages.setter
    def corrupt_pages(self, value: int) -> None:
        self._ledger._corrupt[self._row] = value

    @property
    def record_log(self) -> bool:
        return bool(self._ledger._rec[self._row])

    @record_log.setter
    def record_log(self, value: bool) -> None:
        self._ledger._rec[self._row] = value

    @property
    def log(self) -> list:
        """The materialised event log (pre-attach prefix + arena events).

        Lazy and cached per arena state: re-materialised only when this
        row gained events since the last read.  The returned list is a
        snapshot — appends to it do not reach the arena (the accounting
        methods below are the write path while attached).
        """
        ledger = self._ledger
        row = self._row
        d = self.__dict__
        cached = d["_log_cache"]
        last = int(ledger._last[row])
        if cached is not None and cached[0] == last:
            return cached[1]
        log = d["log"] + ledger.events_of(row)
        d["_log_cache"] = (last, log)
        return log

    # ------------------------------------------------------------------
    # Accounting primitives, routed to the lanes
    # ------------------------------------------------------------------
    def _record_event(self, kind: str, ref: int, arrival: float,
                      ok: bool) -> None:
        self._ledger.append_event(
            self._row,
            _KIND_INDEX if kind == "index" else _KIND_DATA,
            ref, arrival, ok,
        )

    def record_index(self, page_id: int, arrival: float) -> None:
        ledger = self._ledger
        row = self._row
        ledger._now[row] = arrival + 1.0
        ledger._index[row] += 1
        ledger.append_event(row, _KIND_INDEX, page_id, arrival, True)

    def record_index_run(self, pages, arrivals, now: float) -> None:
        ledger = self._ledger
        row = self._row
        ledger._now[row] = now
        ledger._index[row] += len(pages)
        ledger.append_run(row, _KIND_INDEX, pages, arrivals)

    def detach(self) -> None:
        """Convenience: restore this tuner to standalone scalars."""
        self._ledger.detach(self)
