"""Skew-aware broadcast-disk schedules: hot index pages air more often.

Acharya, Alonso, Franklin and Zdonik's *broadcast disks* observe that a
uniform cycle is wasteful when the client population's interest is skewed:
pages the population hammers should be broadcast more frequently than
pages it rarely needs.  Applied to an air index, the "fast disk" holds the
index pages whose subtrees cover the hot query region and the "slow disk"
everything else:

``[ full index | chunk 0 | hot index | chunk 1 | ... | hot index | chunk m-1 ]``

A query landing in the hot region descends the index through hot pages
only — every hop waits at most one super-page, like full (1, m)
replication, but the cycle is much shorter because cold pages air once.
Queries outside the hot region pay the broadcast-disk price: a miss on a
cold page waits out the whole cycle.  The air-index matrix benchmark
measures exactly this trade-off against uniform layouts under uniform and
skewed query populations.

The cycle arithmetic is the shared :class:`~repro.broadcast.replication
.PartialReplicationProgram` machinery (distributed indexing picks its
subset by tree level; broadcast disks pick it by heat).  Hot replicas are
unevenly spaced, so the schedule has no cyclic page order — clients use
the heap fallback over the cached arrival-position tables.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.broadcast.config import SystemParameters
from repro.broadcast.replication import PartialReplicationProgram
from repro.geometry import Rect
from repro.rtree.tree import RTree


def hot_index_pages(tree: RTree, hot_region: Rect) -> List[int]:
    """Index pages whose MBR intersects the hot query region.

    MBR containment makes the set ancestor-closed automatically: a page
    intersecting the hot region forces every ancestor (whose MBR contains
    it) to intersect too, so a hot-region search never leaves the hot set
    on its way down.  The root (page 0) is always included — every search
    starts there regardless of skew.
    """
    tree.assign_page_ids()
    pages = [
        node.page_id
        for node in tree.iter_nodes()
        if node.mbr.intersects_rect(hot_region)
    ]
    if 0 not in pages:
        pages.append(0)
    return pages


class BroadcastDiskProgram(PartialReplicationProgram):
    """A (1, m) program that repeats a hot page subset with every chunk.

    ``hot_pages`` is the fast-disk subset (typically from
    :func:`hot_index_pages` over the population's hot region).  An empty
    subset degenerates to broadcasting the index once per cycle; the full
    page range degenerates to classic (1, m) replication (modulo the
    per-page position tables replacing the closed form).
    """

    def __init__(
        self,
        tree: RTree,
        params: SystemParameters | None = None,
        m: int | None = None,
        hot_pages: Sequence[int] = (),
    ) -> None:
        super().__init__(tree, params, m=m)
        self._layout_replicas(hot_pages)
        self.hot_index_length = self.replicated_index_length
