"""System parameters (Table 2 of the paper) and derived page geometry.

Table 2 settings: index pointer 2 bytes, coordinate 4 bytes, data content
1 kB, page capacity 64-512 bytes.  From these we derive:

* internal-node fanout: each entry is an MBR (4 coordinates) plus a child
  arrival-time pointer -> ``capacity // (4*4 + 2)`` — 3 for 64-byte pages,
  matching the paper's "H = 10 and M = 3" tree for ~100 000 points;
* leaf capacity: each entry is a point (2 coordinates) plus the data-page
  pointer -> ``capacity // (2*4 + 2)``;
* pages per data object: ``ceil(1024 / capacity)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Page capacities evaluated in the paper.
PAPER_PAGE_CAPACITIES = (64, 128, 256, 512)


@dataclass(frozen=True)
class SystemParameters:
    """Broadcast system parameters, defaulting to Table 2 of the paper."""

    page_capacity: int = 64
    pointer_size: int = 2
    coordinate_size: int = 4
    data_object_size: int = 1024

    def __post_init__(self) -> None:
        if self.page_capacity < self.mbr_entry_size:
            raise ValueError(
                f"page capacity {self.page_capacity} cannot hold even one "
                f"R-tree entry of {self.mbr_entry_size} bytes"
            )

    @property
    def mbr_entry_size(self) -> int:
        """Bytes per internal-node entry: 4 coordinates + child pointer."""
        return 4 * self.coordinate_size + self.pointer_size

    @property
    def point_entry_size(self) -> int:
        """Bytes per leaf entry: 2 coordinates + data-object pointer."""
        return 2 * self.coordinate_size + self.pointer_size

    @property
    def internal_fanout(self) -> int:
        """Maximum children of an internal index page."""
        return self.page_capacity // self.mbr_entry_size

    @property
    def leaf_capacity(self) -> int:
        """Maximum points in a leaf index page."""
        return self.page_capacity // self.point_entry_size

    @property
    def pages_per_object(self) -> int:
        """Broadcast pages occupied by one data object."""
        return math.ceil(self.data_object_size / self.page_capacity)
