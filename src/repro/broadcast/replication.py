"""Partial index replication: the shared schedule of uneven air indexes.

Two established broadcast organisations replicate only a *subset* of the
index pages with every data chunk while airing the full index once per
cycle:

``[ full index | chunk 0 | subset | chunk 1 | ... | subset | chunk m-1 ]``

* **distributed indexing** (Imielinski, Viswanathan & Badrinath) picks the
  subset structurally — the top ``t`` tree levels
  (:class:`~repro.broadcast.distributed.DistributedBroadcastProgram`);
* **broadcast disks** (Acharya et al.) pick it by access frequency — the
  pages a skewed query population hammers
  (:class:`~repro.broadcast.disks.BroadcastDiskProgram`).

Both share every piece of the cycle arithmetic except *which* pages repeat,
so this module owns the common machinery: the shortened cycle, the cached
per-page arrival-position tables, and the data-page offsets around the
leading full-index copy.  Replica positions are uneven, so these layouts
have no cyclic page order (``has_cyclic_order = False``): clients fall
back from the arrival frontier's closed-form fast path to the heap queue,
which consumes the cached position arrays through
:meth:`~repro.broadcast.program.BroadcastProgram.next_arrival_at_positions`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.broadcast.config import SystemParameters
from repro.broadcast.program import BroadcastProgram
from repro.rtree.tree import RTree


class PartialReplicationProgram(BroadcastProgram):
    """A (1, m) program whose follower super-pages carry a page subset.

    Subclasses call :meth:`_layout_replicas` with the set of index pages
    to repeat per chunk; the full index (DFS preorder) always opens the
    cycle, so every page is on air at least once per cycle and page 0 (the
    root) keeps its offset-0 anchor.
    """

    #: Replica positions are uneven — no cyclic page order, no frontier
    #: fast path; clients use the cached arrival-position tables instead.
    uniform_index_replication = False
    has_cyclic_order = False

    def __init__(
        self,
        tree: RTree,
        params: SystemParameters | None = None,
        m: int | None = None,
    ) -> None:
        # Initialise the base layout first (assigns page ids, sizes, m).
        super().__init__(tree, params, m=m)

    def _layout_replicas(self, replicated_pages: Iterable[int]) -> None:
        """Fix the cycle around the given per-chunk replica subset.

        ``replicated_pages`` are the index pages repeated with chunks
        1..m-1; their per-chunk order is ascending page id (a DFS-preorder
        subsequence, so ancestors still precede descendants on air).
        """
        #: Per-chunk rank of each replicated page (ascending page order).
        self._replica_rank: Dict[int, int] = {
            page: rank
            for rank, page in enumerate(sorted(set(replicated_pages)))
        }
        for page in self._replica_rank:
            if not 0 <= page < self.index_length:
                raise ValueError(f"replicated page {page} out of range")
        self.replicated_index_length = len(self._replica_rank)
        #: Length of the leading super-page (full index + chunk).
        self._full_super = self.index_length + self.chunk_length
        #: Length of each follower super-page (replica subset + chunk).
        self._replica_super = self.replicated_index_length + self.chunk_length
        self.cycle_length = self._full_super + (self.m - 1) * self._replica_super
        #: Per-page arrival-position tables.  Positions are irregular (one
        #: full copy plus up to ``m - 1`` subset copies), so unlike the
        #: base class there is no closed form — cache one frozen offset
        #: array per page instead.
        self._position_arrays: List[np.ndarray] = [
            self._compute_positions(page_id)
            for page_id in range(self.index_length)
        ]

    def _compute_positions(self, page_id: int) -> np.ndarray:
        positions = [page_id]  # the full copy, in DFS order at cycle start
        rank = self._replica_rank.get(page_id)
        if rank is not None:
            for j in range(1, self.m):
                positions.append(
                    self._full_super + (j - 1) * self._replica_super + rank
                )
        arr = np.asarray(positions, dtype=np.int64)
        # The cached array itself is handed out by index_position_array;
        # freeze it so no caller can corrupt the arrival table in place.
        arr.setflags(write=False)
        return arr

    # ------------------------------------------------------------------
    def index_page_positions(self, page_id: int) -> List[int]:
        return self.index_position_array(page_id).tolist()

    def index_position_array(self, page_id: int) -> np.ndarray:
        if not 0 <= page_id < self.index_length:
            raise ValueError(f"index page {page_id} out of range")
        return self._position_arrays[page_id]

    def next_index_arrival(self, page_id: int, now: float) -> float:
        """Earliest arrival of index page ``page_id`` at or after ``now``.

        Replica positions are unevenly spaced here, so the base class's
        O(1) modular shortcut does not apply; scan the cached offset array.
        """
        return self.next_arrival_at_positions(self.index_position_array(page_id), now)

    def data_page_position(self, data_offset: int) -> int:
        if not 0 <= data_offset < self.data_length:
            raise ValueError(f"data offset {data_offset} out of range")
        if self.chunk_length == 0:
            raise ValueError("program has no data pages")
        chunk, within = divmod(data_offset, self.chunk_length)
        if chunk == 0:
            return self.index_length + within
        return (
            self._full_super
            + (chunk - 1) * self._replica_super
            + self.replicated_index_length
            + within
        )

    # ------------------------------------------------------------------
    def replication_overhead(self) -> float:
        """Index pages per cycle, relative to broadcasting the index once."""
        total = self.index_length + (self.m - 1) * self.replicated_index_length
        return total / self.index_length

    @classmethod
    def full_replication_overhead(cls, tree: RTree, m: int) -> float:
        """The (1, m) scheme's overhead, for comparison: exactly ``m``."""
        return float(m)
