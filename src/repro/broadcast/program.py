"""(1, m) broadcast program: index/data layout and cyclic arrival arithmetic.

A broadcast cycle consists of ``m`` super-pages, each carrying the **whole**
index (R-tree nodes in depth-first preorder — Section 6: "we arrange the
R-tree in a depth-first order in the broadcast channels") followed by a
``1/m`` fraction of the data pages:

``[ index | data chunk 0 | index | data chunk 1 | ... | index | chunk m-1 ]``

Pointers in the air index refer to arrival times, which this module computes
arithmetically — the cycle is never materialised, so 10^6-slot cycles cost
nothing.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.broadcast.config import SystemParameters
from repro.rtree.tree import RTree


def expected_access_pages(index_pages: int, data_pages: int, m: int) -> float:
    """Expected access time (in pages) of a (1, m) layout.

    Half a super-page to reach the next index copy, then half a cycle to
    reach the wanted data page: ``(m + 1) / 2 * (index + data / m)``.
    Convex in ``m`` with minimum at ``m* = sqrt(data / index)``.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    return (m + 1) * (index_pages + data_pages / m) / 2


def optimal_m(index_pages: int, data_pages: int) -> int:
    """The access-time-optimal replication factor for the (1, m) scheme.

    Imielinski et al. show the continuous optimum is
    ``m* = sqrt(data / index)`` — balancing index-replication overhead
    against the wait for the next index copy.  The best *integer* ``m`` is
    the argmin of the actual expected-access-time cost between ``floor(m*)``
    and ``ceil(m*)`` (rounding the square root can pick the worse side:
    e.g. index=4, data=25 has ``m* = 2.5`` where ``m = 3`` wins).  The cost
    is convex, so the better neighbour is the global integer optimum.
    Always at least 1.
    """
    if index_pages <= 0:
        raise ValueError("index must contain at least one page")
    if data_pages <= 0:
        return 1
    root = math.sqrt(data_pages / index_pages)
    lo = max(1, math.floor(root))
    hi = max(1, math.ceil(root))
    return min(
        (lo, hi), key=lambda m: (expected_access_pages(index_pages, data_pages, m), m)
    )


class BroadcastProgram:
    """The per-dataset broadcast layout and its arrival-time arithmetic.

    Building the program assigns ``page_id`` (depth-first preorder rank) to
    every R-tree node; the id doubles as the node's offset inside the index
    segment.  Data objects are laid out in leaf order, ``pages_per_object``
    consecutive pages each, and split into ``m`` equal chunks (the last
    chunk is padded with filler slots so every super-page has equal length).
    """

    #: Capability flag: every index page's replicas sit exactly one
    #: super-page apart, i.e. arrival order is cyclic page-id order — the
    #: property the client's arrival frontier (and the shared-scan arena)
    #: exploits for its closed-form fast path.  Irregular layouts
    #: (distributed indexing, broadcast-disk schedules) override this with
    #: False, which routes clients onto the position-table heap fallback.
    #: Declared by the generating :class:`~repro.broadcast.layout
    #: .BroadcastLayout` and mirrored here on the program it builds.
    has_cyclic_order = True
    #: Legacy alias of :attr:`has_cyclic_order` (pre-layout-seam name).
    uniform_index_replication = True

    def __init__(
        self,
        tree: RTree,
        params: SystemParameters | None = None,
        m: int | None = None,
    ) -> None:
        self.tree = tree
        self.params = params or SystemParameters()
        tree.assign_page_ids()
        self.index_length = tree.node_count()
        self.object_count = tree.size
        self.data_length = self.object_count * self.params.pages_per_object
        self.m = m if m is not None else optimal_m(self.index_length, self.data_length)
        if self.m < 1:
            raise ValueError(f"m must be >= 1, got {self.m}")
        self.chunk_length = math.ceil(self.data_length / self.m) if self.data_length else 0
        #: Length of one [index | chunk] super-page.
        self.super_page_length = self.index_length + self.chunk_length
        #: Total cycle length in page slots (includes padding in the last chunk).
        self.cycle_length = self.m * self.super_page_length
        #: Cycle offsets of the ``m`` index-copy starts — the per-program
        #: arrival-position table.  Index page ``p`` is on air at offsets
        #: ``p + _super_offsets``; cached once so the per-query hot path
        #: never rebuilds position lists.
        self._super_offsets = np.arange(self.m, dtype=np.int64) * self.super_page_length

    # ------------------------------------------------------------------
    # Positions within one cycle
    # ------------------------------------------------------------------
    def index_page_positions(self, page_id: int) -> List[int]:
        """All cycle offsets at which index page ``page_id`` is on air."""
        return self.index_position_array(page_id).tolist()

    def index_position_array(self, page_id: int) -> np.ndarray:
        """All cycle offsets of index page ``page_id``, as a numpy array."""
        if not 0 <= page_id < self.index_length:
            raise ValueError(f"index page {page_id} out of range")
        return page_id + self._super_offsets

    def data_page_position(self, data_offset: int) -> int:
        """Cycle offset of the data page at stream offset ``data_offset``."""
        if not 0 <= data_offset < self.data_length:
            raise ValueError(f"data offset {data_offset} out of range")
        if self.chunk_length == 0:
            raise ValueError("program has no data pages")
        chunk, within = divmod(data_offset, self.chunk_length)
        return chunk * self.super_page_length + self.index_length + within

    def object_data_offsets(self, object_index: int) -> List[int]:
        """Data-stream offsets of all pages of object ``object_index``."""
        if not 0 <= object_index < self.object_count:
            raise ValueError(f"object {object_index} out of range")
        ppo = self.params.pages_per_object
        start = object_index * ppo
        return list(range(start, start + ppo))

    # ------------------------------------------------------------------
    # Arrival arithmetic
    # ------------------------------------------------------------------
    def next_arrival_at_positions(
        self, positions: Sequence[int] | np.ndarray, now: float
    ) -> float:
        """Earliest slot >= ``now`` whose cycle offset is in ``positions``.

        ``now`` is an absolute time on an un-shifted channel; phase shifts
        are applied by :class:`~repro.broadcast.channel.BroadcastChannel`.
        Accepts plain sequences or cached numpy offset arrays.
        """
        base = math.ceil(now)
        phase = base % self.cycle_length
        if isinstance(positions, np.ndarray):
            if positions.size == 0:
                raise ValueError("no broadcast positions supplied")
            return base + int(((positions - phase) % self.cycle_length).min())
        best = None
        for pos in positions:
            delta = (pos - phase) % self.cycle_length
            if best is None or delta < best:
                best = delta
        if best is None:
            raise ValueError("no broadcast positions supplied")
        return base + best

    def next_index_arrival(self, page_id: int, now: float) -> float:
        """Earliest arrival of index page ``page_id`` at or after ``now``.

        The ``m`` replicas of an index page sit exactly one super-page
        apart, so the earliest one is at delta ``(page_id - now) mod
        super_page_length`` — O(1), no position list needed.  This is the
        hottest call in the whole client stack (every queue push, peek and
        head refresh lands here).
        """
        if not 0 <= page_id < self.index_length:
            raise ValueError(f"index page {page_id} out of range")
        base = math.ceil(now)
        return base + (page_id - base) % self.super_page_length
