"""(1, m) broadcast program: index/data layout and cyclic arrival arithmetic.

A broadcast cycle consists of ``m`` super-pages, each carrying the **whole**
index (R-tree nodes in depth-first preorder — Section 6: "we arrange the
R-tree in a depth-first order in the broadcast channels") followed by a
``1/m`` fraction of the data pages:

``[ index | data chunk 0 | index | data chunk 1 | ... | index | chunk m-1 ]``

Pointers in the air index refer to arrival times, which this module computes
arithmetically — the cycle is never materialised, so 10^6-slot cycles cost
nothing.
"""

from __future__ import annotations

import math
from typing import List

from repro.broadcast.config import SystemParameters
from repro.rtree.tree import RTree


def optimal_m(index_pages: int, data_pages: int) -> int:
    """The access-time-optimal replication factor for the (1, m) scheme.

    Imielinski et al. show the optimum is ``m* = sqrt(data / index)`` —
    balancing index-replication overhead against the wait for the next
    index copy.  Always at least 1.
    """
    if index_pages <= 0:
        raise ValueError("index must contain at least one page")
    if data_pages <= 0:
        return 1
    return max(1, round(math.sqrt(data_pages / index_pages)))


class BroadcastProgram:
    """The per-dataset broadcast layout and its arrival-time arithmetic.

    Building the program assigns ``page_id`` (depth-first preorder rank) to
    every R-tree node; the id doubles as the node's offset inside the index
    segment.  Data objects are laid out in leaf order, ``pages_per_object``
    consecutive pages each, and split into ``m`` equal chunks (the last
    chunk is padded with filler slots so every super-page has equal length).
    """

    def __init__(
        self,
        tree: RTree,
        params: SystemParameters | None = None,
        m: int | None = None,
    ) -> None:
        self.tree = tree
        self.params = params or SystemParameters()
        tree.assign_page_ids()
        self.index_length = tree.node_count()
        self.object_count = tree.size
        self.data_length = self.object_count * self.params.pages_per_object
        self.m = m if m is not None else optimal_m(self.index_length, self.data_length)
        if self.m < 1:
            raise ValueError(f"m must be >= 1, got {self.m}")
        self.chunk_length = math.ceil(self.data_length / self.m) if self.data_length else 0
        #: Length of one [index | chunk] super-page.
        self.super_page_length = self.index_length + self.chunk_length
        #: Total cycle length in page slots (includes padding in the last chunk).
        self.cycle_length = self.m * self.super_page_length

    # ------------------------------------------------------------------
    # Positions within one cycle
    # ------------------------------------------------------------------
    def index_page_positions(self, page_id: int) -> List[int]:
        """All cycle offsets at which index page ``page_id`` is on air."""
        if not 0 <= page_id < self.index_length:
            raise ValueError(f"index page {page_id} out of range")
        return [j * self.super_page_length + page_id for j in range(self.m)]

    def data_page_position(self, data_offset: int) -> int:
        """Cycle offset of the data page at stream offset ``data_offset``."""
        if not 0 <= data_offset < self.data_length:
            raise ValueError(f"data offset {data_offset} out of range")
        if self.chunk_length == 0:
            raise ValueError("program has no data pages")
        chunk, within = divmod(data_offset, self.chunk_length)
        return chunk * self.super_page_length + self.index_length + within

    def object_data_offsets(self, object_index: int) -> List[int]:
        """Data-stream offsets of all pages of object ``object_index``."""
        if not 0 <= object_index < self.object_count:
            raise ValueError(f"object {object_index} out of range")
        ppo = self.params.pages_per_object
        start = object_index * ppo
        return list(range(start, start + ppo))

    # ------------------------------------------------------------------
    # Arrival arithmetic
    # ------------------------------------------------------------------
    def next_arrival_at_positions(self, positions: List[int], now: float) -> float:
        """Earliest slot >= ``now`` whose cycle offset is in ``positions``.

        ``now`` is an absolute time on an un-shifted channel; phase shifts
        are applied by :class:`~repro.broadcast.channel.BroadcastChannel`.
        """
        base = math.ceil(now)
        phase = base % self.cycle_length
        best = None
        for pos in positions:
            delta = (pos - phase) % self.cycle_length
            if best is None or delta < best:
                best = delta
        if best is None:
            raise ValueError("no broadcast positions supplied")
        return base + best

    def next_index_arrival(self, page_id: int, now: float) -> float:
        """Earliest arrival of index page ``page_id`` at or after ``now``."""
        return self.next_arrival_at_positions(self.index_page_positions(page_id), now)
