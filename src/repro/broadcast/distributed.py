"""Distributed (partial-replication) air indexing.

The (1, m) scheme replicates the **entire** index before every data chunk.
Imielinski, Viswanathan and Badrinath's *distributed indexing* observes
that most of an index's bulk is its deep levels, and replicates only the
top ``t`` levels with every chunk while broadcasting the full index once
per cycle:

``[ full index | chunk 0 | top index | chunk 1 | ... | top index | chunk m-1 ]``

The cycle shrinks (deep pages appear once), at the price of a longer wait
when a search misses a deep page.  The ablation benchmark quantifies the
trade-off against full replication on the same workload.

The cycle arithmetic lives in :class:`~repro.broadcast.replication
.PartialReplicationProgram`, shared with the skew-aware broadcast-disk
schedule (:mod:`repro.broadcast.disks`) — the two differ only in *which*
pages repeat per chunk (top levels here, hot pages there).  Both mirror
:class:`~repro.broadcast.program.BroadcastProgram`'s interface
(``index_page_positions`` / ``data_page_position`` /
``next_index_arrival``), so channels and tuners work unchanged.
"""

from __future__ import annotations

from typing import Dict

from repro.broadcast.config import SystemParameters
from repro.broadcast.replication import PartialReplicationProgram
from repro.rtree.tree import RTree


class DistributedBroadcastProgram(PartialReplicationProgram):
    """A (1, m) program replicating only the top ``replicated_levels``.

    ``replicated_levels = height`` degenerates to the classic (1, m)
    layout; ``replicated_levels = 1`` replicates only the root.
    """

    def __init__(
        self,
        tree: RTree,
        params: SystemParameters | None = None,
        m: int | None = None,
        replicated_levels: int = 2,
    ) -> None:
        if replicated_levels < 1:
            raise ValueError(
                f"must replicate at least the root level, got {replicated_levels}"
            )
        super().__init__(tree, params, m=m)
        self.replicated_levels = min(replicated_levels, tree.height)
        cutoff = tree.root.level - (self.replicated_levels - 1)
        self._layout_replicas(
            node.page_id
            for node in tree.iter_nodes()
            if node.level >= cutoff
        )

    @property
    def top_index_length(self) -> int:
        """Pages in the replicated top-level subset (legacy name)."""
        return self.replicated_index_length

    @property
    def _top_rank(self) -> Dict[int, int]:
        """DFS rank among replicated (top) pages (legacy name)."""
        return self._replica_rank
