"""Distributed (partial-replication) air indexing.

The (1, m) scheme replicates the **entire** index before every data chunk.
Imielinski, Viswanathan and Badrinath's *distributed indexing* observes
that most of an index's bulk is its deep levels, and replicates only the
top ``t`` levels with every chunk while broadcasting the full index once
per cycle:

``[ full index | chunk 0 | top index | chunk 1 | ... | top index | chunk m-1 ]``

The cycle shrinks (deep pages appear once), at the price of a longer wait
when a search misses a deep page.  The ablation benchmark quantifies the
trade-off against full replication on the same workload.

This class mirrors :class:`~repro.broadcast.program.BroadcastProgram`'s
interface (``index_page_positions`` / ``data_page_position`` /
``next_index_arrival``), so channels and tuners work unchanged.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.broadcast.config import SystemParameters
from repro.broadcast.program import BroadcastProgram
from repro.rtree.tree import RTree


class DistributedBroadcastProgram(BroadcastProgram):
    """A (1, m) program replicating only the top ``replicated_levels``.

    ``replicated_levels = height`` degenerates to the classic (1, m)
    layout; ``replicated_levels = 1`` replicates only the root.
    """

    #: Deep pages appear once per cycle while top pages repeat per chunk,
    #: so arrival order is not cyclic page order (no frontier fast path).
    uniform_index_replication = False

    def __init__(
        self,
        tree: RTree,
        params: SystemParameters | None = None,
        m: int | None = None,
        replicated_levels: int = 2,
    ) -> None:
        if replicated_levels < 1:
            raise ValueError(
                f"must replicate at least the root level, got {replicated_levels}"
            )
        # Initialise the base layout first (assigns page ids, sizes, m).
        super().__init__(tree, params, m=m)
        self.replicated_levels = min(replicated_levels, tree.height)
        cutoff = tree.root.level - (self.replicated_levels - 1)
        #: DFS rank among replicated (top) pages, for pages above the cutoff.
        self._top_rank: Dict[int, int] = {}
        for node in tree.iter_nodes():
            if node.level >= cutoff:
                self._top_rank[node.page_id] = len(self._top_rank)
        self.top_index_length = len(self._top_rank)
        #: Length of the leading super-page (full index + chunk).
        self._full_super = self.index_length + self.chunk_length
        #: Length of each follower super-page (top index + chunk).
        self._top_super = self.top_index_length + self.chunk_length
        self.cycle_length = self._full_super + (self.m - 1) * self._top_super
        #: Per-page arrival-position tables.  Positions here are irregular
        #: (one full copy plus ``m - 1`` top-index copies), so unlike the
        #: base class there is no closed form — cache one offset array per
        #: page instead.
        self._position_arrays: List[np.ndarray] = [
            self._compute_positions(page_id) for page_id in range(self.index_length)
        ]

    def _compute_positions(self, page_id: int) -> np.ndarray:
        positions = [page_id]  # the full copy, in DFS order at cycle start
        rank = self._top_rank.get(page_id)
        if rank is not None:
            for j in range(1, self.m):
                positions.append(
                    self._full_super + (j - 1) * self._top_super + rank
                )
        arr = np.asarray(positions, dtype=np.int64)
        # The cached array itself is handed out by index_position_array;
        # freeze it so no caller can corrupt the arrival table in place.
        arr.setflags(write=False)
        return arr

    # ------------------------------------------------------------------
    def index_page_positions(self, page_id: int) -> List[int]:
        return self.index_position_array(page_id).tolist()

    def index_position_array(self, page_id: int) -> np.ndarray:
        if not 0 <= page_id < self.index_length:
            raise ValueError(f"index page {page_id} out of range")
        return self._position_arrays[page_id]

    def next_index_arrival(self, page_id: int, now: float) -> float:
        """Earliest arrival of index page ``page_id`` at or after ``now``.

        Replica positions are unevenly spaced here, so the base class's
        O(1) modular shortcut does not apply; scan the cached offset array.
        """
        return self.next_arrival_at_positions(self.index_position_array(page_id), now)

    def data_page_position(self, data_offset: int) -> int:
        if not 0 <= data_offset < self.data_length:
            raise ValueError(f"data offset {data_offset} out of range")
        if self.chunk_length == 0:
            raise ValueError("program has no data pages")
        chunk, within = divmod(data_offset, self.chunk_length)
        if chunk == 0:
            return self.index_length + within
        return (
            self._full_super
            + (chunk - 1) * self._top_super
            + self.top_index_length
            + within
        )

    # ------------------------------------------------------------------
    def replication_overhead(self) -> float:
        """Index pages per cycle, relative to broadcasting the index once."""
        total = self.index_length + (self.m - 1) * self.top_index_length
        return total / self.index_length

    @classmethod
    def full_replication_overhead(cls, tree: RTree, m: int) -> float:
        """The (1, m) scheme's overhead, for comparison: exactly ``m``."""
        return float(m)
