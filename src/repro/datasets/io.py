"""Dataset persistence: write/read point sets as CSV.

Keeps experiment inputs reproducible on disk — generate once, version the
file, reload anywhere.  The format is two comma-separated floats per line
with an optional ``#`` comment header; nothing exotic, so files round-trip
through spreadsheets and other tools.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, List, Union

from repro.geometry import Point

PathLike = Union[str, pathlib.Path]


def save_points(points: Iterable[Point], path: PathLike, comment: str = "") -> int:
    """Write points as ``x,y`` lines; returns the number written."""
    path = pathlib.Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as f:
        if comment:
            for line in comment.splitlines():
                f.write(f"# {line}\n")
        for p in points:
            f.write(f"{p.x!r},{p.y!r}\n")
            count += 1
    return count


def load_points(path: PathLike) -> List[Point]:
    """Read a point set written by :func:`save_points`.

    Blank lines and ``#`` comments are skipped; malformed lines raise
    :class:`ValueError` with the offending line number.
    """
    path = pathlib.Path(path)
    out: List[Point] = []
    with path.open("r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(",")
            if len(parts) != 2:
                raise ValueError(f"{path}:{lineno}: expected 'x,y', got {line!r}")
            try:
                out.append(Point(float(parts[0]), float(parts[1])))
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
    return out
