"""Synthetic dataset generators (uniform and clustered)."""

from __future__ import annotations

import math
import random
from typing import List, Sequence

from repro.geometry import Point, Rect

#: Side length of the paper's synthetic region (39,000 x 39,000).
PAPER_REGION_SIDE = 39_000.0

#: Density exponents of the UNIF(E) series (Section 6: 10^-7.0 .. 10^-4.2).
UNIF_EXPONENTS = (-7.0, -6.6, -6.2, -5.8, -5.4, -5.0, -4.6, -4.2)


def uniform(
    n: int,
    seed: int = 0,
    region: Rect | None = None,
) -> List[Point]:
    """``n`` points uniform over ``region`` (default: the paper's square)."""
    if n < 1:
        raise ValueError(f"dataset size must be >= 1, got {n}")
    region = region or Rect(0.0, 0.0, PAPER_REGION_SIDE, PAPER_REGION_SIDE)
    rng = random.Random(seed)
    return [
        Point(
            rng.uniform(region.xmin, region.xmax),
            rng.uniform(region.ymin, region.ymax),
        )
        for _ in range(n)
    ]


def unif_size(exponent: float, side: float = PAPER_REGION_SIDE) -> int:
    """Cardinality of UNIF(exponent): ``round(10^E * side^2)``.

    Reproduces the paper's sizes 152, 382, 960, 2411, 6055, 15210, 38206
    and 95969 for E = -7.0 .. -4.2.
    """
    return max(1, round((10.0**exponent) * side * side))


def unif_by_exponent(
    exponent: float,
    seed: int = 0,
    side: float = PAPER_REGION_SIDE,
) -> List[Point]:
    """The UNIF(E) dataset: density ``10^E`` over a ``side x side`` square."""
    region = Rect(0.0, 0.0, side, side)
    return uniform(unif_size(exponent, side), seed=seed, region=region)


def sized_uniform(
    n: int,
    seed: int = 0,
    side: float = PAPER_REGION_SIDE,
) -> List[Point]:
    """The second synthetic series: a fixed-size uniform dataset."""
    return uniform(n, seed=seed, region=Rect(0.0, 0.0, side, side))


def gaussian_clusters(
    n: int,
    clusters: int,
    seed: int = 0,
    region: Rect | None = None,
    spread: float = 0.03,
) -> List[Point]:
    """``n`` points from a mixture of Gaussian clusters, clipped to region.

    Cluster centers are uniform over the region; each cluster's standard
    deviation is ``spread`` times the region side, giving heavily skewed,
    city-like point distributions.  Cluster weights follow a Zipf-ish
    1/rank profile so a few clusters dominate, as in real gazetteers.
    """
    if n < 1:
        raise ValueError(f"dataset size must be >= 1, got {n}")
    if clusters < 1:
        raise ValueError(f"cluster count must be >= 1, got {clusters}")
    region = region or Rect(0.0, 0.0, PAPER_REGION_SIDE, PAPER_REGION_SIDE)
    rng = random.Random(seed)
    centers = [
        (
            rng.uniform(region.xmin, region.xmax),
            rng.uniform(region.ymin, region.ymax),
        )
        for _ in range(clusters)
    ]
    weights = [1.0 / (rank + 1) for rank in range(clusters)]
    total = sum(weights)
    weights = [w / total for w in weights]
    sigma_x = spread * region.width
    sigma_y = spread * region.height
    points: List[Point] = []
    while len(points) < n:
        cx, cy = rng.choices(centers, weights=weights)[0]
        x = rng.gauss(cx, sigma_x)
        y = rng.gauss(cy, sigma_y)
        if region.xmin <= x <= region.xmax and region.ymin <= y <= region.ymax:
            points.append(Point(x, y))
    return points


def scale_to_region(points: Sequence[Point], target: Rect) -> List[Point]:
    """Affinely rescale points so their MBR maps onto ``target``.

    The paper: "When datasets with different areas are used, they are
    scaled to the same area."
    """
    if not points:
        raise ValueError("cannot scale an empty dataset")
    src = Rect.from_points(points)
    sx = target.width / src.width if src.width else 0.0
    sy = target.height / src.height if src.height else 0.0
    return [
        Point(
            target.xmin + (p.x - src.xmin) * sx,
            target.ymin + (p.y - src.ymin) * sy,
        )
        for p in points
    ]


def density_of(points: Sequence[Point], region: Rect) -> float:
    """Points per unit area over ``region``."""
    if region.area <= 0:
        raise ValueError("region must have positive area")
    return len(points) / region.area


def expected_nn_distance(n: int, area: float) -> float:
    """Mean NN distance of a uniform point process (0.5 / sqrt(density)).

    Handy for sanity checks in tests and examples.
    """
    if n <= 0 or area <= 0:
        raise ValueError("n and area must be positive")
    return 0.5 / math.sqrt(n / area)
