"""CITY-like and POST-like skewed datasets (substitution for dead links).

The paper's experiments use two real datasets from the R-tree-portal
archive (reference [1], now offline):

* **CITY** — ~6,000 cities and villages of Greece in a 39,000 x 39,000
  region;
* **POST** — >100,000 post offices in the northeastern US in a
  1,000,000 x 1,000,000 region.

These generators produce Gaussian-mixture datasets with the same
cardinality and region.  Real settlement data is heavily clustered around
population centers; a 1/rank-weighted mixture of tight Gaussian clusters
reproduces the property the experiments actually exercise: *non-uniform
density*, which invalidates Approximate-TNN's Equation 1 radius (Table 3)
and drives the density-aware alpha choice of the ANN optimisation
(Figure 12(d)).
"""

from __future__ import annotations

from typing import List

from repro.datasets.synthetic import PAPER_REGION_SIDE, gaussian_clusters
from repro.geometry import Point, Rect

#: Default cardinalities per the paper's description.
CITY_SIZE = 6_000
POST_SIZE = 100_000

#: POST's native region side (scaled to the common region when used).
POST_REGION_SIDE = 1_000_000.0


def city_like(n: int = CITY_SIZE, seed: int = 101) -> List[Point]:
    """A CITY-like skewed dataset over the 39,000 x 39,000 region.

    A dozen tight clusters model Greece's settlement pattern: towns
    concentrate around a handful of urban centers with wide rural gaps in
    between — the gaps are what defeats Approximate-TNN's uniform-density
    radius (Table 3).
    """
    region = Rect(0.0, 0.0, PAPER_REGION_SIDE, PAPER_REGION_SIDE)
    return gaussian_clusters(n, clusters=12, seed=seed, region=region, spread=0.02)


def post_like(
    n: int = POST_SIZE,
    seed: int = 202,
    side: float = POST_REGION_SIDE,
) -> List[Point]:
    """A POST-like skewed dataset over a ``side x side`` region.

    More clusters than CITY but still strongly non-uniform: post offices
    track population centers.
    """
    region = Rect(0.0, 0.0, side, side)
    return gaussian_clusters(n, clusters=60, seed=seed, region=region, spread=0.03)
