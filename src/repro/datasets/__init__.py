"""Dataset generators mirroring the paper's workloads (Section 6).

Synthetic uniform datasets come in two families:

* :func:`unif_by_exponent` — the UNIF(E) density series: density ``10^E``
  over the 39,000 x 39,000 region (E from -7.0 to -4.2);
* :func:`sized_uniform` — the second series with fixed sizes 2,000..30,000.

The paper's real datasets (Greek CITY, ~6,000 towns; US POST, ~100,000
post offices) came from a spatial-data archive that is no longer online.
:func:`city_like` and :func:`post_like` substitute Gaussian-mixture
clustered generators with matched cardinality and region — what matters to
every experiment that uses them (Table 3, Figure 12(d)) is that the data is
*skewed*, which breaks Approximate-TNN's uniformity assumption; see
DESIGN.md section 5.
"""

from repro.datasets.synthetic import (
    PAPER_REGION_SIDE,
    UNIF_EXPONENTS,
    density_of,
    expected_nn_distance,
    gaussian_clusters,
    scale_to_region,
    sized_uniform,
    unif_by_exponent,
    unif_size,
    uniform,
)
from repro.datasets.named import CITY_SIZE, POST_SIZE, city_like, post_like
from repro.datasets.io import load_points, save_points

__all__ = [
    "save_points",
    "load_points",
    "PAPER_REGION_SIDE",
    "UNIF_EXPONENTS",
    "CITY_SIZE",
    "POST_SIZE",
    "uniform",
    "unif_by_exponent",
    "unif_size",
    "sized_uniform",
    "gaussian_clusters",
    "scale_to_region",
    "density_of",
    "expected_nn_distance",
    "city_like",
    "post_like",
]
