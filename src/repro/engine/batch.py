"""Batched multi-query execution over one TNN environment.

The paper's evaluation pushes 1,000 random queries through every
configuration; serving that kind of bulk workload one ad-hoc query at a
time is the scaling bottleneck the ROADMAP calls out.  :class:`BatchRunner`
executes a whole :class:`~repro.engine.workload.QueryWorkload` through a
shared substrate:

* the environment's broadcast programs (with their cached arrival-position
  tables) are built once and reused by every query;
* execution can fan out over a process pool — queries carry their full
  per-query state (point + channel phases, pre-derived from the workload
  seed), so pool results are **bit-identical** to the sequential path and
  are reassembled in workload order;
* per-query results are aggregated into :class:`~repro.sim.stats.ResultStats`
  through the vectorised :func:`~repro.sim.stats.summarize_batch`;
* reference (oracle) results are cached per workload, so comparing several
  candidate algorithms against the same exact reference pays for the
  reference once instead of once per candidate.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from repro.core.base import TNNAlgorithm
from repro.core.environment import TNNEnvironment
from repro.core.result import TNNResult
from repro.engine.shared_scan import execute_tnn_batch, shared_scan_supported
from repro.engine.workload import QueryWorkload
from repro.geometry import Point

if TYPE_CHECKING:  # pragma: no cover - sim.runner wraps this module
    from repro.sim.stats import ResultStats

#: Worker-process state installed by the pool initializer: the environment
#: (the heavy part — both R-trees and programs) is pickled once per worker,
#: not once per query or per algorithm.
_POOL_STATE: dict = {}


def _pool_init(env: TNNEnvironment) -> None:
    _POOL_STATE["env"] = env


def _pool_run_chunk(
    task: Tuple[TNNAlgorithm, List[Tuple[int, Point, float, float]]]
) -> List[Tuple[int, TNNResult]]:
    algorithm, chunk = task
    env = _POOL_STATE["env"]
    return [(i, algorithm.run(env, p, ps, pr)) for i, p, ps, pr in chunk]


def _chaos_maybe_die(shard_index: int) -> None:
    """Fault-injection hook: kill this worker process once, mid-campaign.

    ``REPRO_CHAOS_KILL_SHARD`` names the shard index the kill targets and
    ``REPRO_CHAOS_MARKER`` points at an armed marker file; the worker that
    claims the marker (removal is atomic, so exactly one wins) hard-exits
    without cleanup — the crash the shard supervisor must absorb.  Tests
    and the resilience benchmark use this to prove a lost worker costs a
    retry, never a result.
    """
    target = os.environ.get("REPRO_CHAOS_KILL_SHARD")
    if target is None or int(target) != shard_index:
        return
    marker = os.environ.get("REPRO_CHAOS_MARKER")
    if not marker:
        return
    try:
        os.remove(marker)  # atomic claim: only one worker dies
    except OSError:
        return
    os._exit(1)


def _run_shared_shard(
    env: TNNEnvironment, task: tuple
) -> List[Tuple[int, TNNResult]]:
    """Run one phase-grouped shard through the shared scan.

    A shard is a pure function of (algorithm, query slice): it reads no
    worker-local state besides the environment, so a supervisor may rerun
    it on any worker — or serially in the parent — and merge bit-identical
    results.
    """
    algorithm, shard, record_log, _shard_index = task
    results = execute_tnn_batch(
        env,
        algorithm,
        [(p, ps, pr) for _, p, ps, pr in shard],
        record_log=record_log,
    )
    return [(item[0], res) for item, res in zip(shard, results)]


def _pool_run_shared_shard(task: tuple) -> List[Tuple[int, TNNResult]]:
    """Pool worker entry point for one shared-scan shard."""
    _chaos_maybe_die(task[3])
    return _run_shared_shard(_POOL_STATE["env"], task)


#: Round-robin chunks handed to each pool worker, per worker.  More than
#: one chunk per worker lets a straggler chunk overlap with the rest of
#: the pool instead of serialising the tail.
_CHUNKS_PER_WORKER = 4


def pool_chunk_count(n_queries: int, workers: int) -> int:
    """Number of pool chunks for a workload of ``n_queries``.

    Derived from ``len(workload) / workers``: the pool aims at
    ``_CHUNKS_PER_WORKER`` chunks per worker (chunk size ~``n/(4w)``) so
    load imbalance amortises, but never fewer than one chunk per worker
    nor more chunks than queries — a small workload spreads over every
    worker instead of serialising behind one oversized chunk.
    """
    if workers < 1:
        return 1
    return max(1, min(n_queries, workers * _CHUNKS_PER_WORKER))


def default_workers() -> int:
    """Worker processes from ``REPRO_WORKERS`` (default 0 = in-process)."""
    return int(os.environ.get("REPRO_WORKERS", "0"))


# ----------------------------------------------------------------------
# Shard supervision (crash / hang recovery for the shared-scan pool)
# ----------------------------------------------------------------------
def _env_number(name: str, default: str, integer: bool = False):
    """A validated supervisor knob from the environment.

    The supervisor knobs silently shaped recovery behaviour whatever
    garbage they held; a negative timeout or a NaN backoff must fail
    loudly at the first read, not skew a retry loop mid-campaign.
    """
    raw = os.environ.get(name, default)
    try:
        value = int(raw) if integer else float(raw)
    except (TypeError, ValueError):
        kind = "an integer" if integer else "a number"
        raise ValueError(f"{name} must be {kind}, got {raw!r}") from None
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {raw!r}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {raw!r}")
    return value


def shard_timeout() -> Optional[float]:
    """Per-wave shard deadline in seconds (``REPRO_SHARD_TIMEOUT``).

    ``0`` (the default) disables the deadline: crashes are still detected
    through the broken-pool signal, but a genuinely hung worker waits
    forever — set a timeout in CI and chaos runs so hangs fail fast.
    Negative or non-finite values are rejected.
    """
    t = _env_number("REPRO_SHARD_TIMEOUT", "0")
    return t if t > 0 else None


def shard_retries() -> int:
    """Pool retry waves for failed shards (``REPRO_SHARD_RETRIES``).

    Must be a non-negative integer; ``0`` degrades straight to the serial
    last resort after the first failed wave.
    """
    return _env_number("REPRO_SHARD_RETRIES", "2", integer=True)


def shard_backoff() -> float:
    """Base retry backoff seconds (``REPRO_SHARD_BACKOFF``), doubled per
    wave — crashed workers often share a transient cause (memory
    pressure, a dying host) that a beat of quiet lets pass.  Must be a
    finite non-negative number."""
    return _env_number("REPRO_SHARD_BACKOFF", "0.1")


class _SupervisedPool:
    """A worker pool that can be torn down and rebuilt mid-run.

    One instance is shared by every algorithm of a ``run()`` mapping; the
    shard supervisor replaces the underlying executor when it detects a
    broken pool (a worker crashed) or a hung wave (deadline passed), so
    later waves — and later algorithms — fan out on fresh processes
    instead of inheriting a dead executor.
    """

    def __init__(self, make) -> None:
        self._make = make
        self.pool: ProcessPoolExecutor = make()

    def rebuild(self) -> None:
        pool = self.pool
        # A hung worker ignores the executor's graceful shutdown: kill
        # the processes first, then discard the executor without waiting.
        for p in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                p.terminate()
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        self.pool = self._make()

    def shutdown(self) -> None:
        try:
            self.pool.shutdown()
        except Exception:
            pass


class BatchRunner:
    """Executes one workload against one environment, for many algorithms.

    ``workers`` selects the execution mode: ``0``/``1`` runs in-process,
    ``>= 2`` fans the workload out over that many worker processes.  Both
    modes produce identical result sequences; the pool only changes
    wall-clock time.
    """

    def __init__(
        self,
        env: TNNEnvironment,
        workload: QueryWorkload,
        workers: Optional[int] = None,
        queries: Optional[List[Tuple[Point, float, float]]] = None,
    ) -> None:
        self.env = env
        self.workload = workload
        self.workers = default_workers() if workers is None else workers
        # An explicit query list overrides the workload materialisation:
        # the distributed coordinator's local-rescue rung runs arbitrary
        # slices of a campaign through the supervised pool this way.
        self._queries = (
            list(queries) if queries is not None else workload.queries(env)
        )
        self._reference_cache: Dict[str, List[TNNResult]] = {}

    @property
    def queries(self) -> List[Tuple[Point, float, float]]:
        """The materialised workload (query point, phase_s, phase_r)."""
        return list(self._queries)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_algorithm(
        self, algorithm: TNNAlgorithm, workers: Optional[int] = None
    ) -> List[TNNResult]:
        """All per-query results of one algorithm, in workload order."""
        workers = self.workers if workers is None else workers
        if workers >= 2 and len(self._queries) > 1:
            return self._run_pool(algorithm, workers)
        return [
            algorithm.run(self.env, p, phase_s, phase_r)
            for p, phase_s, phase_r in self._queries
        ]

    def _run_pool(
        self,
        algorithm: TNNAlgorithm,
        workers: int,
        pool: Optional[ProcessPoolExecutor] = None,
    ) -> List[TNNResult]:
        indexed = [
            (i, p, ps, pr) for i, (p, ps, pr) in enumerate(self._queries)
        ]
        # Deterministic round-robin chunking: queries carry their own
        # pre-seeded state, so placement affects wall-clock only.  The
        # chunk count follows the workload size (see pool_chunk_count), so
        # stragglers overlap instead of serialising the pool's tail.
        n_chunks = pool_chunk_count(len(indexed), workers)
        chunks = [indexed[c::n_chunks] for c in range(n_chunks)]
        tasks = [(algorithm, c) for c in chunks if c]
        results: List[Optional[TNNResult]] = [None] * len(indexed)
        if pool is None:
            with self._make_pool(workers) as own_pool:
                parts = list(own_pool.map(_pool_run_chunk, tasks))
        else:
            parts = list(pool.map(_pool_run_chunk, tasks))
        for part in parts:
            for i, res in part:
                results[i] = res
        return results  # type: ignore[return-value]

    def _make_pool(self, workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers, initializer=_pool_init, initargs=(self.env,)
        )

    def run(self, algorithms: Mapping[str, TNNAlgorithm]) -> Dict[str, "ResultStats"]:
        """Summary statistics per algorithm name, on the shared workload.

        In pool mode, one worker pool (and one pickled environment per
        worker) is shared by every algorithm in the mapping.
        """
        # Deferred import: repro.sim.runner wraps this module for back
        # compat, so importing sim.stats at module load would be circular.
        from repro.sim.stats import summarize_batch

        if self.workers >= 2 and len(self._queries) > 1:
            with self._make_pool(self.workers) as pool:
                return {
                    name: summarize_batch(
                        self._run_pool(algo, self.workers, pool=pool)
                    )
                    for name, algo in algorithms.items()
                }
        return {
            name: summarize_batch(self.run_algorithm(algo))
            for name, algo in algorithms.items()
        }

    # ------------------------------------------------------------------
    # Oracle comparison
    # ------------------------------------------------------------------
    def reference_results(self, reference: TNNAlgorithm) -> List[TNNResult]:
        """Results of an exact reference algorithm, computed once per workload."""
        key = _algorithm_key(reference)
        if key not in self._reference_cache:
            self._reference_cache[key] = self.run_algorithm(reference)
        return self._reference_cache[key]

    def compare_failures(
        self,
        candidate: TNNAlgorithm,
        reference: TNNAlgorithm,
        rel_tol: float = 1e-9,
    ) -> float:
        """Fraction of queries where ``candidate`` misses the true answer.

        ``reference`` must be an exact algorithm (Double-NN is the cheap
        choice); a query counts as failed when the candidate returns no
        pair or a strictly larger transitive distance.  Reference results
        are cached, so sweeping many candidates against one oracle re-runs
        only the candidates.
        """
        want = self.reference_results(reference)
        failures = 0
        for got, ref in zip(self.run_algorithm(candidate), want):
            if got.failed or got.distance > ref.distance * (1 + rel_tol):
                failures += 1
        return failures / len(self._queries)


class SharedScanRunner(BatchRunner):
    """A :class:`BatchRunner` that executes the workload page-major.

    Same constructor, same API, same results bit for bit — but supported
    algorithms (exact Double-NN / Hybrid-NN: see
    :func:`~repro.engine.shared_scan.shared_scan_supported`) run through
    the shared-scan executor, which serves every active query per page
    arrival and batches the geometry kernels across the whole workload
    (:mod:`repro.engine.shared_scan`).  Unsupported configurations (ANN
    optimizations, data retrieval, custom algorithms) silently fall back
    to the per-query path, so the runner is a drop-in default.

    In pool mode the workload is sharded **by channel phase group**:
    queries are ordered by their s-channel phase and cut into one
    contiguous shard per worker, so each worker's queries start at nearby
    positions of the broadcast cycle and its round lanes stay full.
    Sharding is pure placement — per-query state is self-contained — and
    results are reassembled in workload order.

    Shards run **supervised**: a crashed worker (broken pool) or a hung
    wave (``REPRO_SHARD_TIMEOUT``) tears the pool down, rebuilds it,
    reshards the failed slice across the fresh workers and retries with
    exponential backoff (``REPRO_SHARD_RETRIES`` / ``REPRO_SHARD_BACKOFF``),
    degrading to in-process serial execution as the last resort — every
    recovery path merges bit-identical results, because a shard is a pure
    function of (algorithm, query slice).
    """

    def run_algorithm(
        self,
        algorithm: TNNAlgorithm,
        workers: Optional[int] = None,
        record_log: bool = True,
    ) -> List[TNNResult]:
        """All per-query results, page-major when supported.

        ``record_log=False`` skips the per-tuner reception logs on the
        shared-scan path (results and cost counters are unaffected); the
        per-query fallback ignores the flag — its results embed the same
        counters either way.
        """
        workers = self.workers if workers is None else workers
        if not shared_scan_supported(algorithm):
            return super().run_algorithm(algorithm, workers)
        queries = self._queries
        if workers >= 2 and len(queries) > 1:
            sp = _SupervisedPool(lambda: self._make_pool(workers))
            try:
                return self._run_shared_pool(
                    algorithm, workers, sp, record_log
                )
            finally:
                sp.shutdown()
        return execute_tnn_batch(
            self.env, algorithm, queries, record_log=record_log
        )

    def _run_shared_pool(
        self,
        algorithm: TNNAlgorithm,
        workers: int,
        sp: _SupervisedPool,
        record_log: bool = True,
    ) -> List[TNNResult]:
        queries = self._queries
        tasks: Dict[int, tuple] = {}
        for shard in self._phase_shards(workers):
            if shard:
                k = len(tasks)
                tasks[k] = (
                    algorithm,
                    [(i, *queries[i]) for i in shard],
                    record_log,
                    k,
                )
        results: List[Optional[TNNResult]] = [None] * len(queries)
        for part in self._supervise_shards(sp, workers, tasks):
            for i, res in part:
                results[i] = res
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Shard supervision
    # ------------------------------------------------------------------
    def _supervise_shards(
        self, sp: _SupervisedPool, workers: int, tasks: Dict[int, tuple]
    ) -> List[List[Tuple[int, TNNResult]]]:
        """Run shard tasks to completion despite crashed or hung workers.

        Each wave submits every outstanding shard and drains completions
        under the optional per-wave deadline (:func:`shard_timeout`).  A
        crashed worker surfaces as a broken pool, a hung one as a missed
        deadline; either tears the pool down, rebuilds it, reshards the
        failed slice across the fresh workers and retries after an
        exponential backoff.  When the retry budget is spent, whatever is
        still outstanding runs serially in this process — shards are pure
        functions of (algorithm, query slice), so every recovery path
        merges bit-identical results.
        """
        pending = dict(tasks)
        parts: List[List[Tuple[int, TNNResult]]] = []
        backoff = shard_backoff()
        for attempt in range(shard_retries() + 1):
            if not pending:
                return parts
            if attempt:
                time.sleep(backoff * (2 ** (attempt - 1)))
                pending = self._reshard(pending, workers)
            if self._dispatch_wave(sp, pending, parts):
                sp.rebuild()
        # Serial last resort: run the leftovers in-process (and let any
        # genuine shard error propagate instead of retrying it forever).
        for k in sorted(pending):
            parts.append(_run_shared_shard(self.env, pending.pop(k)))
        return parts

    def _dispatch_wave(
        self,
        sp: _SupervisedPool,
        pending: Dict[int, tuple],
        parts: List[List[Tuple[int, TNNResult]]],
    ) -> bool:
        """One submit-and-drain pass over every outstanding shard.

        Completed shards move from ``pending`` into ``parts``; returns
        True when the pool must be rebuilt before the next wave (a worker
        crashed, a deadline passed, or the executor refused submissions).
        """
        pool = sp.pool
        try:
            futures = {
                pool.submit(_pool_run_shared_shard, t): k
                for k, t in pending.items()
            }
        except (RuntimeError, BrokenProcessPool):
            return True  # the pool died before the wave started
        timeout = shard_timeout()
        deadline = None if timeout is None else time.monotonic() + timeout
        not_done = set(futures)
        rebuild = False
        while not_done:
            wait_for = None
            if deadline is not None:
                wait_for = deadline - time.monotonic()
                if wait_for <= 0:
                    return True  # hung wave: abandon it, rebuild, retry
            done, not_done = wait(not_done, timeout=wait_for)
            if not done and deadline is not None:
                return True
            for f in done:
                k = futures[f]
                try:
                    parts.append(f.result())
                    pending.pop(k)
                except (BrokenProcessPool, OSError):
                    rebuild = True  # worker crashed: shard stays pending
                except Exception:
                    # The shard itself raised.  Leave it pending: the
                    # retry waves give transient faults a chance and the
                    # serial last resort surfaces a real error.
                    pass
        return rebuild

    def _reshard(
        self, pending: Dict[int, tuple], workers: int
    ) -> Dict[int, tuple]:
        """Cut the failed slice into fresh shards across the pool.

        Failed shards merge, reorder by workload index and split
        contiguously over the workers — a lost worker's whole slice
        spreads across the survivors' replacements instead of reloading
        one.  Placement is pure scheduling: shard contents never change
        a query's result.
        """
        if not pending:
            return pending
        algorithm = record_log = None
        items: List[tuple] = []
        for k in sorted(pending):
            algorithm, shard, record_log, _ = pending[k]
            items.extend(shard)
        items.sort(key=lambda item: item[0])
        n = min(workers, len(items))
        size = -(-len(items) // n)  # ceil division
        return {
            k: (algorithm, items[k * size : (k + 1) * size], record_log, k)
            for k in range(n)
            if items[k * size : (k + 1) * size]
        }

    def run(self, algorithms: Mapping[str, TNNAlgorithm]) -> Dict[str, "ResultStats"]:
        """Summary statistics per algorithm, via the shared-scan executor.

        Like the per-query runner, pool mode shares one worker pool (and
        one pickled environment per worker) across every algorithm in the
        mapping — shared-scan shards and per-query fallback chunks alike.
        """
        from repro.sim.stats import summarize_batch

        if self.workers >= 2 and len(self._queries) > 1:
            sp = _SupervisedPool(lambda: self._make_pool(self.workers))
            try:
                out = {}
                for name, algo in algorithms.items():
                    if shared_scan_supported(algo):
                        results = self._run_shared_pool(
                            algo, self.workers, sp
                        )
                    else:
                        # The per-query fallback reads the supervisor's
                        # *current* pool — a rebuild from an earlier
                        # algorithm's recovery hands it live workers.
                        results = self._run_pool(
                            algo, self.workers, pool=sp.pool
                        )
                    out[name] = summarize_batch(results)
                return out
            finally:
                sp.shutdown()
        return {
            name: summarize_batch(self.run_algorithm(algo, workers=0))
            for name, algo in algorithms.items()
        }

    def _phase_shards(self, workers: int) -> List[List[int]]:
        """Workload indices cut into contiguous s-phase-ordered shards."""
        order = sorted(
            range(len(self._queries)),
            key=lambda i: (self._queries[i][1], i),
        )
        size = -(-len(order) // workers)  # ceil division
        return [order[w * size : (w + 1) * size] for w in range(workers)]


def _algorithm_key(algorithm: TNNAlgorithm) -> str:
    """A stable cache key for an algorithm instance's full configuration."""
    config = sorted(vars(algorithm).items(), key=lambda kv: kv[0])
    return f"{type(algorithm).__qualname__}:{config!r}"
