"""Batched multi-query execution over one TNN environment.

The paper's evaluation pushes 1,000 random queries through every
configuration; serving that kind of bulk workload one ad-hoc query at a
time is the scaling bottleneck the ROADMAP calls out.  :class:`BatchRunner`
executes a whole :class:`~repro.engine.workload.QueryWorkload` through a
shared substrate:

* the environment's broadcast programs (with their cached arrival-position
  tables) are built once and reused by every query;
* execution can fan out over a process pool — queries carry their full
  per-query state (point + channel phases, pre-derived from the workload
  seed), so pool results are **bit-identical** to the sequential path and
  are reassembled in workload order;
* per-query results are aggregated into :class:`~repro.sim.stats.ResultStats`
  through the vectorised :func:`~repro.sim.stats.summarize_batch`;
* reference (oracle) results are cached per workload, so comparing several
  candidate algorithms against the same exact reference pays for the
  reference once instead of once per candidate.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from repro.core.base import TNNAlgorithm
from repro.core.environment import TNNEnvironment
from repro.core.result import TNNResult
from repro.engine.shared_scan import execute_tnn_batch, shared_scan_supported
from repro.engine.workload import QueryWorkload
from repro.geometry import Point

if TYPE_CHECKING:  # pragma: no cover - sim.runner wraps this module
    from repro.sim.stats import ResultStats

#: Worker-process state installed by the pool initializer: the environment
#: (the heavy part — both R-trees and programs) is pickled once per worker,
#: not once per query or per algorithm.
_POOL_STATE: dict = {}


def _pool_init(env: TNNEnvironment) -> None:
    _POOL_STATE["env"] = env


def _pool_run_chunk(
    task: Tuple[TNNAlgorithm, List[Tuple[int, Point, float, float]]]
) -> List[Tuple[int, TNNResult]]:
    algorithm, chunk = task
    env = _POOL_STATE["env"]
    return [(i, algorithm.run(env, p, ps, pr)) for i, p, ps, pr in chunk]


def _pool_run_shared_shard(
    task: Tuple[TNNAlgorithm, List[Tuple[int, Point, float, float]], bool]
) -> List[Tuple[int, TNNResult]]:
    """Pool worker: run one phase-grouped shard through the shared scan."""
    algorithm, shard, record_log = task
    env = _POOL_STATE["env"]
    results = execute_tnn_batch(
        env,
        algorithm,
        [(p, ps, pr) for _, p, ps, pr in shard],
        record_log=record_log,
    )
    return [(item[0], res) for item, res in zip(shard, results)]


#: Round-robin chunks handed to each pool worker, per worker.  More than
#: one chunk per worker lets a straggler chunk overlap with the rest of
#: the pool instead of serialising the tail.
_CHUNKS_PER_WORKER = 4


def pool_chunk_count(n_queries: int, workers: int) -> int:
    """Number of pool chunks for a workload of ``n_queries``.

    Derived from ``len(workload) / workers``: the pool aims at
    ``_CHUNKS_PER_WORKER`` chunks per worker (chunk size ~``n/(4w)``) so
    load imbalance amortises, but never fewer than one chunk per worker
    nor more chunks than queries — a small workload spreads over every
    worker instead of serialising behind one oversized chunk.
    """
    if workers < 1:
        return 1
    return max(1, min(n_queries, workers * _CHUNKS_PER_WORKER))


def default_workers() -> int:
    """Worker processes from ``REPRO_WORKERS`` (default 0 = in-process)."""
    return int(os.environ.get("REPRO_WORKERS", "0"))


class BatchRunner:
    """Executes one workload against one environment, for many algorithms.

    ``workers`` selects the execution mode: ``0``/``1`` runs in-process,
    ``>= 2`` fans the workload out over that many worker processes.  Both
    modes produce identical result sequences; the pool only changes
    wall-clock time.
    """

    def __init__(
        self,
        env: TNNEnvironment,
        workload: QueryWorkload,
        workers: Optional[int] = None,
    ) -> None:
        self.env = env
        self.workload = workload
        self.workers = default_workers() if workers is None else workers
        self._queries = workload.queries(env)
        self._reference_cache: Dict[str, List[TNNResult]] = {}

    @property
    def queries(self) -> List[Tuple[Point, float, float]]:
        """The materialised workload (query point, phase_s, phase_r)."""
        return list(self._queries)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_algorithm(
        self, algorithm: TNNAlgorithm, workers: Optional[int] = None
    ) -> List[TNNResult]:
        """All per-query results of one algorithm, in workload order."""
        workers = self.workers if workers is None else workers
        if workers >= 2 and len(self._queries) > 1:
            return self._run_pool(algorithm, workers)
        return [
            algorithm.run(self.env, p, phase_s, phase_r)
            for p, phase_s, phase_r in self._queries
        ]

    def _run_pool(
        self,
        algorithm: TNNAlgorithm,
        workers: int,
        pool: Optional[ProcessPoolExecutor] = None,
    ) -> List[TNNResult]:
        indexed = [
            (i, p, ps, pr) for i, (p, ps, pr) in enumerate(self._queries)
        ]
        # Deterministic round-robin chunking: queries carry their own
        # pre-seeded state, so placement affects wall-clock only.  The
        # chunk count follows the workload size (see pool_chunk_count), so
        # stragglers overlap instead of serialising the pool's tail.
        n_chunks = pool_chunk_count(len(indexed), workers)
        chunks = [indexed[c::n_chunks] for c in range(n_chunks)]
        tasks = [(algorithm, c) for c in chunks if c]
        results: List[Optional[TNNResult]] = [None] * len(indexed)
        if pool is None:
            with self._make_pool(workers) as own_pool:
                parts = list(own_pool.map(_pool_run_chunk, tasks))
        else:
            parts = list(pool.map(_pool_run_chunk, tasks))
        for part in parts:
            for i, res in part:
                results[i] = res
        return results  # type: ignore[return-value]

    def _make_pool(self, workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers, initializer=_pool_init, initargs=(self.env,)
        )

    def run(self, algorithms: Mapping[str, TNNAlgorithm]) -> Dict[str, "ResultStats"]:
        """Summary statistics per algorithm name, on the shared workload.

        In pool mode, one worker pool (and one pickled environment per
        worker) is shared by every algorithm in the mapping.
        """
        # Deferred import: repro.sim.runner wraps this module for back
        # compat, so importing sim.stats at module load would be circular.
        from repro.sim.stats import summarize_batch

        if self.workers >= 2 and len(self._queries) > 1:
            with self._make_pool(self.workers) as pool:
                return {
                    name: summarize_batch(
                        self._run_pool(algo, self.workers, pool=pool)
                    )
                    for name, algo in algorithms.items()
                }
        return {
            name: summarize_batch(self.run_algorithm(algo))
            for name, algo in algorithms.items()
        }

    # ------------------------------------------------------------------
    # Oracle comparison
    # ------------------------------------------------------------------
    def reference_results(self, reference: TNNAlgorithm) -> List[TNNResult]:
        """Results of an exact reference algorithm, computed once per workload."""
        key = _algorithm_key(reference)
        if key not in self._reference_cache:
            self._reference_cache[key] = self.run_algorithm(reference)
        return self._reference_cache[key]

    def compare_failures(
        self,
        candidate: TNNAlgorithm,
        reference: TNNAlgorithm,
        rel_tol: float = 1e-9,
    ) -> float:
        """Fraction of queries where ``candidate`` misses the true answer.

        ``reference`` must be an exact algorithm (Double-NN is the cheap
        choice); a query counts as failed when the candidate returns no
        pair or a strictly larger transitive distance.  Reference results
        are cached, so sweeping many candidates against one oracle re-runs
        only the candidates.
        """
        want = self.reference_results(reference)
        failures = 0
        for got, ref in zip(self.run_algorithm(candidate), want):
            if got.failed or got.distance > ref.distance * (1 + rel_tol):
                failures += 1
        return failures / len(self._queries)


class SharedScanRunner(BatchRunner):
    """A :class:`BatchRunner` that executes the workload page-major.

    Same constructor, same API, same results bit for bit — but supported
    algorithms (exact Double-NN / Hybrid-NN: see
    :func:`~repro.engine.shared_scan.shared_scan_supported`) run through
    the shared-scan executor, which serves every active query per page
    arrival and batches the geometry kernels across the whole workload
    (:mod:`repro.engine.shared_scan`).  Unsupported configurations (ANN
    optimizations, data retrieval, custom algorithms) silently fall back
    to the per-query path, so the runner is a drop-in default.

    In pool mode the workload is sharded **by channel phase group**:
    queries are ordered by their s-channel phase and cut into one
    contiguous shard per worker, so each worker's queries start at nearby
    positions of the broadcast cycle and its round lanes stay full.
    Sharding is pure placement — per-query state is self-contained — and
    results are reassembled in workload order.
    """

    def run_algorithm(
        self,
        algorithm: TNNAlgorithm,
        workers: Optional[int] = None,
        record_log: bool = True,
    ) -> List[TNNResult]:
        """All per-query results, page-major when supported.

        ``record_log=False`` skips the per-tuner reception logs on the
        shared-scan path (results and cost counters are unaffected); the
        per-query fallback ignores the flag — its results embed the same
        counters either way.
        """
        workers = self.workers if workers is None else workers
        if not shared_scan_supported(algorithm):
            return super().run_algorithm(algorithm, workers)
        queries = self._queries
        if workers >= 2 and len(queries) > 1:
            with self._make_pool(workers) as pool:
                return self._run_shared_pool(
                    algorithm, workers, pool, record_log
                )
        return execute_tnn_batch(
            self.env, algorithm, queries, record_log=record_log
        )

    def _run_shared_pool(
        self,
        algorithm: TNNAlgorithm,
        workers: int,
        pool: ProcessPoolExecutor,
        record_log: bool = True,
    ) -> List[TNNResult]:
        queries = self._queries
        tasks = [
            (algorithm, [(i, *queries[i]) for i in shard], record_log)
            for shard in self._phase_shards(workers)
            if shard
        ]
        results: List[Optional[TNNResult]] = [None] * len(queries)
        for part in pool.map(_pool_run_shared_shard, tasks):
            for i, res in part:
                results[i] = res
        return results  # type: ignore[return-value]

    def run(self, algorithms: Mapping[str, TNNAlgorithm]) -> Dict[str, "ResultStats"]:
        """Summary statistics per algorithm, via the shared-scan executor.

        Like the per-query runner, pool mode shares one worker pool (and
        one pickled environment per worker) across every algorithm in the
        mapping — shared-scan shards and per-query fallback chunks alike.
        """
        from repro.sim.stats import summarize_batch

        if self.workers >= 2 and len(self._queries) > 1:
            with self._make_pool(self.workers) as pool:
                out = {}
                for name, algo in algorithms.items():
                    if shared_scan_supported(algo):
                        results = self._run_shared_pool(
                            algo, self.workers, pool
                        )
                    else:
                        results = self._run_pool(algo, self.workers, pool=pool)
                    out[name] = summarize_batch(results)
                return out
        return {
            name: summarize_batch(self.run_algorithm(algo, workers=0))
            for name, algo in algorithms.items()
        }

    def _phase_shards(self, workers: int) -> List[List[int]]:
        """Workload indices cut into contiguous s-phase-ordered shards."""
        order = sorted(
            range(len(self._queries)),
            key=lambda i: (self._queries[i][1], i),
        )
        size = -(-len(order) // workers)  # ceil division
        return [order[w * size : (w + 1) * size] for w in range(workers)]


def _algorithm_key(algorithm: TNNAlgorithm) -> str:
    """A stable cache key for an algorithm instance's full configuration."""
    config = sorted(vars(algorithm).items(), key=lambda kv: kv[0])
    return f"{type(algorithm).__qualname__}:{config!r}"
