"""Batched multi-query execution over one TNN environment.

The paper's evaluation pushes 1,000 random queries through every
configuration; serving that kind of bulk workload one ad-hoc query at a
time is the scaling bottleneck the ROADMAP calls out.  :class:`BatchRunner`
executes a whole :class:`~repro.engine.workload.QueryWorkload` through a
shared substrate:

* the environment's broadcast programs (with their cached arrival-position
  tables) are built once and reused by every query;
* execution can fan out over a process pool — queries carry their full
  per-query state (point + channel phases, pre-derived from the workload
  seed), so pool results are **bit-identical** to the sequential path and
  are reassembled in workload order;
* per-query results are aggregated into :class:`~repro.sim.stats.ResultStats`
  through the vectorised :func:`~repro.sim.stats.summarize_batch`;
* reference (oracle) results are cached per workload, so comparing several
  candidate algorithms against the same exact reference pays for the
  reference once instead of once per candidate.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from repro.core.base import TNNAlgorithm
from repro.core.environment import TNNEnvironment
from repro.core.result import TNNResult
from repro.engine.workload import QueryWorkload
from repro.geometry import Point

if TYPE_CHECKING:  # pragma: no cover - sim.runner wraps this module
    from repro.sim.stats import ResultStats

#: Worker-process state installed by the pool initializer: the environment
#: (the heavy part — both R-trees and programs) is pickled once per worker,
#: not once per query or per algorithm.
_POOL_STATE: dict = {}


def _pool_init(env: TNNEnvironment) -> None:
    _POOL_STATE["env"] = env


def _pool_run_chunk(
    task: Tuple[TNNAlgorithm, List[Tuple[int, Point, float, float]]]
) -> List[Tuple[int, TNNResult]]:
    algorithm, chunk = task
    env = _POOL_STATE["env"]
    return [(i, algorithm.run(env, p, ps, pr)) for i, p, ps, pr in chunk]


def default_workers() -> int:
    """Worker processes from ``REPRO_WORKERS`` (default 0 = in-process)."""
    return int(os.environ.get("REPRO_WORKERS", "0"))


class BatchRunner:
    """Executes one workload against one environment, for many algorithms.

    ``workers`` selects the execution mode: ``0``/``1`` runs in-process,
    ``>= 2`` fans the workload out over that many worker processes.  Both
    modes produce identical result sequences; the pool only changes
    wall-clock time.
    """

    def __init__(
        self,
        env: TNNEnvironment,
        workload: QueryWorkload,
        workers: Optional[int] = None,
    ) -> None:
        self.env = env
        self.workload = workload
        self.workers = default_workers() if workers is None else workers
        self._queries = workload.queries(env)
        self._reference_cache: Dict[str, List[TNNResult]] = {}

    @property
    def queries(self) -> List[Tuple[Point, float, float]]:
        """The materialised workload (query point, phase_s, phase_r)."""
        return list(self._queries)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_algorithm(
        self, algorithm: TNNAlgorithm, workers: Optional[int] = None
    ) -> List[TNNResult]:
        """All per-query results of one algorithm, in workload order."""
        workers = self.workers if workers is None else workers
        if workers >= 2 and len(self._queries) > 1:
            return self._run_pool(algorithm, workers)
        return [
            algorithm.run(self.env, p, phase_s, phase_r)
            for p, phase_s, phase_r in self._queries
        ]

    def _run_pool(
        self,
        algorithm: TNNAlgorithm,
        workers: int,
        pool: Optional[ProcessPoolExecutor] = None,
    ) -> List[TNNResult]:
        indexed = [
            (i, p, ps, pr) for i, (p, ps, pr) in enumerate(self._queries)
        ]
        # Deterministic round-robin chunking: queries carry their own
        # pre-seeded state, so placement affects wall-clock only.
        chunks = [indexed[w::workers] for w in range(workers)]
        tasks = [(algorithm, c) for c in chunks if c]
        results: List[Optional[TNNResult]] = [None] * len(indexed)
        if pool is None:
            with self._make_pool(workers) as own_pool:
                parts = list(own_pool.map(_pool_run_chunk, tasks))
        else:
            parts = list(pool.map(_pool_run_chunk, tasks))
        for part in parts:
            for i, res in part:
                results[i] = res
        return results  # type: ignore[return-value]

    def _make_pool(self, workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers, initializer=_pool_init, initargs=(self.env,)
        )

    def run(self, algorithms: Mapping[str, TNNAlgorithm]) -> Dict[str, "ResultStats"]:
        """Summary statistics per algorithm name, on the shared workload.

        In pool mode, one worker pool (and one pickled environment per
        worker) is shared by every algorithm in the mapping.
        """
        # Deferred import: repro.sim.runner wraps this module for back
        # compat, so importing sim.stats at module load would be circular.
        from repro.sim.stats import summarize_batch

        if self.workers >= 2 and len(self._queries) > 1:
            with self._make_pool(self.workers) as pool:
                return {
                    name: summarize_batch(
                        self._run_pool(algo, self.workers, pool=pool)
                    )
                    for name, algo in algorithms.items()
                }
        return {
            name: summarize_batch(self.run_algorithm(algo))
            for name, algo in algorithms.items()
        }

    # ------------------------------------------------------------------
    # Oracle comparison
    # ------------------------------------------------------------------
    def reference_results(self, reference: TNNAlgorithm) -> List[TNNResult]:
        """Results of an exact reference algorithm, computed once per workload."""
        key = _algorithm_key(reference)
        if key not in self._reference_cache:
            self._reference_cache[key] = self.run_algorithm(reference)
        return self._reference_cache[key]

    def compare_failures(
        self,
        candidate: TNNAlgorithm,
        reference: TNNAlgorithm,
        rel_tol: float = 1e-9,
    ) -> float:
        """Fraction of queries where ``candidate`` misses the true answer.

        ``reference`` must be an exact algorithm (Double-NN is the cheap
        choice); a query counts as failed when the candidate returns no
        pair or a strictly larger transitive distance.  Reference results
        are cached, so sweeping many candidates against one oracle re-runs
        only the candidates.
        """
        want = self.reference_results(reference)
        failures = 0
        for got, ref in zip(self.run_algorithm(candidate), want):
            if got.failed or got.distance > ref.distance * (1 + rel_tol):
                failures += 1
        return failures / len(self._queries)


def _algorithm_key(algorithm: TNNAlgorithm) -> str:
    """A stable cache key for an algorithm instance's full configuration."""
    config = sorted(vars(algorithm).items(), key=lambda kv: kv[0])
    return f"{type(algorithm).__qualname__}:{config!r}"
