"""Reproducible multi-query workloads for the batch execution engine.

A workload is the unit the engine executes: a seeded batch of query points
plus per-channel phases.  Every query's inputs are derived **up front**
from the workload seed, so any execution order — sequential, interleaved,
or fanned out across worker processes — sees the exact same per-query
state and produces bit-identical results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

from repro.geometry import Point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.environment import TNNEnvironment


@dataclass(frozen=True)
class QueryWorkload:
    """A reproducible batch of queries for one environment.

    Each query consists of a uniform query point plus an independent random
    phase per channel (Section 6: 1,000 random query points; random waits
    for the two roots).  Algorithms compared on the same workload see the
    *same* points and phases, so differences are purely algorithmic.
    """

    n_queries: int
    seed: int = 0

    def queries(self, env: "TNNEnvironment") -> List[Tuple[Point, float, float]]:
        """The full query batch, deterministically derived from ``seed``."""
        rng = random.Random(self.seed)
        out = []
        for _ in range(self.n_queries):
            p = env.random_query_point(rng)
            phase_s, phase_r = env.random_phases(rng)
            out.append((p, phase_s, phase_r))
        return out
