"""Shared-scan batch executor: page-major execution of a query workload.

A broadcast channel is physically a *shared scan*: every client hears the
same cyclic page sequence.  The per-query path replays the whole broadcast
cycle once per query — a 1,000-query workload decodes the same pages and
pays the same kernel dispatches 1,000 times over.  This module flips the
loop to **page-major** order:

* every query's steppable searches are registered with one
  :class:`SharedScanExecutor`; the executor repeatedly runs *rounds*;
* each round serves, for every active query, the one search
  :func:`~repro.client.scheduler.run_all` would step next (its
  :class:`~repro.client.scheduler.SearchGroup` — paired ping-pong for
  Hybrid-NN's callback-coupled estimate searches, every unfinished member
  for independent ones): the search pops its arrival-frontier head, applies
  its pop-time pruning decision on the cached bound, and downloads the page
  when it survives — all per-query work, but a few hundred nanoseconds
  each;
* the expensive part — the Lemma 1–3 bounds and leaf distances of every
  node expanded this round — is then evaluated in a handful of
  **multi-query kernel calls** (:func:`repro.geometry.kernels
  .point_bounds_multi` and friends): one ``(k, 2)`` query block against one
  ``(k, n, 4)`` child-MBR / ``(k, n, 2)`` point block, grouped by (metric,
  node kind, fan-out).  At the paper's 64-byte page geometry (M = 3) a
  single query never reaches the kernel dispatch floor; ``k`` queries
  expanding nodes on the same round clear it together, so the fixed
  per-ufunc cost amortises across the *workload* instead of one fan-out.

Because the geometry kernels are elementwise, a round batches expansions of
*different* pages just as well as same-page fan-outs — the round is the
arrival tick of the shared scan, not a single page's bucket, which is
strictly more batching than per-page grouping.

**Bit-identity contract.**  The per-query path remains the oracle: for
every query, the executor produces the same answers, access times, tune-in
counts and max queue sizes, bit for bit.  The contract holds by
construction:

* each search's *step sequence* is exactly the one ``run_all`` produces —
  groups encode ``run_all``'s ordering rules, and searches in different
  groups share no state, so interleaving across queries is free;
* each step's *values* are exactly the per-query values — exact
  multi-query kernels replay the scalar operation order per lane (the
  exact vectorised hypot is bit-identical to ``math.hypot``), while the
  transitive lanes run raw-hypot *certified estimates* whose deflated
  margins can only decide provably-identical outcomes (prunes, skipped
  guarantee scans) with every stored value still computed by the exact
  scalar metrics; the absorb hooks
  (:meth:`~repro.client.search.BroadcastNNSearch._absorb_internal_shared`,
  :meth:`~repro.client.search.BroadcastNNSearch._absorb_internal_weak`)
  replay the per-query absorb logic on the batched rows, and the inlined
  page download replays the tuner's arrival arithmetic;
* everything that cannot batch falls back to the search's own per-query
  code path: sub-threshold lanes, heap-backed searches (distributed
  layouts), lossy *drain* serves (kNN / range / window), unknown search
  types, and the whole executor under ``REPRO_NO_KERNELS=1`` — where it
  degrades to a pure multiplexer over the scalar oracle.  Lossy NN
  searches, by contrast, stay on the arena/ledger fast path: the round
  flush replays the tuner's retry-to-next-replica loop closed form (a
  missed page's next replica is exactly one cycle later), classifying
  every attempt with the search's :class:`~repro.broadcast.loss
  .FaultModel` and booking the whole chain in one vectorised
  :meth:`~repro.broadcast.tuner.TunerLedger.flush_round_faulty` pass.
"""

from __future__ import annotations

import math
import os
from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.broadcast.loss import FAULT_LOST
from repro.broadcast.tuner import TunerLedger, scalar_tuners_forced
from repro.client.frontier import (
    FrontierArena,
    NodeStore,
    node_store_disabled,
)
from repro.client.knn import BroadcastKNNSearch
from repro.client.range_query import BroadcastRangeSearch
from repro.client.scheduler import SearchGroup
from repro.client.search import (
    _CERT_DEFLATE,
    _CERT_INFLATE,
    BroadcastNNSearch,
    SearchMode,
)
from repro.client.window import BroadcastWindowSearch
from repro.core.environment import TNNEnvironment
from repro.core.join import transitive_join
from repro.core.result import TNNResult
from repro.geometry import Circle, Point, kernels

#: Smallest same-shape survivor lane worth one multi-query kernel call.
#: Below it the per-search scalar absorb (itself adaptive) is cheaper than
#: array packing plus dispatch; results are identical either way, so this
#: is purely a performance dial.
_MIN_LANE = int(os.environ.get("REPRO_SHARED_MIN_LANE", "4"))


def _sid_append(arr: np.ndarray, i: int, sid: int) -> np.ndarray:
    """Append ``sid`` at index ``i`` of a grown int64 scratch array."""
    if i >= arr.shape[0]:
        new = np.empty(max(64, 2 * (i + 1)), dtype=np.int64)
        new[: arr.shape[0]] = arr
        arr = new
    arr[i] = sid
    return arr


def tree_all_backed(tree) -> bool:
    """True when every internal node's children all hold points (cached).

    Holds for every standard packer (a leaf always stores at least one
    point); only hand-assembled degenerate trees fail it.  Computed once
    per tree and cached on the tree object, so executors can skip the
    per-node backed-guarantee masks for the entire run.
    """
    try:
        return tree._all_subtrees_backed
    except AttributeError:
        ok = all(
            node.children_all_backed()
            for node in tree.root.iter_preorder()
            if not node.is_leaf
        )
        tree._all_subtrees_backed = ok
        return ok


def _tree_lane_blocks(tree) -> tuple:
    """Stack one tree's node arrays into per-shape blocks (cached).

    Internal nodes group by fan-out ``n`` into a ``(k, n, 4)`` child-MBR
    block plus the aligned ``(k, n)`` child-count block; leaves group by
    point count into ``(k, n, 2)`` blocks.  Every node records its row
    (``_tree_row``) in its block.  Built once per tree and cached on the
    tree object (trees are immutable after packing and may be shared
    across environments through the tree cache).
    """
    try:
        return tree._lane_blocks
    except AttributeError:
        internal: dict = {}
        leaf: dict = {}
        for node in tree.root.iter_preorder():
            if node.is_leaf:
                leaf.setdefault(len(node.points), []).append(node)
            else:
                internal.setdefault(len(node.children), []).append(node)
        mbrs = {}
        cnts = {}
        pts = {}
        for n, nodes in internal.items():
            mbrs[n] = np.stack([nd.child_mbr_array() for nd in nodes])
            cnts[n] = np.stack([nd.child_count_array() for nd in nodes])
            key = n << 2
            for r, nd in enumerate(nodes):
                nd._tree_row = r
                nd._lane_key = key
        for n, nodes in leaf.items():
            pts[n] = np.stack([nd.points_array() for nd in nodes])
            key = (n << 2) | 2
            for r, nd in enumerate(nodes):
                nd._tree_row = r
                nd._lane_key = key
        blocks = (mbrs, cnts, pts)
        tree._lane_blocks = blocks
        return blocks


def combine_lane_blocks(trees) -> tuple:
    """One gatherable ``(mbrs, cnts, pts, npgs, cpgs)`` set over ``trees``.

    Survivor lanes mix nodes from both datasets' trees, so the executor
    needs a single row space: each tree's cached geometry blocks are
    concatenated per shape and every node is stamped with its combined
    row (``_lane_row`` = its ``_tree_row`` plus the tree's offset in that
    shape's block).  The per-fan-out page blocks — every internal node's
    own page id (``npgs``, ``(k,)``) and its children's page ids
    (``cpgs``, ``(k, n)``) — are rebuilt here rather than cached on the
    tree: page ids are assigned by the broadcast *program*, and a cached
    tree may back programs with different schedules.  The stamping is per
    call — a tree may also appear with different partners across
    environments — but costs only a preorder walk, a few ms against a
    workload run.  The combined blocks hold the exact values the per-node
    accessors return, in stable rows, so lane gathers are bit-identical
    to per-node concatenation.
    """
    seen: list = []
    for t in trees:
        if not any(t is u for u in seen):
            seen.append(t)
    parts = [_tree_lane_blocks(t) for t in seen]
    mbrs: dict = {}
    cnts: dict = {}
    pts: dict = {}
    int_offs = []
    leaf_offs = []
    for tmbrs, tcnts, tpts in parts:
        io = {}
        for n, arr in tmbrs.items():
            if n in mbrs:
                io[n] = mbrs[n].shape[0]
                mbrs[n] = np.concatenate((mbrs[n], arr))
                cnts[n] = np.concatenate((cnts[n], tcnts[n]))
            else:
                io[n] = 0
                mbrs[n] = arr
                cnts[n] = tcnts[n]
        lo = {}
        for n, arr in tpts.items():
            if n in pts:
                lo[n] = pts[n].shape[0]
                pts[n] = np.concatenate((pts[n], arr))
            else:
                lo[n] = 0
                pts[n] = arr
        int_offs.append(io)
        leaf_offs.append(lo)
    npgs = {
        n: np.empty(arr.shape[0], dtype=np.int64) for n, arr in mbrs.items()
    }
    cpgs = {
        n: np.empty(arr.shape[:2], dtype=np.int64) for n, arr in mbrs.items()
    }
    for t, io, lo in zip(seen, int_offs, leaf_offs):
        for node in t.root.iter_preorder():
            if node.is_leaf:
                node._lane_row = node._tree_row + lo[len(node.points)]
            else:
                n = len(node.children)
                row = node._tree_row + io[n]
                node._lane_row = row
                npgs[n][row] = node.page_id
                cpgs[n][row] = node.child_page_array()
    return mbrs, cnts, pts, npgs, cpgs


# ----------------------------------------------------------------------
# The round-based executor
# ----------------------------------------------------------------------
class SharedScanExecutor:
    """Drives many queries' searches through one page-major loop.

    Add :class:`~repro.client.scheduler.SearchGroup` instances (their
    ``tag``, when set, must provide ``advance() -> Optional[SearchGroup]``
    — the query's continuation once the group completes, e.g. the TNN
    estimate-to-filter hand-off), then :meth:`run` to completion.

    Serve shapes, chosen per search by what its pop-time prune test reads:

    * **NN searches** — the prune bound (``upper_bound``) evolves at every
      absorb, so a serve is one :meth:`ArrivalFrontier.pop_until` run:
      consume certified-prunable entries, stop at the first survivor,
      download it, and defer its expansion to the round's multi-query
      kernel batch.  Hybrid pairs pass the sibling's next event time as the
      pop limit (``run_all``'s ping-pong tie rule); independent searches
      run unlimited.
    * **kNN searches** — internal expansions never move the k-th-best
      bound, so a serve drains pops and internal downloads in one loop and
      stops only at a leaf download, whose distance row joins the round's
      batch.
    * **range / window searches** — the prune test is static (the circle
      and window never move), so one serve drains the whole search;
      collected leaves are resolved afterwards in one flat per-search
      kernel call that preserves leaf pop order.
    * anything else (heap backends, lossy *drain* serves, non-trivial
      pruning policies, ``REPRO_NO_KERNELS=1``, unknown types) — a burst
      of the search's own ``step()`` while it stays eligible: the
      executor degrades to a pure multiplexer over the per-query oracle.
      Lossy NN searches ride the arena: the round flush resolves their
      retry chains closed form, bit-identically to the per-query
      ``_receive`` loop.
    """

    def __init__(
        self,
        all_trees_backed: bool = False,
        lane_blocks: Optional[tuple] = None,
        node_store: Optional[NodeStore] = None,
    ) -> None:
        #: Groups whose members all serve through the columnar arena
        #: (fast-eligible NN searches) vs everything else.
        self._arena_groups: List[SearchGroup] = []
        self._legacy: List[SearchGroup] = []
        self._arena: Optional[FrontierArena] = None
        #: Columnar tuner state for arena-served searches: clocks, page
        #: counters and the packed event arena, updated with one
        #: vectorised pass per round (None under REPRO_SCALAR_TUNERS=1,
        #: which keeps every tuner on the scalar per-download oracle).
        self._ledger: Optional[TunerLedger] = None
        #: Arena sid -> ledger row of the owning search's tuner.
        self._sid_row = np.empty(0, dtype=np.int64)
        #: Arena sid -> fault model of the owning search's tuner (sparse:
        #: only faulty sids appear).  A faulty NN search rides the arena
        #: like any other — the round flush resolves its retry chain
        #: closed-form (the next replica of a page missed at ``arrival``
        #: on a cyclic frontier is exactly ``arrival + cycle``), so the
        #: fast path stays bit-identical to the per-query retry loop.
        self._sid_loss: dict = {}
        self._any_lossy = False
        #: The round's confirmed serve downloads, held until the arena
        #: flush point and then written to the ledger in one pass.
        self._flush_pending: Optional[tuple] = None
        #: Persistent serve structures for the arena round: live pairs as
        #: ``(group, s0, s1)`` rows, everything else as ``(group, s)``
        #: always-due rows — updated incrementally on finish events, so no
        #: per-round reclassification pass is needed.  The parallel sid
        #: arrays (``_pa`` / ``_pb`` / ``_solo_sids``) mirror the rows
        #: under the same incremental swap-removal, so no per-round
        #: ``np.fromiter`` rebuild happens either; the due/limits/stricts
        #: vectors of each round assemble into grown scratch buffers.
        self._pairs: List[tuple] = []
        self._pair_index: dict = {}
        self._solos: List[tuple] = []
        self._solo_index: dict = {}
        self._pa = np.empty(0, dtype=np.int64)
        self._pb = np.empty(0, dtype=np.int64)
        self._solo_sids = np.empty(0, dtype=np.int64)
        self._due_buf = np.empty(0, dtype=np.int64)
        self._lim_buf = np.empty(0, dtype=np.float64)
        self._strict_buf = np.empty(0, dtype=bool)
        #: The scratch buffers' solo tail (always-due sids, inf limits,
        #: non-strict) only changes when the group membership does, so
        #: rounds in between skip rewriting it.
        self._tail_dirty = True
        #: Cached length-n views over the scratch buffers; recut only
        #: when the row count (or the buffers) change.
        self._round_views: Optional[tuple] = None
        #: Live point-query members among the arena rows.  All-transitive
        #: rounds (the TNN common case) skip the weak-row point split and
        #: the point-bit lane-key OR entirely while it is zero.
        self._n_point = 0
        self._use_kernels = True
        #: Global :class:`~repro.client.frontier.NodeStore` over the run's
        #: trees — the arena's ``_e_slot`` lane then holds store ids and
        #: phase A runs as whole-workload array passes.  Requires the
        #: combined lane blocks (store lane keys address them); ``None``
        #: (or no lane blocks) keeps the per-frontier slot addressing and
        #: the scalar row loop — the ``REPRO_NO_NODE_STORE=1`` oracle.
        self._node_store = node_store if lane_blocks is not None else None
        #: Callers pass True after checking every involved tree with
        #: :func:`tree_all_backed`: no expanded node can then have an
        #: empty child subtree, and the absorb lanes skip the per-node
        #: backed-guarantee masks wholesale.  False is always safe.
        self._all_trees_backed = all_trees_backed
        #: Per-shape stacked node arrays over the workload's trees from
        #: :func:`combine_lane_blocks`.  When present, the absorb lanes
        #: gather their ``(k, n, …)`` inputs with one fancy index per
        #: lane instead of concatenating k small per-node arrays; every
        #: lane node must carry a ``_lane_row`` stamped against these
        #: blocks.  ``None`` (always safe) marshals per node.
        if lane_blocks is None:
            self._lane_mbrs = self._lane_cnts = self._lane_pts = None
            self._lane_npgs = self._lane_cpgs = None
        else:
            (
                self._lane_mbrs,
                self._lane_cnts,
                self._lane_pts,
                self._lane_npgs,
                self._lane_cpgs,
            ) = lane_blocks

    def add(self, group: Optional[SearchGroup]) -> None:
        # A group whose members were all born finished (a window that
        # misses the root, a degenerate request) completes immediately —
        # chase its continuation until a live group (or nothing) remains.
        while group is not None and not group.pending:
            group = group.tag.advance() if group.tag is not None else None
        if group is None:
            return
        store = self._node_store
        if kernels.enabled() and all(
            type(s) is BroadcastNNSearch and self._fast(s, True)
            and (store is None or id(s.tree) in store.tree_ids)
            for s in group.pending
        ):
            # Fast NN searches join the shared columnar arena: their
            # frontiers' queued entries move into one set of numpy lanes
            # and the round serves them with whole-workload array passes.
            # (A search over a tree the node store does not cover — only
            # possible for externally built executors — keeps the legacy
            # per-group serve, which never touches store ids.)
            if self._arena is None:
                self._arena = FrontierArena(store)
                if not scalar_tuners_forced():
                    self._ledger = TunerLedger()
            ledger = self._ledger
            for s in group.pending:
                if getattr(s, "_arena_sid", -1) < 0:
                    self._arena.register(s)
                    loss = s.tuner.loss
                    if loss is not None:
                        self._any_lossy = True
                        self._sid_loss[s._arena_sid] = loss
                    if ledger is not None:
                        # Hoist the tuner's scalars into ledger lanes; the
                        # attach is idempotent, so a tuner shared across
                        # phases keeps its row (and its event history).
                        row = ledger.attach(s.tuner)
                        sid = s._arena_sid
                        if sid >= self._sid_row.shape[0]:
                            grown = np.empty(
                                max(64, 2 * (sid + 1)), dtype=np.int64
                            )
                            grown[: self._sid_row.shape[0]] = self._sid_row
                            self._sid_row = grown
                        self._sid_row[sid] = row
            self._arena_groups.append(group)
            self._tail_dirty = True
            pending = group.pending
            for s in pending:
                if getattr(s, "_point_bit", 0):
                    self._n_point += 1
            if group.paired and len(pending) > 1:
                i = len(self._pairs)
                self._pair_index[id(group)] = i
                self._pairs.append((group, pending[0], pending[1]))
                self._pa = _sid_append(self._pa, i, pending[0]._arena_sid)
                self._pb = _sid_append(self._pb, i, pending[1]._arena_sid)
            else:
                for s in pending:
                    i = len(self._solos)
                    self._solo_index[id(s)] = i
                    self._solos.append((group, s))
                    self._solo_sids = _sid_append(
                        self._solo_sids, i, s._arena_sid
                    )
        else:
            self._legacy.append(group)

    def run(self) -> None:
        self._use_kernels = kernels.enabled()
        while self._arena_groups or self._legacy:
            self._round()

    # ------------------------------------------------------------------
    def _round(self) -> None:
        # Lane key -> [searches, nodes] parallel lists.  Keys pack the
        # lane shape into one int — ``(fanout << 2) | (is_leaf << 1) |
        # is_point`` — so the per-survivor binning allocates no tuples
        # and hashes a plain int.
        lanes: dict = {}
        point_leaves: dict = {}  # fanout -> [searches, nodes]  (kNN leaves)
        flat_leaves: List[Tuple[object, List]] = []  # (search, leaf nodes)
        #: Searches verified finished by their serve, with their groups.
        probe: List[Tuple[SearchGroup, object]] = []
        ctx = (lanes, point_leaves, flat_leaves, probe)
        id_lanes: Optional[tuple] = None
        if self._arena_groups:
            if self._use_kernels:
                id_lanes = self._arena_phase_a(ctx)
            else:
                # Kernels were toggled off for the run: the arena groups
                # degrade to the per-group multiplexer (attached frontiers
                # serve every pop scalar, bit-identically).
                self._group_loop(self._arena_groups, ctx)
        if self._legacy:
            self._group_loop(self._legacy, ctx)

        if lanes:
            self._absorb_nn_lanes(lanes)
        if id_lanes:
            self._absorb_nn_lanes_ids(id_lanes)
        if point_leaves:
            self._absorb_point_leaves(point_leaves)
        for s, leaves in flat_leaves:
            self._absorb_flat_leaves(s, leaves)
        # No arena flush here: the probe loop's re-steer rescans flush on
        # demand (attached ops mask tombstones and check staged counts),
        # and the next round's phase A flushes before its vector passes —
        # one rebuild per round instead of two.
        if self._flush_pending is not None:
            # The ledger flush rides alongside the arena flush: one
            # vectorised pass moves every confirmed download's clock,
            # counter and log event — and it lands before the finish
            # probes below, whose advance() continuations read the
            # tuners' access times and page counts.
            res, rej, due = self._flush_pending
            self._flush_pending = None
            confirmed = res["act_np"]
            if rej:
                confirmed = confirmed.copy()
                confirmed[rej] = False
            conf = np.flatnonzero(confirmed)
            if conf.size:
                self._flush_ledger(res, due, conf)

        # Finish bookkeeping: every probe entry was verified finished by
        # its serve (an emptied queue never refills).  on_finish fires
        # directly after the serve (and deferred absorb) that completed a
        # search — before any member of the same group is served again —
        # which is exactly run_all's on_finish moment.
        completed: Optional[List[SearchGroup]] = None
        arena = self._arena
        for g, s in probe:
            g.pending.remove(s)
            if arena is not None and getattr(s, "_arena_sid", -1) >= 0:
                self._retire_arena_member(g, s)
            if g.on_finish is not None:
                g.on_finish(s)
                if arena is not None:
                    # The callback may have re-steered a sibling (new
                    # metric epoch, query point, upper bound): mirror
                    # every member's serve state back into the lanes.
                    for m in g.searches:
                        if getattr(m, "_arena_sid", -1) >= 0:
                            arena.sync(m)
            if not g.pending:
                if completed is None:
                    completed = [g]
                else:
                    completed.append(g)
        if completed is not None:
            self._arena_groups = [g for g in self._arena_groups if g.pending]
            self._legacy = [g for g in self._legacy if g.pending]
            for g in completed:
                if g.tag is not None:
                    self.add(g.tag.advance())

    def _flush_ledger(self, res, due, conf) -> None:
        """Book the round's confirmed serve downloads into the ledger.

        Lossless rows flush in one :meth:`TunerLedger.flush_round` pass.
        Faulty rows replay the per-query retry loop closed form: replicas
        of an index page on a cyclic frontier sit exactly one cycle
        apart, so the attempt slots of a chain starting at ``arrival``
        are ``slot0 + k * cycle``; each attempt is classified by the
        row's fault model and the whole chain books in one
        :meth:`TunerLedger.flush_round_faulty` pass, bit-identical to
        ``ChannelTuner._receive`` — the attempt arrivals are rebuilt as
        ``float(integer slot) + phase``, the same single rounding the
        scalar channel arithmetic performs.
        """
        sids = due[conf]
        pages = res["page_np"][conf]
        arrs = res["arrival_np"][conf]
        ledger = self._ledger
        if not self._any_lossy:
            ledger.flush_round(self._sid_row[sids], pages, arrs)
            return
        sid_loss = self._sid_loss
        sids_l = sids.tolist()
        lossy = [i for i, sid in enumerate(sids_l) if sid in sid_loss]
        if not lossy:
            ledger.flush_round(self._sid_row[sids], pages, arrs)
            return
        clean_mask = np.ones(len(sids_l), dtype=bool)
        clean_mask[lossy] = False
        if clean_mask.any():
            clean = np.flatnonzero(clean_mask)
            ledger.flush_round(
                self._sid_row[sids[clean]], pages[clean], arrs[clean]
            )
        arena = self._arena
        lsids = sids[lossy]
        k = len(lossy)
        attempts = np.empty(k, dtype=np.int64)
        finals = np.empty(k, dtype=np.float64)
        lost = np.zeros(k, dtype=np.int64)
        corrupt = np.zeros(k, dtype=np.int64)
        ev_arr: List[float] = []
        lsids_l = lsids.tolist()
        phases = arena._phase[lsids].tolist()
        cycles = arena._cycle[lsids].tolist()
        arrs_l = arrs[lossy].tolist()
        for i in range(k):
            model = sid_loss[lsids_l[i]]
            phase = phases[i]
            c = cycles[i]
            slot0 = int(round(arrs_l[i] - phase))
            n = 0
            while True:
                arrival = float(slot0 + n * c) + phase
                ev_arr.append(arrival)
                fault = model.classify(arrival)
                n += 1
                if fault == 0:
                    break
                if fault == FAULT_LOST:
                    lost[i] += 1
                else:
                    corrupt[i] += 1
            attempts[i] = n
            finals[i] = arrival
        ledger.flush_round_faulty(
            self._sid_row[lsids],
            pages[lossy],
            attempts,
            finals,
            lost,
            corrupt,
            np.asarray(ev_arr, dtype=np.float64),
        )
        # serve() advanced the arena clocks to ``first arrival + 1``;
        # retries push a faulty row's clock past its final attempt.
        arena._now[lsids] = finals + 1.0

    def _retire_arena_member(self, g: SearchGroup, s) -> None:
        """Drop a finished arena search from the persistent serve rows.

        A finished pair member demotes its group to an always-due solo row
        for the surviving sibling; a finished solo row is swap-removed.
        """
        self._tail_dirty = True
        if getattr(s, "_point_bit", 0):
            self._n_point -= 1
        i = self._pair_index.pop(id(g), None)
        if i is not None:
            pairs = self._pairs
            row = pairs[i]
            last = pairs.pop()
            if last[0] is not g:
                pairs[i] = last
                self._pair_index[id(last[0])] = i
                n = len(pairs)
                self._pa[i] = self._pa[n]
                self._pb[i] = self._pb[n]
            sibling = row[2] if row[1] is s else row[1]
            j = len(self._solos)
            self._solo_index[id(sibling)] = j
            self._solos.append((g, sibling))
            self._solo_sids = _sid_append(
                self._solo_sids, j, sibling._arena_sid
            )
        else:
            j = self._solo_index.pop(id(s))
            solos = self._solos
            last = solos.pop()
            if last[1] is not s:
                solos[j] = last
                self._solo_index[id(last[1])] = j
                self._solo_sids[j] = self._solo_sids[len(solos)]

    def _group_loop(self, groups: List[SearchGroup], ctx) -> None:
        """The per-group serve dispatch (non-arena groups)."""
        probe = ctx[3]
        serve_nn = self._serve_nn_one
        serve = {
            BroadcastNNSearch: serve_nn,
            BroadcastKNNSearch: self._serve_knn_one,
            BroadcastRangeSearch: self._serve_range_one,
            BroadcastWindowSearch: self._serve_window_one,
        }
        for g in groups:
            pending = g.pending
            if g.paired and len(pending) > 1:
                # run_all's two-float ping-pong: the earlier next event is
                # served, ties to the first member; the sibling's time caps
                # how far the serve may pop ahead.
                s0, s1 = pending
                t0 = s0.next_event_time()
                t1 = s1.next_event_time()
                if t0 <= t1:
                    s, limit, strict = s0, t1, False
                else:
                    s, limit, strict = s1, t0, True
                if type(s) is BroadcastNNSearch:
                    serve_nn(g, s, limit, strict, ctx)
                else:
                    # Paired members of any other kind advance through
                    # their own eligible steps (run_all semantics hold for
                    # every steppable).
                    self._burst(g, s, limit, strict, probe)
            else:
                for s in pending:
                    fn = serve.get(type(s))
                    if fn is not None:
                        fn(g, s, math.inf, False, ctx)
                    else:
                        s.step()  # unknown search type: per-query verbatim
                        if s.finished():
                            probe.append((g, s))

    # ------------------------------------------------------------------
    # Arena phase A: the whole-workload vectorised serve
    # ------------------------------------------------------------------
    def _arena_phase_a(self, ctx) -> Optional[tuple]:
        """Serve every arena group's due member through batched lanes.

        One :meth:`FrontierArena.begin_round` pass yields every search's
        head arrival (the pairing ping-pong reads), one
        :meth:`FrontierArena.serve` pass consumes every due search's
        certified-prunable run and hands back its survivor.  With a node
        store attached the survivors then resolve through whole-round
        array passes (:meth:`_phase_a_store`) and the absorb lanes come
        back as id arrays; without one, the scalar row loop
        (:meth:`_phase_a_rows`) finishes each serve in O(1) — the rare
        certified-keep margin cases fall back to the scalar serve,
        bit-identically on both paths.
        """
        arena = self._arena
        arena.flush()  # merge registrations staged since the last round
        heads = arena.begin_round()
        n_pairs = len(self._pairs)
        n_solo = len(self._solos)
        n = n_pairs + n_solo
        views = self._round_views
        if views is None or views[0].shape[0] != n:
            if self._due_buf.shape[0] < n:
                # Grown scratch: the round's due/limits/stricts assembly
                # writes into these reused views instead of concatenating
                # three fresh arrays every round.
                cap = max(64, 2 * n)
                self._due_buf = np.empty(cap, dtype=np.int64)
                self._lim_buf = np.empty(cap, dtype=np.float64)
                self._strict_buf = np.empty(cap, dtype=bool)
                self._tail_dirty = True
            # The length-n views only change with the membership, so the
            # long stretches of rounds in between reuse them as-is.
            views = (
                self._due_buf[:n],
                self._lim_buf[:n],
                self._strict_buf[:n],
            )
            self._round_views = views
        due, limits, stricts = views
        if self._tail_dirty:
            # The solo tail is membership-static: rewrite it only after a
            # register / retire / regrow touched the rows behind it.
            due[n_pairs:] = self._solo_sids[:n_solo]
            limits[n_pairs:] = math.inf
            stricts[n_pairs:] = False
            self._tail_dirty = False
        if n_pairs:
            pa = self._pa[:n_pairs]
            pb = self._pb[:n_pairs]
            ta = heads[pa]
            tb = heads[pb]
            # One mask drives the whole pair assembly; ties go to the
            # first member (tb < ta is False), same as ``ta <= tb``.
            second: Optional[np.ndarray] = tb < ta
            dp = due[:n_pairs]
            np.copyto(dp, pa)
            np.copyto(dp, pb, where=second)
            # The limit is always the *other* member's head, i.e. the
            # larger of the two (on ties both equal the maximum).
            np.maximum(ta, tb, out=limits[:n_pairs])
            stricts[:n_pairs] = second
        else:
            second = None
        res = arena.serve(due, limits, stricts)
        if arena._store is not None:
            return self._phase_a_store(res, due, limits, stricts, second, ctx)
        first = ~second if second is not None else None
        self._phase_a_rows(res, due, limits, stricts, first, ctx)
        return None

    def _phase_a_rows(self, res, due, limits, stricts, first, ctx) -> None:
        """The scalar survivor loop finishing each serve, row by row.

        Retained verbatim as the ``REPRO_NO_NODE_STORE=1`` oracle: the
        store path of :meth:`_phase_a_store` must stay bit-identical to
        this loop's decisions, bookings and lane grouping.
        """
        arena = self._arena
        first_l = first.tolist() if first is not None else ()
        act = res["act"]
        has = res["has"]
        idxs = res["idx"]
        arrivals = res["arrival"]
        slots = res["slot"]
        lbs = res["lb"]
        ubs = res["ub"]
        weaks = res["weak"]
        stampeds = res["stamped"]
        lives = res["live"]
        lanes, _, _, probe = ctx
        ledger = self._ledger
        #: Serve rows whose survivor was pruned after all (scalar
        #: fallbacks) — excluded from the ledger's round flush; any
        #: download their scalar continuation makes records itself.
        rej: List[int] = []
        # serve() already consumed every actionable survivor and advanced
        # its owner's arena clock; this loop only performs the per-serve
        # download bookkeeping.  (The pair rows and always-due rows are
        # walked directly — no per-round context list is materialised;
        # ``j`` indexes the serve() results, pairs first.)
        arena_now = arena._now
        due_list = limits_list = stricts_list = None

        def fallback(j, g, s):
            # Scalar continuation of a rejected serve: re-sync the owner
            # clock (serve() has not moved it) and resume through the
            # one-search path.  Most rounds reject nothing, so the row
            # lists materialise lazily instead of three eager ``tolist``
            # passes per round.
            nonlocal due_list, limits_list, stricts_list
            if due_list is None:
                due_list = due.tolist()
                limits_list = limits.tolist()
                stricts_list = stricts.tolist()
            rej.append(j)
            arena_now[due_list[j]] = s.tuner.now
            self._serve_nn_one(g, s, limits_list[j], stricts_list[j], ctx)

        hyp = math.hypot
        pairs = self._pairs
        solos = self._solos
        n_pairs = len(pairs)
        use_keys = self._lane_mbrs is not None
        act_np = res["act_np"]
        # Only the actionable rows are walked: a round's due set holds
        # every active search, and most rows have no actionable survivor
        # (their head lies beyond the pairing limit, or their whole queue
        # was a certified-prunable run) — iterating them all would
        # re-impose a per-active-search python floor on every round.  Rows
        # index the serve() results, pairs first, then the always-due solo
        # members; finish probes for the non-actionable rows come from one
        # vector mask afterwards.
        for j in np.flatnonzero(act_np).tolist():
            if j < n_pairs:
                row = pairs[j]
                g = row[0]
                s = row[1] if first_l[j] else row[2]
            else:
                g, s = solos[j - n_pairs]
            f = s._frontier
            node = f._nodes[slots[j]]
            if stampeds[j]:
                lb: Optional[float] = lbs[j]
                weak = weaks[j]
            else:
                weak = False
                lb = None
                if f.lower_evaluator is not None:
                    lb = arena._eval_stale_attached(
                        f, idxs[j], s._metric_epoch
                    )
                    if lb is not None and lb > s.upper_bound:
                        # The batch evaluation proved the prune after all:
                        # resume the serve scalar (the rare stale path).
                        fallback(j, g, s)
                        continue
            if lb is None or weak:
                if weak and s._point_bit:
                    # Certified-weak point survivor: one exact MINDIST
                    # resolves the margin band (cf. _decide_keep's weak
                    # point branch; fast-eligible policies are trivial).
                    mbr = node.mbr
                    qp = s.query
                    if hyp(
                        max(mbr[0] - qp.x, 0.0, qp.x - mbr[2]),
                        max(mbr[1] - qp.y, 0.0, qp.y - mbr[3]),
                    ) > s.upper_bound:
                        fallback(j, g, s)
                        continue
                elif weak and ubs[j] <= s.upper_bound:
                    # Staged keep certificate holds against the current
                    # bound: the exact test provably keeps this node.
                    pass
                elif not s._decide_keep(node, lb, weak):
                    # Margin-band survivor pruned by the exact test:
                    # continue the serve through the scalar loop.
                    fallback(j, g, s)
                    continue
            # Survivor: downloaded now.  Its clock/counter/log updates are
            # deferred to the ledger's one-pass round flush; only the
            # forced-scalar oracle still books it here, row by row.
            if ledger is None:
                tuner = s.tuner
                if tuner.loss is None:
                    arrival = arrivals[j]
                    tuner.now = arrival + 1.0
                    tuner.index_pages += 1
                    if tuner.record_log:
                        tuner.log.append(
                            ("index", node.page_id, arrival, True)
                        )
                else:
                    # Faulty forced-scalar download: the retry loop's
                    # first attempt recomputes exactly this serve's
                    # arrival; the arena clock re-syncs past the retries.
                    tuner.download_index_page(node.page_id)
                    arena_now[due[j]] = tuner.now
            if use_keys:
                # Block-stamped nodes carry their packed lane shape; one
                # ``or`` folds in the owner's metric bit.
                key = node._lane_key | s._point_bit
                if lives[j] == 0 and key & 2:
                    probe.append((g, s))  # leaf absorbs never push
            elif node.level == 0:
                key = (len(node.points) << 2) | 2 | s._point_bit
                if lives[j] == 0:
                    probe.append((g, s))  # leaf absorbs never push
            else:
                key = (len(node.children) << 2) | s._point_bit
            lane = lanes.get(key)
            if lane is None:
                lanes[key] = [[s], [node]]
            else:
                lane[0].append(s)
                lane[1].append(node)
        # Non-actionable rows whose queue the certified-prune consumption
        # emptied are finished: probe them (the serve is their run_all
        # finish moment).  Probe order may differ from a single walk in
        # row order, but no search observes it: a paired group serves one
        # member per round, and a group with several always-due members is
        # unpaired by construction — its ``on_finish`` callbacks never
        # touch a sibling (the SearchGroup contract), so probes of
        # different members commute.
        dead = ~act_np
        if dead.any():
            for j in np.flatnonzero(
                dead & ~res["has_np"] & (res["live_np"] == 0)
            ).tolist():
                if j < n_pairs:
                    row = pairs[j]
                    probe.append(
                        (row[0], row[1] if first_l[j] else row[2])
                    )
                else:
                    probe.append(solos[j - n_pairs])
        if ledger is not None:
            # Everything actionable minus the scalar rejections flushes to
            # the ledger at the arena flush point of this round.
            self._flush_pending = (res, rej, due)

    def _phase_a_store(
        self, res, due, limits, stricts, second, ctx
    ) -> Optional[tuple]:
        """Array-pass survivor handling over the global node store.

        Replays :meth:`_phase_a_rows` with whole-round vector passes:
        automatic keeps, weak point survivors (one vectorised exact
        MINDIST), staged keep certificates and the leaf-finish probes all
        resolve from store/arena column gathers, and the absorb lanes
        come back as one argsort-sorted ``(keys, sids, nids, cuts)``
        segment pack.  Python touches only the residual rows —
        stale bounds, failed certificates, margin-band survivors — which
        drop to the same scalar fallbacks as the oracle, plus the
        forced-scalar tuner booking when no ledger is attached.  Every
        decision is bit-identical to the row loop (the weak-point check
        runs :func:`~repro.geometry.kernels.mindist_multi`, whose
        ``maximum`` chain and hypot reproduce ``max`` / ``math.hypot``
        exactly).
        """
        arena = self._arena
        store = arena._store
        _, _, _, probe = ctx
        ledger = self._ledger
        pairs = self._pairs
        solos = self._solos
        n_pairs = len(pairs)
        act_np = res["act_np"]
        slot_np = res["slot_np"]  # store ids in store mode
        stamped_np = res["stamped_np"]
        weak_np = res["weak_np"]
        live_np = res["live_np"]
        arena_now = arena._now
        # Epoch-stale bounds are rare; a clean round skips the stamped
        # masking (and the residual scan) entirely.
        stamp_clean = bool(stamped_np.all())
        act_stamped = act_np if stamp_clean else act_np & stamped_np
        weak_rows = act_stamped & weak_np
        #: Rows kept by the vector classification (grown below): the
        #: weak subset of the stamped keeps clears via xor (it is a
        #: subset, so this is exactly ``act & stamped & ~weak``).
        keep = act_stamped ^ weak_rows
        rej: List[int] = []
        second_l = None

        def member_of(j):
            # Serve row -> (group, search); pairs first, then solos.
            nonlocal second_l
            if j < n_pairs:
                row = pairs[j]
                if second_l is None:
                    second_l = second.tolist()
                return row[0], row[2] if second_l[j] else row[1]
            return solos[j - n_pairs]

        due_list = limits_list = stricts_list = None

        def fallback(j, g, s):
            # Scalar continuation of a rejected serve, exactly like the
            # oracle's: re-sync the owner clock (serve() has not moved
            # it) and resume through the one-search path.
            nonlocal due_list, limits_list, stricts_list
            if due_list is None:
                due_list = due.tolist()
                limits_list = limits.tolist()
                stricts_list = stricts.tolist()
            rej.append(j)
            arena_now[due_list[j]] = s.tuner.now
            self._serve_nn_one(g, s, limits_list[j], stricts_list[j], ctx)

        wj = np.flatnonzero(weak_rows)
        if wj.size:
            wsids = due[wj]
            if self._n_point:
                point = arena._pbool[wsids]
                n_pt = int(point.sum())
            else:
                # No live point members -> every weak row is transitive;
                # skip the split gathers.
                point = None
                n_pt = 0
            if n_pt:
                # Certified-weak point survivors: one exact vectorised
                # MINDIST resolves the whole margin band (cf.
                # _decide_keep's weak point branch; fast-eligible
                # policies are trivial).
                pj = wj if n_pt == wj.size else wj[point]
                psids = wsids if n_pt == wj.size else wsids[point]
                d = kernels.mindist_multi(
                    np.column_stack((arena._qx[psids], arena._qy[psids])),
                    store.mbr[slot_np[pj]],
                )
                ok = d <= arena._ub[psids]
                if ok.all():
                    keep[pj] = True
                else:
                    keep[pj[ok]] = True
                    for j in pj[~ok].tolist():
                        g, s = member_of(j)
                        fallback(j, g, s)
            if n_pt < wj.size:
                # Weak transitive survivors: the staged keep certificate
                # against the current bound proves most keeps; the rest
                # batch one exact Lemma 1 pass.  The scalar oracle's
                # centre/corner certificates (_certified_keep) are upper
                # bounds on the exact value, so they can never flip the
                # exact test's verdict — replaying only the exact bound
                # (bit-identical per kernel contract) decides the same.
                tj = wj if n_pt == 0 else wj[~point]
                tsids = wsids if n_pt == 0 else wsids[~point]
                ub_t = arena._ub[tsids]
                cert = res["ub_np"][tj] <= ub_t
                if cert.all():
                    keep[tj] = True
                else:
                    # Weak rows enter with keep False, so scattering the
                    # certificate verdicts directly marks the passes.
                    keep[tj] = cert
                    sub = ~cert
                    rows = tj[sub]
                    rsids = tsids[sub]
                    rub = ub_t[sub]
                    fb = res["lb_np"][rows] > rub
                    if fb.any():
                        # Stale-bound prunes are rare (a handful per
                        # campaign); keep their gathers off the hot path.
                        for j in rows[fb].tolist():
                            g, s = member_of(j)
                            fallback(j, g, s)
                        ok2 = ~fb
                        crows = rows[ok2]
                        csids = rsids[ok2]
                        cub = rub[ok2]
                    else:
                        crows, csids, cub = rows, rsids, rub
                    if crows.size:
                        tr = arena._trans[csids]
                        exact = kernels.trans_lower_multi(
                            tr[:, 0],
                            tr[:, 1],
                            store.mbr[slot_np[crows]],
                            tr[:, 2],
                            tr[:, 3],
                        )
                        good = exact <= cub
                        if good.all():
                            keep[crows] = True
                        else:
                            keep[crows[good]] = True
                            for j in crows[~good].tolist():
                                g, s = member_of(j)
                                fallback(j, g, s)
        if not stamp_clean and (resid := act_np ^ act_stamped).any():
            # Rows whose queued bound is epoch-stale: batch-evaluate
            # against the current metric, then prune / keep / decide
            # exactly like the oracle's unstamped branch.
            idx_np = res["idx_np"]
            for j in np.flatnonzero(resid).tolist():
                g, s = member_of(j)
                f = s._frontier
                lb = None
                if f.lower_evaluator is not None:
                    lb = arena._eval_stale_attached(
                        f, idx_np[j], s._metric_epoch
                    )
                    if lb is not None and lb > s.upper_bound:
                        fallback(j, g, s)
                        continue
                if lb is None and not s._decide_keep(
                    store.nodes[slot_np[j]], None, False
                ):
                    fallback(j, g, s)
                    continue
                keep[j] = True

        kept = np.flatnonzero(keep)
        id_lanes: Optional[tuple] = None
        if kept.size:
            if ledger is None:
                # Forced-scalar tuner oracle: book each kept download row
                # by row, like the row loop (the ledger path defers all
                # of this to the one-pass round flush).
                arrivals = res["arrival_np"]
                pages = res["page_np"]
                for j in kept.tolist():
                    s = member_of(j)[1]
                    tuner = s.tuner
                    if tuner.loss is None:
                        arrival = float(arrivals[j])
                        tuner.now = arrival + 1.0
                        tuner.index_pages += 1
                        if tuner.record_log:
                            tuner.log.append(
                                ("index", int(pages[j]), arrival, True)
                            )
                    else:
                        tuner.download_index_page(int(pages[j]))
                        arena_now[due[j]] = tuner.now
            ksids = due[kept]
            knids = slot_np[kept]
            keys = store.lane_key[knids]
            if self._n_point:
                keys = keys | arena._pbit[ksids]
            lv = live_np[kept]
            if not lv.all():
                # Drained rows: a kept leaf with an empty queue finishes
                # at absorb time (leaf absorbs never push).
                probe.extend(map(
                    member_of,
                    kept[store.leaf_bit[knids] & (lv == 0)].tolist(),
                ))
            # One stable argsort bins every kept row into its absorb
            # lane; within a lane the rows keep serve order, matching the
            # oracle's per-row appends.  The absorb pass walks the sorted
            # arrays segment by segment (ascending key order — exactly
            # the insertion order the per-lane dict used to have), so the
            # hand-off is just the arrays plus the interior boundaries.
            order = np.argsort(keys, kind="stable")
            sk = keys[order]
            id_lanes = (
                sk,
                ksids[order],
                knids[order],
                np.flatnonzero(sk[1:] != sk[:-1]).tolist(),
            )
        # Non-actionable rows whose queue the certified-prune consumption
        # emptied are finished (cf. _phase_a_rows).  Gating on the empty
        # queues (rare) rather than on ``act.all()`` (almost never true)
        # keeps the common round to one cheap reduction.
        dead = ~(act_np | res["has_np"])
        if dead.any():
            probe.extend(map(member_of, np.flatnonzero(
                dead & (live_np == 0)
            ).tolist()))
        if ledger is not None:
            self._flush_pending = (res, rej, due)
        return id_lanes

    # ------------------------------------------------------------------
    # Phase A: per-search serves
    # ------------------------------------------------------------------
    def _burst(self, g, s, limit: float, strict: bool, probe) -> None:
        """Per-query fallback: the search's own steps while eligible."""
        while not s.finished():
            t = s.next_event_time()
            if t > limit or (strict and t == limit):
                return
            s.step()
        probe.append((g, s))

    def _fast(self, s, trivial_policy: bool) -> bool:
        """Batched-serve eligibility of one search, cached on the search.

        The cached verdict is keyed on the tuner's fault model, so a loss
        model swapped in (or out) between runs recomputes instead of
        serving a stale answer.  NN serves tolerate any fault model — the
        round flush replays the retry-to-next-replica loop closed form —
        while the drain serves (kNN / range / window) inline only
        successful downloads (``record_index_run``) and stay
        lossless-only.
        """
        loss = s.tuner.loss
        cached = getattr(s, "_shared_fast", None)
        if cached is not None and cached[0] is loss:
            return cached[1]
        fast = s._frontier is not None and (
            s._policy_trivial if trivial_policy else loss is None
        )
        s._shared_fast = (loss, fast)
        return fast

    def _serve_nn_one(self, g, s, limit, strict, ctx) -> None:
        if not self._use_kernels or not self._fast(s, True):
            self._burst(g, s, limit, strict, ctx[3])
            return
        f = s._frontier
        arena = f._arena
        lanes, _, _, probe = ctx
        epoch = s._metric_epoch
        tuner = s.tuner
        loss = tuner.loss
        while True:
            res = f.pop_until(s.upper_bound, epoch, limit, strict)
            if res is None:
                if f.finished():
                    probe.append((g, s))
                return
            node, lb, weak, arrival = res
            if (lb is None or weak) and not s._decide_keep(node, lb, weak):
                continue
            # Survivor: download now, defer the expansion to the batch.
            # record_index books the download on either backend — scalar
            # writes standalone, the tuner's ledger row when attached.
            if loss is None:
                tuner.record_index(node.page_id, arrival)
                if arena is not None:
                    arena._now[f._sid] = arrival + 1.0
            else:
                # Faulty tuner: the per-query retry loop books every
                # attempt itself (on either backend — its first attempt
                # recomputes exactly this pop's arrival), and the arena
                # clock re-syncs past the retries.
                tuner.download_index_page(node.page_id)
                if arena is not None:
                    arena._now[f._sid] = tuner.now
            if node.level == 0:
                key = (node.fanout << 2) | 2 | s._point_bit
                if f.finished():
                    probe.append((g, s))  # leaf absorbs never push
            else:
                key = (node.fanout << 2) | s._point_bit
            lane = lanes.get(key)
            if lane is None:
                lanes[key] = [[s], [node]]
            else:
                lane[0].append(s)
                lane[1].append(node)
            return

    def _serve_knn_one(self, g, s, limit, strict, ctx) -> None:
        if not self._use_kernels or not self._fast(s, False):
            self._burst(g, s, limit, strict, ctx[3])
            return
        f = s._frontier
        _, point_leaves, _, probe = ctx
        order_pages = f._order_pages
        order_slots = f._order_slots
        slot_nodes = f._nodes
        cycle = f._cycle
        fphase = f._phase
        q = s.query
        tuner = s.tuner
        # Downloads of this drain collect here and book in one
        # record_index_run call per exit — one clock write, one counter
        # add, one log/event-arena extend, on either tuner backend.
        pages_dl: List[int] = []
        arrs: List[float] = []
        now = tuner.now
        # The k-th-best bound moves only when a leaf is absorbed, and the
        # serve stops there — so it is constant for this whole drain.
        bound = s.bound
        pops = 0
        base = math.ceil(now - fphase)
        # The cyclic walk only moves forward (prunes keep the clock, and
        # a download's children insert at or after the cursor), so the
        # pop position is maintained incrementally: one bisect per drain.
        i = bisect_left(order_pages, base % cycle)
        while order_pages:
            if i >= len(order_pages):
                i = 0  # wrap: the earliest page of the next index copy
            page = order_pages.pop(i)
            slot = order_slots.pop(i)
            pops += 1
            node = slot_nodes[slot]
            if node.mbr.mindist(q) > bound:
                continue
            arrival = base + (page - base) % cycle + fphase
            now = arrival + 1.0
            pages_dl.append(page)
            arrs.append(arrival)
            if node.level == 0:
                # The leaf's absorption moves the k-th-best bound, which
                # the next pop's prune test reads: stop for the batch.
                tuner.record_index_run(pages_dl, arrs, now)
                f._version += pops
                if not order_pages:
                    probe.append((g, s))
                lane = point_leaves.get(node.fanout)
                if lane is None:
                    point_leaves[node.fanout] = [[s], [node]]
                else:
                    lane[0].append(s)
                    lane[1].append(node)
                return
            # expansions never move the bound
            f.push_many(node.children, src=node)
            base = math.ceil(now - fphase)
            if base % cycle != page + 1:
                # The clock's float roundtrip rounded past the next page
                # slot (or the lap wrapped): recover the cursor with one
                # bisect, exactly like the per-pop reference.
                i = bisect_left(order_pages, base % cycle)
        tuner.record_index_run(pages_dl, arrs, now)
        f._version += pops
        probe.append((g, s))

    def _serve_range_one(self, g, s, limit, strict, ctx) -> None:
        if not self._use_kernels or not self._fast(s, False):
            self._burst(g, s, limit, strict, ctx[3])
            return
        f = s._frontier
        _, _, flat_leaves, probe = ctx
        order_pages = f._order_pages
        order_slots = f._order_slots
        slot_nodes = f._nodes
        cycle = f._cycle
        fphase = f._phase
        circle = s.circle
        center = circle.center
        qx = center.x
        qy = center.y
        radius = circle.radius
        hyp = math.hypot
        tuner = s.tuner
        pages_dl: List[int] = []
        arrs: List[float] = []
        now = tuner.now
        leaves: List = []
        pops = 0
        base = math.ceil(now - fphase)
        start = base % cycle
        # The circle never moves, so the whole traversal drains in one
        # serve; leaf membership is resolved afterwards in one flat batch.
        # The cyclic walk only moves forward (prunes keep the clock, and a
        # download's children insert at or after the cursor), so the pop
        # position is maintained incrementally: one bisect per drain, not
        # one per entry.
        i = bisect_left(order_pages, start)
        while order_pages:
            if i >= len(order_pages):
                i = 0  # wrap: the earliest page of the next index copy
            page = order_pages.pop(i)
            slot = order_slots.pop(i)
            pops += 1
            node = slot_nodes[slot]
            # Inline Rect.mindist (same max/hypot sequence, no call):
            # circle.intersects_rect is mindist <= radius.
            xmin, ymin, xmax, ymax = node.mbr
            if hyp(max(xmin - qx, 0.0, qx - xmax),
                   max(ymin - qy, 0.0, qy - ymax)) > radius:
                continue
            arrival = base + (page - base) % cycle + fphase
            now = arrival + 1.0
            pages_dl.append(page)
            arrs.append(arrival)
            if node.level == 0:
                leaves.append(node)
            else:
                # Inlined push_many, trimmed for the drain: the frontier
                # dies with this serve, so the MBR-chunk cache and the
                # eval-guard bookkeeping (rescan machinery) are skipped —
                # only the slot/order lanes and the footprint peak matter.
                children = node.children
                base_slot = len(slot_nodes)
                cpages = node.child_page_list()
                slot_nodes.extend(children)
                f._bounds.extend([None] * len(cpages))
                ii = bisect_left(order_pages, cpages[0])
                if ii == len(order_pages) or order_pages[ii] > cpages[-1]:
                    order_pages[ii:ii] = cpages
                    order_slots[ii:ii] = range(
                        base_slot, base_slot + len(cpages)
                    )
                else:  # pragma: no cover - non-sibling batches
                    for cpage, cslot in zip(
                        cpages, range(base_slot, base_slot + len(cpages))
                    ):
                        jj = bisect_left(order_pages, cpage)
                        order_pages.insert(jj, cpage)
                        order_slots.insert(jj, cslot)
                if len(order_pages) > f.max_size:
                    f.max_size = len(order_pages)
            base = math.ceil(now - fphase)
            if base % cycle != page + 1:
                # Float-roundtrip clock moved past the next slot (or the
                # lap wrapped): recover the cursor with one bisect.
                i = bisect_left(order_pages, base % cycle)
        tuner.record_index_run(pages_dl, arrs, now)
        f._version += pops
        if leaves:
            flat_leaves.append((s, leaves))
        probe.append((g, s))

    def _serve_window_one(self, g, s, limit, strict, ctx) -> None:
        if not self._use_kernels or not self._fast(s, False):
            self._burst(g, s, limit, strict, ctx[3])
            return
        f = s._frontier
        _, _, flat_leaves, probe = ctx
        order_pages = f._order_pages
        order_slots = f._order_slots
        slot_nodes = f._nodes
        cycle = f._cycle
        fphase = f._phase
        tuner = s.tuner
        pages_dl: List[int] = []
        arrs: List[float] = []
        now = tuner.now
        leaves: List = []
        pops = 0
        # The window never moves either; children were filtered at push
        # time, so every queued node is downloaded.  The cyclic walk only
        # moves forward, so the pop position is maintained incrementally
        # (cf. the range drain).
        base = math.ceil(now - fphase)
        i = bisect_left(order_pages, base % cycle)
        while order_pages:
            if i >= len(order_pages):
                i = 0  # wrap: the earliest page of the next index copy
            page = order_pages.pop(i)
            slot = order_slots.pop(i)
            pops += 1
            node = slot_nodes[slot]
            arrival = base + (page - base) % cycle + fphase
            now = arrival + 1.0
            pages_dl.append(page)
            arrs.append(arrival)
            if node.level == 0:
                leaves.append(node)
            else:
                s._push_intersecting(node)
            base = math.ceil(now - fphase)
            if base % cycle != page + 1:
                # Float-roundtrip clock moved past the next slot (or the
                # lap wrapped): recover the cursor with one bisect.
                i = bisect_left(order_pages, base % cycle)
        tuner.record_index_run(pages_dl, arrs, now)
        f._version += pops
        if leaves:
            flat_leaves.append((s, leaves))
        probe.append((g, s))

    # ------------------------------------------------------------------
    # Phase B: cross-query batched absorbs (certified estimate lanes)
    # ------------------------------------------------------------------
    def _absorb_nn_lanes(self, lanes: dict) -> None:
        """Absorb the round's surviving NN expansions, batched per shape.

        Point-metric lanes evaluate the exact fused MINDIST/MINMAXDIST (or
        leaf distance) kernel and feed each search its row — no pop-time
        verification, no scalar scan.  Transitive lanes, whose exact
        Lemma 1-3 kernel costs an order of magnitude more, run raw-hypot
        *certified estimates* instead: deflated weak lower bounds are
        queued for the delayed-pruning pop tests, and a deflated row
        minimum of the guarantee estimates proves for most rows that the
        exact guarantee scan is a no-op — only the remaining rows (and
        bound-witness nodes) run the exact scalar scan.  Every *stored*
        value is exact, so the estimates only decide provably-identical
        skips.
        """
        min_lane = _MIN_LANE
        deflate = _CERT_DEFLATE
        arena = self._arena
        for lane_key, (searches, nodes) in lanes.items():
            is_point = lane_key & 1
            is_leaf = lane_key & 2
            n = lane_key >> 2
            k = len(nodes)
            if k < min_lane:
                for s, node in zip(searches, nodes):
                    if is_leaf:
                        s._absorb_leaf(node)
                    else:
                        s._absorb_internal(node)
                self._sync_lane(searches)
                continue
            if is_leaf:
                pts_blk = self._lane_pts
                if pts_blk is not None:
                    pts = pts_blk[n][
                        np.fromiter((nd._lane_row for nd in nodes), np.intp, k)
                    ]
                else:
                    pts = np.concatenate(
                        [node.points_array() for node in nodes]
                    ).reshape(k, n, 2)
                if is_point:
                    # Point metric: exact distances are one fused hypot
                    # pass; batch the exact row argmins.
                    d = kernels.point_dists_multi(
                        self._lane_queries(searches), pts
                    )
                    idx = np.argmin(d, axis=1)
                    vals = d[np.arange(k), idx].tolist()
                    for s, node, i, v in zip(
                        searches, nodes, idx.tolist(), vals
                    ):
                        s._absorb_leaf_shared(node, i, v)
                    self._sync_lane(searches)
                else:
                    # Transitive metric: the incumbent is already tight
                    # when leaves arrive, so the deflated raw estimate
                    # proves most leaf absorbs are no-ops.
                    starts, ends = self._lane_transitive(searches)
                    d = kernels.trans_dists_raw(starts, pts, ends)
                    for s, node, m in zip(
                        searches, nodes, d.min(axis=1).tolist()
                    ):
                        # A deflated row minimum at or above the incumbent
                        # proves the scalar offer loop changes nothing
                        # (the upper bound never exceeds the incumbent,
                        # which the second test re-checks defensively).
                        if (
                            m * deflate < s.best_dist
                            or s.best_dist < s.upper_bound
                        ):
                            s._absorb_leaf(node)
                    self._sync_lane(searches)
            else:
                mbr_blk = self._lane_mbrs
                if mbr_blk is not None:
                    lrows = np.fromiter(
                        (nd._lane_row for nd in nodes), np.intp, k
                    )
                    mbrs = mbr_blk[n][lrows]
                else:
                    lrows = None
                    mbrs = np.concatenate(
                        [node.child_mbr_array() for node in nodes]
                    ).reshape(k, n, 4)
                if self._all_trees_backed:
                    all_backed = True
                else:
                    all_backed = all(
                        node.children_all_backed() for node in nodes
                    )
                sids = self._lane_sids(searches) if arena is not None else None
                if is_point:
                    if sids is None:
                        # Non-arena lane: the exact fused MINDIST /
                        # MINMAXDIST kernel plus the per-search hook.
                        lower, guar = kernels.point_bounds_multi(
                            self._lane_queries(searches), mbrs
                        )
                        if all_backed:
                            backed = guar
                        else:
                            if lrows is not None:
                                counts = self._lane_cnts[n][lrows]
                            else:
                                counts = np.concatenate(
                                    [node.child_count_array() for node in nodes]
                                ).reshape(k, n)
                            backed = np.where(counts > 0, guar, math.inf)
                        gi = np.argmin(backed, axis=1)
                        gv_l = backed[np.arange(k), gi].tolist()
                        for j, (s, node) in enumerate(zip(searches, nodes)):
                            s._absorb_internal_shared(
                                node, lower[j], gi[j], gv_l[j]
                            )
                        self._sync_lane(searches)
                        continue
                    # Arena lane: one staging pass queues every fan-out
                    # with its exact kernel bounds, and the guarantee /
                    # witness hand-off of _absorb_internal_shared runs as
                    # lane-wide masks — python only touches the rows that
                    # change state.  (The transitive lanes' certified
                    # raw-estimate strategy does not pay here: the point
                    # metric's upper bound improves on about half of all
                    # expansions, so the deflated gate would send most
                    # rows to the exact scalar scan anyway.)
                    lower, guar = kernels.point_bounds_multi(
                        self._lane_queries(searches), mbrs
                    )
                    if all_backed:
                        backed = guar
                    else:
                        if lrows is not None:
                            counts = self._lane_cnts[n][lrows]
                        else:
                            counts = np.concatenate(
                                [node.child_count_array() for node in nodes]
                            ).reshape(k, n)
                        backed = np.where(counts > 0, guar, math.inf)
                    gi = np.argmin(backed, axis=1)
                    gv = backed[np.arange(k), gi]
                    arena.stage_lane(
                        searches,
                        nodes,
                        n,
                        lower,
                        False,
                        pages=None
                        if lrows is None
                        else self._lane_cpgs[n][lrows],
                    )
                    ub = arena._ub[sids]
                    if lrows is not None:
                        node_pages = self._lane_npgs[n][lrows]
                    else:
                        node_pages = np.fromiter(
                            (node.page_id for node in nodes), np.int64, k
                        )
                    was_w = arena._wit[sids] == node_pages
                    finite = np.isfinite(gv)
                    improve = finite & (gv < ub)
                    upd = improve | was_w
                    if upd.any() or not finite.all():
                        gv_l = gv.tolist()
                        gi_l = gi.tolist()
                        improve_l = improve.tolist()
                        wit_arr = arena._wit
                        ub_arr = arena._ub
                        sid_l = sids.tolist()
                        for j in np.flatnonzero(upd | ~finite).tolist():
                            s = searches[j]
                            if not finite[j]:
                                # Every child subtree empty: no guarantee
                                # to inherit (cf. _absorb_internal_shared).
                                if was_w[j]:
                                    s.upper_bound = s.best_dist
                                    s._witness_page = None
                                    s._rescan_queue_bounds()
                                    arena.sync(s)
                                continue
                            wp = nodes[j].children[gi_l[j]].page_id
                            s._witness_page = wp
                            wit_arr[sid_l[j]] = wp
                            if improve_l[j]:
                                s.upper_bound = gv_l[j]
                                ub_arr[sid_l[j]] = gv_l[j]
                else:
                    starts, ends = self._lane_transitive(searches)
                    weak, est, keep = kernels.trans_weak_bounds_multi(
                        starts, mbrs, ends, deflate
                    )
                    gates = est.min(axis=1) * deflate
                    if sids is None:
                        gates_l = gates.tolist()
                        for j, (s, node) in enumerate(zip(searches, nodes)):
                            # The exact guarantee scan runs when the
                            # deflated estimate admits an improvement,
                            # when the node witnesses the bound
                            # (hand-off), or when an empty child subtree
                            # voids the estimate's backing.
                            need = (
                                not all_backed
                                or gates_l[j] < s.upper_bound
                                or node.page_id == s._witness_page
                            )
                            s._absorb_internal_weak(node, weak[j], need)
                        self._sync_lane(searches)
                        continue
                    # Arena lane: stage every push at once; the need mask
                    # (estimate admits improvement / witness hand-off /
                    # unbacked children) selects the minority of rows
                    # whose exact guarantee scan must run.  Each entry
                    # also carries the kernel's inflated keep certificate
                    # (best corner / through-centre transitive distance,
                    # both geometric upper bounds on the exact Lemma 1
                    # value), so the serve loop resolves most weak
                    # survivors with one float compare instead of the
                    # scalar certification walk.
                    arena.stage_lane(
                        searches,
                        nodes,
                        n,
                        weak,
                        True,
                        keep * _CERT_INFLATE,
                        pages=None
                        if lrows is None
                        else self._lane_cpgs[n][lrows],
                    )
                    if lrows is not None:
                        node_pages = self._lane_npgs[n][lrows]
                    else:
                        node_pages = np.fromiter(
                            (node.page_id for node in nodes), np.int64, k
                        )
                    need = (gates < arena._ub[sids]) | (
                        arena._wit[sids] == node_pages
                    )
                    if not all_backed:
                        need |= True
                    rows = np.flatnonzero(need)
                    if rows.size:
                        # The needing rows' exact guarantee scans batch
                        # into one corner kernel call.  The scalar scan's
                        # weak-bound skip is value-preserving (a skipped
                        # child's weak lower bound already met the running
                        # minimum, and the corner bound dominates it), so
                        # the first-minimum row argmin replays the scalar
                        # child selection exactly.
                        z = kernels.trans_corner_minmax_multi(
                            starts[rows], mbrs[rows], ends[rows]
                        )
                        if not all_backed:
                            if lrows is not None:
                                zcounts = self._lane_cnts[n][lrows[rows]]
                            else:
                                zcounts = np.concatenate([
                                    nodes[j].child_count_array()
                                    for j in rows.tolist()
                                ]).reshape(rows.size, n)
                            z = np.where(zcounts > 0, z, math.inf)
                        gi_z = np.argmin(z, axis=1).tolist()
                        gz = z[np.arange(rows.size), gi_z].tolist()
                        wit_arr = arena._wit
                        ub_arr = arena._ub
                        sid_l = sids.tolist()
                        inf = math.inf
                        for t, j in enumerate(rows.tolist()):
                            s = searches[j]
                            node = nodes[j]
                            was_witness = node.page_id == s._witness_page
                            bg = gz[t]
                            if bg == inf:
                                # Every child subtree empty: nothing backs
                                # a guarantee (cf. _guarantee_scan_weak).
                                if was_witness:
                                    s.upper_bound = s.best_dist
                                    s._witness_page = None
                                    s._rescan_queue_bounds()
                                    ub_arr[sid_l[j]] = s.upper_bound
                                    wit_arr[sid_l[j]] = -1
                                continue
                            best_child = node.children[gi_z[t]]
                            if bg < s.upper_bound:
                                s.upper_bound = bg
                                s._witness_page = best_child.page_id
                                ub_arr[sid_l[j]] = bg
                                wit_arr[sid_l[j]] = best_child.page_id
                            elif was_witness:
                                s._witness_page = best_child.page_id
                                wit_arr[sid_l[j]] = best_child.page_id

    def _absorb_nn_lanes_ids(self, id_lanes: tuple) -> None:
        """Store-mode absorb: lanes arrive as one sorted segment pack.

        ``id_lanes`` is phase A's ``(keys, sids, nids, cuts)`` — the
        kept rows key-sorted by one stable argsort, with ``cuts`` the
        interior segment boundaries (as ``sorted_keys[1:] != [:-1]``
        positions); each segment is one absorb lane, walked here in
        ascending key order.  Mirrors :meth:`_absorb_nn_lanes` decision
        for decision — same kernels, same certified-estimate strategy,
        same witness hand-off rules — but every geometry / page / count
        gather is one fancy index into the node store or the combined
        lane blocks, each lane's fan-outs stage through one
        :meth:`FrontierArena.stage_lane_ids` call, and the ``_ub`` /
        ``_wit`` arena mirrors update with masked scatters.  Python only
        touches the rows whose search-object state actually changes.
        """
        min_lane = _MIN_LANE
        deflate = _CERT_DEFLATE
        arena = self._arena
        store = arena._store
        searches_all = arena._searches
        ub_arr = arena._ub
        wit_arr = arena._wit
        all_keys, all_sids, all_nids, cuts = id_lanes
        starts = [0]
        for c in cuts:
            starts.append(c + 1)
        ends = starts[1:] + [all_keys.shape[0]]
        for a, b in zip(starts, ends):
            lane_key = int(all_keys[a])
            sids = all_sids[a:b]
            nids = all_nids[a:b]
            is_point = lane_key & 1
            is_leaf = lane_key & 2
            n = lane_key >> 2
            k = sids.shape[0]
            if k < min_lane:
                searches = [searches_all[sid] for sid in sids.tolist()]
                nodes = [store.nodes[nid] for nid in nids.tolist()]
                for s, node in zip(searches, nodes):
                    if is_leaf:
                        s._absorb_leaf(node)
                    else:
                        s._absorb_internal(node)
                self._sync_lane(searches)
                continue
            lrows = store.lane_row[nids]
            if is_leaf:
                pts = self._lane_pts[n][lrows]
                searches = [searches_all[sid] for sid in sids.tolist()]
                if is_point:
                    d = kernels.point_dists_multi(
                        np.column_stack((arena._qx[sids], arena._qy[sids])),
                        pts,
                    )
                    idx = np.argmin(d, axis=1)
                    vals = d[np.arange(k), idx].tolist()
                    for s, nid, i, v in zip(
                        searches, nids.tolist(), idx.tolist(), vals
                    ):
                        s._absorb_leaf_shared(store.nodes[nid], i, v)
                else:
                    starts = np.column_stack(
                        (arena._sx[sids], arena._sy[sids])
                    )
                    ends = np.column_stack((arena._ex[sids], arena._ey[sids]))
                    d = kernels.trans_dists_raw(starts, pts, ends)
                    for s, nid, m in zip(
                        searches, nids.tolist(), d.min(axis=1).tolist()
                    ):
                        # Same deflated no-op proof as the object lane.
                        if (
                            m * deflate < s.best_dist
                            or s.best_dist < s.upper_bound
                        ):
                            s._absorb_leaf(store.nodes[nid])
                # One-scatter _sync_lane: the lane's sids are known, so
                # the mirrors land with two fancy-index writes.
                ub_arr[sids] = [s.upper_bound for s in searches]
                wit_arr[sids] = [
                    -1 if s._witness_page is None else s._witness_page
                    for s in searches
                ]
                continue
            mbrs = self._lane_mbrs[n][lrows]
            cnts = None
            if self._all_trees_backed:
                all_backed = True
            else:
                cnts = self._lane_cnts[n][lrows]
                all_backed = bool((cnts > 0).all())
            node_pages = store.page[nids]
            if is_point:
                lower, guar = kernels.point_bounds_multi(
                    np.column_stack((arena._qx[sids], arena._qy[sids])),
                    mbrs,
                )
                if all_backed:
                    backed = guar
                else:
                    backed = np.where(cnts > 0, guar, math.inf)
                gi = np.argmin(backed, axis=1)
                gv = backed[np.arange(k), gi]
                arena.stage_lane_ids(sids, nids, n, lower, False)
                was_w = wit_arr[sids] == node_pages
                finite = np.isfinite(gv)
                improve = finite & (gv < ub_arr[sids])
                upd = improve | was_w
                if upd.any() or not finite.all():
                    wp = store.page[store.child0[nids] + gi]
                    sel = upd & finite
                    wit_arr[sids[sel]] = wp[sel]
                    ub_arr[sids[improve]] = gv[improve]
                    gv_l = gv.tolist()
                    wp_l = wp.tolist()
                    improve_l = improve.tolist()
                    finite_l = finite.tolist()
                    for j in np.flatnonzero(upd | ~finite).tolist():
                        s = searches_all[sids[j]]
                        if not finite_l[j]:
                            # Every child subtree empty: no guarantee to
                            # inherit (cf. _absorb_internal_shared).
                            if was_w[j]:
                                s.upper_bound = s.best_dist
                                s._witness_page = None
                                s._rescan_queue_bounds()
                                arena.sync(s)
                            continue
                        s._witness_page = wp_l[j]
                        if improve_l[j]:
                            s.upper_bound = gv_l[j]
            else:
                starts = np.column_stack((arena._sx[sids], arena._sy[sids]))
                ends = np.column_stack((arena._ex[sids], arena._ey[sids]))
                weak, est, keep = kernels.trans_weak_bounds_multi(
                    starts, mbrs, ends, deflate
                )
                gates = est.min(axis=1) * deflate
                arena.stage_lane_ids(
                    sids, nids, n, weak, True, keep * _CERT_INFLATE
                )
                need = (gates < ub_arr[sids]) | (
                    wit_arr[sids] == node_pages
                )
                if not all_backed:
                    need |= True
                rows = np.flatnonzero(need)
                if rows.size:
                    z = kernels.trans_corner_minmax_multi(
                        starts[rows], mbrs[rows], ends[rows]
                    )
                    if not all_backed:
                        z = np.where(cnts[rows] > 0, z, math.inf)
                    gi_z = np.argmin(z, axis=1)
                    gz = z[np.arange(rows.size), gi_z]
                    rsids = sids[rows]
                    was_witness = wit_arr[rsids] == node_pages[rows]
                    finite_z = np.isfinite(gz)
                    improve_z = finite_z & (gz < ub_arr[rsids])
                    handoff = finite_z & ~improve_z & was_witness
                    void = ~finite_z & was_witness
                    moved = improve_z | handoff
                    if moved.any():
                        wp_z = store.page[
                            store.child0[nids[rows]] + gi_z
                        ]
                        ub_arr[rsids[improve_z]] = gz[improve_z]
                        wit_arr[rsids[moved]] = wp_z[moved]
                        gz_l = gz.tolist()
                        wp_l = wp_z.tolist()
                        improve_l = improve_z.tolist()
                        for t in np.flatnonzero(moved).tolist():
                            s = searches_all[rsids[t]]
                            if improve_l[t]:
                                s.upper_bound = gz_l[t]
                            s._witness_page = wp_l[t]
                    if void.any():
                        for t in np.flatnonzero(void).tolist():
                            sid = int(rsids[t])
                            s = searches_all[sid]
                            # Every child subtree empty: nothing backs a
                            # guarantee (cf. _guarantee_scan_weak) — same
                            # direct mirror writes as the object lane.
                            s.upper_bound = s.best_dist
                            s._witness_page = None
                            s._rescan_queue_bounds()
                            ub_arr[sid] = s.upper_bound
                            wit_arr[sid] = -1

    def _lane_sids(self, searches) -> Optional[np.ndarray]:
        """The searches' arena ids, or ``None`` when any is unregistered."""
        try:
            return np.fromiter(
                (s._arena_sid for s in searches), np.int64, len(searches)
            )
        except AttributeError:
            return None

    def _sync_lane(self, searches) -> None:
        """Mirror a lane's upper bounds and witness pages into the arena."""
        arena = self._arena
        if arena is None:
            return
        ub_arr = arena._ub
        wit_arr = arena._wit
        for s in searches:
            try:
                sid = s._arena_sid
            except AttributeError:
                continue
            ub_arr[sid] = s.upper_bound
            wp = s._witness_page
            wit_arr[sid] = -1 if wp is None else wp

    def _lane_queries(self, searches) -> np.ndarray:
        """``(k, 2)`` query block for one lane — arena gather when possible.

        Packing ``Point`` objects into an array costs ~1µs per row; the
        arena keeps every registered search's coordinates in float64 lanes
        already, so a lane of arena searches gathers them in one fancy
        index.
        """
        arena = self._arena
        if arena is not None:
            try:
                return arena.queries_of([s._arena_sid for s in searches])
            except AttributeError:  # a non-arena search in the lane
                pass
        return np.array([s.query for s in searches])

    def _lane_transitive(self, searches) -> Tuple[np.ndarray, np.ndarray]:
        """``(starts, ends)`` blocks for one transitive lane (cf. above)."""
        arena = self._arena
        if arena is not None:
            try:
                return arena.transitive_of([s._arena_sid for s in searches])
            except AttributeError:
                pass
        return (
            np.array([s.start for s in searches]),
            np.array([s.end for s in searches]),
        )

    def _absorb_point_leaves(self, point_leaves: dict) -> None:
        """Batched exact ``dis(q, p)`` rows for the round's kNN leaves.

        kNN rows must be exact — the distances enter the candidate heap
        and the reported answers — so this lane keeps the exact vectorised
        hypot.
        """
        for n, (searches, nodes) in point_leaves.items():
            if len(nodes) < _MIN_LANE:
                for s, node in zip(searches, nodes):
                    s._absorb_leaf(node)
                continue
            k = len(nodes)
            pts_blk = self._lane_pts
            if pts_blk is not None:
                pts = pts_blk[n][
                    np.fromiter((nd._lane_row for nd in nodes), np.intp, k)
                ]
            else:
                pts = np.concatenate(
                    [node.points_array() for node in nodes]
                ).reshape(k, n, 2)
            d = kernels.point_dists_multi(
                np.array([s.query for s in searches]), pts
            )
            for j, (s, node) in enumerate(zip(searches, nodes)):
                s._absorb_leaf_known(node, d[j])

    def _absorb_flat_leaves(self, s, leaves: List) -> None:
        """Resolve a drained range/window search's leaves in one flat pass.

        The flat concatenation preserves leaf pop order and in-leaf point
        order, so ``results`` fills exactly as the per-query absorbs
        would.  Range membership runs on raw-hypot estimates with
        inflate/deflate certification; only points inside the rounding
        margin band pay the exact metric.
        """
        total = 0
        for node in leaves:
            total += node.fanout
        if total < kernels.min_batch_leaf():
            for node in leaves:
                s._absorb_leaf(node)
            return
        pts = (
            leaves[0].points_array()
            if len(leaves) == 1
            else np.concatenate([node.points_array() for node in leaves])
        )
        flat: List = []
        for node in leaves:
            flat.extend(node.points)
        if isinstance(s, BroadcastRangeSearch):
            circle = s.circle
            center = circle.center
            radius = circle.radius
            d = np.hypot(center.x - pts[:, 0], center.y - pts[:, 1])
            inside = d * _CERT_INFLATE <= radius
            border = ~(inside | (d * _CERT_DEFLATE > radius))
            if border.any():
                # The margin band: resolve each point with the exact
                # scalar containment test, like the per-query absorb.
                for i in np.flatnonzero(border).tolist():
                    inside[i] = circle.contains_point(flat[i])
            idx = np.flatnonzero(inside).tolist()
        else:
            w = s.window
            xs, ys = pts[:, 0], pts[:, 1]
            idx = np.flatnonzero(
                (w.xmin <= xs)
                & (xs <= w.xmax)
                & (w.ymin <= ys)
                & (ys <= w.ymax)
            ).tolist()
        if idx:
            s.results.extend(flat[i] for i in idx)


# ----------------------------------------------------------------------
# TNN query jobs (estimate -> filter -> join state machine)
# ----------------------------------------------------------------------
class _TNNJob:
    """One TNN query's lifecycle under the shared scan.

    Mirrors :meth:`repro.core.base.TNNAlgorithm.run` stage by stage —
    estimate searches, re-steering coordinator (Hybrid-NN), filter-phase
    range queries from ``estimate_finish``, transitive join, metrics — so
    the assembled :class:`TNNResult` is field-for-field the per-query one.
    """

    __slots__ = (
        "env",
        "algorithm",
        "hybrid",
        "query",
        "tuner_s",
        "tuner_r",
        "nn_s",
        "nn_r",
        "range_s",
        "range_r",
        "radius",
        "seed_pair",
        "estimate_finish",
        "estimate_pages",
        "in_filter",
        "result",
        "_steered",
    )

    def __init__(
        self,
        env: TNNEnvironment,
        algorithm,
        hybrid: bool,
        query: Point,
        phase_s: float,
        phase_r: float,
        record_log: bool = True,
    ) -> None:
        self.env = env
        self.algorithm = algorithm
        self.hybrid = hybrid
        self.query = query
        self.tuner_s, self.tuner_r = env.tuners(phase_s, phase_r)
        if not record_log:
            # Batch campaigns that never read traces skip every log-list
            # (and event-arena) append; counters and clocks still count.
            self.tuner_s.record_log = False
            self.tuner_r.record_log = False
        policy_s, policy_r = algorithm._policies(env)
        self.nn_s = BroadcastNNSearch(env.s_tree, self.tuner_s, query, policy_s)
        self.nn_r = BroadcastNNSearch(env.r_tree, self.tuner_r, query, policy_r)
        # Pre-stamp the executor's serve-eligibility verdict (the
        # searches were built right here, so the conditions are known);
        # it must match SharedScanExecutor._fast exactly — a (fault
        # model, verdict) tuple, so a loss model swapped onto the tuner
        # later invalidates the cache instead of going stale.  NN serves
        # tolerate any fault model: the round flush replays the retry
        # loop closed form.
        self.nn_s._shared_fast = (
            self.tuner_s.loss,
            self.nn_s._frontier is not None and self.nn_s._policy_trivial,
        )
        self.nn_r._shared_fast = (
            self.tuner_r.loss,
            self.nn_r._frontier is not None and self.nn_r._policy_trivial,
        )
        self.in_filter = False
        self.result: Optional[TNNResult] = None
        self._steered = False

    def start(self) -> SearchGroup:
        if self.hybrid:
            # Hybrid-NN: the finish of either channel re-steers the other,
            # so the pair keeps run_all's exact step interleaving.
            return SearchGroup(
                [self.nn_s, self.nn_r],
                paired=True,
                on_finish=self._coordinator,
                tag=self,
            )
        # Double-NN: two independent searches, order-free.
        return SearchGroup([self.nn_s, self.nn_r], tag=self)

    def _coordinator(self, finished_search) -> None:
        # Verbatim HybridNN._estimate coordination (Cases 2 and 3).
        if self._steered:
            return
        if finished_search is self.nn_s and not self.nn_r.finished():
            s, _ = self.nn_s.result()
            self.nn_r.retarget(s)  # Case 2
            self._steered = True
        elif finished_search is self.nn_r and not self.nn_s.finished():
            r, _ = self.nn_r.result()
            self.nn_s.switch_to_transitive(self.query, r)  # Case 3
            self._steered = True

    def advance(self) -> Optional[SearchGroup]:
        if not self.in_filter:
            s, _ = self.nn_s.result()
            r, _ = self.nn_r.result()
            self.radius = self.query.distance_to(s) + s.distance_to(r)
            self.seed_pair = (s, r)
            self.estimate_finish = max(self.tuner_s.now, self.tuner_r.now)
            self.estimate_pages = (
                self.tuner_s.pages_downloaded + self.tuner_r.pages_downloaded
            )
            circle = Circle(self.query, self.radius)
            self.range_s = BroadcastRangeSearch(
                self.env.s_tree, self.tuner_s, circle, self.estimate_finish
            )
            self.range_r = BroadcastRangeSearch(
                self.env.r_tree, self.tuner_r, circle, self.estimate_finish
            )
            self.in_filter = True
            return SearchGroup([self.range_s, self.range_r], tag=self)

        s0, r0 = self.seed_pair
        seed_bound = self.query.distance_to(s0) + s0.distance_to(r0)
        s, r, dist = transitive_join(
            self.query,
            self.range_s.results,
            self.range_r.results,
            initial_bound=seed_bound,
            initial_pair=self.seed_pair,
        )
        tuner_s, tuner_r = self.tuner_s, self.tuner_r
        self.result = TNNResult(
            algorithm=self.algorithm.name,
            query=self.query,
            s=s,
            r=r,
            distance=dist,
            radius=self.radius,
            access_time=max(tuner_s.now, tuner_r.now),
            tune_in_s=tuner_s.pages_downloaded,
            tune_in_r=tuner_r.pages_downloaded,
            estimate_pages=self.estimate_pages,
            filter_pages=(
                tuner_s.pages_downloaded
                + tuner_r.pages_downloaded
                - self.estimate_pages
            ),
            estimate_finish=self.estimate_finish,
            data_pages=0,
            failed=s is None or r is None,
        )
        return None


def shared_scan_supported(algorithm) -> bool:
    """True when :func:`execute_tnn_batch` can run this algorithm.

    The page-major job mirrors the exact Double-NN / Hybrid-NN lifecycles
    stage by stage; subclasses (which may override ``_estimate``), ANN
    optimizations, and data-page retrieval keep the per-query path.
    """
    from repro.core.double import DoubleNN
    from repro.core.hybrid import HybridNN

    return (
        type(algorithm) in (DoubleNN, HybridNN)
        and algorithm.optimization is None
        and not algorithm.include_data_retrieval
    )


def execute_tnn_batch(
    env: TNNEnvironment,
    algorithm,
    queries: Sequence[Tuple[Point, float, float]],
    record_log: bool = True,
) -> List[TNNResult]:
    """Run a TNN workload page-major; results in workload order.

    ``algorithm`` must satisfy :func:`shared_scan_supported`; the returned
    :class:`TNNResult` stream is bit-identical to running
    ``algorithm.run(env, q, phase_s, phase_r)`` per query.  Pass
    ``record_log=False`` to skip per-tuner reception logs (counters and
    clocks still count) — for batch campaigns that never read traces.
    """
    from repro.core.hybrid import HybridNN

    hybrid = isinstance(algorithm, HybridNN)
    jobs = [
        _TNNJob(env, algorithm, hybrid, q, phase_s, phase_r, record_log)
        for q, phase_s, phase_r in queries
    ]
    lane_blocks = (
        combine_lane_blocks((env.s_tree, env.r_tree))
        if kernels.enabled()
        else None
    )
    executor = SharedScanExecutor(
        all_trees_backed=tree_all_backed(env.s_tree)
        and tree_all_backed(env.r_tree),
        lane_blocks=lane_blocks,
        # The store binds the lane blocks' _lane_row stamps, so it must
        # build after them; REPRO_NO_NODE_STORE=1 keeps the scalar row
        # loop as the bit-identity oracle.
        node_store=NodeStore.build((env.s_tree, env.r_tree))
        if lane_blocks is not None and not node_store_disabled()
        else None,
    )
    for job in jobs:
        executor.add(job.start())
    executor.run()
    return [job.result for job in jobs]  # type: ignore[misc]
