"""Shared-scan batch executor: page-major execution of a query workload.

A broadcast channel is physically a *shared scan*: every client hears the
same cyclic page sequence.  The per-query path replays the whole broadcast
cycle once per query — a 1,000-query workload decodes the same pages and
pays the same kernel dispatches 1,000 times over.  This module flips the
loop to **page-major** order:

* every query's steppable searches are registered with one
  :class:`SharedScanExecutor`; the executor repeatedly runs *rounds*;
* each round serves, for every active query, the one search
  :func:`~repro.client.scheduler.run_all` would step next (its
  :class:`~repro.client.scheduler.SearchGroup` — paired ping-pong for
  Hybrid-NN's callback-coupled estimate searches, every unfinished member
  for independent ones): the search pops its arrival-frontier head, applies
  its pop-time pruning decision on the cached bound, and downloads the page
  when it survives — all per-query work, but a few hundred nanoseconds
  each;
* the expensive part — the Lemma 1–3 bounds and leaf distances of every
  node expanded this round — is then evaluated in a handful of
  **multi-query kernel calls** (:func:`repro.geometry.kernels
  .point_bounds_multi` and friends): one ``(k, 2)`` query block against one
  ``(k, n, 4)`` child-MBR / ``(k, n, 2)`` point block, grouped by (metric,
  node kind, fan-out).  At the paper's 64-byte page geometry (M = 3) a
  single query never reaches the kernel dispatch floor; ``k`` queries
  expanding nodes on the same round clear it together, so the fixed
  per-ufunc cost amortises across the *workload* instead of one fan-out.

Because the geometry kernels are elementwise, a round batches expansions of
*different* pages just as well as same-page fan-outs — the round is the
arrival tick of the shared scan, not a single page's bucket, which is
strictly more batching than per-page grouping.

**Bit-identity contract.**  The per-query path remains the oracle: for
every query, the executor produces the same answers, access times, tune-in
counts and max queue sizes, bit for bit.  The contract holds by
construction:

* each search's *step sequence* is exactly the one ``run_all`` produces —
  groups encode ``run_all``'s ordering rules, and searches in different
  groups share no state, so interleaving across queries is free;
* each step's *values* are exactly the per-query values — exact
  multi-query kernels replay the scalar operation order per lane (the
  exact vectorised hypot is bit-identical to ``math.hypot``), while the
  transitive lanes run raw-hypot *certified estimates* whose deflated
  margins can only decide provably-identical outcomes (prunes, skipped
  guarantee scans) with every stored value still computed by the exact
  scalar metrics; the absorb hooks
  (:meth:`~repro.client.search.BroadcastNNSearch._absorb_internal_shared`,
  :meth:`~repro.client.search.BroadcastNNSearch._absorb_internal_weak`)
  replay the per-query absorb logic on the batched rows, and the inlined
  page download replays the tuner's arrival arithmetic;
* everything that cannot batch falls back to the search's own per-query
  code path: sub-threshold lanes, heap-backed searches (distributed
  layouts), lossy tuners, unknown search types, and the whole executor
  under ``REPRO_NO_KERNELS=1`` — where it degrades to a pure multiplexer
  over the scalar oracle.
"""

from __future__ import annotations

import math
import os
from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.client.knn import BroadcastKNNSearch
from repro.client.range_query import BroadcastRangeSearch
from repro.client.scheduler import SearchGroup
from repro.client.search import (
    _CERT_DEFLATE,
    _CERT_INFLATE,
    BroadcastNNSearch,
    SearchMode,
)
from repro.client.window import BroadcastWindowSearch
from repro.core.environment import TNNEnvironment
from repro.core.join import transitive_join
from repro.core.result import TNNResult
from repro.geometry import Circle, Point, kernels

#: Smallest same-shape survivor lane worth one multi-query kernel call.
#: Below it the per-search scalar absorb (itself adaptive) is cheaper than
#: array packing plus dispatch; results are identical either way, so this
#: is purely a performance dial.
_MIN_LANE = int(os.environ.get("REPRO_SHARED_MIN_LANE", "4"))


def tree_all_backed(tree) -> bool:
    """True when every internal node's children all hold points (cached).

    Holds for every standard packer (a leaf always stores at least one
    point); only hand-assembled degenerate trees fail it.  Computed once
    per tree and cached on the tree object, so executors can skip the
    per-node backed-guarantee masks for the entire run.
    """
    try:
        return tree._all_subtrees_backed
    except AttributeError:
        ok = all(
            node.children_all_backed()
            for node in tree.root.iter_preorder()
            if not node.is_leaf
        )
        tree._all_subtrees_backed = ok
        return ok


# ----------------------------------------------------------------------
# The round-based executor
# ----------------------------------------------------------------------
class SharedScanExecutor:
    """Drives many queries' searches through one page-major loop.

    Add :class:`~repro.client.scheduler.SearchGroup` instances (their
    ``tag``, when set, must provide ``advance() -> Optional[SearchGroup]``
    — the query's continuation once the group completes, e.g. the TNN
    estimate-to-filter hand-off), then :meth:`run` to completion.

    Serve shapes, chosen per search by what its pop-time prune test reads:

    * **NN searches** — the prune bound (``upper_bound``) evolves at every
      absorb, so a serve is one :meth:`ArrivalFrontier.pop_until` run:
      consume certified-prunable entries, stop at the first survivor,
      download it, and defer its expansion to the round's multi-query
      kernel batch.  Hybrid pairs pass the sibling's next event time as the
      pop limit (``run_all``'s ping-pong tie rule); independent searches
      run unlimited.
    * **kNN searches** — internal expansions never move the k-th-best
      bound, so a serve drains pops and internal downloads in one loop and
      stops only at a leaf download, whose distance row joins the round's
      batch.
    * **range / window searches** — the prune test is static (the circle
      and window never move), so one serve drains the whole search;
      collected leaves are resolved afterwards in one flat per-search
      kernel call that preserves leaf pop order.
    * anything else (heap backends, lossy tuners, non-trivial pruning
      policies, ``REPRO_NO_KERNELS=1``, unknown types) — a burst of the
      search's own ``step()`` while it stays eligible: the executor
      degrades to a pure multiplexer over the per-query oracle.
    """

    def __init__(self, all_trees_backed: bool = False) -> None:
        self._active: List[SearchGroup] = []
        self._use_kernels = True
        #: Callers pass True after checking every involved tree with
        #: :func:`tree_all_backed`: no expanded node can then have an
        #: empty child subtree, and the absorb lanes skip the per-node
        #: backed-guarantee masks wholesale.  False is always safe.
        self._all_trees_backed = all_trees_backed

    def add(self, group: Optional[SearchGroup]) -> None:
        # A group whose members were all born finished (a window that
        # misses the root, a degenerate request) completes immediately —
        # chase its continuation until a live group (or nothing) remains.
        while group is not None and not group.pending:
            group = group.tag.advance() if group.tag is not None else None
        if group is not None:
            self._active.append(group)

    def run(self) -> None:
        self._use_kernels = kernels.enabled()
        while self._active:
            self._round()

    # ------------------------------------------------------------------
    def _round(self) -> None:
        # (is_point, is_leaf, fanout) -> [searches, nodes] parallel lists
        lanes: dict = {}
        point_leaves: dict = {}  # fanout -> [searches, nodes]  (kNN leaves)
        flat_leaves: List[Tuple[object, List]] = []  # (search, leaf nodes)
        #: Searches verified finished by their serve, with their groups.
        probe: List[Tuple[SearchGroup, object]] = []
        serve_nn = self._serve_nn_one
        serve = {
            BroadcastNNSearch: serve_nn,
            BroadcastKNNSearch: self._serve_knn_one,
            BroadcastRangeSearch: self._serve_range_one,
            BroadcastWindowSearch: self._serve_window_one,
        }
        ctx = (lanes, point_leaves, flat_leaves, probe)
        for g in self._active:
            pending = g.pending
            if g.paired and len(pending) > 1:
                # run_all's two-float ping-pong: the earlier next event is
                # served, ties to the first member; the sibling's time caps
                # how far the serve may pop ahead.
                s0, s1 = pending
                t0 = s0.next_event_time()
                t1 = s1.next_event_time()
                if t0 <= t1:
                    s, limit, strict = s0, t1, False
                else:
                    s, limit, strict = s1, t0, True
                if type(s) is BroadcastNNSearch:
                    serve_nn(g, s, limit, strict, ctx)
                else:
                    # Paired members of any other kind advance through
                    # their own eligible steps (run_all semantics hold for
                    # every steppable).
                    self._burst(g, s, limit, strict, probe)
            else:
                for s in pending:
                    fn = serve.get(type(s))
                    if fn is not None:
                        fn(g, s, math.inf, False, ctx)
                    else:
                        s.step()  # unknown search type: per-query verbatim
                        if s.finished():
                            probe.append((g, s))

        if lanes:
            self._absorb_nn_lanes(lanes)
        if point_leaves:
            self._absorb_point_leaves(point_leaves)
        for s, leaves in flat_leaves:
            self._absorb_flat_leaves(s, leaves)

        # Finish bookkeeping: every probe entry was verified finished by
        # its serve (an emptied queue never refills).  on_finish fires
        # directly after the serve (and deferred absorb) that completed a
        # search — before any member of the same group is served again —
        # which is exactly run_all's on_finish moment.
        completed: Optional[List[SearchGroup]] = None
        for g, s in probe:
            g.pending.remove(s)
            if g.on_finish is not None:
                g.on_finish(s)
            if not g.pending:
                if completed is None:
                    completed = [g]
                else:
                    completed.append(g)
        if completed is not None:
            self._active = [g for g in self._active if g.pending]
            for g in completed:
                if g.tag is not None:
                    self.add(g.tag.advance())

    # ------------------------------------------------------------------
    # Phase A: per-search serves
    # ------------------------------------------------------------------
    def _burst(self, g, s, limit: float, strict: bool, probe) -> None:
        """Per-query fallback: the search's own steps while eligible."""
        while not s.finished():
            t = s.next_event_time()
            if t > limit or (strict and t == limit):
                return
            s.step()
        probe.append((g, s))

    def _fast(self, s, trivial_policy: bool) -> bool:
        """Batched-serve eligibility of one search, cached on the search."""
        try:
            return s._shared_fast
        except AttributeError:
            fast = (
                s._frontier is not None
                and s.tuner.loss is None
                and (not trivial_policy or s._policy_trivial)
            )
            s._shared_fast = fast
            return fast

    def _serve_nn_one(self, g, s, limit, strict, ctx) -> None:
        if not self._use_kernels or not self._fast(s, True):
            self._burst(g, s, limit, strict, ctx[3])
            return
        f = s._frontier
        lanes, _, _, probe = ctx
        epoch = s._metric_epoch
        tuner = s.tuner
        while True:
            res = f.pop_until(s.upper_bound, epoch, limit, strict)
            if res is None:
                if not f._order_pages:
                    probe.append((g, s))
                return
            node, lb, weak, arrival = res
            if (lb is None or weak) and not s._decide_keep(node, lb, weak):
                continue
            # Survivor: download now, defer the expansion to the batch.
            tuner.now = arrival + 1.0
            tuner.index_pages += 1
            tuner.log.append(("index", node.page_id, arrival, True))
            if node.level == 0:
                key = (s.mode is SearchMode.POINT, True, node.fanout)
                if not f._order_pages:
                    probe.append((g, s))  # leaf absorbs never push
            else:
                key = (s.mode is SearchMode.POINT, False, node.fanout)
            lane = lanes.get(key)
            if lane is None:
                lanes[key] = [[s], [node]]
            else:
                lane[0].append(s)
                lane[1].append(node)
            return

    def _serve_knn_one(self, g, s, limit, strict, ctx) -> None:
        if not self._use_kernels or not self._fast(s, False):
            self._burst(g, s, limit, strict, ctx[3])
            return
        f = s._frontier
        _, point_leaves, _, probe = ctx
        order_pages = f._order_pages
        order_slots = f._order_slots
        slot_nodes = f._nodes
        cycle = f._cycle
        fphase = f._phase
        q = s.query
        tuner = s.tuner
        log = tuner.log
        now = tuner.now
        # The k-th-best bound moves only when a leaf is absorbed, and the
        # serve stops there — so it is constant for this whole drain.
        bound = s.bound
        pops = 0
        base = math.ceil(now - fphase)
        start = base % cycle
        while order_pages:
            i = bisect_left(order_pages, start)
            if i == len(order_pages):
                i = 0
            page = order_pages.pop(i)
            slot = order_slots.pop(i)
            pops += 1
            node = slot_nodes[slot]
            if node.mbr.mindist(q) > bound:
                continue
            arrival = base + (page - base) % cycle + fphase
            now = arrival + 1.0
            tuner.index_pages += 1
            log.append(("index", page, arrival, True))
            if node.level == 0:
                # The leaf's absorption moves the k-th-best bound, which
                # the next pop's prune test reads: stop for the batch.
                tuner.now = now
                f._version += pops
                if not order_pages:
                    probe.append((g, s))
                lane = point_leaves.get(node.fanout)
                if lane is None:
                    point_leaves[node.fanout] = [[s], [node]]
                else:
                    lane[0].append(s)
                    lane[1].append(node)
                return
            f.push_many(node.children)  # expansions never move the bound
            base = math.ceil(now - fphase)
            start = base % cycle
        tuner.now = now
        f._version += pops
        probe.append((g, s))

    def _serve_range_one(self, g, s, limit, strict, ctx) -> None:
        if not self._use_kernels or not self._fast(s, False):
            self._burst(g, s, limit, strict, ctx[3])
            return
        f = s._frontier
        _, _, flat_leaves, probe = ctx
        order_pages = f._order_pages
        order_slots = f._order_slots
        slot_nodes = f._nodes
        cycle = f._cycle
        fphase = f._phase
        circle = s.circle
        center = circle.center
        radius = circle.radius
        tuner = s.tuner
        log = tuner.log
        now = tuner.now
        leaves: List = []
        pops = 0
        base = math.ceil(now - fphase)
        start = base % cycle
        # The circle never moves, so the whole traversal drains in one
        # serve; leaf membership is resolved afterwards in one flat batch.
        while order_pages:
            i = bisect_left(order_pages, start)
            if i == len(order_pages):
                i = 0
            page = order_pages.pop(i)
            slot = order_slots.pop(i)
            pops += 1
            node = slot_nodes[slot]
            if node.mbr.mindist(center) > radius:
                continue  # circle.intersects_rect is mindist <= radius
            arrival = base + (page - base) % cycle + fphase
            now = arrival + 1.0
            tuner.index_pages += 1
            log.append(("index", page, arrival, True))
            if node.level == 0:
                leaves.append(node)
            else:
                f.push_many(node.children)
            base = math.ceil(now - fphase)
            start = base % cycle
        tuner.now = now
        f._version += pops
        if leaves:
            flat_leaves.append((s, leaves))
        probe.append((g, s))

    def _serve_window_one(self, g, s, limit, strict, ctx) -> None:
        if not self._use_kernels or not self._fast(s, False):
            self._burst(g, s, limit, strict, ctx[3])
            return
        f = s._frontier
        _, _, flat_leaves, probe = ctx
        order_pages = f._order_pages
        order_slots = f._order_slots
        slot_nodes = f._nodes
        cycle = f._cycle
        fphase = f._phase
        tuner = s.tuner
        log = tuner.log
        now = tuner.now
        leaves: List = []
        pops = 0
        # The window never moves either; children were filtered at push
        # time, so every queued node is downloaded.
        while order_pages:
            base = math.ceil(now - fphase)
            i = bisect_left(order_pages, base % cycle)
            if i == len(order_pages):
                i = 0
            page = order_pages.pop(i)
            slot = order_slots.pop(i)
            pops += 1
            node = slot_nodes[slot]
            arrival = base + (page - base) % cycle + fphase
            now = arrival + 1.0
            tuner.index_pages += 1
            log.append(("index", page, arrival, True))
            if node.level == 0:
                leaves.append(node)
            else:
                s._push_intersecting(node)
        tuner.now = now
        f._version += pops
        if leaves:
            flat_leaves.append((s, leaves))
        probe.append((g, s))

    # ------------------------------------------------------------------
    # Phase B: cross-query batched absorbs (certified estimate lanes)
    # ------------------------------------------------------------------
    def _absorb_nn_lanes(self, lanes: dict) -> None:
        """Absorb the round's surviving NN expansions, batched per shape.

        Point-metric lanes evaluate the exact fused MINDIST/MINMAXDIST (or
        leaf distance) kernel and feed each search its row — no pop-time
        verification, no scalar scan.  Transitive lanes, whose exact
        Lemma 1-3 kernel costs an order of magnitude more, run raw-hypot
        *certified estimates* instead: deflated weak lower bounds are
        queued for the delayed-pruning pop tests, and a deflated row
        minimum of the guarantee estimates proves for most rows that the
        exact guarantee scan is a no-op — only the remaining rows (and
        bound-witness nodes) run the exact scalar scan.  Every *stored*
        value is exact, so the estimates only decide provably-identical
        skips.
        """
        min_lane = _MIN_LANE
        deflate = _CERT_DEFLATE
        for (is_point, is_leaf, n), (searches, nodes) in lanes.items():
            k = len(nodes)
            if k < min_lane:
                for s, node in zip(searches, nodes):
                    if is_leaf:
                        s._absorb_leaf(node)
                    else:
                        s._absorb_internal(node)
                continue
            if is_leaf:
                pts = np.concatenate(
                    [node.points_array() for node in nodes]
                ).reshape(k, n, 2)
                if is_point:
                    # Point metric: exact distances are one fused hypot
                    # pass; batch the exact row argmins.
                    d = kernels.point_dists_multi(
                        np.array([s.query for s in searches]), pts
                    )
                    idx = np.argmin(d, axis=1)
                    vals = d[np.arange(k), idx].tolist()
                    for s, node, i, v in zip(
                        searches, nodes, idx.tolist(), vals
                    ):
                        s._absorb_leaf_shared(node, i, v)
                else:
                    # Transitive metric: the incumbent is already tight
                    # when leaves arrive, so the deflated raw estimate
                    # proves most leaf absorbs are no-ops.
                    d = kernels.trans_dists_raw(
                        np.array([s.start for s in searches]),
                        pts,
                        np.array([s.end for s in searches]),
                    )
                    for s, node, m in zip(
                        searches, nodes, d.min(axis=1).tolist()
                    ):
                        # A deflated row minimum at or above the incumbent
                        # proves the scalar offer loop changes nothing
                        # (the upper bound never exceeds the incumbent,
                        # which the second test re-checks defensively).
                        if (
                            m * deflate < s.best_dist
                            or s.best_dist < s.upper_bound
                        ):
                            s._absorb_leaf(node)
            else:
                mbrs = np.concatenate(
                    [node.child_mbr_array() for node in nodes]
                ).reshape(k, n, 4)
                if self._all_trees_backed:
                    all_backed = True
                else:
                    all_backed = all(
                        node.children_all_backed() for node in nodes
                    )
                if is_point:
                    # Point metric: MINDIST/MINMAXDIST share one fused
                    # exact hypot pass; push exact bounds and inherit the
                    # masked argmin guarantee.
                    lower, guar = kernels.point_bounds_multi(
                        np.array([s.query for s in searches]), mbrs
                    )
                    if all_backed:
                        backed = guar
                    else:
                        counts = np.concatenate(
                            [node.child_count_array() for node in nodes]
                        ).reshape(k, n)
                        backed = np.where(counts > 0, guar, math.inf)
                    gi = np.argmin(backed, axis=1)
                    gv = backed[np.arange(k), gi].tolist()
                    lower = lower.tolist()
                    for j, (s, node) in enumerate(zip(searches, nodes)):
                        s._absorb_internal_shared(node, lower[j], gi[j], gv[j])
                else:
                    weak, est = kernels.trans_weak_bounds_multi(
                        np.array([s.start for s in searches]),
                        mbrs,
                        np.array([s.end for s in searches]),
                        deflate,
                    )
                    gates = (est.min(axis=1) * deflate).tolist()
                    weak = weak.tolist()
                    for j, (s, node) in enumerate(zip(searches, nodes)):
                        # The exact guarantee scan runs when the deflated
                        # estimate admits an improvement, when the node
                        # witnesses the bound (hand-off), or when an empty
                        # child subtree voids the estimate's backing.
                        need = (
                            not all_backed
                            or gates[j] < s.upper_bound
                            or node.page_id == s._witness_page
                        )
                        s._absorb_internal_weak(node, weak[j], need)

    def _absorb_point_leaves(self, point_leaves: dict) -> None:
        """Batched exact ``dis(q, p)`` rows for the round's kNN leaves.

        kNN rows must be exact — the distances enter the candidate heap
        and the reported answers — so this lane keeps the exact vectorised
        hypot.
        """
        for n, (searches, nodes) in point_leaves.items():
            if len(nodes) < _MIN_LANE:
                for s, node in zip(searches, nodes):
                    s._absorb_leaf(node)
                continue
            k = len(nodes)
            d = kernels.point_dists_multi(
                np.array([s.query for s in searches]),
                np.concatenate(
                    [node.points_array() for node in nodes]
                ).reshape(k, n, 2),
            )
            for j, (s, node) in enumerate(zip(searches, nodes)):
                s._absorb_leaf_known(node, d[j])

    def _absorb_flat_leaves(self, s, leaves: List) -> None:
        """Resolve a drained range/window search's leaves in one flat pass.

        The flat concatenation preserves leaf pop order and in-leaf point
        order, so ``results`` fills exactly as the per-query absorbs
        would.  Range membership runs on raw-hypot estimates with
        inflate/deflate certification; only points inside the rounding
        margin band pay the exact metric.
        """
        total = 0
        for node in leaves:
            total += node.fanout
        if total < kernels.min_batch_leaf():
            for node in leaves:
                s._absorb_leaf(node)
            return
        pts = (
            leaves[0].points_array()
            if len(leaves) == 1
            else np.concatenate([node.points_array() for node in leaves])
        )
        flat: List = []
        for node in leaves:
            flat.extend(node.points)
        if isinstance(s, BroadcastRangeSearch):
            circle = s.circle
            center = circle.center
            radius = circle.radius
            d = np.hypot(center.x - pts[:, 0], center.y - pts[:, 1])
            inside = d * _CERT_INFLATE <= radius
            border = ~(inside | (d * _CERT_DEFLATE > radius))
            if border.any():
                # The margin band: resolve each point with the exact
                # scalar containment test, like the per-query absorb.
                for i in np.flatnonzero(border).tolist():
                    inside[i] = circle.contains_point(flat[i])
            idx = np.flatnonzero(inside).tolist()
        else:
            w = s.window
            xs, ys = pts[:, 0], pts[:, 1]
            idx = np.flatnonzero(
                (w.xmin <= xs)
                & (xs <= w.xmax)
                & (w.ymin <= ys)
                & (ys <= w.ymax)
            ).tolist()
        if idx:
            s.results.extend(flat[i] for i in idx)


# ----------------------------------------------------------------------
# TNN query jobs (estimate -> filter -> join state machine)
# ----------------------------------------------------------------------
class _TNNJob:
    """One TNN query's lifecycle under the shared scan.

    Mirrors :meth:`repro.core.base.TNNAlgorithm.run` stage by stage —
    estimate searches, re-steering coordinator (Hybrid-NN), filter-phase
    range queries from ``estimate_finish``, transitive join, metrics — so
    the assembled :class:`TNNResult` is field-for-field the per-query one.
    """

    __slots__ = (
        "env",
        "algorithm",
        "hybrid",
        "query",
        "tuner_s",
        "tuner_r",
        "nn_s",
        "nn_r",
        "range_s",
        "range_r",
        "radius",
        "seed_pair",
        "estimate_finish",
        "estimate_pages",
        "in_filter",
        "result",
        "_steered",
    )

    def __init__(
        self,
        env: TNNEnvironment,
        algorithm,
        hybrid: bool,
        query: Point,
        phase_s: float,
        phase_r: float,
    ) -> None:
        self.env = env
        self.algorithm = algorithm
        self.hybrid = hybrid
        self.query = query
        self.tuner_s, self.tuner_r = env.tuners(phase_s, phase_r)
        policy_s, policy_r = algorithm._policies(env)
        self.nn_s = BroadcastNNSearch(env.s_tree, self.tuner_s, query, policy_s)
        self.nn_r = BroadcastNNSearch(env.r_tree, self.tuner_r, query, policy_r)
        # Pre-stamp the executor's serve-eligibility flag (the searches
        # were built right here, so the conditions are known); it must
        # match SharedScanExecutor._fast exactly — in particular a lossy
        # tuner forces the per-query burst path, whose _receive retry loop
        # the inlined downloads do not replay.
        self.nn_s._shared_fast = (
            self.nn_s._frontier is not None
            and self.tuner_s.loss is None
            and self.nn_s._policy_trivial
        )
        self.nn_r._shared_fast = (
            self.nn_r._frontier is not None
            and self.tuner_r.loss is None
            and self.nn_r._policy_trivial
        )
        self.in_filter = False
        self.result: Optional[TNNResult] = None
        self._steered = False

    def start(self) -> SearchGroup:
        if self.hybrid:
            # Hybrid-NN: the finish of either channel re-steers the other,
            # so the pair keeps run_all's exact step interleaving.
            return SearchGroup(
                [self.nn_s, self.nn_r],
                paired=True,
                on_finish=self._coordinator,
                tag=self,
            )
        # Double-NN: two independent searches, order-free.
        return SearchGroup([self.nn_s, self.nn_r], tag=self)

    def _coordinator(self, finished_search) -> None:
        # Verbatim HybridNN._estimate coordination (Cases 2 and 3).
        if self._steered:
            return
        if finished_search is self.nn_s and not self.nn_r.finished():
            s, _ = self.nn_s.result()
            self.nn_r.retarget(s)  # Case 2
            self._steered = True
        elif finished_search is self.nn_r and not self.nn_s.finished():
            r, _ = self.nn_r.result()
            self.nn_s.switch_to_transitive(self.query, r)  # Case 3
            self._steered = True

    def advance(self) -> Optional[SearchGroup]:
        if not self.in_filter:
            s, _ = self.nn_s.result()
            r, _ = self.nn_r.result()
            self.radius = self.query.distance_to(s) + s.distance_to(r)
            self.seed_pair = (s, r)
            self.estimate_finish = max(self.tuner_s.now, self.tuner_r.now)
            self.estimate_pages = (
                self.tuner_s.pages_downloaded + self.tuner_r.pages_downloaded
            )
            circle = Circle(self.query, self.radius)
            self.range_s = BroadcastRangeSearch(
                self.env.s_tree, self.tuner_s, circle, self.estimate_finish
            )
            self.range_r = BroadcastRangeSearch(
                self.env.r_tree, self.tuner_r, circle, self.estimate_finish
            )
            self.in_filter = True
            return SearchGroup([self.range_s, self.range_r], tag=self)

        s0, r0 = self.seed_pair
        seed_bound = self.query.distance_to(s0) + s0.distance_to(r0)
        s, r, dist = transitive_join(
            self.query,
            self.range_s.results,
            self.range_r.results,
            initial_bound=seed_bound,
            initial_pair=self.seed_pair,
        )
        tuner_s, tuner_r = self.tuner_s, self.tuner_r
        self.result = TNNResult(
            algorithm=self.algorithm.name,
            query=self.query,
            s=s,
            r=r,
            distance=dist,
            radius=self.radius,
            access_time=max(tuner_s.now, tuner_r.now),
            tune_in_s=tuner_s.pages_downloaded,
            tune_in_r=tuner_r.pages_downloaded,
            estimate_pages=self.estimate_pages,
            filter_pages=(
                tuner_s.pages_downloaded
                + tuner_r.pages_downloaded
                - self.estimate_pages
            ),
            estimate_finish=self.estimate_finish,
            data_pages=0,
            failed=s is None or r is None,
        )
        return None


def shared_scan_supported(algorithm) -> bool:
    """True when :func:`execute_tnn_batch` can run this algorithm.

    The page-major job mirrors the exact Double-NN / Hybrid-NN lifecycles
    stage by stage; subclasses (which may override ``_estimate``), ANN
    optimizations, and data-page retrieval keep the per-query path.
    """
    from repro.core.double import DoubleNN
    from repro.core.hybrid import HybridNN

    return (
        type(algorithm) in (DoubleNN, HybridNN)
        and algorithm.optimization is None
        and not algorithm.include_data_retrieval
    )


def execute_tnn_batch(
    env: TNNEnvironment,
    algorithm,
    queries: Sequence[Tuple[Point, float, float]],
) -> List[TNNResult]:
    """Run a TNN workload page-major; results in workload order.

    ``algorithm`` must satisfy :func:`shared_scan_supported`; the returned
    :class:`TNNResult` stream is bit-identical to running
    ``algorithm.run(env, q, phase_s, phase_r)`` per query.
    """
    from repro.core.hybrid import HybridNN

    hybrid = isinstance(algorithm, HybridNN)
    jobs = [
        _TNNJob(env, algorithm, hybrid, q, phase_s, phase_r)
        for q, phase_s, phase_r in queries
    ]
    executor = SharedScanExecutor(
        all_trees_backed=tree_all_backed(env.s_tree)
        and tree_all_backed(env.r_tree)
    )
    for job in jobs:
        executor.add(job.start())
    executor.run()
    return [job.result for job in jobs]  # type: ignore[misc]
