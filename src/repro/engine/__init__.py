"""Batched multi-query execution engine.

The substrate every bulk workload runs on:

* :class:`QueryWorkload` — a seeded batch of queries whose per-query state
  (point + channel phases) is derived up front, making every execution
  order reproducible;
* :class:`BatchRunner` — executes a workload in-process or fanned out over
  a process pool, bit-identically, with vectorised aggregation and cached
  oracle results for failure-rate comparisons;
* :class:`SharedScanRunner` — the same API, page-major: one shared
  broadcast scan serves every query per page arrival, with geometry
  kernels batched across the workload (:mod:`repro.engine.shared_scan`);
* :class:`QueryEngine` — one facade over NN / kNN / range / window / TNN
  queries on an environment, so callers stop hand-wiring tuners and
  searches; :meth:`QueryEngine.run_many` routes mixed client batches
  through the shared-scan executor.

``repro.sim.runner`` keeps the historical ``ExperimentRunner`` API as a
thin wrapper over this package.
"""

from repro.engine.batch import (
    BatchRunner,
    SharedScanRunner,
    default_workers,
    pool_chunk_count,
)
from repro.engine.distributed import (
    CampaignConfig,
    CampaignCoordinator,
    CampaignResult,
    FaultInjector,
    run_worker,
    spawn_local_workers,
)
from repro.engine.query import (
    ClientQueryAnswer,
    ClientRequest,
    KNNRequest,
    NNRequest,
    QueryEngine,
    RangeRequest,
    WindowRequest,
)
from repro.engine.shared_scan import SharedScanExecutor, execute_tnn_batch
from repro.engine.workload import QueryWorkload

__all__ = [
    "BatchRunner",
    "CampaignConfig",
    "CampaignCoordinator",
    "CampaignResult",
    "FaultInjector",
    "SharedScanRunner",
    "run_worker",
    "spawn_local_workers",
    "SharedScanExecutor",
    "ClientQueryAnswer",
    "ClientRequest",
    "NNRequest",
    "KNNRequest",
    "RangeRequest",
    "WindowRequest",
    "QueryEngine",
    "QueryWorkload",
    "default_workers",
    "execute_tnn_batch",
    "pool_chunk_count",
]
