"""Batched multi-query execution engine.

The substrate every bulk workload runs on:

* :class:`QueryWorkload` — a seeded batch of queries whose per-query state
  (point + channel phases) is derived up front, making every execution
  order reproducible;
* :class:`BatchRunner` — executes a workload in-process or fanned out over
  a process pool, bit-identically, with vectorised aggregation and cached
  oracle results for failure-rate comparisons;
* :class:`QueryEngine` — one facade over NN / kNN / range / TNN queries on
  an environment, so callers stop hand-wiring tuners and searches.

``repro.sim.runner`` keeps the historical ``ExperimentRunner`` API as a
thin wrapper over this package.
"""

from repro.engine.batch import BatchRunner, default_workers
from repro.engine.query import ClientQueryAnswer, QueryEngine
from repro.engine.workload import QueryWorkload

__all__ = [
    "BatchRunner",
    "ClientQueryAnswer",
    "QueryEngine",
    "QueryWorkload",
    "default_workers",
]
