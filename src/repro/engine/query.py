"""One facade over every query type the broadcast client supports.

:class:`QueryEngine` binds a :class:`~repro.core.environment.TNNEnvironment`
and exposes NN, kNN, range and TNN queries behind one object, so callers
(benchmarks, services, the batch runner) stop hand-wiring tuners, channels
and steppable searches for every request.  Single queries run through the
same substrate as batches — the per-program cached arrival tables make the
per-query setup cost a handful of attribute lookups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.broadcast import BroadcastChannel, ChannelTuner
from repro.client import (
    BroadcastKNNSearch,
    BroadcastNNSearch,
    BroadcastRangeSearch,
)
from repro.core.base import TNNAlgorithm
from repro.core.double import DoubleNN
from repro.core.environment import TNNEnvironment
from repro.core.result import TNNResult
from repro.engine.batch import BatchRunner
from repro.engine.workload import QueryWorkload
from repro.geometry import Circle, Point


@dataclass(frozen=True)
class ClientQueryAnswer:
    """Answer and cost accounting of one client-side broadcast query.

    ``answers`` is ``((point, distance), ...)`` ascending by distance for
    NN/kNN; for range queries the distance is to the query centre.
    """

    answers: Tuple[Tuple[Point, float], ...]
    access_time: float
    tune_in: int
    max_queue_size: int


class QueryEngine:
    """All supported query types over one two-channel environment."""

    def __init__(self, env: TNNEnvironment) -> None:
        self.env = env

    # ------------------------------------------------------------------
    # Channel plumbing
    # ------------------------------------------------------------------
    def _tuner(self, channel: str, phase: float) -> ChannelTuner:
        if channel == "s":
            return ChannelTuner(BroadcastChannel(self.env.s_program, phase=phase))
        if channel == "r":
            return ChannelTuner(BroadcastChannel(self.env.r_program, phase=phase))
        raise ValueError(f"channel must be 's' or 'r', got {channel!r}")

    def _tree(self, channel: str):
        return self.env.s_tree if channel == "s" else self.env.r_tree

    # ------------------------------------------------------------------
    # Single-dataset queries
    # ------------------------------------------------------------------
    def nn(
        self, query: Point, phase: float = 0.0, channel: str = "s"
    ) -> ClientQueryAnswer:
        """Exact nearest neighbour of ``query`` on one channel."""
        tuner = self._tuner(channel, phase)
        search = BroadcastNNSearch(self._tree(channel), tuner, query)
        search.run_to_completion()
        point, dist = search.result()
        return ClientQueryAnswer(
            answers=((point, dist),),
            access_time=tuner.now,
            tune_in=tuner.pages_downloaded,
            max_queue_size=search.max_queue_size,
        )

    def knn(
        self, query: Point, k: int, phase: float = 0.0, channel: str = "s"
    ) -> ClientQueryAnswer:
        """The ``k`` nearest neighbours of ``query`` on one channel."""
        tuner = self._tuner(channel, phase)
        search = BroadcastKNNSearch(self._tree(channel), tuner, query, k)
        answers = tuple(search.run_to_completion())
        return ClientQueryAnswer(
            answers=answers,
            access_time=tuner.now,
            tune_in=tuner.pages_downloaded,
            max_queue_size=search.max_queue_size,
        )

    def range(
        self,
        center: Point,
        radius: float,
        phase: float = 0.0,
        channel: str = "s",
    ) -> ClientQueryAnswer:
        """All points within ``radius`` of ``center`` on one channel."""
        tuner = self._tuner(channel, phase)
        search = BroadcastRangeSearch(
            self._tree(channel), tuner, Circle(center, radius)
        )
        points = search.run_to_completion()
        answers = tuple(
            sorted(((p, center.distance_to(p)) for p in points), key=lambda a: a[1])
        )
        return ClientQueryAnswer(
            answers=answers,
            access_time=tuner.now,
            tune_in=tuner.pages_downloaded,
            max_queue_size=search.max_queue_size,
        )

    # ------------------------------------------------------------------
    # Transitive queries
    # ------------------------------------------------------------------
    def tnn(
        self,
        query: Point,
        algorithm: Optional[TNNAlgorithm] = None,
        phase_s: float = 0.0,
        phase_r: float = 0.0,
    ) -> TNNResult:
        """One transitive NN query (default algorithm: exact Double-NN)."""
        algo = algorithm if algorithm is not None else DoubleNN()
        return algo.run(self.env, query, phase_s, phase_r)

    def batch(
        self, workload: QueryWorkload, workers: Optional[int] = None
    ) -> BatchRunner:
        """A batch runner executing ``workload`` on this environment."""
        return BatchRunner(self.env, workload, workers=workers)
