"""One facade over every query type the broadcast client supports.

:class:`QueryEngine` binds a :class:`~repro.core.environment.TNNEnvironment`
and exposes NN, kNN, range, window and TNN queries behind one object, so
callers (benchmarks, services, the batch runner) stop hand-wiring tuners,
channels and steppable searches for every request.  Single queries run
through the same substrate as batches — the per-program cached arrival
tables make the per-query setup cost a handful of attribute lookups.

Mixed client batches go through :meth:`QueryEngine.run_many`: requests are
declared as :class:`NNRequest` / :class:`KNNRequest` / :class:`RangeRequest`
/ :class:`WindowRequest` records and executed page-major by the shared-scan
executor (:mod:`repro.engine.shared_scan`), which serves every request per
page arrival and batches the geometry kernels across the batch.  Answers
are bit-identical to issuing each request through the corresponding
single-query method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.broadcast import BroadcastChannel, ChannelTuner
from repro.client import (
    BroadcastKNNSearch,
    BroadcastNNSearch,
    BroadcastRangeSearch,
    BroadcastWindowSearch,
    SearchGroup,
)
from repro.core.base import TNNAlgorithm
from repro.core.double import DoubleNN
from repro.core.environment import TNNEnvironment
from repro.core.result import TNNResult
from repro.engine.batch import BatchRunner, SharedScanRunner
from repro.engine.shared_scan import (
    SharedScanExecutor,
    shared_scan_supported,
    tree_all_backed,
)
from repro.engine.workload import QueryWorkload
from repro.geometry import Circle, Point, Rect


@dataclass(frozen=True)
class NNRequest:
    """One nearest-neighbour request for :meth:`QueryEngine.run_many`."""

    point: Point
    phase: float = 0.0
    channel: str = "s"


@dataclass(frozen=True)
class KNNRequest:
    """One k-nearest-neighbours request for :meth:`QueryEngine.run_many`."""

    point: Point
    k: int = 1
    phase: float = 0.0
    channel: str = "s"


@dataclass(frozen=True)
class RangeRequest:
    """One circular range request for :meth:`QueryEngine.run_many`."""

    center: Point
    radius: float = 0.0
    phase: float = 0.0
    channel: str = "s"


@dataclass(frozen=True)
class WindowRequest:
    """One rectangular window request for :meth:`QueryEngine.run_many`."""

    window: Rect
    phase: float = 0.0
    channel: str = "s"


ClientRequest = Union[NNRequest, KNNRequest, RangeRequest, WindowRequest]


@dataclass(frozen=True)
class ClientQueryAnswer:
    """Answer and cost accounting of one client-side broadcast query.

    ``answers`` is ``((point, distance), ...)`` ascending by distance for
    NN/kNN; for range queries the distance is to the query centre.
    """

    answers: Tuple[Tuple[Point, float], ...]
    access_time: float
    tune_in: int
    max_queue_size: int


class QueryEngine:
    """All supported query types over one two-channel environment."""

    def __init__(self, env: TNNEnvironment) -> None:
        self.env = env

    # ------------------------------------------------------------------
    # Channel plumbing
    # ------------------------------------------------------------------
    def _tuner(self, channel: str, phase: float) -> ChannelTuner:
        if channel == "s":
            return ChannelTuner(BroadcastChannel(self.env.s_program, phase=phase))
        if channel == "r":
            return ChannelTuner(BroadcastChannel(self.env.r_program, phase=phase))
        raise ValueError(f"channel must be 's' or 'r', got {channel!r}")

    def _tree(self, channel: str):
        return self.env.s_tree if channel == "s" else self.env.r_tree

    # ------------------------------------------------------------------
    # Single-dataset queries
    # ------------------------------------------------------------------
    def nn(
        self, query: Point, phase: float = 0.0, channel: str = "s"
    ) -> ClientQueryAnswer:
        """Exact nearest neighbour of ``query`` on one channel."""
        search = self._build(NNRequest(query, phase, channel))
        search.run_to_completion()
        return self._finish(search)

    def knn(
        self, query: Point, k: int, phase: float = 0.0, channel: str = "s"
    ) -> ClientQueryAnswer:
        """The ``k`` nearest neighbours of ``query`` on one channel."""
        search = self._build(KNNRequest(query, k, phase, channel))
        search.run_to_completion()
        return self._finish(search)

    def range(
        self,
        center: Point,
        radius: float,
        phase: float = 0.0,
        channel: str = "s",
    ) -> ClientQueryAnswer:
        """All points within ``radius`` of ``center`` on one channel."""
        search = self._build(RangeRequest(center, radius, phase, channel))
        search.run_to_completion()
        return self._finish(search)

    def window(
        self, window: Rect, phase: float = 0.0, channel: str = "s"
    ) -> ClientQueryAnswer:
        """All points inside a closed rectangle on one channel.

        Window answers carry distance ``0.0`` (a window has no centre) in
        broadcast discovery order.
        """
        search = self._build(WindowRequest(window, phase, channel))
        search.run_to_completion()
        return self._finish(search)

    # ------------------------------------------------------------------
    # Mixed client batches (shared-scan executor)
    # ------------------------------------------------------------------
    def run_many(
        self,
        requests: Sequence["ClientRequest"],
        record_log: bool = True,
    ) -> List[ClientQueryAnswer]:
        """Answer a mixed NN/kNN/range/window batch through the shared scan.

        Every request gets its own tuner (its ``phase`` models when its
        client tuned in), and the shared-scan executor serves all of them
        page-major: one round per page arrival tick, geometry kernels
        batched across the whole batch.  Answers come back in request
        order, bit-identical to the corresponding single-query methods.

        ``record_log=False`` skips every tuner's per-reception event log
        (answers, access times, tune-in counts and queue sizes are
        unaffected) — batch campaigns that never read traces save the
        per-download log appends.
        """
        searches = [self._build(req) for req in requests]
        if not record_log:
            for search in searches:
                search.tuner.record_log = False
        executor = SharedScanExecutor(
            all_trees_backed=tree_all_backed(self.env.s_tree)
            and tree_all_backed(self.env.r_tree)
        )
        for search in searches:
            executor.add(SearchGroup([search]))
        executor.run()
        return [self._finish(search) for search in searches]

    def _build(self, req: "ClientRequest"):
        """One steppable search (with its own tuner) for a client request."""
        tuner = self._tuner(req.channel, req.phase)
        tree = self._tree(req.channel)
        if isinstance(req, NNRequest):
            return BroadcastNNSearch(tree, tuner, req.point)
        if isinstance(req, KNNRequest):
            return BroadcastKNNSearch(tree, tuner, req.point, req.k)
        if isinstance(req, RangeRequest):
            return BroadcastRangeSearch(
                tree, tuner, Circle(req.center, req.radius)
            )
        if isinstance(req, WindowRequest):
            return BroadcastWindowSearch(tree, tuner, req.window)
        raise TypeError(f"unsupported client request: {req!r}")

    def _finish(self, search) -> ClientQueryAnswer:
        """The answer record of one completed search, uniform across kinds."""
        if isinstance(search, BroadcastNNSearch):
            point, dist = search.result()
            answers: Tuple[Tuple[Point, float], ...] = ((point, dist),)
        elif isinstance(search, BroadcastKNNSearch):
            answers = tuple(search.results())
        elif isinstance(search, BroadcastRangeSearch):
            center = search.circle.center
            answers = tuple(
                sorted(
                    ((p, center.distance_to(p)) for p in search.results),
                    key=lambda a: a[1],
                )
            )
        else:
            answers = tuple((p, 0.0) for p in search.results)
        tuner = search.tuner
        return ClientQueryAnswer(
            answers=answers,
            access_time=tuner.now,
            tune_in=tuner.pages_downloaded,
            max_queue_size=search.max_queue_size,
        )

    # ------------------------------------------------------------------
    # Transitive queries
    # ------------------------------------------------------------------
    def tnn(
        self,
        query: Point,
        algorithm: Optional[TNNAlgorithm] = None,
        phase_s: float = 0.0,
        phase_r: float = 0.0,
    ) -> TNNResult:
        """One transitive NN query (default algorithm: exact Double-NN)."""
        algo = algorithm if algorithm is not None else DoubleNN()
        return algo.run(self.env, query, phase_s, phase_r)

    def run_campaign(
        self,
        workload: QueryWorkload,
        algorithm: Optional[TNNAlgorithm] = None,
        *,
        bind: Tuple[str, int] = ("127.0.0.1", 0),
        spawn_workers: int = 0,
        record_log: bool = False,
        config=None,
        local_workers: int = 0,
        chaos_specs: Optional[Sequence[Optional[str]]] = None,
    ):
        """Run a TNN campaign over distributed workers; always completes.

        Starts a :class:`~repro.engine.distributed.CampaignCoordinator`
        on ``bind`` (port 0 picks a free port), optionally spawns
        ``spawn_workers`` localhost worker subprocesses, and merges their
        streamed result chunks into a
        :class:`~repro.engine.distributed.CampaignResult` whose
        ``results`` list is bit-identical — element for element — to
        ``SharedScanRunner.run_algorithm`` on the same workload.  External
        workers (``python -m repro.engine.distributed worker --connect
        host:port``) may join at any time.

        Robustness is the coordinator's (heartbeats, lease epochs,
        resharding); when no workers ever register — or all of them die —
        the remainder degrades to the supervised local pool
        (``local_workers >= 2``) and finally to in-process serial
        execution.  Algorithms outside the shared-scan family skip the
        distributed tier entirely and run through the local runner, so
        this method is a drop-in for any campaign.

        ``chaos_specs`` arms spawned workers with deterministic fault
        injectors (see :class:`~repro.engine.distributed.FaultInjector`);
        the chaos suite and the million-query benchmark use it to prove
        every recovery path bit-identical.
        """
        from repro.engine.distributed import (
            CampaignCoordinator,
            CampaignResult,
            spawn_local_workers,
        )

        algo = algorithm if algorithm is not None else DoubleNN()
        queries = workload.queries(self.env)
        if not shared_scan_supported(algo) or not queries:
            runner = SharedScanRunner(
                self.env, workload, workers=local_workers, queries=queries
            )
            results = runner.run_algorithm(algo, record_log=record_log)
            return CampaignResult(
                results=results,
                stats={
                    "n_queries": len(results),
                    "mode": "local",
                    "workers_seen": 0,
                },
            )
        coordinator = CampaignCoordinator(
            self.env,
            queries,
            algo,
            bind=bind,
            config=config,
            record_log=record_log,
            workload_spec=(workload.n_queries, workload.seed),
            local_workers=local_workers,
        )
        procs = []
        try:
            with coordinator:
                if spawn_workers:
                    procs = spawn_local_workers(
                        coordinator.address,
                        spawn_workers,
                        chaos_specs=chaos_specs,
                    )
                return coordinator.run()
        finally:
            for p in procs:
                try:
                    p.wait(timeout=5.0)
                except Exception:
                    p.terminate()
                    try:
                        p.wait(timeout=5.0)
                    except Exception:
                        p.kill()

    def batch(
        self,
        workload: QueryWorkload,
        workers: Optional[int] = None,
        shared: bool = True,
    ) -> BatchRunner:
        """A batch runner executing ``workload`` on this environment.

        ``shared=True`` (default) returns the page-major
        :class:`SharedScanRunner` — bit-identical results, one broadcast
        scan shared by every query; ``shared=False`` keeps the per-query
        :class:`BatchRunner`.
        """
        cls = SharedScanRunner if shared else BatchRunner
        return cls(self.env, workload, workers=workers)
