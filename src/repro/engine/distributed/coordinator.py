"""Campaign coordinator: registers workers, leases shards, merges chunks.

The coordinator owns one campaign — a (environment, algorithm, query
workload) triple — and drives it to completion over whatever workers show
up, fall over, hang, or lie about being alive:

* **Registration** — workers connect over TCP, say hello, and receive the
  campaign payload (the pickled environment plus the workload spec), so a
  worker needs nothing but this address to participate.
* **Leases** — the workload is cut into contiguous, s-phase-ordered
  query-slice shards (the PR 4 sharding that keeps shared-scan round
  lanes full).  An idle worker is leased the next pending shard under a
  **lease epoch** and a per-lease deadline scaled by slice size.
* **Streamed merge** — workers stream ``chunk`` frames (workload-index /
  result pairs) as they finish each sub-batch.  Chunks are epoch-gated
  (a revoked lease's late frames are rejected outright — a zombie can
  never double-book) and merged first-write-wins into the same
  workload-ordered result list ``SharedScanRunner.run_algorithm``
  returns.  A shard is a pure function of (environment, query slice), so
  any arrival order, any duplication and any re-execution merge
  bit-identically.
* **Supervision** — per-worker heartbeats with a miss budget detect dead
  or frozen workers; per-lease deadlines detect slow ones.  Either
  revokes the lease (epoch bump) and reshards the *unfinished remainder*
  of the slice across the survivors with exponential backoff — work a
  dead worker already streamed back stays booked.
* **Degradation** — when no worker ever registers, every worker is lost,
  or a shard exhausts its revocation budget, the remainder runs locally:
  through the PR 8 supervised local pool when ``local_workers >= 2``,
  else serially in-process.  The campaign always completes, and every
  rung of the ladder is bit-identical.
"""

from __future__ import annotations

import math
import os
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.environment import TNNEnvironment
from repro.core.result import TNNResult
from repro.engine.distributed.protocol import FaultInjector, FrameChannel
from repro.engine.shared_scan import execute_tnn_batch
from repro.geometry import Point, kernels


def _check_positive(name: str, value, minimum=0.0, integer=False) -> None:
    kind = "an integer" if integer else "a number"
    if integer and not isinstance(value, int):
        raise ValueError(f"{name} must be {kind}, got {value!r}")
    if not isinstance(value, (int, float)) or not math.isfinite(value):
        raise ValueError(f"{name} must be a finite {kind[2:]}, got {value!r}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value!r}")


@dataclass(frozen=True)
class CampaignConfig:
    """Tunable robustness knobs of one distributed campaign."""

    #: Worker heartbeat period (seconds); shipped to workers in the
    #: campaign payload so both sides agree.
    heartbeat_interval: float = 0.5
    #: Beats a worker may miss before it is declared dead.
    heartbeat_miss_budget: int = 4
    #: Per-lease deadline: ``lease_timeout + per_query * len(slice)``.
    lease_timeout: float = 30.0
    lease_timeout_per_query: float = 0.02
    #: Grace period to wait for a first worker (and for survivors to
    #: reconnect after the last one died) before degrading locally.
    worker_wait: float = 10.0
    #: Queries per streamed result chunk (the worker's sub-batch size).
    chunk_size: int = 256
    #: Upper bound on one shard's slice; the initial cut also guarantees
    #: at least ``2 * workers`` shards so stragglers overlap.
    shard_size: int = 2048
    #: Base re-lease backoff after a revocation, doubled per revocation
    #: of the same slice and capped at ``max_backoff``.
    reshard_backoff: float = 0.1
    max_backoff: float = 5.0
    #: Revocations one slice may suffer before it retires to the local
    #: rescue path (it is probably poisoning workers, or there are none).
    max_revocations: int = 6

    def __post_init__(self) -> None:
        _check_positive("heartbeat_interval", self.heartbeat_interval, 1e-3)
        _check_positive(
            "heartbeat_miss_budget", self.heartbeat_miss_budget, 1, True
        )
        _check_positive("lease_timeout", self.lease_timeout, 1e-3)
        _check_positive(
            "lease_timeout_per_query", self.lease_timeout_per_query, 0.0
        )
        _check_positive("worker_wait", self.worker_wait, 0.0)
        _check_positive("chunk_size", self.chunk_size, 1, True)
        _check_positive("shard_size", self.shard_size, 1, True)
        _check_positive("reshard_backoff", self.reshard_backoff, 0.0)
        _check_positive("max_backoff", self.max_backoff, 0.0)
        _check_positive("max_revocations", self.max_revocations, 0, True)


class ChunkMerger:
    """First-write-wins merge of streamed (workload index, result) pairs.

    The merge is pure bookkeeping — no sockets, no locks — so the
    determinism property tests drive it directly: any interleaving of
    chunk arrivals, including duplicated late chunks, produces the same
    workload-ordered result list, and a query is only ever counted once.
    """

    def __init__(self, n_queries: int) -> None:
        self.results: List[Optional[TNNResult]] = [None] * n_queries
        self.filled = 0
        self.duplicates_dropped = 0

    @property
    def complete(self) -> bool:
        return self.filled == len(self.results)

    def book(self, pairs: Sequence[Tuple[int, TNNResult]]) -> int:
        """Merge one chunk; returns how many results were new."""
        new = 0
        for i, res in pairs:
            if self.results[i] is None:
                self.results[i] = res
                new += 1
            else:
                self.duplicates_dropped += 1
        self.filled += new
        return new

    def unbooked(self, indices: Sequence[int]) -> List[int]:
        """The subset of ``indices`` still missing a result."""
        results = self.results
        return [i for i in indices if results[i] is None]


@dataclass
class _Shard:
    sid: int
    indices: List[int]
    epoch: int = 0
    owner: Optional[str] = None
    deadline: float = 0.0
    not_before: float = 0.0
    revocations: int = 0
    retired: bool = False  # completed, split away, or sent to local rescue


@dataclass
class _Worker:
    wid: str
    name: str
    channel: FrameChannel
    last_seen: float
    alive: bool = True
    chunks: int = 0
    queries: int = 0
    seconds: float = 0.0


@dataclass
class CampaignResult:
    """A completed campaign: results in workload order, plus run stats."""

    results: List[TNNResult]
    stats: dict


class CampaignCoordinator:
    """Runs one campaign over registered workers; see the module docs.

    Use as a context manager (or call :meth:`start` / :meth:`close`):
    ``start`` binds the listening socket so :attr:`address` is known
    before any worker is spawned, ``run`` drives the campaign to
    completion, ``close`` tears every connection down.
    """

    def __init__(
        self,
        env: TNNEnvironment,
        queries: Sequence[Tuple[Point, float, float]],
        algorithm,
        *,
        bind: Tuple[str, int] = ("127.0.0.1", 0),
        config: Optional[CampaignConfig] = None,
        record_log: bool = True,
        workload_spec: Optional[Tuple[int, int]] = None,
        local_workers: int = 0,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        self.env = env
        self.queries = list(queries)
        self.algorithm = algorithm
        self.config = config or CampaignConfig()
        self.record_log = record_log
        #: ``(n_queries, seed)`` of a :class:`QueryWorkload`; when given,
        #: workers re-derive the queries from the seed instead of
        #: receiving a million pickled points.
        self.workload_spec = workload_spec
        self.local_workers = local_workers
        self.injector = injector
        self._bind = bind
        self.merger = ChunkMerger(len(self.queries))
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._workers: Dict[str, _Worker] = {}
        self._shards: Dict[int, _Shard] = {}
        self._next_sid = 0
        self._worker_serial = 0
        self._stop = False
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._rescue: List[int] = []
        self._last_death = 0.0
        self.stats = {
            "workers_seen": 0,
            "workers_lost": 0,
            "leases": 0,
            "revocations": 0,
            "reshards": 0,
            "chunks": 0,
            "stale_chunks_rejected": 0,
            "local_rescue_queries": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "CampaignCoordinator":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def address(self) -> Tuple[str, int]:
        assert self._listener is not None, "coordinator not started"
        return self._listener.getsockname()[:2]

    def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the (host, port) workers connect to."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(self._bind)
        listener.listen(64)
        listener.settimeout(0.2)
        self._listener = listener
        for target in (self._accept_loop, self._monitor_loop):
            t = threading.Thread(target=target, daemon=True)
            t.start()
            self._threads.append(t)
        return self.address

    def close(self) -> None:
        with self._lock:
            self._stop = True
            workers = list(self._workers.values())
            self._cond.notify_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for w in workers:
            w.channel.close()
        for t in self._threads:
            t.join(timeout=2.0)

    # ------------------------------------------------------------------
    # The campaign
    # ------------------------------------------------------------------
    def run(self) -> CampaignResult:
        """Drive the campaign to completion; always returns full results."""
        t0 = time.perf_counter()
        start = time.monotonic()
        self._build_shards()
        while True:
            with self._cond:
                if self.merger.complete:
                    break
                rescue = self._drain_rescue_locked()
                if not rescue and self._should_degrade_locked(start):
                    rescue = self._retire_all_locked()
                if not rescue:
                    self._cond.wait(timeout=0.05)
                    continue
            # Local rescue runs outside the lock: handler threads keep
            # merging whatever live workers still stream in parallel.
            self._run_local_rescue(rescue)
        self._shutdown_idle_workers()
        wall = time.perf_counter() - t0
        results = list(self.merger.results)
        assert all(r is not None for r in results)
        n = len(results)
        rescued = self.stats["local_rescue_queries"]
        mode = (
            "local"
            if rescued >= n or self.stats["workers_seen"] == 0
            else ("distributed" if rescued == 0 else "mixed")
        )
        with self._lock:
            per_worker = {
                w.wid: {
                    "chunks": w.chunks,
                    "queries": w.queries,
                    "seconds": round(w.seconds, 6),
                }
                for w in self._workers.values()
            }
        stats = {
            "n_queries": n,
            "wall_seconds": round(wall, 6),
            "queries_per_second": round(n / wall, 3) if wall else None,
            "mode": mode,
            "duplicate_results_dropped": self.merger.duplicates_dropped,
            **self.stats,
            "per_worker": per_worker,
        }
        return CampaignResult(results=results, stats=stats)

    def _build_shards(self) -> None:
        """Contiguous s-phase-ordered slices, at most ``shard_size`` each."""
        order = sorted(
            range(len(self.queries)), key=lambda i: (self.queries[i][1], i)
        )
        if not order:
            return
        size = max(1, min(self.config.shard_size, -(-len(order) // 2)))
        with self._lock:
            for at in range(0, len(order), size):
                sid = self._next_sid
                self._next_sid += 1
                self._shards[sid] = _Shard(sid, order[at : at + size])

    # ------------------------------------------------------------------
    # Degradation ladder
    # ------------------------------------------------------------------
    def _should_degrade_locked(self, start: float) -> bool:
        now = time.monotonic()
        live = any(w.alive for w in self._workers.values())
        if live:
            return False
        if self.stats["workers_seen"] == 0:
            return now - start > self.config.worker_wait
        return now - self._last_death > self.config.worker_wait

    def _retire_all_locked(self) -> List[int]:
        out: List[int] = []
        for shard in self._shards.values():
            if shard.retired:
                continue
            shard.retired = True
            shard.epoch += 1  # reject any still-in-flight chunks
            shard.owner = None
            out.extend(self.merger.unbooked(shard.indices))
        return out

    def _drain_rescue_locked(self) -> List[int]:
        out, self._rescue = self._rescue, []
        return out

    def _run_local_rescue(self, indices: List[int]) -> None:
        """Run retired slices in-process — supervised pool, then serial.

        The last rung of the ladder reuses PR 8's supervisor wholesale:
        with ``local_workers >= 2`` the slice fans out over the
        supervised shard pool (crash/hang recovery, resharding, its own
        serial last resort); otherwise it runs serially right here.
        Either way the results are bit-identical, so rescue is invisible
        in the merged output.
        """
        indices = [i for i in indices if self.merger.results[i] is None]
        if not indices:
            return
        picked = [self.queries[i] for i in indices]
        if self.local_workers >= 2 and len(picked) > 1:
            from repro.engine.batch import SharedScanRunner
            from repro.engine.workload import QueryWorkload

            runner = SharedScanRunner(
                self.env,
                QueryWorkload(0),
                workers=self.local_workers,
                queries=picked,
            )
            results = runner.run_algorithm(
                self.algorithm, record_log=self.record_log
            )
        else:
            # Serial rescue runs in shard-sized sub-batches: one scan over
            # a million queries would overflow the frontier arena's packed
            # index capacity, and partition invariance makes the chunked
            # concatenation bit-identical anyway.
            step = self.config.shard_size
            results = []
            for at in range(0, len(picked), step):
                results.extend(
                    execute_tnn_batch(
                        self.env,
                        self.algorithm,
                        picked[at : at + step],
                        record_log=self.record_log,
                    )
                )
        with self._cond:
            self.stats["local_rescue_queries"] += len(indices)
            self.merger.book(list(zip(indices, results)))
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Listener / per-worker handlers
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop:
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            sock.settimeout(None)
            t = threading.Thread(
                target=self._serve_worker, args=(sock,), daemon=True
            )
            t.start()
            self._threads.append(t)

    def _serve_worker(self, sock: socket.socket) -> None:
        channel = FrameChannel(sock, injector=self.injector)
        worker: Optional[_Worker] = None
        try:
            hello = channel.recv()
            if hello["kind"] != "hello":
                channel.close()
                return
            with self._cond:
                self._worker_serial += 1
                wid = f"{hello.get('name') or 'worker'}@{self._worker_serial}"
                worker = _Worker(
                    wid, hello.get("name") or "worker", channel,
                    time.monotonic(),
                )
                self._workers[wid] = worker
                self.stats["workers_seen"] += 1
                self._cond.notify_all()
            channel.send(
                "welcome",
                worker_id=wid,
                env=self.env,
                algorithm=self.algorithm,
                workload_spec=self.workload_spec,
                queries=None if self.workload_spec else self.queries,
                record_log=self.record_log,
                chunk_size=self.config.chunk_size,
                heartbeat_interval=self.config.heartbeat_interval,
                kernels_enabled=kernels.enabled(),
            )
            while not self._stop:
                msg = channel.recv()
                if not self._dispatch(worker, msg):
                    return
        except (ConnectionError, EOFError, OSError):
            pass
        finally:
            if worker is not None:
                self._on_worker_lost(worker)
            channel.close()

    def _dispatch(self, worker: _Worker, msg: dict) -> bool:
        kind = msg["kind"]
        with self._cond:
            worker.last_seen = time.monotonic()
            if kind == "heartbeat":
                return True
            if kind == "ready":
                return self._grant_lease_locked(worker)
            if kind == "chunk":
                self._accept_chunk_locked(worker, msg)
                return True
            if kind == "done":
                self._accept_done_locked(worker, msg)
                return True
            if kind == "goodbye":
                # A clean departure, not a death: release any leases but
                # do not count the worker as lost.  (Revocation can split
                # shards, so iterate over a snapshot.)
                worker.alive = False
                for shard in list(self._shards.values()):
                    if shard.owner == worker.wid and not shard.retired:
                        shard.owner = None
                        self._revoke_locked(
                            shard, self.merger.unbooked(shard.indices)
                        )
                self._cond.notify_all()
                return False
        return True

    def _grant_lease_locked(self, worker: _Worker) -> bool:
        if self.merger.complete:
            worker.channel.send("shutdown")
            return True
        now = time.monotonic()
        for shard in self._shards.values():
            if shard.retired or shard.owner is not None:
                continue
            if shard.not_before > now:
                continue
            remaining = self.merger.unbooked(shard.indices)
            if not remaining:
                shard.retired = True
                continue
            shard.indices = remaining
            shard.epoch += 1
            shard.owner = worker.wid
            shard.deadline = now + (
                self.config.lease_timeout
                + self.config.lease_timeout_per_query * len(remaining)
            )
            self.stats["leases"] += 1
            worker.channel.send(
                "lease",
                shard=shard.sid,
                epoch=shard.epoch,
                indices=list(remaining),
            )
            return True
        worker.channel.send("idle", poll=self.config.heartbeat_interval / 2)
        return True

    def _accept_chunk_locked(self, worker: _Worker, msg: dict) -> None:
        shard = self._shards.get(msg["shard"])
        if (
            shard is None
            or shard.retired
            or shard.epoch != msg["epoch"]
            or shard.owner != worker.wid
        ):
            # A revoked lease's (or a zombie's) late chunk: rejected
            # outright — re-leased copies of this slice are the only
            # writers, so nothing double-books.
            self.stats["stale_chunks_rejected"] += 1
            return
        pairs = msg["pairs"]
        self.stats["chunks"] += 1
        worker.chunks += 1
        worker.queries += len(pairs)
        worker.seconds += float(msg.get("seconds", 0.0))
        self.merger.book(pairs)
        self._cond.notify_all()

    def _accept_done_locked(self, worker: _Worker, msg: dict) -> None:
        shard = self._shards.get(msg["shard"])
        if (
            shard is None
            or shard.retired
            or shard.epoch != msg["epoch"]
            or shard.owner != worker.wid
        ):
            self.stats["stale_chunks_rejected"] += 1
            return
        shard.owner = None
        remaining = self.merger.unbooked(shard.indices)
        if remaining:
            # "done" with gaps means frames were dropped on the wire:
            # treat it like a deadline miss and re-lease the remainder.
            self._revoke_locked(shard, remaining)
        else:
            shard.retired = True
        self._cond.notify_all()

    def _on_worker_lost(self, worker: _Worker) -> None:
        with self._cond:
            if not worker.alive:
                return
            worker.alive = False
            self.stats["workers_lost"] += 1
            self._last_death = time.monotonic()
            for shard in list(self._shards.values()):
                if shard.owner == worker.wid and not shard.retired:
                    shard.owner = None
                    self._revoke_locked(
                        shard, self.merger.unbooked(shard.indices)
                    )
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Revocation / resharding
    # ------------------------------------------------------------------
    def _revoke_locked(self, shard: _Shard, remaining: List[int]) -> None:
        """Bump the epoch and requeue (or split, or retire) the remainder.

        The epoch bump is the zombie fence: chunks of the revoked lease
        still in flight no longer match and are rejected.  The remainder
        backs off exponentially; when several workers are alive it is cut
        across them so one lost worker's slice spreads over the
        survivors, and when the revocation budget is spent it retires to
        the local rescue queue instead of poisoning another worker.
        """
        cfg = self.config
        shard.epoch += 1
        shard.owner = None
        shard.revocations += 1
        self.stats["revocations"] += 1
        if not remaining:
            shard.retired = True
            return
        if shard.revocations > cfg.max_revocations:
            shard.retired = True
            self._rescue.extend(remaining)
            return
        backoff = min(
            cfg.reshard_backoff * (2 ** (shard.revocations - 1)),
            cfg.max_backoff,
        )
        live = sum(1 for w in self._workers.values() if w.alive)
        parts = min(
            max(live, 1), max(1, -(-len(remaining) // cfg.chunk_size))
        )
        if parts <= 1:
            shard.indices = remaining
            shard.not_before = time.monotonic() + backoff
            return
        # Split across survivors: retire this shard, enqueue the pieces
        # (each inherits the revocation count, so the budget still caps
        # total churn for the slice).
        shard.retired = True
        self.stats["reshards"] += 1
        size = -(-len(remaining) // parts)
        for at in range(0, len(remaining), size):
            sid = self._next_sid
            self._next_sid += 1
            self._shards[sid] = _Shard(
                sid,
                remaining[at : at + size],
                revocations=shard.revocations,
                not_before=time.monotonic() + backoff,
            )

    # ------------------------------------------------------------------
    # Monitor: heartbeat misses and lease deadlines
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        cfg = self.config
        tick = min(0.05, cfg.heartbeat_interval / 2)
        while not self._stop:
            time.sleep(tick)
            now = time.monotonic()
            dead: List[_Worker] = []
            with self._cond:
                budget = cfg.heartbeat_interval * cfg.heartbeat_miss_budget
                for w in self._workers.values():
                    if w.alive and now - w.last_seen > budget:
                        dead.append(w)
                # Deadline revocation can split a shard into fresh ones,
                # mutating the table: iterate over a snapshot.
                for shard in list(self._shards.values()):
                    if (
                        not shard.retired
                        and shard.owner is not None
                        and now > shard.deadline
                    ):
                        shard.owner = None
                        self._revoke_locked(
                            shard, self.merger.unbooked(shard.indices)
                        )
                        self._cond.notify_all()
            for w in dead:
                # Closing the channel unblocks the handler thread, whose
                # cleanup path revokes the worker's leases.
                w.channel.close()
                self._on_worker_lost(w)

    def _shutdown_idle_workers(self) -> None:
        with self._lock:
            workers = [w for w in self._workers.values() if w.alive]
        for w in workers:
            try:
                w.channel.send("shutdown")
            except (ConnectionError, OSError):
                pass


def spawn_local_workers(
    address: Tuple[str, int],
    n: int,
    *,
    chaos_specs: Optional[Sequence[Optional[str]]] = None,
    retry_timeout: float = 30.0,
    extra_env: Optional[Dict[str, str]] = None,
) -> List[subprocess.Popen]:
    """Spawn ``n`` localhost worker subprocesses aimed at ``address``.

    ``chaos_specs[i]`` (a :meth:`FaultInjector.to_spec` string) arms
    worker ``i`` with that fault injector via ``REPRO_DIST_CHAOS`` —
    benchmarks and the chaos suite kill or degrade exactly the workers
    they mean to.  The caller owns the returned processes (terminate or
    wait on them); ``QueryEngine.run_campaign`` does both.
    """
    src_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    )
    procs: List[subprocess.Popen] = []
    for i in range(n):
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env.pop("REPRO_DIST_CHAOS", None)
        if chaos_specs is not None and i < len(chaos_specs) and chaos_specs[i]:
            env["REPRO_DIST_CHAOS"] = chaos_specs[i]
        procs.append(
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.engine.distributed",
                    "worker",
                    "--connect",
                    f"{address[0]}:{address[1]}",
                    "--name",
                    f"w{i}",
                    "--retry-timeout",
                    str(retry_timeout),
                ],
                env=env,
            )
        )
    return procs
