"""Fault-tolerant multi-machine campaign execution.

The coordinator/worker tier over the embarrassingly-parallel shared-scan
shards: a :class:`CampaignCoordinator` registers workers over TCP
(length-prefixed pickle frames), leases them s-phase-ordered query-slice
shards under epoch-fenced leases, and merges their streamed result
chunks bit-identically into the same workload-ordered list the local
:class:`~repro.engine.batch.SharedScanRunner` produces.  Heartbeat miss
budgets and per-lease deadlines revoke dead/slow workers' leases and
reshard the unfinished remainder across survivors with exponential
backoff; when no workers remain the campaign degrades to the supervised
local pool and finally to in-process serial execution — it always
completes, and every recovery path is bit-identical because a shard is a
pure function of (environment, query slice).

Client entry points:

* ``QueryEngine.run_campaign(...)`` — build, drive and merge a campaign
  (optionally spawning localhost workers);
* ``python -m repro.engine.distributed worker --connect HOST:PORT`` —
  join a campaign from any machine;
* ``python -m repro.engine.distributed coordinator ...`` — the
  two-terminal demo coordinator.

:class:`FaultInjector` (``REPRO_DIST_CHAOS`` on workers) deterministically
drops/duplicates/delays frames, kills workers mid-shard and freezes
heartbeats, driving the chaos suite in ``tests/test_distributed_chaos.py``.
"""

from repro.engine.distributed.coordinator import (
    CampaignConfig,
    CampaignCoordinator,
    CampaignResult,
    ChunkMerger,
    spawn_local_workers,
)
from repro.engine.distributed.protocol import (
    FaultInjector,
    FrameChannel,
    ProtocolError,
    parse_address,
)
from repro.engine.distributed.worker import run_worker

__all__ = [
    "CampaignConfig",
    "CampaignCoordinator",
    "CampaignResult",
    "ChunkMerger",
    "FaultInjector",
    "FrameChannel",
    "ProtocolError",
    "parse_address",
    "run_worker",
    "spawn_local_workers",
]
